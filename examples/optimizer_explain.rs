//! A tour of the rank-aware optimizer: the two-dimensional plan enumeration
//! of Example 5 / Figure 9, the Figure 10 heuristics, and the
//! sampling-based cardinality estimator of Section 5.2.
//!
//! Run with: `cargo run --example optimizer_explain --release`

use std::sync::Arc;

use ranksql::optimizer::{CostModel, DpOptimizer, SamplingEstimator};
use ranksql::workload::{SyntheticConfig, SyntheticWorkload};
use ranksql::{OptimizerConfig, OptimizerMode, RankQuery};
use ranksql_optimizer::RankOptimizer;

fn main() -> ranksql::Result<()> {
    // A scaled-down instance of the paper's synthetic workload (Section 6).
    let config = SyntheticConfig {
        table_size: 5_000,
        join_selectivity: 0.002,
        predicate_cost: 5,
        k: 10,
        ..SyntheticConfig::default()
    };
    println!(
        "workload: s = {} tuples/table, j = {}, c = {}, k = {}",
        config.table_size, config.join_selectivity, config.predicate_cost, config.k
    );
    let workload = SyntheticWorkload::generate(config)?;
    let query: &RankQuery = &workload.query;

    // ------------------------------------------------------------------
    // 1. The sampling-based cardinality estimator.
    // ------------------------------------------------------------------
    let estimator = Arc::new(SamplingEstimator::build(query, &workload.catalog, 0.02, 7)?);
    println!(
        "\nsampling estimator: 2% sample, estimated k-th score x' = {}",
        estimator.x_threshold()
    );
    let a = workload.catalog.table("A")?;
    let rank_scan = ranksql::LogicalPlan::rank_scan(&a, 0);
    let seq_scan = ranksql::LogicalPlan::scan(&a);
    println!(
        "estimated cardinality of SeqScan(A)      = {:.0} (table has {})",
        estimator.estimate_cardinality(&seq_scan)?,
        a.row_count()
    );
    println!(
        "estimated cardinality of RankScan_f1(A)  = {:.0}  <- k-aware: only tuples that can reach the top-k",
        estimator.estimate_cardinality(&rank_scan)?
    );

    // ------------------------------------------------------------------
    // 2. Exhaustive vs heuristic two-dimensional enumeration.
    // ------------------------------------------------------------------
    for heuristic in [false, true] {
        let dp = DpOptimizer::new(
            query,
            &workload.catalog,
            Arc::clone(&estimator),
            CostModel::default(),
            heuristic,
        );
        let plan = dp.optimize()?;
        println!(
            "\n==== {} enumeration ====",
            if heuristic {
                "heuristic (left-deep + rank metric)"
            } else {
                "exhaustive 2-D"
            }
        );
        println!(
            "plans considered: {}, signatures kept: {}, enumeration time: {:?}",
            plan.stats.plans_considered, plan.stats.signatures_kept, plan.stats.elapsed
        );
        println!("estimated cost: {:.1}", plan.cost.value());
        println!("{}", plan.plan.explain(Some(&query.ranking)));
    }

    // ------------------------------------------------------------------
    // 3. The full optimizer entry point, including the traditional baseline.
    // ------------------------------------------------------------------
    for mode in [
        OptimizerMode::Traditional,
        OptimizerMode::RankAwareHeuristic,
    ] {
        let optimizer = RankOptimizer::new(OptimizerConfig {
            mode,
            sample_ratio: 0.02,
            ..OptimizerConfig::default()
        });
        let optimized = optimizer.optimize(query, &workload.catalog)?;
        println!("\n==== RankOptimizer, mode {mode:?} ====");
        println!("estimated cost {:.1}", optimized.cost.value());
        println!("{}", optimized.plan.explain(Some(&query.ranking)));
    }

    // ------------------------------------------------------------------
    // 4. The same comparison through the public Session surface: sessions
    //    carry the plan mode, `explain` shows what a caller would run, and
    //    repeated prepared executions hit the database's plan cache.
    // ------------------------------------------------------------------
    let db = workload.database()?;
    for mode in [ranksql::PlanMode::Traditional, ranksql::PlanMode::RankAware] {
        let session = db.session().with_mode(mode);
        println!("\n==== Session explain, mode {mode:?} ====");
        println!("{}", session.explain(query)?);
        let prepared = session.prepare_query(query.clone())?;
        let cold = prepared.execute()?;
        let hot = prepared.execute()?;
        assert_eq!(cold.scores(), hot.scores());
        println!(
            "prepared twice: first binding {}, second binding {}",
            if cold.plan_cache.map(|c| c.hit).unwrap_or(false) {
                "hit"
            } else {
                "missed (optimized + cached)"
            },
            if hot.plan_cache.map(|c| c.hit).unwrap_or(false) {
                "hit the cache"
            } else {
                "missed"
            },
        );
    }
    let stats = db.plan_cache_stats();
    println!(
        "\nplan cache: {} hits, {} misses, {} cached shapes",
        stats.hits, stats.misses, stats.entries
    );
    Ok(())
}
