//! Quickstart: create tables, load rows, and run a top-k query three ways —
//! through the SQL-ish parser, through the query builder, and against an
//! explicit hand-built ranking plan.
//!
//! This example deliberately sticks to the **legacy eager wrappers**
//! (`Database::execute`, `execute_with_mode`, `execute_plan`) to prove they
//! keep working unchanged: since the Session API landed they are thin shims
//! over `session().prepare_query(..).bind(..).cursor()`, so they hit the
//! plan cache like any prepared execution.  For the request-oriented surface
//! — sessions, prepared statements with `?` parameters, streaming cursors,
//! `fetch_more` — see the README quickstart and the other examples.
//!
//! Run with: `cargo run --example quickstart`

use ranksql::{
    parse_topk_query, BoolExpr, DataType, Database, Field, JoinAlgorithm, LogicalPlan, PlanMode,
    QueryBuilder, RankPredicate, Schema, Value,
};

fn main() -> ranksql::Result<()> {
    // ------------------------------------------------------------------
    // 1. Create a tiny database of restaurants and hotels.
    // ------------------------------------------------------------------
    let db = Database::new();
    db.create_table(
        "Restaurant",
        Schema::new(vec![
            Field::new("name", DataType::Utf8),
            Field::new("city", DataType::Int64),
            Field::new("food", DataType::Float64),
            Field::new("value", DataType::Float64),
        ]),
    )?;
    db.create_table(
        "Hotel",
        Schema::new(vec![
            Field::new("name", DataType::Utf8),
            Field::new("city", DataType::Int64),
            Field::new("comfort", DataType::Float64),
        ]),
    )?;

    let restaurants = [
        ("Trattoria Roma", 0, 0.95, 0.60),
        ("Bistro Bleu", 1, 0.80, 0.85),
        ("Noodle Bar", 0, 0.70, 0.90),
        ("Cantina Verde", 2, 0.85, 0.75),
        ("Diner 66", 1, 0.55, 0.95),
        ("Sushi Kai", 2, 0.92, 0.55),
    ];
    for (name, city, food, value) in restaurants {
        db.insert(
            "Restaurant",
            vec![
                Value::from(name),
                Value::from(city),
                Value::from(food),
                Value::from(value),
            ],
        )?;
    }
    let hotels = [
        ("Grand Plaza", 0, 0.90),
        ("City Inn", 1, 0.70),
        ("Harbor View", 2, 0.85),
        ("Budget Stay", 0, 0.50),
    ];
    for (name, city, comfort) in hotels {
        db.insert(
            "Hotel",
            vec![Value::from(name), Value::from(city), Value::from(comfort)],
        )?;
    }

    // ------------------------------------------------------------------
    // 2. The SQL front end: the paper's ORDER BY ... LIMIT k form.
    // ------------------------------------------------------------------
    let query = parse_topk_query(
        "SELECT * FROM Restaurant, Hotel \
         WHERE Restaurant.city = Hotel.city \
         ORDER BY food(Restaurant.food) + value(Restaurant.value) + comfort(Hotel.comfort) \
         LIMIT 3",
    )?;
    println!("== top-3 dinner-and-stay combinations (optimized rank-aware plan) ==");
    let result = db.execute(&query)?;
    println!("{result}");
    println!(
        "predicate evaluations: {:?} (total {})\n",
        result.predicate_evaluations,
        result.total_predicate_evaluations()
    );

    // ------------------------------------------------------------------
    // 3. The same query through the builder, compared across plan modes.
    // ------------------------------------------------------------------
    let built = QueryBuilder::new()
        .tables(["Restaurant", "Hotel"])
        .filter(BoolExpr::col_eq_col("Restaurant.city", "Hotel.city"))
        .rank_predicate(RankPredicate::attribute("food", "Restaurant.food"))
        .rank_predicate(RankPredicate::attribute("value", "Restaurant.value"))
        .rank_predicate(RankPredicate::attribute("comfort", "Hotel.comfort"))
        .limit(3)
        .build()?;
    for mode in [
        PlanMode::Canonical,
        PlanMode::Traditional,
        PlanMode::RankAware,
    ] {
        let r = db.execute_with_mode(&built, mode)?;
        println!(
            "{mode:?}: best score {:.4}, {} predicate evaluations, {:?}",
            r.scores().first().copied().unwrap_or(f64::NAN),
            r.total_predicate_evaluations(),
            r.elapsed
        );
    }

    // ------------------------------------------------------------------
    // 4. Explain the chosen plan, then run an explicit hand-built plan
    //    (rank-scan + µ + HRJN), the shape the paper calls a "ranking plan".
    // ------------------------------------------------------------------
    println!("\n== optimizer explanation ==");
    println!("{}", db.explain(&built, PlanMode::RankAware)?);

    let restaurant = db.catalog().table("Restaurant")?;
    let hotel = db.catalog().table("Hotel")?;
    let manual = LogicalPlan::rank_scan(&restaurant, 0)
        .rank(1)
        .join(
            LogicalPlan::rank_scan(&hotel, 2),
            Some(BoolExpr::col_eq_col("Restaurant.city", "Hotel.city")),
            JoinAlgorithm::HashRankJoin,
        )
        .limit(3);
    println!("== hand-built pipelined ranking plan ==");
    println!("{}", manual.explain(Some(&built.ranking)));
    let manual_result = db.execute_plan(&built, &manual)?;
    println!("{manual_result}");
    Ok(())
}
