//! Ranking over "expensive" external predicates: a scenario in the spirit of
//! the paper's motivation, where ranking predicates model calls to external
//! (web) sources and therefore dominate query cost.
//!
//! A product catalog is joined with a review table; two ranking predicates
//! model an external price-comparison lookup (cost 200 units) and a
//! sentiment-analysis call (cost 400 units).  The example shows, through the
//! Session / prepared-statement / Cursor API, how
//!
//! * the rank-aware plan issues far fewer expensive "external calls" than
//!   the materialise-then-sort plan for the same answer,
//! * a *prepared* query with a `?` category filter is optimized once and
//!   re-bound per category (plan-cache hits), and
//! * a streaming cursor surfaces the best product after a handful of calls
//!   and `fetch_more` extends the top-k without restarting.
//!
//! Run with: `cargo run --example web_source_topk --release`

use ranksql::{
    BoolExpr, CompareOp, DataType, Database, Field, Params, PlanMode, QueryBuilder, RankPredicate,
    ScalarExpr, Schema, Value,
};

fn main() -> ranksql::Result<()> {
    let db = Database::new();
    db.create_table(
        "Product",
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("category", DataType::Int64),
            Field::new("deal_score", DataType::Float64), // what the external price API would return
            Field::new("in_stock", DataType::Bool),
        ]),
    )?;
    db.create_table(
        "Review",
        Schema::new(vec![
            Field::new("product_id", DataType::Int64),
            Field::new("sentiment", DataType::Float64), // what the NLP service would return
        ]),
    )?;

    // 4 000 products, ~3 reviews each.
    let mut seed = 0x243F6A8885A308D3u64;
    let mut next = || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        (seed >> 11) as f64 / (1u64 << 53) as f64
    };
    for i in 0..4_000i64 {
        let deal = next();
        let stock = next() < 0.8;
        db.insert(
            "Product",
            vec![
                Value::from(i),
                Value::from(i % 25),
                Value::from(deal),
                Value::from(stock),
            ],
        )?;
        for _ in 0..3 {
            db.insert("Review", vec![Value::from(i), Value::from(next())])?;
        }
    }

    let query = QueryBuilder::new()
        .tables(["Product", "Review"])
        .filter(BoolExpr::col_eq_col("Product.id", "Review.product_id"))
        .filter(BoolExpr::column_is_true("Product.in_stock"))
        // Expensive "external" ranking predicates.
        .rank_predicate(RankPredicate::attribute_with_cost(
            "best_deal",
            "Product.deal_score",
            200,
        ))
        .rank_predicate(RankPredicate::attribute_with_cost(
            "sentiment",
            "Review.sentiment",
            400,
        ))
        .limit(10)
        .build()?;

    println!("top-10 in-stock products by deal quality + review sentiment\n");
    let mut summaries = Vec::new();
    for mode in [PlanMode::Traditional, PlanMode::RankAware] {
        let result = db.session().with_mode(mode).execute(&query)?;
        println!("==== {mode:?} ====");
        println!(
            "elapsed {:?}; external calls: price-API = {}, sentiment-API = {}",
            result.elapsed, result.predicate_evaluations[0], result.predicate_evaluations[1]
        );
        println!("best combination score: {:.4}\n", result.scores()[0]);
        summaries.push((mode, result.scores(), result.total_predicate_evaluations()));
    }
    assert_eq!(
        summaries[0].1, summaries[1].1,
        "both plans must return the same top-k"
    );
    println!(
        "identical answers; the rank-aware plan issued {} external calls vs {} for the traditional plan",
        summaries[1].2, summaries[0].2
    );

    // ------------------------------------------------------------------
    // A per-category service endpoint: prepare once, bind per request.
    // ------------------------------------------------------------------
    let by_category = QueryBuilder::new()
        .tables(["Product", "Review"])
        .filter(BoolExpr::col_eq_col("Product.id", "Review.product_id"))
        .filter(BoolExpr::column_is_true("Product.in_stock"))
        .filter(BoolExpr::compare(
            ScalarExpr::col("Product.category"),
            CompareOp::Eq,
            ScalarExpr::param(0),
        ))
        .rank_predicate(RankPredicate::attribute_with_cost(
            "best_deal",
            "Product.deal_score",
            200,
        ))
        .rank_predicate(RankPredicate::attribute_with_cost(
            "sentiment",
            "Review.sentiment",
            400,
        ))
        .limit(3)
        .build()?;
    let session = db.session();
    let prepared = session.prepare_query(by_category)?;
    println!("\nprepared per-category top-3 (filter constant is a `?` slot):");
    for category in [0i64, 7, 19] {
        let bound = prepared.bind(Params::new().set(0, category))?;
        let result = bound.execute()?;
        println!(
            "  category {category:>2}: best score {:.4}  ({}, {} external calls)",
            result.scores().first().copied().unwrap_or(f64::NAN),
            if result.plan_cache.map(|c| c.hit).unwrap_or(false) {
                "plan-cache hit"
            } else {
                "cold plan"
            },
            result.total_predicate_evaluations(),
        );
    }
    let stats = db.plan_cache_stats();
    println!(
        "plan cache after the loop: {} hits, {} misses, {} shapes",
        stats.hits, stats.misses, stats.entries
    );

    // ------------------------------------------------------------------
    // Streaming: first result, then "a few more" — without re-executing.
    // ------------------------------------------------------------------
    let mut cursor = prepared.bind(Params::new().set(0, 7i64))?.cursor()?;
    let first = cursor.take(1)?;
    println!(
        "\nstreamed best of category 7: score {:.4} (only {} rows pulled so far)",
        first.first().map(|t| cursor.score(t)).unwrap_or(f64::NAN),
        cursor.rows_emitted()
    );
    let _rest = cursor.drain()?;
    match cursor.fetch_more(2) {
        Ok(_) => println!(
            "fetch_more(2) extended the top-3 to {} rows total — the incremental \
             rank-join resumed instead of restarting",
            cursor.rows_emitted()
        ),
        // A cost-based choice may legitimately pick a blocking top-k sort
        // here; such plans refuse extension instead of recomputing silently.
        Err(e) => println!("extension unavailable for this plan shape: {e}"),
    }
    Ok(())
}
