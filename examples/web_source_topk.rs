//! Ranking over "expensive" external predicates: a scenario in the spirit of
//! the paper's motivation, where ranking predicates model calls to external
//! (web) sources and therefore dominate query cost.
//!
//! A product catalog is joined with a review table; two ranking predicates
//! model an external price-comparison lookup (cost 200 units) and a
//! sentiment-analysis call (cost 400 units).  The example shows how the
//! rank-aware plan evaluates far fewer expensive predicates than the
//! materialise-then-sort plan while returning the same top-k.
//!
//! Run with: `cargo run --example web_source_topk --release`

use ranksql::{
    BoolExpr, DataType, Database, Field, PlanMode, QueryBuilder, RankPredicate, Schema, Value,
};

fn main() -> ranksql::Result<()> {
    let db = Database::new();
    db.create_table(
        "Product",
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("category", DataType::Int64),
            Field::new("deal_score", DataType::Float64), // what the external price API would return
            Field::new("in_stock", DataType::Bool),
        ]),
    )?;
    db.create_table(
        "Review",
        Schema::new(vec![
            Field::new("product_id", DataType::Int64),
            Field::new("sentiment", DataType::Float64), // what the NLP service would return
        ]),
    )?;

    // 4 000 products, ~3 reviews each.
    let mut seed = 0x243F6A8885A308D3u64;
    let mut next = || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        (seed >> 11) as f64 / (1u64 << 53) as f64
    };
    for i in 0..4_000i64 {
        let deal = next();
        let stock = next() < 0.8;
        db.insert(
            "Product",
            vec![
                Value::from(i),
                Value::from(i % 25),
                Value::from(deal),
                Value::from(stock),
            ],
        )?;
        for _ in 0..3 {
            db.insert("Review", vec![Value::from(i), Value::from(next())])?;
        }
    }

    let query = QueryBuilder::new()
        .tables(["Product", "Review"])
        .filter(BoolExpr::col_eq_col("Product.id", "Review.product_id"))
        .filter(BoolExpr::column_is_true("Product.in_stock"))
        // Expensive "external" ranking predicates.
        .rank_predicate(RankPredicate::attribute_with_cost(
            "best_deal",
            "Product.deal_score",
            200,
        ))
        .rank_predicate(RankPredicate::attribute_with_cost(
            "sentiment",
            "Review.sentiment",
            400,
        ))
        .limit(10)
        .build()?;

    println!("top-10 in-stock products by deal quality + review sentiment\n");
    let mut summaries = Vec::new();
    for mode in [PlanMode::Traditional, PlanMode::RankAware] {
        let result = db.execute_with_mode(&query, mode)?;
        println!("==== {mode:?} ====");
        println!(
            "elapsed {:?}; external calls: price-API = {}, sentiment-API = {}",
            result.elapsed, result.predicate_evaluations[0], result.predicate_evaluations[1]
        );
        println!("best combination score: {:.4}\n", result.scores()[0]);
        summaries.push((mode, result.scores(), result.total_predicate_evaluations()));
    }
    assert_eq!(
        summaries[0].1, summaries[1].1,
        "both plans must return the same top-k"
    );
    println!(
        "identical answers; the rank-aware plan issued {} external calls vs {} for the traditional plan",
        summaries[1].2, summaries[0].2
    );
    Ok(())
}
