//! Minimal probing: scheduling expensive ranking predicates lazily.
//!
//! Section 4.2 of the paper implements the rank operator µ as the
//! single-predicate special case of the middleware MPro algorithm.  This
//! example compares three ways of answering the same top-k query when the
//! ranking predicates are expensive (imagine each predicate being a remote
//! call to a web source):
//!
//! * the **naive materialise-then-sort** scheme — every expensive predicate
//!   is evaluated for every hotel before anything can be sorted,
//! * the paper's **µ chain** — `µ_location(µ_review(rank-scan_price(Hotel)))`
//!   — where each µ evaluates its predicate for every tuple that reaches its
//!   stage, and
//! * the **MPro operator** — one operator responsible for both expensive
//!   predicates that probes them only when a hotel actually competes for the
//!   next output slot.
//!
//! The two rank-aware strategies emit the identical rank-relation (same
//! hotels, same order) while evaluating an order of magnitude fewer expensive
//! predicates than the naive scheme; MPro's probe count stays at or slightly
//! below the chain's (the difference is small when, as here, the input
//! already arrives in rank order — the probes both strategies perform are
//! mostly *necessary* ones).  The example also demonstrates the incremental
//! execution model:
//! results are drawn one at a time and the probe counter grows with `k`, not
//! with the table size.
//!
//! Run with: `cargo run --example minimal_probing --release`

use std::sync::Arc;

use ranksql::common::{DataType, Field, Schema, Value};
use ranksql::executor::mpro::MProOp;
use ranksql::executor::operator::take;
use ranksql::executor::rank::RankOp;
use ranksql::executor::scan::RankScan;
use ranksql::executor::{ExecutionContext, PhysicalOperator};
use ranksql::expr::{RankPredicate, RankingContext, ScoringFunction};
use ranksql::storage::{ScoreIndex, Table, TableBuilder};

/// Simulated per-evaluation cost of the "review sentiment" and "location"
/// predicates (e.g. an HTTP round-trip to a review site / a geo service).
const EXPENSIVE_PREDICATE_COST: u64 = 200;
const HOTELS: usize = 5_000;

fn hotel_table() -> Arc<Table> {
    let schema = Schema::new(vec![
        Field::new("id", DataType::Int64),
        Field::new("cheapness", DataType::Float64),
        Field::new("review", DataType::Float64),
        Field::new("location", DataType::Float64),
    ])
    .qualify_all("Hotel");
    let mut builder = TableBuilder::new("Hotel", schema);
    for i in 0..HOTELS as i64 {
        // Deterministic pseudo-random scores in [0, 1].
        let cheapness = ((i * 7919 + 13) % 10_000) as f64 / 10_000.0;
        let review = ((i * 104_729 + 7) % 10_000) as f64 / 10_000.0;
        let location = ((i * 15_485_863 + 3) % 10_000) as f64 / 10_000.0;
        builder = builder.row(vec![
            Value::from(i),
            Value::from(cheapness),
            Value::from(review),
            Value::from(location),
        ]);
    }
    Arc::new(builder.build(0).expect("hotel table"))
}

fn ranking() -> Arc<RankingContext> {
    RankingContext::new(
        vec![
            // The price predicate is cheap (it is backed by a score index).
            RankPredicate::attribute("cheap", "Hotel.cheapness"),
            // The review and location predicates are expensive to evaluate.
            RankPredicate::attribute_with_cost("review", "Hotel.review", EXPENSIVE_PREDICATE_COST),
            RankPredicate::attribute_with_cost(
                "location",
                "Hotel.location",
                EXPENSIVE_PREDICATE_COST,
            ),
        ],
        ScoringFunction::Sum,
    )
}

fn build_chain(
    table: &Arc<Table>,
    index: &Arc<ScoreIndex>,
    ctx: &Arc<RankingContext>,
) -> Box<dyn PhysicalOperator> {
    let exec = ExecutionContext::new(Arc::clone(ctx));
    let scan = RankScan::new(
        Arc::clone(table),
        Arc::clone(index),
        0,
        &exec,
        "rank-scan(cheap)",
    )
    .expect("rank-scan");
    let mu_review = RankOp::new(Box::new(scan), 1, &exec, "mu(review)");
    Box::new(RankOp::new(Box::new(mu_review), 2, &exec, "mu(location)"))
}

fn build_mpro(
    table: &Arc<Table>,
    index: &Arc<ScoreIndex>,
    ctx: &Arc<RankingContext>,
) -> Box<dyn PhysicalOperator> {
    let exec = ExecutionContext::new(Arc::clone(ctx));
    let scan = RankScan::new(
        Arc::clone(table),
        Arc::clone(index),
        0,
        &exec,
        "rank-scan(cheap)",
    )
    .expect("rank-scan");
    Box::new(MProOp::new(
        Box::new(scan),
        vec![1, 2],
        &exec,
        "mpro(review,location)",
    ))
}

fn main() -> ranksql::Result<()> {
    let table = hotel_table();
    let base_ctx = ranking();
    let index = Arc::new(ScoreIndex::build(
        base_ctx.predicate(0),
        table.schema(),
        &table.scan(),
    )?);

    println!(
        "{} hotels ranked by cheapness + review + location; review and location cost {} units per call\n",
        HOTELS, EXPENSIVE_PREDICATE_COST
    );
    // The naive materialise-then-sort plan evaluates both expensive
    // predicates for every hotel, regardless of k.
    let naive_probes = 2 * HOTELS as u64;
    println!(
        "{:>6}  {:>14}  {:>16}  {:>14}  {:>16}",
        "k", "naive probes", "µ-chain probes", "MPro probes", "saved vs naive"
    );

    for k in [1usize, 5, 10, 50, 200] {
        // A fresh ranking context per run so each strategy's evaluation
        // counters are independent.
        let ctx_chain =
            RankingContext::new(base_ctx.predicates().to_vec(), base_ctx.scoring().clone());
        let mut chain = build_chain(&table, &index, &ctx_chain);
        let chain_top = take(chain.as_mut(), k)?;

        let ctx_mpro =
            RankingContext::new(base_ctx.predicates().to_vec(), base_ctx.scoring().clone());
        let mut lazy = build_mpro(&table, &index, &ctx_mpro);
        let mpro_top = take(lazy.as_mut(), k)?;

        // Same answer, in the same order.
        assert_eq!(chain_top.len(), mpro_top.len());
        for (a, b) in chain_top.iter().zip(mpro_top.iter()) {
            assert_eq!(a.tuple.id(), b.tuple.id());
        }

        let chain_probes = ctx_chain.counters().count(1) + ctx_chain.counters().count(2);
        let mpro_probes = ctx_mpro.counters().count(1) + ctx_mpro.counters().count(2);
        println!(
            "{:>6}  {:>14}  {:>16}  {:>14}  {:>15.0}%",
            k,
            naive_probes,
            chain_probes,
            mpro_probes,
            100.0 * (1.0 - mpro_probes as f64 / naive_probes as f64)
        );
    }

    // Incremental consumption through the public Session/Cursor API: the
    // top hotel is available after probing only a handful of reviews — no
    // materialisation, no full sort — and `fetch_more` keeps extending the
    // top-k from where the operators stopped.
    let db = ranksql::Database::new();
    db.create_table(
        "Hotel",
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("cheapness", DataType::Float64),
            Field::new("review", DataType::Float64),
            Field::new("location", DataType::Float64),
        ]),
    )?;
    db.insert_batch(
        "Hotel",
        table.scan().into_iter().map(|t| t.values().to_vec()),
    )?;
    let query = ranksql::QueryBuilder::new()
        .table("Hotel")
        .rank_predicate(RankPredicate::attribute("cheap", "Hotel.cheapness"))
        .rank_predicate(RankPredicate::attribute_with_cost(
            "review",
            "Hotel.review",
            EXPENSIVE_PREDICATE_COST,
        ))
        .rank_predicate(RankPredicate::attribute_with_cost(
            "location",
            "Hotel.location",
            EXPENSIVE_PREDICATE_COST,
        ))
        .limit(3)
        .build()?;
    let session = db.session();
    let before = query.ranking.counters().snapshot();
    let mut cursor = session
        .prepare_query(query.clone())?
        .bind(ranksql::Params::none())?
        .cursor()?;
    let first = cursor.next()?.expect("at least one hotel");
    let after = query.ranking.counters().snapshot();
    println!(
        "\nfirst result (hotel {}) streamed through a Cursor after {} expensive probes out of {} hotels",
        first.tuple.value(0),
        (after[1] - before[1]) + (after[2] - before[2]),
        HOTELS
    );
    let _rest = cursor.drain()?;
    let extension = cursor.fetch_more(3)?;
    println!(
        "fetch_more(3) extended the top-{} to {} hotels by resuming the incremental operators",
        query.k,
        cursor.rows_emitted()
    );
    assert_eq!(extension.len(), 3);
    Ok(())
}
