//! Comparing the three rank-aware plan-search strategies (Section 5):
//!
//! * the **two-dimensional dynamic program** of Figure 8 (exhaustive),
//! * the DP restricted by the **Figure 10 heuristics** (left-deep joins +
//!   greedy rank-metric scheduling of µ),
//! * the **Volcano/Cascades-style rule-based search**, in which the algebraic
//!   laws of Figure 5 act as transformation rules and physical join / access
//!   path choices act as implementation rules,
//!
//! against the ranking-blind traditional baseline.  For each strategy the
//! example prints the chosen plan, its estimated cost, the number of plans
//! the search considered, and the *actual* work done when the plan executes
//! (ranking-predicate evaluations and tuples scanned).
//!
//! Run with: `cargo run --example rule_based_optimizer --release`

use ranksql::workload::{SyntheticConfig, SyntheticWorkload};
use ranksql::{OptimizerConfig, OptimizerMode, RankOptimizer};

fn main() -> ranksql::Result<()> {
    // A scaled-down instance of the paper's synthetic workload (Section 6)
    // with moderately expensive ranking predicates so the plan choice
    // actually matters.
    // Costing in the rule-based search executes candidate plans over the
    // sample tables, and its seed set includes the canonical cross-product
    // plan — sample size drives the search cost cubically, so this example
    // keeps the tables small enough for the full mode comparison to finish
    // in seconds.
    let config = SyntheticConfig {
        table_size: 1_200,
        join_selectivity: 0.008,
        predicate_cost: 20,
        k: 10,
        ..SyntheticConfig::default()
    };
    println!(
        "workload: s = {} tuples per table, j = {}, c = {} unit costs, k = {}\n",
        config.table_size, config.join_selectivity, config.predicate_cost, config.k
    );
    let workload = SyntheticWorkload::generate(config)?;
    workload.build_indexes()?;
    // The chosen plans execute through the public cursor-backed engine.
    let db = workload.database()?;

    let modes = [
        ("traditional (ranking-blind)", OptimizerMode::Traditional),
        (
            "2-D DP, exhaustive (Fig. 8)",
            OptimizerMode::RankAwareExhaustive,
        ),
        (
            "2-D DP + heuristics (Fig. 10)",
            OptimizerMode::RankAwareHeuristic,
        ),
        (
            "rule-based (Volcano-style)",
            OptimizerMode::RankAwareRuleBased,
        ),
    ];

    for (label, mode) in modes {
        let optimizer = RankOptimizer::new(OptimizerConfig {
            mode,
            sample_ratio: 0.02,
            compare_with_traditional: false,
            ..OptimizerConfig::default()
        });
        let chosen = optimizer.optimize(&workload.query, &workload.catalog)?;

        // Execute the chosen plan through `Database::execute_plan` (the
        // cursor-backed compatibility wrapper) and collect runtime metrics.
        let result = db.execute_plan(&workload.query, &chosen.plan)?;
        let scanned: u64 = result
            .metrics
            .snapshot()
            .iter()
            .filter(|m| m.name().contains("Scan"))
            .map(|m| m.tuples_out())
            .sum();

        println!("=== {label} ===");
        println!(
            "plans considered: {}   estimated cost: {:.0}",
            chosen.stats.plans_considered,
            chosen.cost.value()
        );
        println!("{}", chosen.plan.explain(Some(&workload.query.ranking)));
        println!(
            "execution: {} results in {:.1} ms, {} predicate evaluations, {} tuples scanned\n",
            result.rows.len(),
            result.elapsed.as_secs_f64() * 1e3,
            result.total_predicate_evaluations(),
            scanned
        );
    }

    println!(
        "All four strategies return the same top-k (the algebra guarantees equivalence); the \
         rank-aware searches find pipelined plans that evaluate far fewer expensive predicates \
         than the traditional materialise-then-sort plan."
    );
    Ok(())
}
