//! Rank-aware set operations (Figure 3 of the paper) and the multiple-scan
//! law (Proposition 6).
//!
//! The scenario is a paper-search catalog in which every paper carries two
//! ranking scores — text relevance and a normalised citation count — plus two
//! Boolean flags marking which of two curated reading lists it appears on.
//!
//! 1. **Union / intersection / difference of ranked streams.**  Two ranked
//!    streams over the same catalog (list A ranked by relevance, list B
//!    ranked by citations) are combined with the rank-aware ∪, ∩ and −
//!    operators.  Each operator manipulates *membership* exactly like its
//!    classical counterpart while producing output in the aggregate order of
//!    the evaluated predicates (Figure 3), so the top results stream out
//!    without materialising either side.
//! 2. **The multiple-scan law** (Proposition 6):
//!    `µ_rel(µ_cit(Papers)) ≡ µ_rel(Papers) ∩ µ_cit(Papers)` — the same top-k
//!    computed by a chain of µ operators over one sequential scan versus two
//!    rank-scans merged by the incremental intersection, with the amount of
//!    work compared side by side.
//!
//! Set operations sit below the SQL/QueryBuilder surface, so the plans are
//! hand-built `LogicalPlan`s — but everything *runs* through the public
//! streaming API: `Database::cursor_for_physical` opens a lazy [`Cursor`]
//! over the live operator tree and `take(k)` pulls exactly the top k.
//!
//! [`Cursor`]: ranksql::Cursor
//!
//! Run with: `cargo run --example rank_set_operations --release`

use ranksql::algebra::{PhysicalPlan, SetOpKind};
use ranksql::expr::{BoolExpr, RankPredicate, RankedTuple, RankingContext, ScoringFunction};
use ranksql::{Cursor, DataType, Database, Field, LogicalPlan, RankQuery, Schema, Value};

/// Number of papers in the synthetic catalog.
const N_PAPERS: i64 = 20_000;
/// How many results each demonstration asks for.
const K: usize = 10;

fn main() -> ranksql::Result<()> {
    let db = build_database()?;

    ranked_list_algebra(&db)?;
    multiple_scan_law(&db)?;
    Ok(())
}

/// A synthetic paper catalog: id, relevance score, citation score and two
/// Boolean reading-list flags.  Scores are decorrelated on purpose — that is
/// the regime where stopping early on ranked streams pays off.
fn build_database() -> ranksql::Result<Database> {
    let db = Database::new();
    db.create_table(
        "Papers",
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("relevance", DataType::Float64),
            Field::new("citations", DataType::Float64),
            Field::new("list_a", DataType::Bool),
            Field::new("list_b", DataType::Bool),
        ]),
    )?;
    db.insert_batch(
        "Papers",
        (0..N_PAPERS).map(|i| {
            let relevance = ((i * 7_919) % 10_000) as f64 / 10_000.0;
            let citations = ((i * 104_729) % 10_000) as f64 / 10_000.0;
            vec![
                Value::from(i),
                Value::from(relevance),
                Value::from(citations),
                Value::from(i % 3 == 0),
                Value::from(i % 5 == 0),
            ]
        }),
    )?;
    Ok(db)
}

/// The shared query frame: one table, the two ranking predicates, top-K.
fn paper_query() -> RankQuery {
    RankQuery::new(
        vec!["Papers".into()],
        vec![],
        RankingContext::new(
            vec![
                RankPredicate::attribute("rel", "Papers.relevance"),
                RankPredicate::attribute("cit", "Papers.citations"),
            ],
            ScoringFunction::Sum,
        ),
        K,
    )
}

/// Opens a streaming cursor over a hand-built logical plan.
fn open(db: &Database, query: &RankQuery, plan: &LogicalPlan) -> ranksql::Result<Cursor> {
    db.cursor_for_physical(query, PhysicalPlan::from_logical(plan)?)
}

/// A rank-scan over `Papers` restricted to one reading list.
fn ranked_list(db: &Database, pred: usize, list_column: &str) -> ranksql::Result<LogicalPlan> {
    let papers = db.catalog().table("Papers")?;
    Ok(LogicalPlan::rank_scan(&papers, pred).select(BoolExpr::column_is_true(list_column)))
}

fn print_top(title: &str, ctx: &RankingContext, tuples: &[RankedTuple]) {
    println!("{title}");
    println!(
        "    {:>6}  {:>9}  {:>9}  {:>12}",
        "id", "relevance", "citations", "upper bound"
    );
    for t in tuples {
        println!(
            "    {:>6}  {:>9}  {:>9}  {:>12.4}",
            t.tuple.value(0),
            t.tuple.value(1),
            t.tuple.value(2),
            ctx.upper_bound(&t.state).value()
        );
    }
    println!();
}

// ---------------------------------------------------------------------------
// Part 1: ∪ / ∩ / − over two ranked reading lists
// ---------------------------------------------------------------------------

fn ranked_list_algebra(db: &Database) -> ranksql::Result<()> {
    println!("== Rank-aware set operations over two ranked reading lists ==\n");
    println!(
        "list A = papers on reading list A, ranked by relevance (predicate `rel`)\n\
         list B = papers on reading list B, ranked by citations (predicate `cit`)\n"
    );

    for (kind, title) in [
        (
            SetOpKind::Intersect,
            "papers on BOTH lists (∩), aggregate order rel + cit:",
        ),
        (SetOpKind::Union, "papers on EITHER list (∪):"),
        (
            SetOpKind::Except,
            "papers on list A but NOT list B (−), ordered by rel:",
        ),
    ] {
        let query = paper_query();
        let plan =
            ranked_list(db, 0, "Papers.list_a")?.set_op(kind, ranked_list(db, 1, "Papers.list_b")?);
        let mut cursor = open(db, &query, &plan)?;
        let top = cursor.take(K)?;
        print_top(title, &query.ranking, &top);
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Part 2: the multiple-scan law (Proposition 6)
// ---------------------------------------------------------------------------

fn multiple_scan_law(db: &Database) -> ranksql::Result<()> {
    println!("== Proposition 6: µ_rel(µ_cit(Papers)) ≡ µ_rel(Papers) ∩ µ_cit(Papers) ==\n");
    let papers = db.catalog().table("Papers")?;

    // Strategy A: µ_rel(µ_cit(seqScan(Papers))) — one pass over the table.
    // (Separate queries so the evaluation counters of the two strategies do
    // not mix.)
    let query_a = paper_query();
    let chain = LogicalPlan::scan(&papers).rank(1).rank(0);
    let mut cursor_a = open(db, &query_a, &chain)?;
    let top_chain = cursor_a.take(K)?;

    // Strategy B: µ_rel(Papers) ∩ µ_cit(Papers) — two rank-scans merged by
    // the incremental rank-aware intersection.
    let query_b = paper_query();
    let multi = LogicalPlan::rank_scan(&papers, 0)
        .set_op(SetOpKind::Intersect, LogicalPlan::rank_scan(&papers, 1));
    let mut cursor_b = open(db, &query_b, &multi)?;
    let top_multi = cursor_b.take(K)?;

    println!("top-{K} overall scores under both strategies:");
    println!("    {:>12}  {:>14}", "µ chain", "multiple-scan");
    for (a, b) in top_chain.iter().zip(top_multi.iter()) {
        println!(
            "    {:>12.4}  {:>14.4}",
            query_a.ranking.upper_bound(&a.state).value(),
            query_b.ranking.upper_bound(&b.state).value()
        );
    }

    println!("\noperator work (tuples in → out):");
    for (label, cursor) in [
        ("µ chain over seq-scan", &cursor_a),
        ("rank-scan ∩ rank-scan", &cursor_b),
    ] {
        println!("  {label}:");
        for m in cursor.metrics().snapshot() {
            println!(
                "    {:<16} {:>8} → {:<8}",
                m.name(),
                m.tuples_in(),
                m.tuples_out()
            );
        }
    }
    println!(
        "\nThe µ chain must draw all {N_PAPERS} tuples from the sequential scan before anything \
         can be emitted (its input carries no ranking order), while the multiple-scan strategy \
         touches only the prefixes of the two ranked scans that the top-{K} answer requires."
    );
    Ok(())
}
