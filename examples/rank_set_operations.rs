//! Rank-aware set operations (Figure 3 of the paper) and the multiple-scan
//! law (Proposition 6).
//!
//! The scenario is a paper-search catalog in which every paper carries two
//! ranking scores — text relevance and a normalised citation count — plus two
//! Boolean flags marking which of two curated reading lists it appears on.
//!
//! 1. **Union / intersection / difference of ranked streams.**  Two ranked
//!    streams over the same catalog (list A ranked by relevance, list B
//!    ranked by citations) are combined with the rank-aware ∪, ∩ and −
//!    operators.  Each operator manipulates *membership* exactly like its
//!    classical counterpart while producing output in the aggregate order of
//!    the evaluated predicates (Figure 3), so the top results stream out
//!    without materialising either side.
//! 2. **The multiple-scan law** (Proposition 6):
//!    `µ_rel(µ_cit(Papers)) ≡ µ_rel(Papers) ∩ µ_cit(Papers)` — the same top-k
//!    computed by a chain of µ operators over one sequential scan versus two
//!    rank-scans merged by the incremental intersection, with the amount of
//!    work compared side by side.
//!
//! Run with: `cargo run --example rank_set_operations --release`

use std::sync::Arc;

use ranksql::executor::{
    rank::RankOp,
    scan::{RankScan, SeqScan},
    set_ops::{ExceptOp, IntersectOp, UnionOp},
    ExecutionContext, PhysicalOperator,
};
use ranksql::expr::{BoolExpr, RankPredicate, RankedTuple, RankingContext, ScoringFunction};
use ranksql::storage::{Catalog, ScoreIndex, Table};
use ranksql::{DataType, Field, Schema, Value};

/// Number of papers in the synthetic catalog.
const N_PAPERS: i64 = 20_000;
/// How many results each demonstration asks for.
const K: usize = 10;

fn main() -> ranksql::Result<()> {
    let catalog = Catalog::new();
    let papers = build_catalog(&catalog)?;
    let ctx = ranking_context();

    ranked_list_algebra(&papers, &ctx)?;
    multiple_scan_law(&papers, &ctx)?;
    Ok(())
}

/// A synthetic paper catalog: id, relevance score, citation score and two
/// Boolean reading-list flags.  Scores are decorrelated on purpose — that is
/// the regime where stopping early on ranked streams pays off.
fn build_catalog(catalog: &Catalog) -> ranksql::Result<Arc<Table>> {
    let papers = catalog.create_table(
        "Papers",
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("relevance", DataType::Float64),
            Field::new("citations", DataType::Float64),
            Field::new("list_a", DataType::Bool),
            Field::new("list_b", DataType::Bool),
        ]),
    )?;
    for i in 0..N_PAPERS {
        let relevance = ((i * 7_919) % 10_000) as f64 / 10_000.0;
        let citations = ((i * 104_729) % 10_000) as f64 / 10_000.0;
        papers.insert(vec![
            Value::from(i),
            Value::from(relevance),
            Value::from(citations),
            Value::from(i % 3 == 0),
            Value::from(i % 5 == 0),
        ])?;
    }
    Ok(papers)
}

fn ranking_context() -> Arc<RankingContext> {
    RankingContext::new(
        vec![
            RankPredicate::attribute("rel", "Papers.relevance"),
            RankPredicate::attribute("cit", "Papers.citations"),
        ],
        ScoringFunction::Sum,
    )
}

/// A rank-scan over `papers` in descending order of context predicate `pred`.
fn rank_scan(
    papers: &Arc<Table>,
    pred: usize,
    exec: &ExecutionContext,
    name: &str,
) -> ranksql::Result<Box<dyn PhysicalOperator>> {
    let index = Arc::new(ScoreIndex::build(
        exec.ranking().predicate(pred),
        papers.schema(),
        &papers.scan(),
    )?);
    Ok(Box::new(RankScan::new(
        Arc::clone(papers),
        index,
        pred,
        exec,
        name,
    )?))
}

/// A rank-scan restricted to one reading list (scan-based selection).
fn ranked_list(
    papers: &Arc<Table>,
    pred: usize,
    list_column: &str,
    exec: &ExecutionContext,
    name: &str,
) -> ranksql::Result<Box<dyn PhysicalOperator>> {
    let scan = rank_scan(papers, pred, exec, &format!("{name} scan"))?;
    let filter = BoolExpr::column_is_true(list_column);
    Ok(Box::new(ranksql::executor::filter::Filter::new(
        scan, &filter, exec, name,
    )?))
}

fn print_top(title: &str, ctx: &RankingContext, tuples: &[RankedTuple]) {
    println!("{title}");
    println!(
        "    {:>6}  {:>9}  {:>9}  {:>12}",
        "id", "relevance", "citations", "upper bound"
    );
    for t in tuples {
        println!(
            "    {:>6}  {:>9}  {:>9}  {:>12.4}",
            t.tuple.value(0),
            t.tuple.value(1),
            t.tuple.value(2),
            ctx.upper_bound(&t.state).value()
        );
    }
    println!();
}

// ---------------------------------------------------------------------------
// Part 1: ∪ / ∩ / − over two ranked reading lists
// ---------------------------------------------------------------------------

fn ranked_list_algebra(papers: &Arc<Table>, ctx: &Arc<RankingContext>) -> ranksql::Result<()> {
    println!("== Rank-aware set operations over two ranked reading lists ==\n");
    println!(
        "list A = papers on reading list A, ranked by relevance (predicate `rel`)\n\
         list B = papers on reading list B, ranked by citations (predicate `cit`)\n"
    );

    // Intersection: papers on both lists, ordered by the aggregate order
    // rel + cit (both predicates are evaluated across the two operands).
    let exec = ExecutionContext::new(Arc::clone(ctx));
    let a = ranked_list(papers, 0, "Papers.list_a", &exec, "list A")?;
    let b = ranked_list(papers, 1, "Papers.list_b", &exec, "list B")?;
    let mut intersect = IntersectOp::new(a, b, &exec, "∩");
    let both = take(&mut intersect, K)?;
    print_top(
        "papers on BOTH lists (∩), aggregate order rel + cit:",
        ctx,
        &both,
    );

    // Union: papers on either list; a paper reached from both sides carries
    // both evaluated predicates, one reached from a single side keeps the
    // other predicate at its upper bound.
    let exec = ExecutionContext::new(Arc::clone(ctx));
    let a = ranked_list(papers, 0, "Papers.list_a", &exec, "list A")?;
    let b = ranked_list(papers, 1, "Papers.list_b", &exec, "list B")?;
    let mut union = UnionOp::new(a, b, &exec, "∪");
    let either = take(&mut union, K)?;
    print_top("papers on EITHER list (∪):", ctx, &either);

    // Difference: papers on list A but not on list B; the output keeps the
    // outer operand's order (by `rel` only), per Figure 3.
    let exec = ExecutionContext::new(Arc::clone(ctx));
    let a = ranked_list(papers, 0, "Papers.list_a", &exec, "list A")?;
    let b = ranked_list(papers, 1, "Papers.list_b", &exec, "list B")?;
    let mut except = ExceptOp::new(a, b, &exec, "−");
    let only_a = take(&mut except, K)?;
    print_top(
        "papers on list A but NOT list B (−), ordered by rel:",
        ctx,
        &only_a,
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// Part 2: the multiple-scan law (Proposition 6)
// ---------------------------------------------------------------------------

fn multiple_scan_law(papers: &Arc<Table>, _shared: &Arc<RankingContext>) -> ranksql::Result<()> {
    println!("== Proposition 6: µ_rel(µ_cit(Papers)) ≡ µ_rel(Papers) ∩ µ_cit(Papers) ==\n");

    // Strategy A: µ_rel(µ_cit(seqScan(Papers))) — one pass over the table.
    // (Fresh contexts so the evaluation counters of the two strategies do not
    // mix.)
    let ctx_a = ranking_context();
    let exec_a = ExecutionContext::new(Arc::clone(&ctx_a));
    let scan = SeqScan::new(papers, &exec_a, "seq-scan");
    let mu_cit = RankOp::new(Box::new(scan), 1, &exec_a, "µ_cit");
    let mut chain = RankOp::new(Box::new(mu_cit), 0, &exec_a, "µ_rel");
    let top_chain = take(&mut chain, K)?;

    // Strategy B: µ_rel(Papers) ∩ µ_cit(Papers) — two rank-scans merged by the
    // incremental rank-aware intersection.
    let ctx_b = ranking_context();
    let exec_b = ExecutionContext::new(Arc::clone(&ctx_b));
    let left = rank_scan(papers, 0, &exec_b, "rank-scan rel")?;
    let right = rank_scan(papers, 1, &exec_b, "rank-scan cit")?;
    let mut multi = IntersectOp::new(left, right, &exec_b, "∩");
    let top_multi = take(&mut multi, K)?;

    println!("top-{K} overall scores under both strategies:");
    println!("    {:>12}  {:>14}", "µ chain", "multiple-scan");
    for (a, b) in top_chain.iter().zip(top_multi.iter()) {
        println!(
            "    {:>12.4}  {:>14.4}",
            ctx_a.upper_bound(&a.state).value(),
            ctx_b.upper_bound(&b.state).value()
        );
    }

    println!("\noperator work (tuples in → out):");
    for (label, exec) in [
        ("µ chain over seq-scan", &exec_a),
        ("rank-scan ∩ rank-scan", &exec_b),
    ] {
        println!("  {label}:");
        for m in exec.metrics().snapshot() {
            println!(
                "    {:<16} {:>8} → {:<8}",
                m.name(),
                m.tuples_in(),
                m.tuples_out()
            );
        }
    }
    println!(
        "\nThe µ chain must draw all {N_PAPERS} tuples from the sequential scan before anything \
         can be emitted (its input carries no ranking order), while the multiple-scan strategy \
         touches only the prefixes of the two ranked scans that the top-{K} answer requires."
    );
    Ok(())
}

fn take(op: &mut dyn PhysicalOperator, k: usize) -> ranksql::Result<Vec<RankedTuple>> {
    let mut out = Vec::with_capacity(k);
    while out.len() < k {
        match op.next()? {
            Some(t) => out.push(t),
            None => break,
        }
    }
    Ok(out)
}
