//! Example 1 of the paper: Amy plans a trip — a hotel, an Italian restaurant
//! within walking distance, and a museum matching her interests, ranked by
//! `cheap(h.price) + close(h.addr, r.addr) + related(m.collection, "dinosaur")`.
//!
//! The example contrasts the traditional materialise-then-sort plan with the
//! rank-aware plan the optimizer picks (Figure 7 of the paper), reporting how
//! many times each expensive ranking predicate was evaluated under each plan
//! — driven through the Session API: one session per plan mode, a prepared
//! query executed against the shared plan cache, and a streaming cursor to
//! show that the first trip surfaces long before the plan is drained.
//!
//! Run with: `cargo run --example trip_planning --release`

use ranksql::workload::trip::{TripConfig, TripWorkload};
use ranksql::{Params, PlanMode};

fn main() -> ranksql::Result<()> {
    let config = TripConfig {
        hotels: 400,
        restaurants: 300,
        museums: 80,
        ..TripConfig::default()
    };
    println!(
        "generating trip dataset: {} hotels, {} restaurants, {} museums, top-{}",
        config.hotels, config.restaurants, config.museums, config.k
    );
    let workload = TripWorkload::generate(config)?;
    let db = workload.database()?;
    let query = workload.query;

    println!("\nquery: hotel ⋈ restaurant ⋈ museum, Italian only, hotel+restaurant < $100,");
    println!("ranked by cheap(hotel) + close(hotel, restaurant) + related(museum, dinosaur)\n");

    for mode in [PlanMode::Traditional, PlanMode::RankAware] {
        let session = db.session().with_mode(mode);
        println!("==== {mode:?} ====");
        println!("{}", session.explain(&query)?);
        let result = session.execute(&query)?;
        println!(
            "\nelapsed: {:?}; ranking-predicate evaluations: cheap={}, close={}, related={}",
            result.elapsed,
            result.predicate_evaluations[0],
            result.predicate_evaluations[1],
            result.predicate_evaluations[2]
        );
        println!("top results:\n{result}");
    }

    // The same query once more, now as a prepared statement with a
    // streaming cursor: the plan comes out of the cache (the eager run
    // above populated it) and the best trip is available after the first
    // pull — no drain.
    let session = db.session();
    let prepared = session.prepare_query(query.clone())?;
    let bound = prepared.bind(Params::none())?;
    let close_calls_before = query.ranking.counters().count(1);
    let mut cursor = bound.cursor()?;
    if let Some(best) = cursor.next()? {
        println!(
            "streamed best trip (score {:.4}) after evaluating close() only {} times",
            cursor.score(&best),
            query.ranking.counters().count(1) - close_calls_before
        );
    }
    println!("\n{}", cursor.explain_analyze());
    Ok(())
}
