//! Example 1 of the paper: Amy plans a trip — a hotel, an Italian restaurant
//! within walking distance, and a museum matching her interests, ranked by
//! `cheap(h.price) + close(h.addr, r.addr) + related(m.collection, "dinosaur")`.
//!
//! The example contrasts the traditional materialise-then-sort plan with the
//! rank-aware plan the optimizer picks (Figure 7 of the paper), reporting how
//! many times each expensive ranking predicate was evaluated under each plan.
//!
//! Run with: `cargo run --example trip_planning --release`

use ranksql::workload::trip::{TripConfig, TripWorkload};
use ranksql::{Database, PlanMode};

fn main() -> ranksql::Result<()> {
    let config = TripConfig {
        hotels: 400,
        restaurants: 300,
        museums: 80,
        ..TripConfig::default()
    };
    println!(
        "generating trip dataset: {} hotels, {} restaurants, {} museums, top-{}",
        config.hotels, config.restaurants, config.museums, config.k
    );
    let workload = TripWorkload::generate(config)?;

    // Wrap the generated catalog in a Database facade by moving the tables in.
    let db = Database::new();
    for name in workload.catalog.table_names() {
        let table = workload.catalog.table(&name)?;
        let created = db.create_table(&name, strip_qualifiers(table.schema()))?;
        for t in table.scan() {
            created.insert(t.values().to_vec())?;
        }
    }
    let query = workload.query;

    println!("\nquery: hotel ⋈ restaurant ⋈ museum, Italian only, hotel+restaurant < $100,");
    println!("ranked by cheap(hotel) + close(hotel, restaurant) + related(museum, dinosaur)\n");

    for mode in [PlanMode::Traditional, PlanMode::RankAware] {
        println!("==== {mode:?} ====");
        println!("{}", db.explain(&query, mode)?);
        let result = db.execute_with_mode(&query, mode)?;
        println!(
            "\nelapsed: {:?}; ranking-predicate evaluations: cheap={}, close={}, related={}",
            result.elapsed,
            result.predicate_evaluations[0],
            result.predicate_evaluations[1],
            result.predicate_evaluations[2]
        );
        println!("top results:\n{result}");
    }
    Ok(())
}

/// The workload qualifies fields by table name; `Database::create_table`
/// re-qualifies on its own, so strip the qualifiers before re-creating.
fn strip_qualifiers(schema: &ranksql::Schema) -> ranksql::Schema {
    ranksql::Schema::new(
        schema
            .fields()
            .iter()
            .map(|f| ranksql::Field::new(f.name.clone(), f.data_type))
            .collect(),
    )
}
