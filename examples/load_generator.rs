//! End-to-end load harness for the `ranksql-server` front end — the
//! program the CI `server-e2e` job runs and hard-fails on.
//!
//! Phase A (concurrency): starts a server over one shared `Database`,
//! drives `LOADGEN_CLIENTS` concurrent wire clients (default 4) through a
//! mixed work list of prepared top-k queries, and checks every streamed
//! result **byte-identically** against an in-process `Session` execution
//! of the same query under the same negotiated settings — the result
//! fingerprint (order-sensitive FNV over score + tuple id + values) must
//! match exactly, at any `RANKSQL_THREADS`.
//!
//! Phase B (isolation + incrementality): opens a wire cursor and a twin
//! in-process cursor, streams a prefix from both (pinning their MVCC
//! epochs), then INSERTs a burst that pushes the joined table across a
//! 1024-row column seal boundary — and verifies both cursors continue
//! their *pre-insert* answer byte-identically through `FETCH` and
//! `FETCH_MORE` (no re-execution: the server extends the live operator
//! tree).  `STATS` must show the open cursor's pinned epochs and a warm
//! shared plan cache.
//!
//! Exits non-zero on any mismatch.  Run with:
//! `LOADGEN_CLIENTS=8 cargo run --release --example load_generator`

use std::sync::atomic::{AtomicU64, Ordering};

use ranksql::common::wire::ResultFingerprint;
use ranksql::server::{Server, ServerConfig};
use ranksql::workload::client::{stats_value, WireClient};
use ranksql::{DataType, Database, Field, Params, PlanMode, Schema, Value};

/// One work item: a query every client runs and fingerprint-checks.
struct WorkItem {
    sql: &'static str,
    params: Vec<(u16, Value)>,
    k: Option<u64>,
    mode: PlanMode,
    chunk: u32,
}

/// Deterministic pseudo-score in `[0, 1)` (no RNG: the harness must be
/// reproducible bit for bit across runs and thread counts).
fn score(i: i64, salt: i64) -> f64 {
    (((i * 2_654_435_761 + salt * 40_503) % 10_000).abs() as f64) / 10_000.0
}

fn build_database() -> ranksql::Result<Database> {
    let db = Database::new();
    db.create_table(
        "R",
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("jc", DataType::Int64),
            Field::new("a", DataType::Float64),
            Field::new("b", DataType::Float64),
        ]),
    )?;
    db.create_table(
        "S",
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("jc", DataType::Int64),
            Field::new("c", DataType::Float64),
        ]),
    )?;
    db.insert_batch(
        "R",
        (0..500i64).map(|i| {
            vec![
                Value::from(i),
                Value::from(i % 8),
                Value::from(score(i, 1)),
                Value::from(score(i, 2)),
            ]
        }),
    )?;
    // 900 rows: the phase-B insert burst of 300 pushes S across the
    // 1024-row column seal boundary while cursors hold pinned epochs.
    db.insert_batch(
        "S",
        (0..900i64).map(|i| vec![Value::from(i), Value::from(i % 8), Value::from(score(i, 3))]),
    )?;
    Ok(db)
}

fn work_list() -> Vec<WorkItem> {
    vec![
        WorkItem {
            sql: "SELECT * FROM R WHERE R.jc < ? ORDER BY pa(R.a) + pb(R.b) LIMIT 12",
            params: vec![(0, Value::from(5i64))],
            k: None,
            mode: PlanMode::RankAware,
            chunk: 5,
        },
        WorkItem {
            sql: "SELECT * FROM R WHERE R.jc < ? ORDER BY pa(R.a) + pb(R.b) LIMIT 12",
            params: vec![(0, Value::from(3i64))],
            k: Some(7),
            mode: PlanMode::RankAware,
            chunk: 3,
        },
        WorkItem {
            sql: "SELECT * FROM R, S WHERE R.jc = S.jc ORDER BY pa(R.a) + pc(S.c) LIMIT 10",
            params: vec![],
            k: None,
            mode: PlanMode::RankAware,
            chunk: 4,
        },
        WorkItem {
            sql: "SELECT * FROM R WHERE R.jc < ? ORDER BY pa(R.a) + pb(R.b) LIMIT 12",
            params: vec![(0, Value::from(5i64))],
            k: None,
            mode: PlanMode::Traditional,
            chunk: 12,
        },
    ]
}

/// The in-process reference: the same query, same settings, same chunked
/// pull pattern, fingerprinted with the same canonical row encoding.
fn reference_fingerprint(db: &Database, item: &WorkItem) -> ranksql::Result<String> {
    let session = db.session().with_mode(item.mode);
    let prepared = session.prepare(item.sql)?;
    let mut params = Params::new();
    for (slot, value) in &item.params {
        params = params.set(*slot as usize, value.clone());
    }
    if let Some(k) = item.k {
        params = params.k(k as usize);
    }
    let mut cursor = prepared.bind(params)?.cursor()?;
    let mut fp = ResultFingerprint::new();
    loop {
        let rows = cursor.take(item.chunk as usize)?;
        if rows.is_empty() {
            break;
        }
        for row in &rows {
            fp.fold_row(
                cursor.score(row),
                row.tuple.id().parts(),
                row.tuple.values(),
            );
        }
        if cursor.is_exhausted() {
            break;
        }
    }
    Ok(fp.to_string())
}

/// One wire client's run over the whole work list, `rounds` times.
/// Returns the number of fingerprint mismatches (0 = clean).
fn run_client(
    addr: std::net::SocketAddr,
    client_idx: usize,
    items: &[WorkItem],
    expected: &[String],
    rounds: usize,
) -> Result<u64, String> {
    let mut client = WireClient::connect(addr).map_err(|e| e.to_string())?;
    let tenant = format!("tenant-{}", client_idx % 3);
    let mut mismatches = 0u64;
    for _ in 0..rounds {
        for (item, want) in items.iter().zip(expected) {
            // Renegotiate per item so each mode runs under its own envelope
            // (threads/batch 0 = server defaults, budget 0 = none).
            client
                .hello(&tenant, item.mode, 0, 0, 0)
                .map_err(|e| e.to_string())?;
            let prepared = client.prepare(item.sql).map_err(|e| e.to_string())?;
            let bound = client
                .bind(prepared.statement_id, item.k, &item.params)
                .map_err(|e| e.to_string())?;
            let opened = client.open(bound.binding_id).map_err(|e| e.to_string())?;
            let rows = client
                .drain(opened.cursor_id, item.chunk)
                .map_err(|e| e.to_string())?;
            let mut fp = ResultFingerprint::new();
            for row in &rows {
                fp.fold_wire_row(row);
            }
            let got = fp.to_string();
            if got != *want {
                eprintln!(
                    "MISMATCH client {client_idx} {:?} {}: wire {got} != in-process {want}",
                    item.mode, item.sql
                );
                mismatches += 1;
            }
            client.close(opened.cursor_id).map_err(|e| e.to_string())?;
        }
    }
    Ok(mismatches)
}

/// Phase B: epoch pinning + FETCH_MORE without re-execution, across a
/// concurrent insert burst.  Returns an error description on any failure.
fn run_pinning_phase(db: &Database, addr: std::net::SocketAddr) -> Result<(), String> {
    let sql = "SELECT * FROM R, S WHERE R.jc = S.jc ORDER BY pa(R.a) + pc(S.c) LIMIT 10";

    // Twin in-process cursor: same mode, same chunk pattern.
    let session = db.session().with_mode(PlanMode::RankAware);
    let prepared = session.prepare(sql).map_err(|e| e.to_string())?;
    let mut reference = prepared
        .bind(Params::new())
        .map_err(|e| e.to_string())?
        .cursor()
        .map_err(|e| e.to_string())?;

    let mut client = WireClient::connect(addr).map_err(|e| e.to_string())?;
    client
        .hello("pinning", PlanMode::RankAware, 0, 0, 0)
        .map_err(|e| e.to_string())?;
    let stmt = client.prepare(sql).map_err(|e| e.to_string())?;
    let bound = client
        .bind(stmt.statement_id, None, &[])
        .map_err(|e| e.to_string())?;
    let opened = client.open(bound.binding_id).map_err(|e| e.to_string())?;

    let compare = |label: &str,
                   wire_rows: &[ranksql::common::wire::WireRow],
                   reference: &mut ranksql::Cursor,
                   n: usize|
     -> Result<(), String> {
        let ref_rows = reference.take(n).map_err(|e| e.to_string())?;
        let mut wire_fp = ResultFingerprint::new();
        for r in wire_rows {
            wire_fp.fold_wire_row(r);
        }
        let mut ref_fp = ResultFingerprint::new();
        for r in &ref_rows {
            ref_fp.fold_row(reference.score(r), r.tuple.id().parts(), r.tuple.values());
        }
        if wire_fp.to_string() != ref_fp.to_string() {
            return Err(format!(
                "{label}: wire {wire_fp} != in-process {ref_fp} ({} vs {} rows)",
                wire_rows.len(),
                ref_rows.len()
            ));
        }
        Ok(())
    };

    // Stream a prefix from both cursors: this pins their MVCC epochs at
    // the pre-insert watermark.
    let first = client
        .fetch(opened.cursor_id, 4)
        .map_err(|e| e.to_string())?;
    compare("pre-insert prefix", &first.rows, &mut reference, 4)?;

    // Insert burst over the wire: S grows 900 → 1200, crossing the
    // 1024-row seal boundary while both cursors are open.
    let burst: Vec<Vec<Value>> = (900..1200i64)
        .map(|i| vec![Value::from(i), Value::from(i % 8), Value::from(0.9999)])
        .collect();
    let inserted = client.insert("S", &burst).map_err(|e| e.to_string())?;
    if inserted != 300 {
        return Err(format!("insert burst: expected 300 rows, got {inserted}"));
    }

    // Both cursors must keep answering from their pinned epochs.
    let rest = client
        .fetch(opened.cursor_id, 6)
        .map_err(|e| e.to_string())?;
    compare("post-insert remainder", &rest.rows, &mut reference, 6)?;

    // FETCH_MORE: extend the server-held operator tree past the original
    // LIMIT — no re-execution, still the pinned snapshot.
    let more = client
        .fetch_more(opened.cursor_id, 5)
        .map_err(|e| e.to_string())?;
    let ref_more = reference.fetch_more(5).map_err(|e| e.to_string())?;
    let mut wire_fp = ResultFingerprint::new();
    for r in &more.rows {
        wire_fp.fold_wire_row(r);
    }
    let mut ref_fp = ResultFingerprint::new();
    for r in &ref_more {
        ref_fp.fold_row(reference.score(r), r.tuple.id().parts(), r.tuple.values());
    }
    if wire_fp.to_string() != ref_fp.to_string() {
        return Err(format!(
            "fetch_more extension: wire {wire_fp} != in-process {ref_fp}"
        ));
    }

    // Observability: the open cursor's pinned epochs and the warm shared
    // plan cache must be visible through STATS.
    let stats = client.stats().map_err(|e| e.to_string())?;
    let pin_key = format!("cursor[{}].pinned_epochs", opened.cursor_id);
    let pins = stats_value(&stats, &pin_key)
        .ok_or_else(|| format!("STATS missing {pin_key}:\n{stats}"))?;
    if !pins.contains('@') {
        return Err(format!("{pin_key} reports no pinned epoch: {pins:?}"));
    }
    let hits: u64 = stats_value(&stats, "plan_cache.hits")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| format!("STATS missing plan_cache.hits:\n{stats}"))?;
    if hits == 0 {
        return Err("plan cache reports zero hits after the load phase".into());
    }
    println!("phase B stats excerpt: {pin_key}={pins} plan_cache.hits={hits}");

    client.close(opened.cursor_id).map_err(|e| e.to_string())?;
    Ok(())
}

fn main() -> ranksql::Result<()> {
    let clients: usize = std::env::var("LOADGEN_CLIENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let rounds: usize = std::env::var("LOADGEN_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);

    let db = build_database()?;
    let items = work_list();
    let expected: Vec<String> = items
        .iter()
        .map(|item| reference_fingerprint(&db, item))
        .collect::<ranksql::Result<_>>()?;

    let server = Server::bind(ServerConfig::default())?;
    let addr = server.local_addr()?;
    let handle = server.shutdown_handle();
    println!(
        "load_generator: {clients} clients x {rounds} rounds against {addr} \
         ({} work items)",
        items.len()
    );

    let mismatches = AtomicU64::new(0);
    let failures = AtomicU64::new(0);
    std::thread::scope(|scope| {
        let server_thread = scope.spawn(|| server.serve(&db));

        // Phase A: concurrent clients, each fingerprint-checked.
        scope
            .spawn(|| {
                std::thread::scope(|clients_scope| {
                    for i in 0..clients {
                        let items = &items;
                        let expected = &expected;
                        let mismatches = &mismatches;
                        let failures = &failures;
                        clients_scope.spawn(move || {
                            match run_client(addr, i, items, expected, rounds) {
                                Ok(n) => {
                                    mismatches.fetch_add(n, Ordering::Relaxed);
                                }
                                Err(e) => {
                                    eprintln!("client {i} failed: {e}");
                                    failures.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        });
                    }
                });

                // Phase B: epoch pinning across an insert burst.
                if let Err(e) = run_pinning_phase(&db, addr) {
                    eprintln!("phase B failed: {e}");
                    failures.fetch_add(1, Ordering::Relaxed);
                }

                handle.shutdown();
            })
            .join()
            .expect("driver thread panicked");

        server_thread
            .join()
            .expect("server thread panicked")
            .expect("server accept loop failed");
    });

    let mismatches = mismatches.load(Ordering::Relaxed);
    let failures = failures.load(Ordering::Relaxed);
    println!(
        "load_generator: {} ({} fingerprint mismatches, {} client failures)",
        if mismatches == 0 && failures == 0 {
            "PASS"
        } else {
            "FAIL"
        },
        mismatches,
        failures
    );
    if mismatches > 0 || failures > 0 {
        std::process::exit(1);
    }
    Ok(())
}
