//! Error handling for the RankSQL workspace.

use std::fmt;

/// The error type used throughout the RankSQL crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RankSqlError {
    /// A column lookup or schema manipulation failed.
    Schema(String),
    /// A catalog operation failed (unknown table, duplicate table, ...).
    Catalog(String),
    /// Data ingestion or storage-level access failed (e.g. malformed CSV).
    Storage(String),
    /// An expression could not be evaluated (type mismatch, missing column).
    Expression(String),
    /// A logical plan is malformed or violates an invariant.
    Plan(String),
    /// A physical operator hit an unrecoverable execution error.
    Execution(String),
    /// The optimizer could not produce a plan.
    Optimizer(String),
    /// The top-k SQL front-end could not parse the query text.
    Parse(String),
    /// Anything else.
    Internal(String),
}

impl RankSqlError {
    /// Short category label (used in Display and logging).
    pub fn category(&self) -> &'static str {
        match self {
            RankSqlError::Schema(_) => "schema",
            RankSqlError::Catalog(_) => "catalog",
            RankSqlError::Storage(_) => "storage",
            RankSqlError::Expression(_) => "expression",
            RankSqlError::Plan(_) => "plan",
            RankSqlError::Execution(_) => "execution",
            RankSqlError::Optimizer(_) => "optimizer",
            RankSqlError::Parse(_) => "parse",
            RankSqlError::Internal(_) => "internal",
        }
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        match self {
            RankSqlError::Schema(m)
            | RankSqlError::Catalog(m)
            | RankSqlError::Storage(m)
            | RankSqlError::Expression(m)
            | RankSqlError::Plan(m)
            | RankSqlError::Execution(m)
            | RankSqlError::Optimizer(m)
            | RankSqlError::Parse(m)
            | RankSqlError::Internal(m) => m,
        }
    }
}

impl fmt::Display for RankSqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error: {}", self.category(), self.message())
    }
}

impl std::error::Error for RankSqlError {}

/// Result alias using [`RankSqlError`].
pub type Result<T> = std::result::Result<T, RankSqlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = RankSqlError::Catalog("table `foo` not found".into());
        assert_eq!(e.to_string(), "catalog error: table `foo` not found");
        assert_eq!(e.category(), "catalog");
        assert_eq!(e.message(), "table `foo` not found");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            RankSqlError::Parse("x".into()),
            RankSqlError::Parse("x".into())
        );
        assert_ne!(
            RankSqlError::Parse("x".into()),
            RankSqlError::Plan("x".into())
        );
    }

    #[test]
    fn implements_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&RankSqlError::Internal("oops".into()));
    }
}
