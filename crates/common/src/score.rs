//! Totally ordered ranking scores.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Sub};

/// A ranking score: an `f64` with a *total* order.
///
/// Ranking-predicate scores and maximal-possible scores (`F_P[t]`, Property 1
/// of the paper) are represented by this type so they can be used directly as
/// priority-queue and B-tree keys.  `NaN` is ordered below every other score
/// (a tuple with an undefined score can never displace a ranked one).
#[derive(Debug, Clone, Copy, Default)]
pub struct Score(pub f64);

impl Score {
    /// The score `0.0`.
    pub const ZERO: Score = Score(0.0);
    /// The score `1.0` — the maximal possible value of a single ranking
    /// predicate (the paper assumes predicate scores lie in `[0, 1]`).
    pub const ONE: Score = Score(1.0);

    /// Creates a score from a raw float.
    pub fn new(v: f64) -> Self {
        Score(v)
    }

    /// The raw float value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Clamps the score into `[0, 1]`.
    pub fn clamp_unit(self) -> Score {
        Score(self.0.clamp(0.0, 1.0))
    }

    /// Returns the larger of two scores.
    pub fn max(self, other: Score) -> Score {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two scores.
    pub fn min(self, other: Score) -> Score {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl PartialEq for Score {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Score {}

impl PartialOrd for Score {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Score {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.0.is_nan(), other.0.is_nan()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            (false, false) => self.0.partial_cmp(&other.0).expect("non-NaN compare"),
        }
    }
}

impl Add for Score {
    type Output = Score;
    fn add(self, rhs: Score) -> Score {
        Score(self.0 + rhs.0)
    }
}

impl Sub for Score {
    type Output = Score;
    fn sub(self, rhs: Score) -> Score {
        Score(self.0 - rhs.0)
    }
}

impl From<f64> for Score {
    fn from(v: f64) -> Self {
        Score(v)
    }
}

impl fmt::Display for Score {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order_with_nan_lowest() {
        let mut v = [Score(0.5), Score(f64::NAN), Score(1.5), Score(-1.0)];
        v.sort();
        assert!(v[0].0.is_nan());
        assert_eq!(v[1], Score(-1.0));
        assert_eq!(v[3], Score(1.5));
    }

    #[test]
    fn arithmetic_and_constants() {
        assert_eq!(Score::ZERO + Score::ONE, Score(1.0));
        assert_eq!(Score(0.75) - Score(0.25), Score(0.5));
        assert_eq!(Score(3.0).clamp_unit(), Score::ONE);
        assert_eq!(Score(-0.5).clamp_unit(), Score::ZERO);
    }

    #[test]
    fn min_max_helpers() {
        assert_eq!(Score(0.2).max(Score(0.8)), Score(0.8));
        assert_eq!(Score(0.2).min(Score(0.8)), Score(0.2));
        assert_eq!(Score(f64::NAN).max(Score(0.1)), Score(0.1));
    }

    #[test]
    fn display_rounds() {
        assert_eq!(Score(0.123456).to_string(), "0.1235");
    }
}
