//! Small fixed-width bitsets.
//!
//! The optimizer enumerates plans along two dimensions — the set of joined
//! relations `SR` and the set of evaluated ranking predicates `SP` (Figure 8
//! of the paper).  Both sets are tiny (queries rarely involve more than a
//! handful of relations or ranking predicates) so a copyable 64-bit bitset is
//! the natural representation for DP signatures.

use std::fmt;

/// A set of small indices (`0..64`) packed into a `u64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct BitSet64(u64);

impl BitSet64 {
    /// The empty set.
    pub const EMPTY: BitSet64 = BitSet64(0);

    /// Creates an empty set.
    pub fn new() -> Self {
        BitSet64(0)
    }

    /// Creates a set containing the single element `i`.
    ///
    /// # Panics
    /// Panics if `i >= 64`.
    pub fn singleton(i: usize) -> Self {
        assert!(i < 64, "BitSet64 supports indices 0..64, got {i}");
        BitSet64(1 << i)
    }

    /// Creates a set containing all indices `0..n`.
    pub fn all(n: usize) -> Self {
        assert!(n <= 64);
        if n == 64 {
            BitSet64(u64::MAX)
        } else {
            BitSet64((1u64 << n) - 1)
        }
    }

    /// Creates a set from an iterator of indices.
    pub fn from_indices<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = BitSet64::new();
        for i in iter {
            s.insert(i);
        }
        s
    }

    /// The raw bit pattern.
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Inserts element `i`.
    pub fn insert(&mut self, i: usize) {
        assert!(i < 64);
        self.0 |= 1 << i;
    }

    /// Removes element `i`.
    pub fn remove(&mut self, i: usize) {
        assert!(i < 64);
        self.0 &= !(1 << i);
    }

    /// Whether element `i` is present.
    pub fn contains(self, i: usize) -> bool {
        i < 64 && (self.0 >> i) & 1 == 1
    }

    /// Number of elements.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Set union.
    pub fn union(self, other: BitSet64) -> BitSet64 {
        BitSet64(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersect(self, other: BitSet64) -> BitSet64 {
        BitSet64(self.0 & other.0)
    }

    /// Set difference (`self \ other`).
    pub fn difference(self, other: BitSet64) -> BitSet64 {
        BitSet64(self.0 & !other.0)
    }

    /// Whether `self` is a subset of `other`.
    pub fn is_subset_of(self, other: BitSet64) -> bool {
        self.0 & other.0 == self.0
    }

    /// Whether the two sets have no common element.
    pub fn is_disjoint(self, other: BitSet64) -> bool {
        self.0 & other.0 == 0
    }

    /// Iterates over the contained indices in increasing order.
    pub fn iter(self) -> BitSetIter {
        BitSetIter(self.0)
    }

    /// Enumerates every subset of this set (including the empty set and the
    /// set itself).  Used by the DP enumerator to split signatures.
    pub fn subsets(self) -> SubsetIter {
        SubsetIter {
            universe: self.0,
            current: 0,
            done: false,
        }
    }
}

impl fmt::Display for BitSet64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (n, i) in self.iter().enumerate() {
            if n > 0 {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<usize> for BitSet64 {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        BitSet64::from_indices(iter)
    }
}

/// Iterator over the indices of a [`BitSet64`].
#[derive(Debug, Clone)]
pub struct BitSetIter(u64);

impl Iterator for BitSetIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let i = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(i)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for BitSetIter {}

/// Iterator over every subset of a [`BitSet64`] (in sub-mask order).
#[derive(Debug, Clone)]
pub struct SubsetIter {
    universe: u64,
    current: u64,
    done: bool,
}

impl Iterator for SubsetIter {
    type Item = BitSet64;

    fn next(&mut self) -> Option<BitSet64> {
        if self.done {
            return None;
        }
        let result = BitSet64(self.current);
        if self.current == self.universe {
            self.done = true;
        } else {
            // Standard sub-mask enumeration trick.
            self.current = (self.current.wrapping_sub(self.universe)) & self.universe;
        }
        Some(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_insert_remove_contains() {
        let mut s = BitSet64::new();
        assert!(s.is_empty());
        s.insert(3);
        s.insert(10);
        assert!(s.contains(3));
        assert!(s.contains(10));
        assert!(!s.contains(4));
        assert_eq!(s.len(), 2);
        s.remove(3);
        assert!(!s.contains(3));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn set_algebra() {
        let a = BitSet64::from_indices([0, 1, 2]);
        let b = BitSet64::from_indices([2, 3]);
        assert_eq!(a.union(b), BitSet64::from_indices([0, 1, 2, 3]));
        assert_eq!(a.intersect(b), BitSet64::singleton(2));
        assert_eq!(a.difference(b), BitSet64::from_indices([0, 1]));
        assert!(BitSet64::from_indices([1]).is_subset_of(a));
        assert!(!a.is_subset_of(b));
        assert!(BitSet64::singleton(5).is_disjoint(a));
    }

    #[test]
    fn all_and_iter() {
        let s = BitSet64::all(5);
        assert_eq!(s.len(), 5);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        assert_eq!(BitSet64::all(64).len(), 64);
    }

    #[test]
    fn subset_enumeration_is_complete() {
        let s = BitSet64::from_indices([1, 4, 7]);
        let subsets: Vec<BitSet64> = s.subsets().collect();
        assert_eq!(subsets.len(), 8);
        assert!(subsets.contains(&BitSet64::EMPTY));
        assert!(subsets.contains(&s));
        // All enumerated sets are subsets and pairwise distinct.
        for sub in &subsets {
            assert!(sub.is_subset_of(s));
        }
        let mut dedup = subsets.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), subsets.len());
    }

    #[test]
    fn subsets_of_empty_is_just_empty() {
        let subsets: Vec<_> = BitSet64::EMPTY.subsets().collect();
        assert_eq!(subsets, vec![BitSet64::EMPTY]);
    }

    #[test]
    fn display_lists_elements() {
        assert_eq!(BitSet64::from_indices([2, 5]).to_string(), "{2,5}");
        assert_eq!(BitSet64::EMPTY.to_string(), "{}");
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        BitSet64::singleton(64);
    }
}
