//! The length-prefixed wire protocol spoken between `ranksql-server` and
//! its clients.
//!
//! Every message is one *frame*: a 4-byte big-endian length followed by a
//! 1-byte opcode and an opcode-specific payload (the length covers opcode +
//! payload).  Payloads are built and parsed through [`PayloadWriter`] /
//! [`PayloadReader`], which encode the primitive vocabulary — integers in
//! big-endian, strings as `u32` length + UTF-8 bytes, [`Value`]s as a tag
//! byte + payload, and floats as raw IEEE-754 bits so `NaN` round-trips
//! bit-exactly.
//!
//! Result rows cross the wire in a canonical byte encoding
//! ([`encode_row`] / [`decode_row`]): score bits, the tuple's provenance
//! identity (its `(table_id, row_index)` parts), then the column values.
//! [`ResultFingerprint`] folds exactly those bytes into an FNV-1a hash, so
//! a client-side fingerprint over a TCP stream and a server-side (or
//! in-process) fingerprint over the same logical rows agree **iff** the
//! streams are byte-identical — the end-to-end oracle the load generator
//! and the CI `server-e2e` job are built on.
//!
//! This module is deliberately free of any I/O policy beyond framing: no
//! sockets, no timeouts, no sessions.  Those live in `ranksql-server` (and
//! the client driver in `ranksql-workload`); keeping the codec here means
//! both sides share one definition and cannot drift.

use std::fmt;
use std::io::{Read, Write};

use crate::error::RankSqlError;
use crate::value::Value;

/// Protocol version negotiated in `HELLO` (bumped on incompatible frame or
/// payload changes).
pub const PROTOCOL_VERSION: u16 = 1;

/// The default upper bound on a frame's length field.  Frames above the
/// limit are rejected *before* their body is read, so a corrupt or hostile
/// length prefix cannot make a peer allocate gigabytes.
pub const MAX_FRAME_LEN: u32 = 1 << 20;

/// Request opcodes (client → server).
pub mod opcode {
    /// Open a tenant session: negotiate settings (admission control).
    pub const HELLO: u8 = 0x01;
    /// Prepare a SQL text into a server-side statement.
    pub const PREPARE: u8 = 0x02;
    /// Bind parameters (and optionally `k`) to a prepared statement.
    pub const BIND: u8 = 0x03;
    /// Open a server-held streaming cursor over a bound statement.
    pub const OPEN: u8 = 0x04;
    /// Pull up to `k` rows from an open cursor.
    pub const FETCH: u8 = 0x05;
    /// Extend an exhausted top-k cursor past its limit by `k` more rows.
    pub const FETCH_MORE: u8 = 0x06;
    /// Close an open cursor.
    pub const CLOSE: u8 = 0x07;
    /// Fetch the per-tenant observability report.
    pub const STATS: u8 = 0x08;
    /// Append rows to a table (the writer side of the e2e harness).
    pub const INSERT: u8 = 0x09;

    /// Reply to [`HELLO`]: the *negotiated* (possibly clamped) settings.
    pub const HELLO_OK: u8 = 0x81;
    /// Reply to [`PREPARE`]: statement id + parameter slot count.
    pub const PREPARED: u8 = 0x82;
    /// Reply to [`BIND`]: binding id + plan-cache outcome.
    pub const BOUND: u8 = 0x83;
    /// Reply to [`OPEN`]: cursor id + result schema column names.
    pub const OPENED: u8 = 0x84;
    /// Reply to [`FETCH`] / [`FETCH_MORE`]: a batch of encoded rows.
    pub const ROWS: u8 = 0x85;
    /// Reply to [`CLOSE`]: rows the cursor emitted over its lifetime.
    pub const CLOSED: u8 = 0x86;
    /// Reply to [`STATS`]: the `key=value` report text.
    pub const STATS_OK: u8 = 0x87;
    /// Reply to [`INSERT`]: rows appended.
    pub const INSERTED: u8 = 0x88;
    /// Any request may be answered with an error frame instead.
    pub const ERROR: u8 = 0xFF;
}

/// Plan-mode codes used in `HELLO` (the wire form of `PlanMode`, which
/// lives above this crate).
pub mod mode_code {
    /// Rank-aware heuristic planning (the default).
    pub const RANK_AWARE: u8 = 0;
    /// Rank-aware exhaustive enumeration.
    pub const RANK_AWARE_EXHAUSTIVE: u8 = 1;
    /// Rank-aware rule-based (no costing).
    pub const RANK_AWARE_RULE_BASED: u8 = 2;
    /// Traditional (non-rank-aware) cost-based planning.
    pub const TRADITIONAL: u8 = 3;
    /// Canonical materialize-then-sort plans.
    pub const CANONICAL: u8 = 4;
}

/// Stable numeric error codes carried by `ERROR` frames.
///
/// Codes below 100 mirror the [`RankSqlError`] categories; codes from 100
/// up are wire/protocol-level conditions the engine itself never produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// [`RankSqlError::Schema`].
    Schema,
    /// [`RankSqlError::Catalog`].
    Catalog,
    /// [`RankSqlError::Storage`].
    Storage,
    /// [`RankSqlError::Expression`].
    Expression,
    /// [`RankSqlError::Plan`].
    Plan,
    /// [`RankSqlError::Execution`].
    Execution,
    /// [`RankSqlError::Optimizer`].
    Optimizer,
    /// [`RankSqlError::Parse`].
    Parse,
    /// [`RankSqlError::Internal`].
    Internal,
    /// The frame's payload could not be decoded.
    MalformedFrame,
    /// The frame's length field exceeded the peer's limit.
    OversizedFrame,
    /// The opcode is not a known request.
    UnknownOpcode,
    /// The statement id does not name a prepared statement.
    UnknownStatement,
    /// The cursor id does not name an open cursor.
    UnknownCursor,
    /// The tenant's negotiated tuple budget was exhausted mid-query.
    BudgetExceeded,
    /// The HELLO was rejected outright (bad version, bad mode code).
    AdmissionDenied,
    /// The connection is at its open-cursor cap.
    CursorLimit,
}

impl ErrorCode {
    /// The stable numeric form carried on the wire.
    pub fn as_u16(self) -> u16 {
        match self {
            ErrorCode::Schema => 1,
            ErrorCode::Catalog => 2,
            ErrorCode::Storage => 3,
            ErrorCode::Expression => 4,
            ErrorCode::Plan => 5,
            ErrorCode::Execution => 6,
            ErrorCode::Optimizer => 7,
            ErrorCode::Parse => 8,
            ErrorCode::Internal => 9,
            ErrorCode::MalformedFrame => 100,
            ErrorCode::OversizedFrame => 101,
            ErrorCode::UnknownOpcode => 102,
            ErrorCode::UnknownStatement => 103,
            ErrorCode::UnknownCursor => 104,
            ErrorCode::BudgetExceeded => 105,
            ErrorCode::AdmissionDenied => 106,
            ErrorCode::CursorLimit => 107,
        }
    }

    /// Decodes a wire code ([`ErrorCode::Internal`] for unknown values, so
    /// a newer server's codes degrade gracefully on an older client).
    pub fn from_u16(code: u16) -> ErrorCode {
        match code {
            1 => ErrorCode::Schema,
            2 => ErrorCode::Catalog,
            3 => ErrorCode::Storage,
            4 => ErrorCode::Expression,
            5 => ErrorCode::Plan,
            6 => ErrorCode::Execution,
            7 => ErrorCode::Optimizer,
            8 => ErrorCode::Parse,
            100 => ErrorCode::MalformedFrame,
            101 => ErrorCode::OversizedFrame,
            102 => ErrorCode::UnknownOpcode,
            103 => ErrorCode::UnknownStatement,
            104 => ErrorCode::UnknownCursor,
            105 => ErrorCode::BudgetExceeded,
            106 => ErrorCode::AdmissionDenied,
            107 => ErrorCode::CursorLimit,
            _ => ErrorCode::Internal,
        }
    }

    /// The code an engine error maps to on the wire.  Tuple-budget
    /// violations get their dedicated code (the admission-control signal a
    /// tenant acts on) even though the engine reports them as plain
    /// execution errors.
    pub fn for_engine_error(err: &RankSqlError) -> ErrorCode {
        if err.message().contains("tuple budget exceeded") {
            return ErrorCode::BudgetExceeded;
        }
        match err {
            RankSqlError::Schema(_) => ErrorCode::Schema,
            RankSqlError::Catalog(_) => ErrorCode::Catalog,
            RankSqlError::Storage(_) => ErrorCode::Storage,
            RankSqlError::Expression(_) => ErrorCode::Expression,
            RankSqlError::Plan(_) => ErrorCode::Plan,
            RankSqlError::Execution(_) => ErrorCode::Execution,
            RankSqlError::Optimizer(_) => ErrorCode::Optimizer,
            RankSqlError::Parse(_) => ErrorCode::Parse,
            RankSqlError::Internal(_) => ErrorCode::Internal,
        }
    }
}

/// Errors at the framing/codec layer.
///
/// Kept distinct from [`RankSqlError`] because the two sides react
/// differently: I/O errors tear the connection down, oversized and
/// malformed frames are answered with an `ERROR` frame and (for malformed
/// payloads) the connection survives.
#[derive(Debug)]
pub enum WireError {
    /// The underlying transport failed (includes clean EOF between frames).
    Io(std::io::Error),
    /// A frame declared a length above the configured limit.
    Oversized {
        /// The declared frame length.
        len: u32,
        /// The limit it exceeded.
        max: u32,
    },
    /// A frame or payload violated the protocol grammar.
    Malformed(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::Oversized { len, max } => {
                write!(
                    f,
                    "oversized frame: {len} bytes exceeds the {max}-byte limit"
                )
            }
            WireError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<WireError> for RankSqlError {
    fn from(e: WireError) -> Self {
        RankSqlError::Storage(e.to_string())
    }
}

/// Whether this error is a clean end-of-stream *between* frames (the peer
/// hung up without a partial frame) — the normal way a client leaves.
pub fn is_clean_eof(err: &WireError) -> bool {
    matches!(err, WireError::Io(e) if e.kind() == std::io::ErrorKind::UnexpectedEof)
}

/// Writes one frame: 4-byte big-endian length, opcode, payload.
pub fn write_frame(w: &mut impl Write, opcode: u8, payload: &[u8]) -> Result<(), WireError> {
    let len = payload.len() as u64 + 1;
    if len > u64::from(MAX_FRAME_LEN) {
        return Err(WireError::Oversized {
            len: len.min(u64::from(u32::MAX)) as u32,
            max: MAX_FRAME_LEN,
        });
    }
    w.write_all(&(len as u32).to_be_bytes())?;
    w.write_all(&[opcode])?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame, returning `(opcode, payload)`.  Frames longer than
/// `max_len` are rejected before their body is read (the length prefix has
/// been consumed, so the stream is no longer framed — callers should close
/// the connection after answering).
pub fn read_frame(r: &mut impl Read, max_len: u32) -> Result<(u8, Vec<u8>), WireError> {
    let mut header = [0u8; 4];
    r.read_exact(&mut header)?;
    let len = u32::from_be_bytes(header);
    if len == 0 {
        return Err(WireError::Malformed("zero-length frame".into()));
    }
    if len > max_len {
        return Err(WireError::Oversized { len, max: max_len });
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let opcode = body[0];
    body.drain(..1);
    Ok((opcode, body))
}

/// Builds a frame payload out of the protocol's primitive vocabulary.
#[derive(Debug, Default)]
pub struct PayloadWriter {
    buf: Vec<u8>,
}

impl PayloadWriter {
    /// An empty payload.
    pub fn new() -> Self {
        PayloadWriter::default()
    }

    /// The finished payload bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a big-endian `u16`.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a big-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a big-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a big-endian `i64` (two's complement).
    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends an `f64` as its raw IEEE-754 bits (NaN-exact).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
        self
    }

    /// Appends a [`Value`] as a tag byte plus payload.
    pub fn value(&mut self, v: &Value) -> &mut Self {
        match v {
            Value::Null => self.u8(0),
            Value::Int64(i) => self.u8(1).i64(*i),
            Value::Float64(f) => self.u8(2).f64(*f),
            Value::Bool(b) => self.u8(3).u8(u8::from(*b)),
            Value::Utf8(s) => self.u8(4).str(s),
        }
    }
}

/// Parses a frame payload; every `take_*` fails with
/// [`WireError::Malformed`] on truncation instead of panicking.
#[derive(Debug)]
pub struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        PayloadReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless the whole payload was consumed — catches payloads with
    /// trailing garbage, which would otherwise hide protocol drift.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Malformed(format!(
                "{} trailing byte(s) after the payload",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Malformed(format!(
                "truncated payload: needed {n} byte(s) for {what}, had {}",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self, what: &str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a big-endian `u16`.
    pub fn u16(&mut self, what: &str) -> Result<u16, WireError> {
        let b = self.take(2, what)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    /// Reads a big-endian `u32`.
    pub fn u32(&mut self, what: &str) -> Result<u32, WireError> {
        let b = self.take(4, what)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a big-endian `u64`.
    pub fn u64(&mut self, what: &str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a big-endian `i64`.
    pub fn i64(&mut self, what: &str) -> Result<i64, WireError> {
        Ok(self.u64(what)? as i64)
    }

    /// Reads an `f64` from its raw bits.
    pub fn f64(&mut self, what: &str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &str) -> Result<String, WireError> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Malformed(format!("{what} is not valid UTF-8")))
    }

    /// Reads a tagged [`Value`].
    pub fn value(&mut self, what: &str) -> Result<Value, WireError> {
        match self.u8(what)? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Int64(self.i64(what)?)),
            2 => Ok(Value::Float64(self.f64(what)?)),
            3 => Ok(Value::Bool(self.u8(what)? != 0)),
            4 => Ok(Value::Utf8(self.str(what)?)),
            tag => Err(WireError::Malformed(format!(
                "unknown value tag {tag} in {what}"
            ))),
        }
    }
}

/// One decoded result row as it crossed the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRow {
    /// The row's final query score.
    pub score: f64,
    /// The provenance identity: `(table_id, row_index)` constituents.
    pub id: Vec<(u32, u64)>,
    /// The projected column values.
    pub values: Vec<Value>,
}

/// Encodes one result row in the canonical byte layout shared by the
/// streaming protocol and [`ResultFingerprint`]: score bits, identity
/// parts, values.
pub fn encode_row(out: &mut PayloadWriter, score: f64, id: &[(u32, u64)], values: &[Value]) {
    out.f64(score);
    out.u8(id.len() as u8);
    for (table, row) in id {
        out.u32(*table).u64(*row);
    }
    out.u16(values.len() as u16);
    for v in values {
        out.value(v);
    }
}

/// Decodes one result row (the inverse of [`encode_row`]).
pub fn decode_row(r: &mut PayloadReader<'_>) -> Result<WireRow, WireError> {
    let score = r.f64("row score")?;
    let id_len = r.u8("row id arity")? as usize;
    let mut id = Vec::with_capacity(id_len);
    for _ in 0..id_len {
        id.push((r.u32("row id table")?, r.u64("row id index")?));
    }
    let n = r.u16("row value count")? as usize;
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(r.value("row value")?);
    }
    Ok(WireRow { score, id, values })
}

/// An order-sensitive FNV-1a fingerprint over a result stream's canonical
/// row encoding.
///
/// Two streams have equal fingerprints (hash **and** row count) iff their
/// [`encode_row`] byte sequences are identical — same rows, same order,
/// same scores bit-for-bit.  This is the verification primitive of the
/// load generator and the server e2e suite: fold the in-process reference
/// on one side, fold the TCP stream on the other, compare two `u64`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResultFingerprint {
    hash: u64,
    rows: u64,
}

impl Default for ResultFingerprint {
    fn default() -> Self {
        ResultFingerprint::new()
    }
}

impl ResultFingerprint {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

    /// The fingerprint of the empty stream.
    pub fn new() -> Self {
        ResultFingerprint {
            hash: Self::FNV_OFFSET,
            rows: 0,
        }
    }

    /// Folds raw bytes into the hash (used by `fold_row`; exposed so tests
    /// can cross-check the canonical encoding).
    pub fn fold_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash ^= u64::from(b);
            self.hash = self.hash.wrapping_mul(Self::FNV_PRIME);
        }
    }

    /// Folds one result row (score, identity, values) in the canonical
    /// encoding.
    pub fn fold_row(&mut self, score: f64, id: &[(u32, u64)], values: &[Value]) {
        let mut row = PayloadWriter::new();
        encode_row(&mut row, score, id, values);
        self.fold_bytes(&row.into_vec());
        self.rows += 1;
    }

    /// Folds a decoded [`WireRow`] (client side of the same fold).
    pub fn fold_wire_row(&mut self, row: &WireRow) {
        self.fold_row(row.score, &row.id, &row.values);
    }

    /// The fingerprint value.
    pub fn value(&self) -> u64 {
        self.hash
    }

    /// Rows folded so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }
}

impl fmt::Display for ResultFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}/{}", self.hash, self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, opcode::PREPARE, b"SELECT 1").unwrap();
        write_frame(&mut buf, opcode::STATS, b"").unwrap();
        let mut r = &buf[..];
        let (op, payload) = read_frame(&mut r, MAX_FRAME_LEN).unwrap();
        assert_eq!(
            (op, payload.as_slice()),
            (opcode::PREPARE, &b"SELECT 1"[..])
        );
        let (op, payload) = read_frame(&mut r, MAX_FRAME_LEN).unwrap();
        assert_eq!((op, payload.as_slice()), (opcode::STATS, &b""[..]));
        // Clean EOF between frames.
        let err = read_frame(&mut r, MAX_FRAME_LEN).unwrap_err();
        assert!(is_clean_eof(&err), "{err}");
    }

    #[test]
    fn oversized_and_zero_frames_are_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&100u32.to_be_bytes());
        buf.extend_from_slice(&[0u8; 100]);
        let err = read_frame(&mut &buf[..], 10).unwrap_err();
        assert!(matches!(err, WireError::Oversized { len: 100, max: 10 }));

        let zero = 0u32.to_be_bytes();
        let err = read_frame(&mut &zero[..], 10).unwrap_err();
        assert!(matches!(err, WireError::Malformed(_)), "{err}");
    }

    #[test]
    fn payload_primitives_round_trip() {
        let mut w = PayloadWriter::new();
        w.u8(7)
            .u16(300)
            .u32(70_000)
            .u64(1 << 40)
            .i64(-5)
            .f64(f64::NAN)
            .str("héllo");
        let bytes = w.into_vec();
        let mut r = PayloadReader::new(&bytes);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u16("b").unwrap(), 300);
        assert_eq!(r.u32("c").unwrap(), 70_000);
        assert_eq!(r.u64("d").unwrap(), 1 << 40);
        assert_eq!(r.i64("e").unwrap(), -5);
        assert!(r.f64("f").unwrap().is_nan());
        assert_eq!(r.str("g").unwrap(), "héllo");
        r.finish().unwrap();
    }

    #[test]
    fn values_round_trip_and_truncation_is_malformed() {
        let vals = [
            Value::Null,
            Value::Int64(-42),
            Value::Float64(0.25),
            Value::Bool(true),
            Value::Utf8("x".into()),
        ];
        let mut w = PayloadWriter::new();
        for v in &vals {
            w.value(v);
        }
        let bytes = w.into_vec();
        let mut r = PayloadReader::new(&bytes);
        for v in &vals {
            assert_eq!(&r.value("v").unwrap(), v);
        }
        r.finish().unwrap();

        let mut r = PayloadReader::new(&bytes[..bytes.len() - 1]);
        for _ in 0..4 {
            r.value("v").unwrap();
        }
        assert!(matches!(r.value("v"), Err(WireError::Malformed(_))));
    }

    #[test]
    fn trailing_bytes_fail_finish() {
        let mut w = PayloadWriter::new();
        w.u8(1).u8(2);
        let bytes = w.into_vec();
        let mut r = PayloadReader::new(&bytes);
        r.u8("one").unwrap();
        assert!(matches!(r.finish(), Err(WireError::Malformed(_))));
    }

    #[test]
    fn rows_round_trip_and_fingerprints_agree() {
        let id = vec![(1u32, 7u64), (2, 9)];
        let values = vec![Value::Int64(3), Value::Float64(0.5)];
        let mut w = PayloadWriter::new();
        encode_row(&mut w, 0.75, &id, &values);
        let bytes = w.into_vec();
        let row = decode_row(&mut PayloadReader::new(&bytes)).unwrap();
        assert_eq!(row.score, 0.75);
        assert_eq!(row.id, id);
        assert_eq!(row.values, values);

        // Server-side fold (raw parts) == client-side fold (decoded row).
        let mut server = ResultFingerprint::new();
        server.fold_row(0.75, &id, &values);
        let mut client = ResultFingerprint::new();
        client.fold_wire_row(&row);
        assert_eq!(server, client);
        assert_eq!(server.rows(), 1);

        // Any perturbation — score bits, order, values — changes the hash.
        let mut other = ResultFingerprint::new();
        other.fold_row(0.75 + 1e-15, &id, &values);
        assert_ne!(server.value(), other.value());
    }

    #[test]
    fn error_codes_round_trip_and_classify() {
        for code in [
            ErrorCode::Schema,
            ErrorCode::Parse,
            ErrorCode::MalformedFrame,
            ErrorCode::OversizedFrame,
            ErrorCode::UnknownCursor,
            ErrorCode::BudgetExceeded,
            ErrorCode::CursorLimit,
        ] {
            assert_eq!(ErrorCode::from_u16(code.as_u16()), code);
        }
        assert_eq!(ErrorCode::from_u16(9999), ErrorCode::Internal);
        let budget = RankSqlError::Execution("tuple budget exceeded: 10 > 5".into());
        assert_eq!(
            ErrorCode::for_engine_error(&budget),
            ErrorCode::BudgetExceeded
        );
        let parse = RankSqlError::Parse("nope".into());
        assert_eq!(ErrorCode::for_engine_error(&parse), ErrorCode::Parse);
    }
}
