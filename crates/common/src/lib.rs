//! Common foundational types shared by every RankSQL crate.
//!
//! This crate defines the vocabulary of the engine:
//!
//! * [`Value`] / [`DataType`] — the dynamically typed cell values stored in
//!   relations and produced by expressions.
//! * [`Schema`] / [`Field`] — (qualified) column descriptions for base tables
//!   and intermediate relations.
//! * [`Tuple`] / [`TupleId`] — rows flowing through the engine, each carrying
//!   a provenance identity used for deterministic tie-breaking (Definition 1
//!   of the paper requires a deterministic order even when scores tie).
//! * [`Score`] — a total-ordered wrapper over `f64` used for ranking scores.
//! * [`BitSet64`] — a small, copyable bitset used for relation sets and
//!   ranking-predicate sets (the two *dimensions* of the optimizer).
//! * [`Batch`] — the reusable chunk buffer of the executor's vectorized
//!   (batched) pull interface.
//! * [`WorkerPool`] — the scoped-thread pool underneath morsel-driven
//!   parallel execution.
//! * [`RankSqlError`] — the error type used across the workspace.
//! * [`wire`] — the length-prefixed client/server wire protocol: framing,
//!   payload codecs, stable error codes, and the result-stream fingerprint
//!   used for byte-identical end-to-end verification.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod bitset;
pub mod cost;
pub mod error;
pub mod pool;
pub mod schema;
pub mod score;
pub mod tuple;
pub mod value;
pub mod wire;

pub use batch::{Batch, DEFAULT_BATCH_SIZE};
pub use bitset::BitSet64;
pub use cost::Cost;
pub use error::{RankSqlError, Result};
pub use pool::{default_thread_count, morsel_ranges, WorkerPool, DEFAULT_MORSEL_SIZE, MAX_THREADS};
pub use schema::{Field, Schema};
pub use score::Score;
pub use tuple::{Tuple, TupleId};
pub use value::{cmp_f64_total, DataType, Value};
