//! Abstract plan-cost units.
//!
//! [`Cost`] lives in the common crate (rather than the optimizer) because
//! the physical plan IR in `ranksql-algebra` annotates every node with its
//! estimated cost, and the executor reports it back through `explain` —
//! three layers share the type.

use std::ops::Add;

/// A plan cost in abstract cost units (comparable, additive).
///
/// The absolute scale is meaningless; costs are only ever compared against
/// each other within one cost model.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Cost(pub f64);

impl Cost {
    /// Zero cost.
    pub const ZERO: Cost = Cost(0.0);
    /// An effectively infinite cost (used for pruned / infeasible plans).
    pub const INFINITE: Cost = Cost(f64::INFINITY);

    /// The raw value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Whether this cost is finite.
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        Cost(self.0 + rhs.0)
    }
}

impl Eq for Cost {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Cost {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .unwrap_or(std::cmp::Ordering::Equal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_arithmetic_and_ordering() {
        assert_eq!(Cost(1.0) + Cost(2.0), Cost(3.0));
        assert!(Cost(1.0) < Cost(2.0));
        assert!(Cost::INFINITE > Cost(1e12));
        assert!(!Cost::INFINITE.is_finite());
        assert!(Cost::ZERO.is_finite());
        assert_eq!(Cost(5.0).value(), 5.0);
    }
}
