//! A small scoped-thread worker pool for morsel-driven parallel execution.
//!
//! The executor's `Exchange` operator fans *morsels* — contiguous chunks of
//! a base-table scan — across a handful of worker threads and reassembles
//! the per-morsel outputs in morsel order, so parallel execution is
//! deterministic regardless of thread count or scheduling.  [`WorkerPool`]
//! is the threading primitive underneath: it runs `tasks` independent
//! closures over at most `threads` scoped threads (`std::thread::scope`, no
//! detached threads, no channels) and collects the results *in task order*.
//!
//! Failure semantics are strict so that a broken worker can never wedge a
//! query: the first task that returns an error — or panics — poisons the
//! run, remaining unstarted tasks are skipped, every already-running task is
//! allowed to finish, and [`WorkerPool::run`] returns a single clean
//! [`RankSqlError`].  The pool itself holds no state besides its size, so it
//! is trivially reusable after a failed run.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::error::{RankSqlError, Result};

/// The default number of base-table rows per morsel.
///
/// Large enough that per-morsel overheads (instantiating one operator
/// pipeline, one slot write) vanish against per-tuple work; small enough
/// that a scan splits into plenty of independent work items for the pool to
/// balance across threads.
pub const DEFAULT_MORSEL_SIZE: usize = 4096;

/// The hard upper bound on worker threads (guards against nonsense
/// configuration like `RANKSQL_THREADS=100000`).
pub const MAX_THREADS: usize = 64;

/// The process-default worker-thread count: the `RANKSQL_THREADS`
/// environment variable when set to a positive integer (clamped to
/// [`MAX_THREADS`]), otherwise 1 — parallel execution is strictly opt-in.
pub fn default_thread_count() -> usize {
    std::env::var("RANKSQL_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
        .min(MAX_THREADS)
}

/// Splits `total` items into contiguous `(start, end)` morsel ranges of at
/// most `morsel_size` items.  The split depends only on `total` and
/// `morsel_size` — never on the thread count — which is what makes parallel
/// output deterministic across pool sizes.
pub fn morsel_ranges(total: usize, morsel_size: usize) -> Vec<(usize, usize)> {
    let step = morsel_size.max(1);
    let mut out = Vec::with_capacity(total.div_ceil(step));
    let mut start = 0;
    while start < total {
        let end = (start + step).min(total);
        out.push((start, end));
        start = end;
    }
    out
}

/// A scoped-thread worker pool of a fixed size.
///
/// The pool is a value, not a set of live threads: each [`WorkerPool::run`]
/// call spawns its workers under `std::thread::scope` and joins them before
/// returning, so borrowed task state needs no `'static` bound and a
/// panicking worker can never outlive the call that launched it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// A pool of `threads` workers (clamped to `1..=`[`MAX_THREADS`]).
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            threads: threads.clamp(1, MAX_THREADS),
        }
    }

    /// The number of worker threads this pool runs.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(0) .. f(tasks - 1)` across the pool, returning the results in
    /// task order.
    ///
    /// Tasks are handed out through a shared counter (work stealing at
    /// morsel granularity): a worker that finishes a cheap task immediately
    /// grabs the next one, so skewed task costs still balance.  With one
    /// thread — or a single task — everything runs inline on the caller's
    /// thread and no thread is spawned, which is the serial degradation path
    /// of parallel plans executed with `threads = 1`.
    ///
    /// The first task error or panic cancels all not-yet-started tasks and
    /// surfaces as the `Err` of the whole run; a panic is converted into
    /// [`RankSqlError::Execution`] with the panic message.
    pub fn run<T, F>(&self, tasks: usize, f: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(usize) -> Result<T> + Sync,
    {
        if tasks == 0 {
            return Ok(Vec::new());
        }
        let workers = self.threads.min(tasks);
        let next = AtomicUsize::new(0);
        let poisoned = AtomicBool::new(false);
        let results: Mutex<Vec<Option<T>>> =
            Mutex::new(std::iter::repeat_with(|| None).take(tasks).collect());
        let failure: Mutex<Option<RankSqlError>> = Mutex::new(None);

        let worker = || loop {
            if poisoned.load(Ordering::Acquire) {
                break;
            }
            let task = next.fetch_add(1, Ordering::Relaxed);
            if task >= tasks {
                break;
            }
            match catch_unwind(AssertUnwindSafe(|| f(task))) {
                Ok(Ok(value)) => {
                    results.lock()[task] = Some(value);
                }
                Ok(Err(e)) => {
                    poisoned.store(true, Ordering::Release);
                    failure.lock().get_or_insert(e);
                    break;
                }
                Err(payload) => {
                    poisoned.store(true, Ordering::Release);
                    failure
                        .lock()
                        .get_or_insert(RankSqlError::Execution(format!(
                            "worker thread panicked: {}",
                            panic_message(payload.as_ref())
                        )));
                    break;
                }
            }
        };

        if workers == 1 {
            worker();
        } else {
            std::thread::scope(|scope| {
                // The closure captures only shared references, so it is
                // `Copy`: each spawn gets its own copy of the same loop.
                for _ in 0..workers {
                    scope.spawn(worker);
                }
            });
        }

        if let Some(e) = failure.into_inner() {
            return Err(e);
        }
        results
            .into_inner()
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.ok_or_else(|| {
                    RankSqlError::Internal(format!("worker pool lost the result of task {i}"))
                })
            })
            .collect()
    }
}

/// Best-effort extraction of a panic payload message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_come_back_in_task_order() {
        let pool = WorkerPool::new(4);
        let out = pool.run(37, |i| Ok(i * i)).unwrap();
        assert_eq!(out.len(), 37);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * i));
    }

    #[test]
    fn single_thread_runs_inline() {
        let main_thread = std::thread::current().id();
        let pool = WorkerPool::new(1);
        let out = pool
            .run(3, |i| {
                assert_eq!(std::thread::current().id(), main_thread);
                Ok(i)
            })
            .unwrap();
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn error_poisons_the_run_and_skips_remaining_tasks() {
        let started = AtomicU64::new(0);
        let pool = WorkerPool::new(1);
        let err = pool
            .run(100, |i| {
                started.fetch_add(1, Ordering::Relaxed);
                if i == 3 {
                    Err(RankSqlError::Execution("injected".into()))
                } else {
                    Ok(i)
                }
            })
            .unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        // Tasks 0..=3 started; 4..100 were cancelled.
        assert_eq!(started.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn panic_becomes_a_clean_error_and_pool_is_reusable() {
        let pool = WorkerPool::new(4);
        let err = pool
            .run(16, |i| {
                if i == 7 {
                    panic!("morsel 7 exploded");
                }
                Ok(i)
            })
            .unwrap_err();
        assert!(err.to_string().contains("worker thread panicked"), "{err}");
        assert!(err.to_string().contains("morsel 7 exploded"), "{err}");
        // The pool carries no state: the next run works normally.
        let out = pool.run(8, Ok).unwrap();
        assert_eq!(out, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn morsel_ranges_cover_exactly_once() {
        assert!(morsel_ranges(0, 100).is_empty());
        assert_eq!(morsel_ranges(10, 100), vec![(0, 10)]);
        let r = morsel_ranges(10, 3);
        assert_eq!(r, vec![(0, 3), (3, 6), (6, 9), (9, 10)]);
        // Degenerate morsel size is clamped to 1.
        assert_eq!(morsel_ranges(2, 0), vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn thread_count_clamps() {
        assert_eq!(WorkerPool::new(0).threads(), 1);
        assert_eq!(WorkerPool::new(1_000_000).threads(), MAX_THREADS);
    }
}
