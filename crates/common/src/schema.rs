//! Schemas describing base tables and intermediate relations.

use std::fmt;
use std::sync::Arc;

use crate::error::{RankSqlError, Result};
use crate::value::DataType;

/// A single column description.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Field {
    /// Optional relation qualifier (e.g. `"Hotel"` in `Hotel.price`).
    pub relation: Option<String>,
    /// Column name.
    pub name: String,
    /// Column type.
    pub data_type: DataType,
}

impl Field {
    /// Creates an unqualified field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            relation: None,
            name: name.into(),
            data_type,
        }
    }

    /// Creates a field qualified by a relation name.
    pub fn qualified(
        relation: impl Into<String>,
        name: impl Into<String>,
        data_type: DataType,
    ) -> Self {
        Field {
            relation: Some(relation.into()),
            name: name.into(),
            data_type,
        }
    }

    /// Returns the fully qualified `relation.name` (or just `name`).
    pub fn qualified_name(&self) -> String {
        match &self.relation {
            Some(rel) => format!("{rel}.{}", self.name),
            None => self.name.clone(),
        }
    }

    /// Returns a copy of this field re-qualified with `relation`.
    pub fn with_relation(&self, relation: impl Into<String>) -> Field {
        Field {
            relation: Some(relation.into()),
            name: self.name.clone(),
            data_type: self.data_type,
        }
    }

    /// Whether a `[rel.]name` reference matches this field.
    fn matches(&self, relation: Option<&str>, name: &str) -> bool {
        if self.name != name {
            return false;
        }
        match (relation, &self.relation) {
            (Some(r), Some(fr)) => r == fr,
            (Some(_), None) => false,
            (None, _) => true,
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.qualified_name(), self.data_type)
    }
}

/// An ordered collection of [`Field`]s describing a relation.
///
/// Schemas are cheaply clonable (`Arc` internally) because every tuple stream
/// and plan node carries one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Arc<Vec<Field>>,
}

impl Schema {
    /// Creates a schema from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema {
            fields: Arc::new(fields),
        }
    }

    /// An empty schema.
    pub fn empty() -> Self {
        Schema::new(Vec::new())
    }

    /// The fields of the schema.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether this schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Returns the field at position `i`.
    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Finds a column by `[relation.]name` reference, returning its index.
    ///
    /// Unqualified references are ambiguous if more than one field matches.
    pub fn index_of(&self, relation: Option<&str>, name: &str) -> Result<usize> {
        let mut found = None;
        for (i, f) in self.fields.iter().enumerate() {
            if f.matches(relation, name) {
                if found.is_some() {
                    return Err(RankSqlError::Schema(format!(
                        "ambiguous column reference `{}`",
                        qualify(relation, name)
                    )));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| {
            RankSqlError::Schema(format!("column `{}` not found", qualify(relation, name)))
        })
    }

    /// Finds a column by qualified string such as `"A.x"` or `"x"`.
    pub fn index_of_str(&self, column: &str) -> Result<usize> {
        match column.split_once('.') {
            Some((rel, name)) => self.index_of(Some(rel), name),
            None => self.index_of(None, column),
        }
    }

    /// Concatenates two schemas (used by joins and products).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut fields = Vec::with_capacity(self.len() + other.len());
        fields.extend_from_slice(self.fields());
        fields.extend_from_slice(other.fields());
        Schema::new(fields)
    }

    /// Projects the schema onto the given column indices.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema::new(indices.iter().map(|&i| self.fields[i].clone()).collect())
    }

    /// Returns a schema with all fields re-qualified by `relation`.
    pub fn qualify_all(&self, relation: &str) -> Schema {
        Schema::new(
            self.fields
                .iter()
                .map(|f| f.with_relation(relation))
                .collect(),
        )
    }
}

fn qualify(relation: Option<&str>, name: &str) -> String {
    match relation {
        Some(r) => format!("{r}.{name}"),
        None => name.to_owned(),
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{field}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc_schema() -> Schema {
        Schema::new(vec![
            Field::qualified("A", "x", DataType::Int64),
            Field::qualified("A", "y", DataType::Float64),
            Field::qualified("B", "x", DataType::Int64),
        ])
    }

    #[test]
    fn qualified_lookup() {
        let s = abc_schema();
        assert_eq!(s.index_of(Some("A"), "x").unwrap(), 0);
        assert_eq!(s.index_of(Some("B"), "x").unwrap(), 2);
        assert_eq!(s.index_of_str("A.y").unwrap(), 1);
    }

    #[test]
    fn unqualified_lookup_detects_ambiguity() {
        let s = abc_schema();
        assert!(matches!(
            s.index_of(None, "x"),
            Err(RankSqlError::Schema(_))
        ));
        assert_eq!(s.index_of(None, "y").unwrap(), 1);
    }

    #[test]
    fn missing_column_errors() {
        let s = abc_schema();
        assert!(s.index_of_str("A.z").is_err());
        assert!(s.index_of_str("z").is_err());
    }

    #[test]
    fn join_concatenates_fields() {
        let left = Schema::new(vec![Field::qualified("R", "a", DataType::Int64)]);
        let right = Schema::new(vec![Field::qualified("S", "b", DataType::Int64)]);
        let joined = left.join(&right);
        assert_eq!(joined.len(), 2);
        assert_eq!(joined.field(0).qualified_name(), "R.a");
        assert_eq!(joined.field(1).qualified_name(), "S.b");
    }

    #[test]
    fn project_selects_and_reorders() {
        let s = abc_schema();
        let p = s.project(&[2, 0]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.field(0).qualified_name(), "B.x");
        assert_eq!(p.field(1).qualified_name(), "A.x");
    }

    #[test]
    fn qualify_all_rewrites_relation() {
        let s = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Utf8),
        ]);
        let q = s.qualify_all("T");
        assert_eq!(q.field(0).qualified_name(), "T.a");
        assert_eq!(q.field(1).qualified_name(), "T.b");
    }

    #[test]
    fn display_formats() {
        let s = Schema::new(vec![Field::qualified("R", "a", DataType::Int64)]);
        assert_eq!(s.to_string(), "[R.a: INT64]");
        assert!(Schema::empty().is_empty());
    }
}
