//! Tuples (rows) and their provenance identities.

use std::fmt;
use std::sync::Arc;

use crate::value::Value;

#[derive(Debug, Clone)]
enum IdParts {
    /// A single-constituent (base-table or synthetic) identity, stored
    /// inline: cloning a base tuple allocates nothing, which matters on the
    /// scan hot path where every snapshot clone copies N identities.
    Single([(u32, u64); 1]),
    /// A join identity (≥ 2 constituents, sorted); `Arc`-shared so cloning
    /// join results into ranking queues and hash tables is one refcount
    /// bump instead of a heap allocation.
    Joined(Arc<[(u32, u64)]>),
}

/// The identity of a tuple.
///
/// Base-table tuples are identified by `(table_id, row_index)`; tuples
/// produced by joins carry the identities of all their constituents.  The
/// identity serves two purposes in the rank-relational model:
///
/// 1. a deterministic tie-breaker when maximal-possible scores are equal
///    (Definition 1 allows "an arbitrary deterministic tie-breaker function,
///    e.g. by unique tuple IDs"), and
/// 2. duplicate detection for the set operators (∪, ∩, −) and for counting
///    distinct tuples in the cardinality estimator.
///
/// Equality, ordering and hashing are all defined over [`TupleId::parts`],
/// regardless of the internal representation.
pub struct TupleId {
    parts: IdParts,
}

impl TupleId {
    /// Identity of a base-table tuple.
    pub fn base(table_id: u32, row_index: u64) -> Self {
        TupleId {
            parts: IdParts::Single([(table_id, row_index)]),
        }
    }

    /// An identity for tuples synthesised outside any table (e.g. literals in
    /// tests); uses table id `u32::MAX`.
    pub fn synthetic(n: u64) -> Self {
        TupleId::base(u32::MAX, n)
    }

    /// Combines two identities (join / product): the result is the multiset
    /// union of constituents kept in sorted order so that combination is
    /// commutative and associative.
    pub fn combine(&self, other: &TupleId) -> TupleId {
        let a = self.parts();
        let b = other.parts();
        // Base ⋈ base is the overwhelmingly common case on the join hot
        // path: order the two constituents directly, skipping the
        // intermediate vector and the sort.
        if let ([x], [y]) = (a, b) {
            let pair = if x <= y { [*x, *y] } else { [*y, *x] };
            return TupleId {
                parts: IdParts::Joined(Arc::from(pair.as_slice())),
            };
        }
        let mut parts = Vec::with_capacity(a.len() + b.len());
        parts.extend_from_slice(a);
        parts.extend_from_slice(b);
        parts.sort_unstable();
        TupleId {
            parts: IdParts::Joined(parts.into()),
        }
    }

    /// The constituent `(table_id, row_index)` pairs.
    pub fn parts(&self) -> &[(u32, u64)] {
        match &self.parts {
            IdParts::Single(one) => one,
            IdParts::Joined(many) => many,
        }
    }
}

impl Clone for TupleId {
    fn clone(&self) -> Self {
        TupleId {
            parts: self.parts.clone(),
        }
    }
}

impl fmt::Debug for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TupleId")
            .field("parts", &self.parts())
            .finish()
    }
}

impl PartialEq for TupleId {
    fn eq(&self, other: &Self) -> bool {
        self.parts() == other.parts()
    }
}

impl Eq for TupleId {}

impl std::hash::Hash for TupleId {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.parts().hash(state);
    }
}

impl PartialOrd for TupleId {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TupleId {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.parts().cmp(other.parts())
    }
}

impl fmt::Display for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#")?;
        for (i, (t, r)) in self.parts().iter().enumerate() {
            if i > 0 {
                write!(f, "+")?;
            }
            if *t == u32::MAX {
                write!(f, "s{r}")?;
            } else {
                write!(f, "{t}:{r}")?;
            }
        }
        Ok(())
    }
}

/// A row of values together with its identity.
///
/// The value vector is shared (`Arc`) because tuples are buffered in priority
/// queues, hash tables and sample caches simultaneously.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tuple {
    id: TupleId,
    values: Arc<Vec<Value>>,
}

impl Tuple {
    /// Creates a tuple with an explicit identity.
    pub fn new(id: TupleId, values: Vec<Value>) -> Self {
        Tuple {
            id,
            values: Arc::new(values),
        }
    }

    /// Creates a synthetic tuple (identity derived from `n`).
    pub fn synthetic(n: u64, values: Vec<Value>) -> Self {
        Tuple::new(TupleId::synthetic(n), values)
    }

    /// The identity of this tuple.
    pub fn id(&self) -> &TupleId {
        &self.id
    }

    /// The values of this tuple.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The value at column `i`.
    pub fn value(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Concatenates two tuples (join / product), combining identities.
    pub fn join(&self, other: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.arity() + other.arity());
        values.extend_from_slice(self.values());
        values.extend_from_slice(other.values());
        Tuple {
            id: self.id.combine(&other.id),
            values: Arc::new(values),
        }
    }

    /// Projects this tuple onto the given column indices (keeping identity).
    pub fn project(&self, indices: &[usize]) -> Tuple {
        let values = indices.iter().map(|&i| self.values[i].clone()).collect();
        Tuple {
            id: self.id.clone(),
            values: Arc::new(values),
        }
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.id)?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_and_synthetic_ids_differ() {
        assert_ne!(TupleId::base(0, 1), TupleId::synthetic(1));
        assert_eq!(TupleId::base(2, 3), TupleId::base(2, 3));
    }

    #[test]
    fn combine_is_commutative() {
        let a = TupleId::base(1, 10);
        let b = TupleId::base(2, 20);
        assert_eq!(a.combine(&b), b.combine(&a));
    }

    #[test]
    fn combine_is_associative() {
        let a = TupleId::base(1, 1);
        let b = TupleId::base(2, 2);
        let c = TupleId::base(3, 3);
        assert_eq!(a.combine(&b).combine(&c), a.combine(&b.combine(&c)));
    }

    #[test]
    fn join_concatenates_values_and_ids() {
        let t1 = Tuple::new(TupleId::base(0, 0), vec![Value::from(1), Value::from(2)]);
        let t2 = Tuple::new(TupleId::base(1, 5), vec![Value::from("x")]);
        let j = t1.join(&t2);
        assert_eq!(j.arity(), 3);
        assert_eq!(j.value(2), &Value::from("x"));
        assert_eq!(j.id().parts().len(), 2);
    }

    #[test]
    fn project_keeps_identity() {
        let t = Tuple::new(
            TupleId::base(0, 7),
            vec![Value::from(1), Value::from(2), Value::from(3)],
        );
        let p = t.project(&[2, 0]);
        assert_eq!(p.values(), &[Value::from(3), Value::from(1)]);
        assert_eq!(p.id(), t.id());
    }

    #[test]
    fn display_is_compact() {
        let t = Tuple::new(TupleId::base(1, 2), vec![Value::from(9)]);
        assert_eq!(t.to_string(), "#1:2(9)");
        let s = Tuple::synthetic(4, vec![Value::Null]);
        assert_eq!(s.to_string(), "#s4(NULL)");
    }

    #[test]
    fn tuple_ids_provide_total_order_for_tie_breaking() {
        let mut ids = [
            TupleId::base(1, 2),
            TupleId::base(0, 9),
            TupleId::base(1, 0),
        ];
        ids.sort();
        assert_eq!(ids[0], TupleId::base(0, 9));
        assert_eq!(ids[1], TupleId::base(1, 0));
    }
}
