//! A reusable batch buffer for vectorized operator execution.
//!
//! The executor's batched pull interface moves tuples between operators in
//! chunks instead of one at a time, amortizing per-call dispatch (virtual
//! `next()` calls, metric updates, budget accounting) over many tuples.  The
//! chunks travel in a [`Batch`]: a thin wrapper over `Vec<T>` whose point is
//! to be *reused* — the driver clears it between pulls, so after warm-up no
//! per-batch allocation happens on the hot path.

use std::ops::{Deref, DerefMut};

/// The default number of tuples per batch.
///
/// Large enough that per-batch overheads (one virtual dispatch, one metrics
/// update, one budget charge) vanish against per-tuple work; small enough
/// that a batch of joined tuples stays cache-resident.
pub const DEFAULT_BATCH_SIZE: usize = 1024;

/// A reusable buffer of items flowing between batched operators.
///
/// Dereferences to `Vec<T>`, so all the usual vector operations apply.  The
/// one behavioural promise on top of `Vec` is reuse: [`Batch::clear`] keeps
/// the allocation, so a driver looping `clear` → `next_batch` allocates only
/// on the first iteration (and on capacity growth).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch<T> {
    items: Vec<T>,
}

impl<T> Batch<T> {
    /// An empty batch with no capacity reserved yet.
    pub fn new() -> Self {
        Batch { items: Vec::new() }
    }

    /// An empty batch with room for `capacity` items.
    pub fn with_capacity(capacity: usize) -> Self {
        Batch {
            items: Vec::with_capacity(capacity),
        }
    }

    /// Removes all items, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Consumes the batch, returning the underlying vector.
    pub fn into_vec(self) -> Vec<T> {
        self.items
    }
}

impl<T> Default for Batch<T> {
    fn default() -> Self {
        Batch::new()
    }
}

impl<T> Deref for Batch<T> {
    type Target = Vec<T>;

    fn deref(&self) -> &Vec<T> {
        &self.items
    }
}

impl<T> DerefMut for Batch<T> {
    fn deref_mut(&mut self) -> &mut Vec<T> {
        &mut self.items
    }
}

impl<T> From<Vec<T>> for Batch<T> {
    fn from(items: Vec<T>) -> Self {
        Batch { items }
    }
}

impl<T> IntoIterator for Batch<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl<'a, T> IntoIterator for &'a Batch<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_reuses_its_allocation() {
        let mut b: Batch<u64> = Batch::with_capacity(8);
        b.extend(0..8);
        assert_eq!(b.len(), 8);
        let cap = b.capacity();
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), cap, "clear must keep the allocation");
        b.push(42);
        assert_eq!(b[0], 42);
    }

    #[test]
    fn batch_converts_to_and_from_vec() {
        let b: Batch<i32> = vec![1, 2, 3].into();
        assert_eq!(b.iter().sum::<i32>(), 6);
        let v = b.into_vec();
        assert_eq!(v, vec![1, 2, 3]);
        let collected: Vec<i32> = Batch::from(v).into_iter().collect();
        assert_eq!(collected, vec![1, 2, 3]);
    }
}
