//! Dynamically typed cell values and their data types.

use std::cmp::Ordering;
use std::fmt;

/// The logical type of a [`Value`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int64,
    /// 64-bit IEEE-754 floating point.
    Float64,
    /// Boolean.
    Bool,
    /// UTF-8 string.
    Utf8,
    /// The type of SQL `NULL` when no better type is known.
    Null,
}

impl DataType {
    /// Returns `true` if values of this type can be used in arithmetic.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int64 | DataType::Float64)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int64 => "INT64",
            DataType::Float64 => "FLOAT64",
            DataType::Bool => "BOOL",
            DataType::Utf8 => "UTF8",
            DataType::Null => "NULL",
        };
        f.write_str(s)
    }
}

/// A dynamically typed cell value.
///
/// `Value` implements a *total* order (`Ord`) so that values can be used as
/// index keys and sort keys: `Null` sorts before everything, numeric values
/// compare numerically across `Int64`/`Float64`, `NaN` sorts after all other
/// floats, and values of different non-numeric types compare by a fixed type
/// rank. Equality follows the same rules (so `Int64(1) == Float64(1.0)`).
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int64(i64),
    /// 64-bit float.
    Float64(f64),
    /// Boolean.
    Bool(bool),
    /// UTF-8 string.
    Utf8(String),
}

impl Value {
    /// Returns the [`DataType`] of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Null => DataType::Null,
            Value::Int64(_) => DataType::Int64,
            Value::Float64(_) => DataType::Float64,
            Value::Bool(_) => DataType::Bool,
            Value::Utf8(_) => DataType::Utf8,
        }
    }

    /// Returns `true` if this value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interprets this value as a float, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int64(i) => Some(*i as f64),
            Value::Float64(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Interprets this value as an integer, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int64(i) => Some(*i),
            Value::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// Interprets this value as a boolean, if it is a boolean.
    ///
    /// Follows SQL three-valued logic at the caller: `Null` yields `None`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            Value::Int64(i) => Some(*i != 0),
            _ => None,
        }
    }

    /// Interprets this value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Utf8(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// A rank used to order values of different types in the total order.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int64(_) | Value::Float64(_) => 2,
            Value::Utf8(_) => 3,
        }
    }

    /// Compares two floats with a total order: `NaN` sorts greater than
    /// every non-NaN value and equal to itself.
    fn cmp_f64(a: f64, b: f64) -> Ordering {
        cmp_f64_total(a, b)
    }
}

/// The total order over `f64` that [`Value`] comparisons use: `NaN` sorts
/// greater than every non-NaN value and equal to itself.
///
/// Public because the columnar zone maps fold block minima/maxima with this
/// exact order — their pruning soundness depends on matching the order the
/// executor's filters see, so there must be one definition.
pub fn cmp_f64_total(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => a.partial_cmp(&b).expect("non-NaN floats compare"),
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int64(a), Int64(b)) => a.cmp(b),
            (Utf8(a), Utf8(b)) => a.cmp(b),
            (Int64(a), Float64(b)) => Value::cmp_f64(*a as f64, *b),
            (Float64(a), Int64(b)) => Value::cmp_f64(*a, *b as f64),
            (Float64(a), Float64(b)) => Value::cmp_f64(*a, *b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // The hash must be consistent with the cross-type numeric equality
        // above, so all numeric values hash through their f64 bit pattern
        // (canonicalising -0.0 to 0.0 and all NaNs to one pattern).
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                state.write_u8(u8::from(*b));
            }
            Value::Int64(i) => {
                state.write_u8(2);
                hash_f64(*i as f64, state);
            }
            Value::Float64(f) => {
                state.write_u8(2);
                hash_f64(*f, state);
            }
            Value::Utf8(s) => {
                state.write_u8(3);
                s.hash(state);
            }
        }
    }
}

fn hash_f64<H: std::hash::Hasher>(f: f64, state: &mut H) {
    let canonical = if f == 0.0 {
        0.0_f64
    } else if f.is_nan() {
        f64::NAN
    } else {
        f
    };
    state.write_u64(canonical.to_bits());
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int64(i) => write!(f, "{i}"),
            Value::Float64(v) => write!(f, "{v}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Utf8(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int64(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int64(i64::from(v))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Utf8(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Utf8(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(Value::Int64(3), Value::Float64(3.0));
        assert_ne!(Value::Int64(3), Value::Float64(3.5));
        assert_eq!(hash_of(&Value::Int64(3)), hash_of(&Value::Float64(3.0)));
    }

    #[test]
    fn null_sorts_first() {
        assert!(Value::Null < Value::Bool(false));
        assert!(Value::Null < Value::Int64(i64::MIN));
        assert!(Value::Null < Value::Utf8(String::new()));
    }

    #[test]
    fn nan_sorts_last_among_numbers() {
        assert!(Value::Float64(f64::NAN) > Value::Float64(f64::MAX));
        assert_eq!(Value::Float64(f64::NAN), Value::Float64(f64::NAN));
    }

    #[test]
    fn negative_zero_equals_zero_and_hashes_alike() {
        assert_eq!(Value::Float64(-0.0), Value::Float64(0.0));
        assert_eq!(
            hash_of(&Value::Float64(-0.0)),
            hash_of(&Value::Float64(0.0))
        );
    }

    #[test]
    fn ordering_of_strings() {
        assert!(Value::from("abc") < Value::from("abd"));
        assert!(Value::from("abc") > Value::Int64(1_000));
    }

    #[test]
    fn as_accessors() {
        assert_eq!(Value::Int64(7).as_f64(), Some(7.0));
        assert_eq!(Value::Float64(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::from("x").as_f64(), None);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int64(0).as_bool(), Some(false));
        assert_eq!(Value::Null.as_bool(), None);
        assert_eq!(Value::from("hi").as_str(), Some("hi"));
    }

    #[test]
    fn display_round_trip_is_reasonable() {
        assert_eq!(Value::Int64(42).to_string(), "42");
        assert_eq!(Value::from("a").to_string(), "'a'");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn data_type_properties() {
        assert!(DataType::Int64.is_numeric());
        assert!(DataType::Float64.is_numeric());
        assert!(!DataType::Utf8.is_numeric());
        assert_eq!(Value::from(true).data_type(), DataType::Bool);
        assert_eq!(DataType::Utf8.to_string(), "UTF8");
    }
}
