//! The database catalog: named tables with automatically assigned ids.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;
use ranksql_common::{RankSqlError, Result, Schema};

use crate::recovery::PagedStore;
use crate::table::Table;

/// A named collection of tables.
///
/// The catalog owns table-id assignment so that tuple identities
/// (`TupleId::base(table_id, row)`) are unique across the database.
///
/// A catalog can be backed by a [`PagedStore`] (see
/// [`PagedStore::open`], which attaches itself): every table created
/// afterwards gets data/WAL files and a durable catalog entry, and its
/// inserts follow the write-ahead-log protocol.
#[derive(Debug, Default)]
pub struct Catalog {
    inner: RwLock<CatalogInner>,
}

#[derive(Debug, Default)]
struct CatalogInner {
    tables: BTreeMap<String, Arc<Table>>,
    next_id: u32,
    store: Option<Arc<PagedStore>>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Creates a new empty table with the given schema.
    ///
    /// Field qualifiers of the schema are rewritten to the table name so
    /// that columns are addressable as `table.column`.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<Arc<Table>> {
        let mut inner = self.inner.write();
        if inner.tables.contains_key(name) {
            return Err(RankSqlError::Catalog(format!(
                "table `{name}` already exists"
            )));
        }
        let id = inner.next_id;
        inner.next_id += 1;
        let table = Arc::new(Table::new(id, name, schema.qualify_all(name)));
        if let Some(store) = inner.store.clone() {
            // Durable before visible: if the files or the catalog rewrite
            // fail, the table never appears (the id is burned, which is
            // harmless — ids only need to be unique).
            store.register_table(&table)?;
        }
        inner.tables.insert(name.to_owned(), Arc::clone(&table));
        Ok(table)
    }

    /// Registers an already built table (used by the workload generators).
    /// On a paged catalog the table's existing rows are persisted as part
    /// of the registration.
    pub fn register_table(&self, table: Table) -> Result<Arc<Table>> {
        let mut inner = self.inner.write();
        let name = table.name().to_owned();
        if inner.tables.contains_key(&name) {
            return Err(RankSqlError::Catalog(format!(
                "table `{name}` already exists"
            )));
        }
        inner.next_id = inner.next_id.max(table.id() + 1);
        let arc = Arc::new(table);
        if let Some(store) = inner.store.clone() {
            store.register_table(&arc)?;
        }
        inner.tables.insert(name, Arc::clone(&arc));
        Ok(arc)
    }

    /// Re-registers a table recovered from disk (the crash-recovery path
    /// of [`PagedStore::open`]): no store hook — its files already exist.
    pub(crate) fn adopt_recovered(&self, table: Table) -> Result<Arc<Table>> {
        let mut inner = self.inner.write();
        let name = table.name().to_owned();
        if inner.tables.contains_key(&name) {
            return Err(RankSqlError::Catalog(format!(
                "table `{name}` already exists"
            )));
        }
        inner.next_id = inner.next_id.max(table.id() + 1);
        let arc = Arc::new(table);
        inner.tables.insert(name, Arc::clone(&arc));
        Ok(arc)
    }

    /// Attaches the paged store backing this catalog (done by
    /// [`PagedStore::open`] after recovery).
    pub(crate) fn attach_paged_store(&self, store: Arc<PagedStore>) {
        self.inner.write().store = Some(store);
    }

    /// The paged store backing this catalog, if any.
    pub fn paged_store(&self) -> Option<Arc<PagedStore>> {
        self.inner.read().store.clone()
    }

    /// Looks up a table by name.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.inner
            .read()
            .tables
            .get(name)
            .cloned()
            .ok_or_else(|| RankSqlError::Catalog(format!("table `{name}` not found")))
    }

    /// Whether a table exists.
    pub fn contains(&self, name: &str) -> bool {
        self.inner.read().tables.contains_key(name)
    }

    /// Removes a table; returns whether it existed.  On a paged catalog
    /// the table's files are deleted and the durable catalog rewritten, so
    /// a dropped table cannot resurrect at the next open.
    pub fn drop_table(&self, name: &str) -> bool {
        let mut inner = self.inner.write();
        match inner.tables.remove(name) {
            Some(table) => {
                if let Some(store) = inner.store.clone() {
                    let _ = store.unregister_table(table.id());
                }
                true
            }
            None => false,
        }
    }

    /// The names of all tables (sorted).
    pub fn table_names(&self) -> Vec<String> {
        self.inner.read().tables.keys().cloned().collect()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.inner.read().tables.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The next table id that would be assigned (for building tables
    /// externally with [`crate::table::TableBuilder`]).
    pub fn peek_next_id(&self) -> u32 {
        self.inner.read().next_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ranksql_common::{DataType, Field, Value};

    fn schema() -> Schema {
        Schema::new(vec![Field::new("x", DataType::Int64)])
    }

    #[test]
    fn create_and_lookup() {
        let cat = Catalog::new();
        let t = cat.create_table("A", schema()).unwrap();
        assert_eq!(t.id(), 0);
        assert_eq!(t.schema().field(0).qualified_name(), "A.x");
        let t2 = cat.create_table("B", schema()).unwrap();
        assert_eq!(t2.id(), 1);
        assert!(cat.contains("A"));
        assert_eq!(cat.table("A").unwrap().name(), "A");
        assert!(cat.table("Z").is_err());
        assert_eq!(cat.table_names(), vec!["A".to_string(), "B".to_string()]);
        assert_eq!(cat.len(), 2);
    }

    #[test]
    fn duplicate_rejected() {
        let cat = Catalog::new();
        cat.create_table("A", schema()).unwrap();
        assert!(cat.create_table("A", schema()).is_err());
    }

    #[test]
    fn drop_table() {
        let cat = Catalog::new();
        cat.create_table("A", schema()).unwrap();
        assert!(cat.drop_table("A"));
        assert!(!cat.drop_table("A"));
        assert!(cat.is_empty());
    }

    #[test]
    fn register_prebuilt_table_advances_ids() {
        let cat = Catalog::new();
        let t = crate::table::TableBuilder::new("W", schema().qualify_all("W"))
            .row(vec![Value::from(1)])
            .build(5)
            .unwrap();
        cat.register_table(t).unwrap();
        assert_eq!(cat.peek_next_id(), 6);
        let next = cat.create_table("X", schema()).unwrap();
        assert_eq!(next.id(), 6);
    }

    #[test]
    fn shared_table_handles_see_inserts() {
        let cat = Catalog::new();
        let t = cat.create_table("A", schema()).unwrap();
        let t_again = cat.table("A").unwrap();
        t.insert(vec![Value::from(42)]).unwrap();
        assert_eq!(t_again.row_count(), 1);
    }
}
