//! In-memory heap tables with MVCC snapshot reads.
//!
//! A [`Table`] is append-only: row indices are stable, so any *prefix* of
//! the row heap is an immutable snapshot.  [`Table::pin_epoch`] captures one
//! — the sealed columnar blocks plus a frozen copy of the delta tail — and
//! readers holding a [`TableEpoch`] stream those rows forever, regardless of
//! concurrent appends.  Writers never rebuild: inserts fold into the stats
//! delta and, at each 1024-row boundary, seal exactly one new columnar
//! block (see [`Table::insert`]).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::{Mutex, RwLock};
use ranksql_common::{RankSqlError, Result, Schema, Tuple, TupleId, Value};

use crate::column::{ColumnTable, COLUMN_BLOCK_ROWS};
use crate::index::{BTreeIndex, HashIndex, ScoreIndex};
use crate::recovery::TableStore;
use crate::stats::StatsCatalog;

/// The statistics catalog split along the seal boundary: `sealed` covers
/// the rows folded in at past 1024-row boundaries, `delta` the streaming
/// tail.  Reads merge the two; sealing folds the delta partial into the
/// sealed catalog and resets it — the same partial-merge the from-scratch
/// [`StatsCatalog::build`] performs, so both paths agree exactly.
#[derive(Debug)]
struct StatsPair {
    sealed: StatsCatalog,
    delta: StatsCatalog,
}

impl StatsPair {
    fn merged(&self) -> StatsCatalog {
        let mut m = self.sealed.clone();
        m.merge(&self.delta);
        m
    }
}

/// An immutable read snapshot of a [`Table`]: the epoch a cursor, prepared
/// execution or scan spine pins at open time.
///
/// An epoch is a row-count watermark plus the physical structures that cover
/// it: the sealed columnar blocks published at pin time (when the reader
/// wants the columnar layout) and a frozen copy of the delta tail — the rows
/// past the sealed coverage.  Because the table is append-only and sealed
/// blocks are never mutated, everything in here stays valid no matter how
/// many rows writers append after the pin: readers never block writers and
/// writers never invalidate readers.
#[derive(Debug)]
pub struct TableEpoch {
    table_id: u32,
    row_count: usize,
    columnar: Option<Arc<ColumnTable>>,
    /// Rows past the sealed columnar coverage, frozen at pin time (empty
    /// when the epoch was pinned without the columnar projection — row
    /// readers re-slice the heap prefix by the watermark instead).
    tail: Arc<Vec<Tuple>>,
}

impl TableEpoch {
    /// The id of the table this epoch snapshots.
    pub fn table_id(&self) -> u32 {
        self.table_id
    }

    /// The epoch ordinal.  Tables are append-only, so the row-count
    /// watermark doubles as the version number: every committed insert
    /// advances it.
    pub fn ordinal(&self) -> u64 {
        self.row_count as u64
    }

    /// The row-count watermark: readers of this epoch see exactly the rows
    /// `0..row_count()`.
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// The sealed columnar blocks pinned by this epoch, when it was pinned
    /// with the columnar layout.  Coverage is at most the watermark; the
    /// rows in between are in [`TableEpoch::tail`].
    pub fn columnar(&self) -> Option<&Arc<ColumnTable>> {
        self.columnar.as_ref()
    }

    /// The frozen delta tail: the epoch's rows past the sealed columnar
    /// coverage, in row-major layout.
    pub fn tail(&self) -> &Arc<Vec<Tuple>> {
        &self.tail
    }

    /// The maximal possible ranking score of `column` across the whole
    /// epoch: the sealed blocks' zone-map fold combined with the frozen
    /// tail's values (clamped into `[0, 1]`, `NaN` ignored — the same fold
    /// the per-block score maxima use).  `None` when the column cannot be
    /// bounded (non-numeric values, or no columnar projection pinned).
    pub fn score_max(&self, column: usize) -> Option<f64> {
        let columnar = self.columnar.as_ref()?;
        let mut acc = columnar.table_score_max(column)?;
        for t in self.tail.iter() {
            match t.value(column).as_f64() {
                Some(f) if f.is_nan() => {}
                Some(f) => acc = acc.max(f.clamp(0.0, 1.0)),
                None => return None,
            }
        }
        Some(acc)
    }
}

/// The epochs pinned by one query execution, at most one per table.
///
/// All scans of a plan resolve their table through the same `EpochSet`, so
/// every access path of one execution (including self-joins and the morsel
/// spines of a parallel exchange) reads the same watermark.  Pins are taken
/// lazily on first touch and cached.
#[derive(Debug, Default)]
pub struct EpochSet {
    pins: Mutex<HashMap<u32, Arc<TableEpoch>>>,
}

impl EpochSet {
    /// An empty set.
    pub fn new() -> Self {
        EpochSet::default()
    }

    /// The pinned epoch for `table`, pinning one on first touch.
    ///
    /// `with_columnar` asks for the sealed columnar blocks to be part of the
    /// snapshot; if the table was first pinned row-only and a columnar scan
    /// shows up later, the pin is upgraded in place *at the same watermark*,
    /// so mixed access paths still agree on what they see.
    pub fn pin(&self, table: &Table, with_columnar: bool) -> Arc<TableEpoch> {
        let mut pins = self.pins.lock();
        if let Some(existing) = pins.get(&table.id()) {
            if !with_columnar || existing.columnar.is_some() {
                return Arc::clone(existing);
            }
            let upgraded = table.epoch_with_columnar_at(existing.row_count);
            pins.insert(table.id(), Arc::clone(&upgraded));
            return upgraded;
        }
        let pinned = table.pin_epoch(with_columnar);
        pins.insert(table.id(), Arc::clone(&pinned));
        pinned
    }

    /// The already-pinned epoch for a table id, if any.
    pub fn get(&self, table_id: u32) -> Option<Arc<TableEpoch>> {
        self.pins.lock().get(&table_id).cloned()
    }

    /// A snapshot of every pin as `(table_id, epoch_ordinal)` pairs, sorted
    /// by table id — the observable form of a cursor's MVCC snapshot (the
    /// server's STATS verb reports exactly this).
    pub fn pins(&self) -> Vec<(u32, u64)> {
        let pins = self.pins.lock();
        let mut out: Vec<(u32, u64)> = pins
            .iter()
            .map(|(id, epoch)| (*id, epoch.ordinal()))
            .collect();
        out.sort_unstable();
        out
    }
}

/// An append-only, in-memory table.
///
/// Rows are stored as [`Tuple`]s whose identity is `(table_id, row_index)`;
/// scanning therefore yields tuples that can be deduplicated and tie-broken
/// deterministically anywhere downstream.  Indexes built on the table are
/// kept alongside it and can be looked up by name.
pub struct Table {
    id: u32,
    name: String,
    schema: Schema,
    rows: RwLock<Vec<Tuple>>,
    score_indexes: RwLock<Vec<Arc<ScoreIndex>>>,
    btree_indexes: RwLock<Vec<Arc<BTreeIndex>>>,
    hash_indexes: RwLock<Vec<Arc<HashIndex>>>,
    /// Cached sealed columnar projection (see [`Table::columnar`]).
    /// Inserts *extend* it at each 1024-row seal boundary instead of
    /// dropping it; its coverage is always a prefix of the row heap.
    columnar: RwLock<Option<Arc<ColumnTable>>>,
    /// Fast-path flag so the insert hot loop skips columnar sealing when no
    /// projection was ever built.
    has_columnar: AtomicBool,
    /// Incrementally maintained statistics (see [`Table::stats_catalog`]):
    /// a sealed catalog plus a streaming delta partial, folded together at
    /// each seal boundary.
    stats: RwLock<Option<StatsPair>>,
    /// Fast-path flag so the insert hot loop skips statistics maintenance
    /// when the catalog was never built.
    has_stats: AtomicBool,
    /// The disk half of a paged table (see [`crate::recovery::TableStore`]):
    /// inserts append to its WAL, seal boundaries persist block extents
    /// through it.  `None` for purely in-memory tables.
    store: RwLock<Option<Arc<TableStore>>>,
    /// Fast-path flag so the insert hot loop skips the WAL when the table
    /// has no store.
    has_store: AtomicBool,
}

impl Table {
    /// Creates an empty table.  Normally called through [`Catalog::create_table`]
    /// (which assigns the id) or [`TableBuilder`].
    ///
    /// [`Catalog::create_table`]: crate::catalog::Catalog::create_table
    pub fn new(id: u32, name: impl Into<String>, schema: Schema) -> Self {
        Table {
            id,
            name: name.into(),
            schema,
            rows: RwLock::new(Vec::new()),
            score_indexes: RwLock::new(Vec::new()),
            btree_indexes: RwLock::new(Vec::new()),
            hash_indexes: RwLock::new(Vec::new()),
            columnar: RwLock::new(None),
            has_columnar: AtomicBool::new(false),
            stats: RwLock::new(None),
            has_stats: AtomicBool::new(false),
            store: RwLock::new(None),
            has_store: AtomicBool::new(false),
        }
    }

    /// Rebuilds a table from recovered state (crash recovery path of
    /// [`crate::recovery::PagedStore::open`]): the row heap is the durable
    /// epoch replayed from extents + WAL, the columnar projection already
    /// points at the paged extents, and the store is attached without
    /// re-appending anything to the WAL.
    pub(crate) fn recovered(
        id: u32,
        name: &str,
        schema: Schema,
        rows: Vec<Tuple>,
        store: Arc<TableStore>,
        columnar: ColumnTable,
    ) -> Table {
        Table {
            id,
            name: name.to_owned(),
            schema,
            rows: RwLock::new(rows),
            score_indexes: RwLock::new(Vec::new()),
            btree_indexes: RwLock::new(Vec::new()),
            hash_indexes: RwLock::new(Vec::new()),
            columnar: RwLock::new(Some(Arc::new(columnar))),
            has_columnar: AtomicBool::new(true),
            stats: RwLock::new(None),
            has_stats: AtomicBool::new(false),
            store: RwLock::new(Some(store)),
            has_store: AtomicBool::new(true),
        }
    }

    /// Attaches a [`TableStore`], making the table durable from here on.
    /// Any rows inserted *before* the attach are persisted immediately
    /// (sealed full blocks as extents, the tail into the WAL).  Holding the
    /// row read lock across the attach keeps it atomic against concurrent
    /// inserts, which take the write lock.
    pub(crate) fn attach_store(&self, store: Arc<TableStore>) -> Result<()> {
        let rows = self.rows.read();
        let mut ct = ColumnTable::from_rows(self.id, &self.name, &self.schema, &rows);
        store.persist(&mut ct, &rows, true)?;
        *self.columnar.write() = Some(Arc::new(ct));
        self.has_columnar.store(true, Ordering::Release);
        *self.store.write() = Some(store);
        self.has_store.store(true, Ordering::Release);
        Ok(())
    }

    /// The attached [`TableStore`], if the table is paged.
    pub(crate) fn table_store(&self) -> Option<Arc<TableStore>> {
        if !self.has_store.load(Ordering::Acquire) {
            return None;
        }
        self.store.read().clone()
    }

    /// The table id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table schema (fields are qualified by the table name).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.read().len()
    }

    /// The table's current epoch ordinal.  The table is append-only, so the
    /// row count doubles as the version: every committed insert advances
    /// it.  Plan caches key their size buckets off this.
    pub fn epoch_ordinal(&self) -> u64 {
        self.row_count() as u64
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.row_count() == 0
    }

    /// Appends a row, validating its arity.  Returns the new row's index.
    ///
    /// The write path is append-and-merge, never invalidate-and-rebuild:
    ///
    /// * rows are pushed onto the heap (stable indices — every previously
    ///   pinned [`TableEpoch`] keeps streaming its prefix);
    /// * the statistics delta partial folds the new row in; at each
    ///   1024-row boundary the delta is merged into the sealed catalog;
    /// * if a columnar projection exists, reaching a 1024-row boundary
    ///   seals exactly one new block — previously sealed blocks are shared
    ///   untouched ([`ColumnTable::resealed`]);
    /// * indexes are *kept*: an index covers the row prefix it was built
    ///   over, which is still a valid epoch.  The executor compares
    ///   [`ScoreIndex::indexed_rows`] / [`BTreeIndex::indexed_rows`]
    ///   against its pinned epoch's watermark and extends the index over
    ///   the missing suffix when they differ.
    ///
    /// All mutations happen under the row write lock *after* validation, so
    /// a panicking writer cannot leave a torn row, block or partial visible:
    /// readers pin under the row read lock and see either the pre-insert or
    /// the post-insert epoch.
    pub fn insert(&self, values: Vec<Value>) -> Result<u64> {
        if values.len() != self.schema.len() {
            return Err(RankSqlError::Catalog(format!(
                "row arity {} does not match schema arity {} for table `{}`",
                values.len(),
                self.schema.len(),
                self.name
            )));
        }
        let mut rows = self.rows.write();
        if self.has_stats.load(Ordering::Acquire) {
            if let Some(pair) = self.stats.write().as_mut() {
                pair.delta.observe_row(&values);
                if (pair.sealed.row_count + pair.delta.row_count) % COLUMN_BLOCK_ROWS == 0 {
                    // Seal boundary: fold the delta partial into the sealed
                    // catalog (build fully before swapping, so a panic can
                    // never leave a torn catalog behind).
                    pair.sealed = pair.merged();
                    pair.delta = StatsCatalog::empty(&self.schema);
                }
            }
        }
        let idx = rows.len() as u64;
        if self.has_store.load(Ordering::Acquire) {
            if let Some(store) = self.store.read().as_ref() {
                // The WAL record goes first: if the append fails, the heap
                // is untouched and the insert cleanly errors.  No fsync
                // here — durability is settled at the seal boundary.
                store.append_wal(idx, &values)?;
            }
        }
        rows.push(Tuple::new(TupleId::base(self.id, idx), values));
        if self.has_columnar.load(Ordering::Acquire) {
            self.seal_columnar(&rows)?;
        }
        Ok(idx)
    }

    /// Seals the columnar projection up to the last full 1024-row boundary,
    /// if new full blocks exist (called under the row write lock).  Builds
    /// the new version completely before publishing it, so readers only
    /// ever observe fully-sealed block lists.  On a paged table the seal
    /// boundary is also the durability boundary: the new blocks are
    /// persisted as extents and the WAL is trimmed past them — an error
    /// here leaves the rows WAL-covered (still durable) and unsealed.
    fn seal_columnar(&self, rows: &[Tuple]) -> Result<()> {
        let aligned = rows.len() / COLUMN_BLOCK_ROWS * COLUMN_BLOCK_ROWS;
        let cur = {
            let guard = self.columnar.read();
            match guard.as_ref() {
                Some(c) if c.row_count() < aligned => Arc::clone(c),
                _ => return Ok(()),
            }
        };
        let mut sealed = cur.resealed(rows, aligned);
        if let Some(store) = self.table_store() {
            store.persist(&mut sealed, rows, false)?;
        }
        *self.columnar.write() = Some(Arc::new(sealed));
        Ok(())
    }

    /// Appends many rows.
    pub fn insert_batch<I>(&self, batch: I) -> Result<usize>
    where
        I: IntoIterator<Item = Vec<Value>>,
    {
        let mut n = 0;
        for row in batch {
            self.insert(row)?;
            n += 1;
        }
        Ok(n)
    }

    /// The tuple at `row_index`, if it exists.  Row indices are stable
    /// (append-only heap), so lookups through a pinned epoch's watermark
    /// are always consistent.
    pub fn tuple(&self, row_index: u64) -> Option<Tuple> {
        self.rows.read().get(row_index as usize).cloned()
    }

    /// The tuple at `row_index`, checked against a pinned epoch's
    /// watermark.  Accessors resolving row ids on behalf of a snapshot
    /// (index scans, delta-tail readers) must use this instead of
    /// [`Table::tuple`]: the heap is append-only, so an out-of-watermark
    /// index is not "missing" — it is a row the epoch must never see, and
    /// silently returning it would leak post-pin inserts into the
    /// snapshot.  Such reads error as stale.
    pub fn tuple_within(&self, row_index: u64, watermark: usize) -> Result<Tuple> {
        if row_index as usize >= watermark {
            return Err(RankSqlError::Execution(format!(
                "stale read: row {row_index} of table `{}` is past the pinned epoch watermark {watermark}",
                self.name
            )));
        }
        self.tuple(row_index).ok_or_else(|| {
            RankSqlError::Internal(format!(
                "row {row_index} of table `{}` is below the watermark {watermark} but missing from the heap",
                self.name
            ))
        })
    }

    /// A snapshot of all tuples (cheap clones: values are `Arc`-shared).
    pub fn scan(&self) -> Vec<Tuple> {
        self.rows.read().clone()
    }

    /// A snapshot of the first `n` tuples — the row set of an epoch with
    /// watermark `n` (clamped to the current row count).
    pub fn scan_prefix(&self, n: usize) -> Vec<Tuple> {
        let rows = self.rows.read();
        rows[..n.min(rows.len())].to_vec()
    }

    /// A snapshot of the tuples in `range` (clamped to the current row
    /// count) — the suffix an incremental index extension covers.
    pub fn scan_range(&self, range: std::ops::Range<usize>) -> Vec<Tuple> {
        let rows = self.rows.read();
        let start = range.start.min(rows.len());
        let end = range.end.min(rows.len());
        rows[start..end].to_vec()
    }

    /// Pins the table's current epoch: the row-count watermark plus (when
    /// `with_columnar` is set) the sealed columnar blocks and a frozen copy
    /// of the delta tail.  Taken under the row read lock, so the snapshot
    /// is consistent against concurrent inserts; everything captured is
    /// immutable afterwards.
    pub fn pin_epoch(&self, with_columnar: bool) -> Arc<TableEpoch> {
        let rows = self.rows.read();
        let row_count = rows.len();
        let columnar = if with_columnar {
            let cached = self.columnar.read().as_ref().cloned();
            Some(match cached {
                // Sealed coverage is always a heap prefix, so any cached
                // projection is usable; rows past it go into the tail.
                Some(c) => c,
                None => {
                    let mut ct = ColumnTable::from_rows(self.id, &self.name, &self.schema, &rows);
                    self.persist_best_effort(&mut ct, &rows);
                    let built = Arc::new(ct);
                    *self.columnar.write() = Some(Arc::clone(&built));
                    self.has_columnar.store(true, Ordering::Release);
                    built
                }
            })
        } else {
            None
        };
        let tail = match &columnar {
            Some(c) => rows[c.row_count()..].to_vec(),
            None => Vec::new(),
        };
        Arc::new(TableEpoch {
            table_id: self.id,
            row_count,
            columnar,
            tail: Arc::new(tail),
        })
    }

    /// Re-pins at an *existing* watermark, adding the columnar layout — the
    /// upgrade path of [`EpochSet::pin`] when a table first pinned row-only
    /// turns out to also be scanned columnar.  The cached projection is
    /// used when its coverage fits under the watermark; otherwise a private
    /// projection is built over the watermark prefix (and not cached, so
    /// the shared cache never regresses to an older prefix).
    fn epoch_with_columnar_at(&self, watermark: usize) -> Arc<TableEpoch> {
        let rows = self.rows.read();
        let n = watermark.min(rows.len());
        let cached = self
            .columnar
            .read()
            .as_ref()
            .filter(|c| c.row_count() <= n)
            .cloned();
        let columnar = match cached {
            Some(c) => c,
            None => Arc::new(ColumnTable::from_rows(
                self.id,
                &self.name,
                &self.schema,
                &rows[..n],
            )),
        };
        let tail = rows[columnar.row_count()..n].to_vec();
        Arc::new(TableEpoch {
            table_id: self.id,
            row_count: n,
            columnar: Some(columnar),
            tail: Arc::new(tail),
        })
    }

    /// The columnar projection covering *all* current rows (see
    /// [`ColumnTable`]): built on first use, extended incrementally (never
    /// from scratch) when rows were appended since, and cached.  The last
    /// block may be partial; the insert path completes it at the next
    /// 1024-row seal boundary.
    ///
    /// Epoch-pinning readers use [`Table::pin_epoch`] instead, which takes
    /// the sealed blocks as they are and carries the unsealed rows in the
    /// epoch's tail.
    pub fn columnar(&self) -> Arc<ColumnTable> {
        // Hold the row read lock across the build so a concurrent insert
        // cannot slip a row between the snapshot and the publication.
        let rows = self.rows.read();
        let cached = self.columnar.read().as_ref().cloned();
        let mut ct = match cached {
            Some(c) if c.row_count() == rows.len() => return c,
            Some(c) => c.resealed(&rows, rows.len()),
            None => ColumnTable::from_rows(self.id, &self.name, &self.schema, &rows),
        };
        self.persist_best_effort(&mut ct, &rows);
        let built = Arc::new(ct);
        *self.columnar.write() = Some(Arc::clone(&built));
        self.has_columnar.store(true, Ordering::Release);
        built
    }

    /// Persist hook for infallible build paths: on a paged table, flips
    /// freshly sealed full blocks to extents.  An I/O error here is
    /// swallowed deliberately — the blocks simply stay RAM-resident and
    /// WAL-covered (still durable), and the next seal boundary retries.
    fn persist_best_effort(&self, ct: &mut ColumnTable, rows: &[Tuple]) {
        if let Some(store) = self.table_store() {
            let _ = store.persist(ct, rows, false);
        }
    }

    /// The table's statistics catalog: per-column null counts, numeric
    /// min/max, boolean fractions and a staged distinct-count sketch.
    ///
    /// Built on first use as a sealed catalog over the 1024-row-aligned
    /// prefix plus a delta partial over the unsealed tail; afterwards every
    /// [`Table::insert`] folds the new row into the delta (merging it into
    /// the sealed catalog at each seal boundary), so repeated calls are
    /// O(columns) in the table size and never observe a stale snapshot.
    pub fn stats_catalog(&self) -> StatsCatalog {
        // The row read lock is held across the build so a concurrent insert
        // (which takes the row *write* lock) cannot slip a row between the
        // snapshot and the publication of the catalog.
        let rows = self.rows.read();
        if let Some(pair) = self.stats.read().as_ref() {
            return pair.merged();
        }
        let aligned = rows.len() / COLUMN_BLOCK_ROWS * COLUMN_BLOCK_ROWS;
        let pair = StatsPair {
            sealed: StatsCatalog::build(&self.schema, &rows[..aligned]),
            delta: StatsCatalog::build(&self.schema, &rows[aligned..]),
        };
        let merged = pair.merged();
        *self.stats.write() = Some(pair);
        self.has_stats.store(true, Ordering::Release);
        merged
    }

    /// The statistics catalog if one has already been built (by a prior
    /// [`Table::stats_catalog`] call, typically the optimizer's), without
    /// forcing a build — `None` on a cold table.  The incrementally
    /// maintained catalog is never stale, so no freshness check is needed.
    pub fn cached_stats(&self) -> Option<StatsCatalog> {
        self.stats.read().as_ref().map(StatsPair::merged)
    }

    /// Registers a score (rank) index, replacing any previous index on the
    /// same predicate (so an extension or rebuild never leaves an older
    /// sibling to be looked up first).
    pub fn add_score_index(&self, index: ScoreIndex) -> Arc<ScoreIndex> {
        let arc = Arc::new(index);
        let mut indexes = self.score_indexes.write();
        indexes.retain(|i| i.predicate_name() != arc.predicate_name());
        indexes.push(Arc::clone(&arc));
        arc
    }

    /// Registers an ordered attribute index, replacing any previous index on
    /// the same column.
    pub fn add_btree_index(&self, index: BTreeIndex) -> Arc<BTreeIndex> {
        let arc = Arc::new(index);
        let mut indexes = self.btree_indexes.write();
        indexes.retain(|i| i.column_name() != arc.column_name());
        indexes.push(Arc::clone(&arc));
        arc
    }

    /// Registers a hash index, replacing any previous index on the same
    /// column.
    pub fn add_hash_index(&self, index: HashIndex) -> Arc<HashIndex> {
        let arc = Arc::new(index);
        let mut indexes = self.hash_indexes.write();
        indexes.retain(|i| i.column_name() != arc.column_name());
        indexes.push(Arc::clone(&arc));
        arc
    }

    /// Finds a score index by the name of the ranking predicate it covers.
    ///
    /// Inserts no longer drop indexes: a returned handle covers the row
    /// prefix it was built over ([`ScoreIndex::indexed_rows`]), which is a
    /// valid epoch — readers pinned at that watermark use it as-is, newer
    /// epochs extend it over the missing suffix.
    pub fn score_index(&self, predicate_name: &str) -> Option<Arc<ScoreIndex>> {
        self.score_indexes
            .read()
            .iter()
            .find(|i| i.predicate_name() == predicate_name)
            .cloned()
    }

    /// Finds an ordered attribute index by column name.
    pub fn btree_index(&self, column: &str) -> Option<Arc<BTreeIndex>> {
        self.btree_indexes
            .read()
            .iter()
            .find(|i| i.column_name() == column)
            .cloned()
    }

    /// Finds a hash index by column name.
    pub fn hash_index(&self, column: &str) -> Option<Arc<HashIndex>> {
        self.hash_indexes
            .read()
            .iter()
            .find(|i| i.column_name() == column)
            .cloned()
    }

    /// Names of ranking predicates that have a score index on this table.
    pub fn score_index_names(&self) -> Vec<String> {
        self.score_indexes
            .read()
            .iter()
            .map(|i| i.predicate_name().to_owned())
            .collect()
    }
}

impl fmt::Debug for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Table")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("rows", &self.row_count())
            .field("schema", &self.schema.to_string())
            .finish()
    }
}

/// Convenience builder used pervasively in tests and examples: create a table
/// with a schema and a literal row list in one expression.
pub struct TableBuilder {
    name: String,
    schema: Schema,
    rows: Vec<Vec<Value>>,
}

impl TableBuilder {
    /// Starts building a table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        TableBuilder {
            name: name.into(),
            schema,
            rows: Vec::new(),
        }
    }

    /// Adds a row.
    pub fn row(mut self, values: Vec<Value>) -> Self {
        self.rows.push(values);
        self
    }

    /// Adds many rows.
    pub fn rows(mut self, rows: impl IntoIterator<Item = Vec<Value>>) -> Self {
        self.rows.extend(rows);
        self
    }

    /// Builds a table with the given id (use [`Catalog`] to get ids assigned
    /// automatically).
    ///
    /// [`Catalog`]: crate::catalog::Catalog
    pub fn build(self, id: u32) -> Result<Table> {
        let table = Table::new(id, self.name, self.schema);
        table.insert_batch(self.rows)?;
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ranksql_common::{DataType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::qualified("T", "a", DataType::Int64),
            Field::qualified("T", "b", DataType::Float64),
        ])
    }

    #[test]
    fn insert_and_scan() {
        let t = Table::new(1, "T", schema());
        assert!(t.is_empty());
        t.insert(vec![Value::from(1), Value::from(0.5)]).unwrap();
        t.insert(vec![Value::from(2), Value::from(0.25)]).unwrap();
        assert_eq!(t.row_count(), 2);
        let rows = t.scan();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].id(), &TupleId::base(1, 0));
        assert_eq!(rows[1].value(0), &Value::from(2));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let t = Table::new(1, "T", schema());
        assert!(t.insert(vec![Value::from(1)]).is_err());
        assert_eq!(t.row_count(), 0);
    }

    #[test]
    fn tuple_lookup_by_row_index() {
        let t = Table::new(3, "T", schema());
        t.insert(vec![Value::from(9), Value::from(0.9)]).unwrap();
        assert_eq!(t.tuple(0).unwrap().value(0), &Value::from(9));
        assert!(t.tuple(5).is_none());
    }

    #[test]
    fn builder_builds() {
        let t = TableBuilder::new("T", schema())
            .row(vec![Value::from(1), Value::from(0.1)])
            .rows(vec![
                vec![Value::from(2), Value::from(0.2)],
                vec![Value::from(3), Value::from(0.3)],
            ])
            .build(7)
            .unwrap();
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.id(), 7);
        assert_eq!(t.name(), "T");
    }

    #[test]
    fn insert_keeps_indexes_as_valid_prefix_epochs() {
        use crate::index::{BTreeIndex, HashIndex, ScoreIndex};
        use ranksql_expr::RankPredicate;

        let t = Table::new(1, "T", schema());
        t.insert(vec![Value::from(1), Value::from(0.5)]).unwrap();
        t.insert(vec![Value::from(2), Value::from(0.9)]).unwrap();

        let pred = RankPredicate::attribute("b", "T.b");
        let score = ScoreIndex::build(&pred, t.schema(), &t.scan()).unwrap();
        let held_handle = t.add_score_index(score);
        t.add_btree_index(BTreeIndex::build("T.a", t.schema(), &t.scan()).unwrap());
        t.add_hash_index(HashIndex::build("T.a", t.schema(), &t.scan()).unwrap());

        // Appending a row keeps every index: each one still covers the
        // prefix it was built over, which is a valid epoch of the table.
        t.insert(vec![Value::from(3), Value::from(0.1)]).unwrap();
        assert!(t.score_index("b").is_some());
        assert!(t.btree_index("T.a").is_some());
        assert!(t.hash_index("T.a").is_some());
        assert_eq!(t.score_index_names(), vec!["b".to_owned()]);

        // The lag is detectable: readers at the new epoch compare coverage
        // against their watermark and extend the index over the suffix.
        assert_eq!(held_handle.indexed_rows(), 2);
        assert_eq!(t.row_count(), 3);
        let ext = held_handle
            .extended(&pred, t.schema(), &t.scan_range(2..3), 2)
            .unwrap();
        assert_eq!(ext.indexed_rows(), 3);
        let replaced = t.add_score_index(ext);
        assert!(Arc::ptr_eq(&t.score_index("b").unwrap(), &replaced));
    }

    #[test]
    fn pinned_epoch_is_immutable_under_inserts() {
        let t = Table::new(1, "T", schema());
        for i in 0..(COLUMN_BLOCK_ROWS as i64 + 100) {
            t.insert(vec![Value::from(i), Value::from(i as f64 / 2048.0)])
                .unwrap();
        }
        let _ = t.columnar(); // warm the projection so inserts seal
        let epoch = t.pin_epoch(true);
        let watermark = epoch.row_count();
        assert_eq!(watermark, COLUMN_BLOCK_ROWS + 100);
        let columnar_then = Arc::clone(epoch.columnar().unwrap());
        assert_eq!(
            columnar_then.row_count() + epoch.tail().len(),
            watermark,
            "epoch coverage = sealed blocks + frozen tail"
        );

        // Writers append past the next seal boundary.
        for i in 0..(COLUMN_BLOCK_ROWS as i64) {
            t.insert(vec![Value::from(-i), Value::from(0.0)]).unwrap();
        }
        assert_eq!(t.row_count(), 2 * COLUMN_BLOCK_ROWS + 100);

        // The pinned epoch is untouched: same watermark, same blocks, same
        // frozen tail — the inserts are invisible to it.
        assert_eq!(epoch.row_count(), watermark);
        assert!(Arc::ptr_eq(epoch.columnar().unwrap(), &columnar_then));
        assert_eq!(
            epoch.columnar().unwrap().row_count() + epoch.tail().len(),
            watermark
        );
        // A fresh pin sees the new rows and the newly sealed block.
        let fresh = t.pin_epoch(true);
        assert_eq!(fresh.row_count(), 2 * COLUMN_BLOCK_ROWS + 100);
        assert!(fresh.columnar().unwrap().row_count() >= 2 * COLUMN_BLOCK_ROWS);
        assert!(fresh.tail().len() < COLUMN_BLOCK_ROWS);
    }

    #[test]
    fn epoch_set_pins_once_per_table_and_upgrades_to_columnar() {
        let t = Table::new(1, "T", schema());
        for i in 0..10i64 {
            t.insert(vec![Value::from(i), Value::from(i as f64 / 10.0)])
                .unwrap();
        }
        let set = EpochSet::new();
        let row_pin = set.pin(&t, false);
        assert!(row_pin.columnar().is_none());
        // More inserts between pins must not move the watermark.
        t.insert(vec![Value::from(99), Value::from(0.99)]).unwrap();
        let again = set.pin(&t, false);
        assert!(Arc::ptr_eq(&row_pin, &again));
        // Upgrading to columnar keeps the original watermark.
        let upgraded = set.pin(&t, true);
        assert_eq!(upgraded.row_count(), row_pin.row_count());
        let c = upgraded.columnar().unwrap();
        assert_eq!(c.row_count() + upgraded.tail().len(), 10);
        assert_eq!(set.get(1).unwrap().row_count(), 10);
    }

    #[test]
    fn epoch_score_max_folds_sealed_blocks_and_tail() {
        let t = Table::new(1, "T", schema());
        for i in 0..(COLUMN_BLOCK_ROWS as i64) {
            t.insert(vec![Value::from(i), Value::from(0.25)]).unwrap();
        }
        let _ = t.columnar();
        // Tail rows carry the table's maximal score: the sealed fold alone
        // would under-report, which zone-pruning caps cannot afford.
        t.insert(vec![Value::from(-1), Value::from(0.75)]).unwrap();
        let epoch = t.pin_epoch(true);
        assert!(!epoch.tail().is_empty());
        assert_eq!(epoch.score_max(1), Some(0.75));
        // Row-only pins cannot bound scores.
        assert_eq!(t.pin_epoch(false).score_max(1), None);
    }

    #[test]
    fn stats_catalog_is_maintained_incrementally_on_insert() {
        let t = Table::new(1, "T", schema());
        for i in 0..10i64 {
            t.insert(vec![Value::from(i % 4), Value::from(i as f64 / 10.0)])
                .unwrap();
        }
        let first = t.stats_catalog();
        assert_eq!(first.row_count, 10);
        assert_eq!(first.column("a").unwrap().ndv(), 4);
        assert_eq!(first.column("b").unwrap().max, Some(0.9));

        // Inserts after the catalog exists fold into it (no invalidation):
        // the next read sees the new row without a rebuild.
        t.insert(vec![Value::from(99), Value::from(2.5)]).unwrap();
        let second = t.stats_catalog();
        assert_eq!(second.row_count, 11);
        assert_eq!(second.column("a").unwrap().ndv(), 5);
        assert_eq!(second.column("T.b").unwrap().max, Some(2.5));
        assert_eq!(second.column("a").unwrap().null_count, 0);

        // Nulls are counted, not sketched.
        t.insert(vec![Value::Null, Value::from(0.0)]).unwrap();
        let third = t.stats_catalog();
        assert_eq!(third.column("a").unwrap().null_count, 1);
        assert_eq!(third.column("a").unwrap().ndv(), 5);
    }

    #[test]
    fn stats_catalog_incremental_path_matches_from_scratch_build() {
        let warm = Table::new(1, "T", schema());
        let cold = Table::new(1, "T", schema());
        for i in 0..50i64 {
            warm.insert(vec![Value::from(i % 7), Value::from(i as f64)])
                .unwrap();
            cold.insert(vec![Value::from(i % 7), Value::from(i as f64)])
                .unwrap();
        }
        // Build warm's catalog early so the remaining inserts take the
        // incremental path; cold builds from scratch at the end.
        let _ = warm.stats_catalog();
        for i in 50..200i64 {
            warm.insert(vec![Value::from(i % 7), Value::from(i as f64)])
                .unwrap();
            cold.insert(vec![Value::from(i % 7), Value::from(i as f64)])
                .unwrap();
        }
        assert_eq!(warm.stats_catalog(), cold.stats_catalog());
    }

    #[test]
    fn stats_seal_boundary_matches_from_scratch_build() {
        let warm = Table::new(1, "T", schema());
        let cold = Table::new(1, "T", schema());
        let row = |i: i64| vec![Value::from(i % 97), Value::from((i as f64).sin())];
        for i in 0..100i64 {
            warm.insert(row(i)).unwrap();
            cold.insert(row(i)).unwrap();
        }
        let _ = warm.stats_catalog();
        // Cross two seal boundaries on the warm path.
        for i in 100..(2 * COLUMN_BLOCK_ROWS as i64 + 3) {
            warm.insert(row(i)).unwrap();
            cold.insert(row(i)).unwrap();
        }
        assert_eq!(warm.stats_catalog(), cold.stats_catalog());
    }

    #[test]
    fn columnar_extends_incrementally_and_seals_on_insert() {
        let t = Table::new(1, "T", schema());
        for i in 0..500i64 {
            t.insert(vec![Value::from(i), Value::from(0.5)]).unwrap();
        }
        let first = t.columnar();
        assert_eq!(first.row_count(), 500);
        // Repeated calls without inserts return the cached handle.
        assert!(Arc::ptr_eq(&first, &t.columnar()));
        // Inserts past the seal boundary publish a new sealed version.
        for i in 500..(COLUMN_BLOCK_ROWS as i64 + 10) {
            t.insert(vec![Value::from(i), Value::from(0.5)]).unwrap();
        }
        let second = t.columnar();
        assert_eq!(second.row_count(), COLUMN_BLOCK_ROWS + 10);
        assert_eq!(second.num_blocks(), 2);
        // The old handle still reads its own 500 rows.
        assert_eq!(first.row_count(), 500);
        assert_eq!(first.tuple(499).value(0), &Value::from(499));
    }

    #[test]
    fn debug_output_mentions_row_count() {
        let t = Table::new(1, "T", schema());
        t.insert(vec![Value::from(1), Value::from(0.5)]).unwrap();
        let s = format!("{t:?}");
        assert!(s.contains("rows: 1"));
    }
}
