//! In-memory heap tables.

use std::fmt;
use std::sync::Arc;

use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::RwLock;
use ranksql_common::{RankSqlError, Result, Schema, Tuple, TupleId, Value};

use crate::column::ColumnTable;
use crate::index::{BTreeIndex, HashIndex, ScoreIndex};
use crate::stats::StatsCatalog;

/// An append-only, in-memory table.
///
/// Rows are stored as [`Tuple`]s whose identity is `(table_id, row_index)`;
/// scanning therefore yields tuples that can be deduplicated and tie-broken
/// deterministically anywhere downstream.  Indexes built on the table are
/// kept alongside it and can be looked up by name.
pub struct Table {
    id: u32,
    name: String,
    schema: Schema,
    rows: RwLock<Vec<Tuple>>,
    score_indexes: RwLock<Vec<Arc<ScoreIndex>>>,
    btree_indexes: RwLock<Vec<Arc<BTreeIndex>>>,
    hash_indexes: RwLock<Vec<Arc<HashIndex>>>,
    /// Fast-path flag so the insert hot loop skips index invalidation when
    /// no index was ever built.
    has_indexes: AtomicBool,
    /// Cached columnar projection (see [`Table::columnar`]); dropped on
    /// insert like the indexes.
    columnar: RwLock<Option<Arc<ColumnTable>>>,
    /// Fast-path flag so the insert hot loop skips columnar invalidation
    /// when no projection was ever built.
    has_columnar: AtomicBool,
    /// Incrementally maintained statistics catalog (see
    /// [`Table::stats_catalog`]).  Unlike the indexes and the columnar
    /// projection, inserts *update* it in place instead of dropping it.
    stats: RwLock<Option<StatsCatalog>>,
    /// Fast-path flag so the insert hot loop skips statistics maintenance
    /// when the catalog was never built.
    has_stats: AtomicBool,
}

impl Table {
    /// Creates an empty table.  Normally called through [`Catalog::create_table`]
    /// (which assigns the id) or [`TableBuilder`].
    ///
    /// [`Catalog::create_table`]: crate::catalog::Catalog::create_table
    pub fn new(id: u32, name: impl Into<String>, schema: Schema) -> Self {
        Table {
            id,
            name: name.into(),
            schema,
            rows: RwLock::new(Vec::new()),
            score_indexes: RwLock::new(Vec::new()),
            btree_indexes: RwLock::new(Vec::new()),
            hash_indexes: RwLock::new(Vec::new()),
            has_indexes: AtomicBool::new(false),
            columnar: RwLock::new(None),
            has_columnar: AtomicBool::new(false),
            stats: RwLock::new(None),
            has_stats: AtomicBool::new(false),
        }
    }

    /// The table id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table schema (fields are qualified by the table name).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.read().len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.row_count() == 0
    }

    /// Appends a row, validating its arity.  Returns the new row's index.
    ///
    /// Appending invalidates previously built indexes — they describe only
    /// the prefix of the table that existed when they were created — so the
    /// insert *drops* every cached index: subsequent lookups return `None`
    /// and the access path rebuilds over the full table.  Callers that held
    /// on to an index handle across the insert are caught by the executor,
    /// which checks [`ScoreIndex::indexed_rows`] /
    /// [`BTreeIndex::indexed_rows`] against the table's row count and
    /// reports a catalog error for the stale handle.
    pub fn insert(&self, values: Vec<Value>) -> Result<u64> {
        if values.len() != self.schema.len() {
            return Err(RankSqlError::Catalog(format!(
                "row arity {} does not match schema arity {} for table `{}`",
                values.len(),
                self.schema.len(),
                self.name
            )));
        }
        let mut rows = self.rows.write();
        if self.has_indexes.load(Ordering::Acquire) {
            self.drop_stale_indexes();
        }
        if self.has_columnar.load(Ordering::Acquire) {
            *self.columnar.write() = None;
            self.has_columnar.store(false, Ordering::Release);
        }
        // Statistics are maintained *incrementally*: the new row is folded
        // into the catalog's streaming summaries (sketch, min/max, counts)
        // under the row write lock — no invalidate-and-rebuild like the
        // structures above, whose contents cannot absorb an append.
        if self.has_stats.load(Ordering::Acquire) {
            if let Some(catalog) = self.stats.write().as_mut() {
                catalog.observe_row(&values);
            }
        }
        let idx = rows.len() as u64;
        rows.push(Tuple::new(TupleId::base(self.id, idx), values));
        Ok(idx)
    }

    /// Drops every cached index (called under the row write lock, so a
    /// concurrent scan either sees the old rows with the old indexes or the
    /// new rows with no indexes).
    fn drop_stale_indexes(&self) {
        self.score_indexes.write().clear();
        self.btree_indexes.write().clear();
        self.hash_indexes.write().clear();
        self.has_indexes.store(false, Ordering::Release);
    }

    /// Appends many rows.
    pub fn insert_batch<I>(&self, batch: I) -> Result<usize>
    where
        I: IntoIterator<Item = Vec<Value>>,
    {
        let mut n = 0;
        for row in batch {
            self.insert(row)?;
            n += 1;
        }
        Ok(n)
    }

    /// The tuple at `row_index`, if it exists.
    pub fn tuple(&self, row_index: u64) -> Option<Tuple> {
        self.rows.read().get(row_index as usize).cloned()
    }

    /// A snapshot of all tuples (cheap clones: values are `Arc`-shared).
    pub fn scan(&self) -> Vec<Tuple> {
        self.rows.read().clone()
    }

    /// The columnar projection of this table (see [`ColumnTable`]), built on
    /// first use and cached; inserts drop the cached projection (like the
    /// indexes), so a returned handle is always consistent with the rows at
    /// the time of the call.
    pub fn columnar(&self) -> Arc<ColumnTable> {
        if let Some(c) = self.columnar.read().as_ref() {
            if c.row_count() == self.row_count() {
                return Arc::clone(c);
            }
        }
        let built = Arc::new(ColumnTable::from_table(self));
        *self.columnar.write() = Some(Arc::clone(&built));
        self.has_columnar.store(true, Ordering::Release);
        built
    }

    /// The table's statistics catalog: per-column null counts, numeric
    /// min/max, boolean fractions and a staged distinct-count sketch.
    ///
    /// Built from the rows (as merged per-1024-row block partials, the
    /// zone-map granularity) on first use; afterwards every
    /// [`Table::insert`] folds the new row in, so repeated calls are O(1)
    /// in the table size and never observe a stale snapshot.
    pub fn stats_catalog(&self) -> StatsCatalog {
        // The row read lock is held across the build so a concurrent insert
        // (which takes the row *write* lock) cannot slip a row between the
        // snapshot and the publication of the catalog.
        let rows = self.rows.read();
        if let Some(c) = self.stats.read().as_ref() {
            if c.row_count == rows.len() {
                return c.clone();
            }
        }
        let built = StatsCatalog::build(&self.schema, &rows);
        *self.stats.write() = Some(built.clone());
        self.has_stats.store(true, Ordering::Release);
        built
    }

    /// The statistics catalog if one has already been built (by a prior
    /// [`Table::stats_catalog`] call, typically the optimizer's), without
    /// forcing a build — `None` on a cold table.  The incrementally
    /// maintained catalog is never stale, so no freshness check is needed.
    pub fn cached_stats(&self) -> Option<StatsCatalog> {
        self.stats.read().clone()
    }

    /// Registers a score (rank) index, replacing any previous index on the
    /// same predicate (so rebuilding after an invalidating insert never
    /// leaves a stale sibling to be looked up first).
    pub fn add_score_index(&self, index: ScoreIndex) -> Arc<ScoreIndex> {
        let arc = Arc::new(index);
        let mut indexes = self.score_indexes.write();
        indexes.retain(|i| i.predicate_name() != arc.predicate_name());
        indexes.push(Arc::clone(&arc));
        self.has_indexes.store(true, Ordering::Release);
        arc
    }

    /// Registers an ordered attribute index, replacing any previous index on
    /// the same column.
    pub fn add_btree_index(&self, index: BTreeIndex) -> Arc<BTreeIndex> {
        let arc = Arc::new(index);
        let mut indexes = self.btree_indexes.write();
        indexes.retain(|i| i.column_name() != arc.column_name());
        indexes.push(Arc::clone(&arc));
        self.has_indexes.store(true, Ordering::Release);
        arc
    }

    /// Registers a hash index, replacing any previous index on the same
    /// column.
    pub fn add_hash_index(&self, index: HashIndex) -> Arc<HashIndex> {
        let arc = Arc::new(index);
        let mut indexes = self.hash_indexes.write();
        indexes.retain(|i| i.column_name() != arc.column_name());
        indexes.push(Arc::clone(&arc));
        self.has_indexes.store(true, Ordering::Release);
        arc
    }

    /// Finds a score index by the name of the ranking predicate it covers.
    pub fn score_index(&self, predicate_name: &str) -> Option<Arc<ScoreIndex>> {
        self.score_indexes
            .read()
            .iter()
            .find(|i| i.predicate_name() == predicate_name)
            .cloned()
    }

    /// Finds an ordered attribute index by column name.
    pub fn btree_index(&self, column: &str) -> Option<Arc<BTreeIndex>> {
        self.btree_indexes
            .read()
            .iter()
            .find(|i| i.column_name() == column)
            .cloned()
    }

    /// Finds a hash index by column name.
    pub fn hash_index(&self, column: &str) -> Option<Arc<HashIndex>> {
        self.hash_indexes
            .read()
            .iter()
            .find(|i| i.column_name() == column)
            .cloned()
    }

    /// Names of ranking predicates that have a score index on this table.
    pub fn score_index_names(&self) -> Vec<String> {
        self.score_indexes
            .read()
            .iter()
            .map(|i| i.predicate_name().to_owned())
            .collect()
    }
}

impl fmt::Debug for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Table")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("rows", &self.row_count())
            .field("schema", &self.schema.to_string())
            .finish()
    }
}

/// Convenience builder used pervasively in tests and examples: create a table
/// with a schema and a literal row list in one expression.
pub struct TableBuilder {
    name: String,
    schema: Schema,
    rows: Vec<Vec<Value>>,
}

impl TableBuilder {
    /// Starts building a table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        TableBuilder {
            name: name.into(),
            schema,
            rows: Vec::new(),
        }
    }

    /// Adds a row.
    pub fn row(mut self, values: Vec<Value>) -> Self {
        self.rows.push(values);
        self
    }

    /// Adds many rows.
    pub fn rows(mut self, rows: impl IntoIterator<Item = Vec<Value>>) -> Self {
        self.rows.extend(rows);
        self
    }

    /// Builds a table with the given id (use [`Catalog`] to get ids assigned
    /// automatically).
    ///
    /// [`Catalog`]: crate::catalog::Catalog
    pub fn build(self, id: u32) -> Result<Table> {
        let table = Table::new(id, self.name, self.schema);
        table.insert_batch(self.rows)?;
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ranksql_common::{DataType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::qualified("T", "a", DataType::Int64),
            Field::qualified("T", "b", DataType::Float64),
        ])
    }

    #[test]
    fn insert_and_scan() {
        let t = Table::new(1, "T", schema());
        assert!(t.is_empty());
        t.insert(vec![Value::from(1), Value::from(0.5)]).unwrap();
        t.insert(vec![Value::from(2), Value::from(0.25)]).unwrap();
        assert_eq!(t.row_count(), 2);
        let rows = t.scan();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].id(), &TupleId::base(1, 0));
        assert_eq!(rows[1].value(0), &Value::from(2));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let t = Table::new(1, "T", schema());
        assert!(t.insert(vec![Value::from(1)]).is_err());
        assert_eq!(t.row_count(), 0);
    }

    #[test]
    fn tuple_lookup_by_row_index() {
        let t = Table::new(3, "T", schema());
        t.insert(vec![Value::from(9), Value::from(0.9)]).unwrap();
        assert_eq!(t.tuple(0).unwrap().value(0), &Value::from(9));
        assert!(t.tuple(5).is_none());
    }

    #[test]
    fn builder_builds() {
        let t = TableBuilder::new("T", schema())
            .row(vec![Value::from(1), Value::from(0.1)])
            .rows(vec![
                vec![Value::from(2), Value::from(0.2)],
                vec![Value::from(3), Value::from(0.3)],
            ])
            .build(7)
            .unwrap();
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.id(), 7);
        assert_eq!(t.name(), "T");
    }

    #[test]
    fn insert_after_index_drops_stale_indexes() {
        use crate::index::{BTreeIndex, HashIndex, ScoreIndex};
        use ranksql_expr::RankPredicate;

        let t = Table::new(1, "T", schema());
        t.insert(vec![Value::from(1), Value::from(0.5)]).unwrap();
        t.insert(vec![Value::from(2), Value::from(0.9)]).unwrap();

        let pred = RankPredicate::attribute("b", "T.b");
        let score = ScoreIndex::build(&pred, t.schema(), &t.scan()).unwrap();
        let held_handle = t.add_score_index(score);
        t.add_btree_index(BTreeIndex::build("T.a", t.schema(), &t.scan()).unwrap());
        t.add_hash_index(HashIndex::build("T.a", t.schema(), &t.scan()).unwrap());
        assert!(t.score_index("b").is_some());
        assert!(t.btree_index("T.a").is_some());
        assert!(t.hash_index("T.a").is_some());

        // Appending a row invalidates all of them: lookups now miss, so the
        // next access path rebuilds over the full table instead of silently
        // scanning a stale prefix.
        t.insert(vec![Value::from(3), Value::from(0.1)]).unwrap();
        assert!(t.score_index("b").is_none());
        assert!(t.btree_index("T.a").is_none());
        assert!(t.hash_index("T.a").is_none());
        assert!(t.score_index_names().is_empty());

        // A handle held across the insert is detectably stale.
        assert_eq!(held_handle.indexed_rows(), 2);
        assert_eq!(t.row_count(), 3);

        // Rebuilt indexes cover the new row and survive until the next write.
        let rebuilt = ScoreIndex::build(&pred, t.schema(), &t.scan()).unwrap();
        assert_eq!(rebuilt.indexed_rows(), 3);
        t.add_score_index(rebuilt);
        assert!(t.score_index("b").is_some());
    }

    #[test]
    fn stats_catalog_is_maintained_incrementally_on_insert() {
        let t = Table::new(1, "T", schema());
        for i in 0..10i64 {
            t.insert(vec![Value::from(i % 4), Value::from(i as f64 / 10.0)])
                .unwrap();
        }
        let first = t.stats_catalog();
        assert_eq!(first.row_count, 10);
        assert_eq!(first.column("a").unwrap().ndv(), 4);
        assert_eq!(first.column("b").unwrap().max, Some(0.9));

        // Inserts after the catalog exists fold into it (no invalidation):
        // the next read sees the new row without a rebuild.
        t.insert(vec![Value::from(99), Value::from(2.5)]).unwrap();
        let second = t.stats_catalog();
        assert_eq!(second.row_count, 11);
        assert_eq!(second.column("a").unwrap().ndv(), 5);
        assert_eq!(second.column("T.b").unwrap().max, Some(2.5));
        assert_eq!(second.column("a").unwrap().null_count, 0);

        // Nulls are counted, not sketched.
        t.insert(vec![Value::Null, Value::from(0.0)]).unwrap();
        let third = t.stats_catalog();
        assert_eq!(third.column("a").unwrap().null_count, 1);
        assert_eq!(third.column("a").unwrap().ndv(), 5);
    }

    #[test]
    fn stats_catalog_incremental_path_matches_from_scratch_build() {
        let warm = Table::new(1, "T", schema());
        let cold = Table::new(1, "T", schema());
        for i in 0..50i64 {
            warm.insert(vec![Value::from(i % 7), Value::from(i as f64)])
                .unwrap();
            cold.insert(vec![Value::from(i % 7), Value::from(i as f64)])
                .unwrap();
        }
        // Build warm's catalog early so the remaining inserts take the
        // incremental path; cold builds from scratch at the end.
        let _ = warm.stats_catalog();
        for i in 50..200i64 {
            warm.insert(vec![Value::from(i % 7), Value::from(i as f64)])
                .unwrap();
            cold.insert(vec![Value::from(i % 7), Value::from(i as f64)])
                .unwrap();
        }
        assert_eq!(warm.stats_catalog(), cold.stats_catalog());
    }

    #[test]
    fn debug_output_mentions_row_count() {
        let t = Table::new(1, "T", schema());
        t.insert(vec![Value::from(1), Value::from(0.5)]).unwrap();
        let s = format!("{t:?}");
        assert!(s.contains("rows: 1"));
    }
}
