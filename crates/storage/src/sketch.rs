//! Staged distinct-count sketches for the statistics catalog.
//!
//! The catalog needs a number-of-distinct-values (NDV) figure per column
//! that is cheap to maintain on every insert and cheap to merge across the
//! 1024-row blocks the columnar layer already works in.  An exact
//! `HashSet<Value>` gives the right answer but costs a full-column scan to
//! (re)build and unbounded memory to keep; a plain HyperLogLog gives bounded
//! memory but throws away exactness for the small columns where the
//! optimizer's selectivity arithmetic is most sensitive to NDV error.
//!
//! [`DistinctSketch`] therefore grows through three representations:
//!
//! 1. **Small** — up to [`SMALL_CAPACITY`] hashes inline, exact;
//! 2. **Array** — a sorted, deduplicated packed array of up to
//!    [`ARRAY_CAPACITY`] hashes, still exact (modulo 64-bit hash
//!    collisions, negligible at this size);
//! 3. **Hll** — HyperLogLog++ registers (`2^`[`HLL_PRECISION`] bytes) with
//!    the zero-register count and harmonic sum maintained incrementally, so
//!    estimation is O(1) rather than a pass over the registers.
//!
//! Every stage supports `insert` and lossless `merge` into the larger of
//! the two operands' stages, which is what makes per-block partial sketches
//! (built alongside the zone maps) foldable into a per-column total without
//! rescanning the column.
//!
//! Values are hashed through [`Value`]'s `Hash` impl — which already
//! canonicalises `-0.0`/`NaN` and hashes `Int64`/`Float64` identically when
//! numerically equal — into a fixed-key 64-bit FNV-1a, so sketches are
//! deterministic across runs and processes (the std `RandomState` is not).

use std::hash::{Hash, Hasher};

use ranksql_common::Value;

/// Maximum number of distinct hashes held inline by the `Small` stage.
pub const SMALL_CAPACITY: usize = 16;

/// Maximum number of distinct hashes held by the exact `Array` stage.
///
/// NDV answers are exact up to this many distinct values — comfortably
/// above the distinct counts of the synthetic workload's join columns, so
/// the optimizer's equi-join arithmetic sees exact counts there and the
/// ±2 % HLL error only applies to genuinely high-cardinality columns.
pub const ARRAY_CAPACITY: usize = 1024;

/// HyperLogLog precision: `2^12 = 4096` one-byte registers (~0.8 KiB after
/// the `Vec` is shared per column, standard error ≈ 1.04 / √4096 ≈ 1.6 %).
pub const HLL_PRECISION: u32 = 12;

const HLL_REGISTERS: usize = 1 << HLL_PRECISION;

/// A 64-bit FNV-1a hasher with fixed keys: deterministic across runs, which
/// keeps sketches reproducible and mergeable between independently built
/// block partials.
#[derive(Debug, Clone)]
pub struct StableHasher(u64);

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for StableHasher {
    fn finish(&self) -> u64 {
        // One finalization round (SplitMix64) on top of FNV-1a: FNV's low
        // bits are weak, and HLL reads both the low `p` bits (register
        // index) and the leading-zero count of the rest.
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }
}

/// Hashes a value with the catalog's stable hasher.
pub fn stable_value_hash(v: &Value) -> u64 {
    let mut h = StableHasher::default();
    v.hash(&mut h);
    h.finish()
}

/// The three representations a sketch grows through.
#[derive(Debug, Clone, PartialEq)]
enum Repr {
    /// Unsorted inline hashes, linear-probed (tiny, exact).
    Small(Vec<u64>),
    /// Sorted deduplicated hashes (exact, binary-searched).
    Array(Vec<u64>),
    /// HyperLogLog++ registers with incrementally maintained summaries.
    Hll {
        registers: Vec<u8>,
        /// Number of registers still at zero (drives linear counting).
        zeros: usize,
        /// `Σ 2^-register`, maintained on every register raise so the
        /// harmonic-mean estimate needs no register pass.
        harmonic_sum: f64,
    },
}

/// A staged distinct-count sketch: exact small set → exact packed array →
/// HyperLogLog++ registers.
#[derive(Debug, Clone, PartialEq)]
pub struct DistinctSketch {
    repr: Repr,
}

impl Default for DistinctSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl DistinctSketch {
    /// An empty sketch (starts in the `Small` stage).
    pub fn new() -> Self {
        DistinctSketch {
            repr: Repr::Small(Vec::new()),
        }
    }

    /// Observes one value.
    pub fn insert(&mut self, v: &Value) {
        self.insert_hash(stable_value_hash(v));
    }

    /// Observes one pre-hashed value.
    pub fn insert_hash(&mut self, h: u64) {
        match &mut self.repr {
            Repr::Small(hashes) => {
                if hashes.contains(&h) {
                    return;
                }
                hashes.push(h);
                if hashes.len() > SMALL_CAPACITY {
                    self.promote_to_array();
                }
            }
            Repr::Array(hashes) => {
                if let Err(pos) = hashes.binary_search(&h) {
                    hashes.insert(pos, h);
                    if hashes.len() > ARRAY_CAPACITY {
                        self.promote_to_hll();
                    }
                }
            }
            Repr::Hll { .. } => self.hll_insert(h),
        }
    }

    /// The estimated number of distinct values observed.
    ///
    /// Exact while the sketch is in the `Small` or `Array` stage (up to
    /// [`ARRAY_CAPACITY`] distinct values); a HyperLogLog++ estimate with
    /// ~1.6 % standard error beyond that.
    pub fn estimate(&self) -> usize {
        match &self.repr {
            Repr::Small(hashes) => hashes.len(),
            Repr::Array(hashes) => hashes.len(),
            Repr::Hll {
                zeros,
                harmonic_sum,
                ..
            } => {
                let m = HLL_REGISTERS as f64;
                // Linear counting while many registers are empty (the
                // small-range correction of HLL++).
                if *zeros > 0 {
                    let linear = m * (m / *zeros as f64).ln();
                    if linear <= 2.5 * m {
                        return linear.round() as usize;
                    }
                }
                let alpha = 0.7213 / (1.0 + 1.079 / m);
                (alpha * m * m / harmonic_sum).round() as usize
            }
        }
    }

    /// Whether the sketch is still exact (below the packed-array capacity).
    pub fn is_exact(&self) -> bool {
        !matches!(self.repr, Repr::Hll { .. })
    }

    /// Name of the current stage (`"small"`, `"array"` or `"hll"`), for
    /// diagnostics and `EXPLAIN ANALYZE` output.
    pub fn stage(&self) -> &'static str {
        match self.repr {
            Repr::Small(_) => "small",
            Repr::Array(_) => "array",
            Repr::Hll { .. } => "hll",
        }
    }

    /// Folds `other` into `self`.
    ///
    /// Merging is lossless with respect to the information either operand
    /// holds: two exact sketches merge exactly (promoting stages only when
    /// capacity demands it), and any operand already in the `Hll` stage
    /// forces the merged sketch into registers, where merge is the
    /// register-wise maximum.
    pub fn merge(&mut self, other: &DistinctSketch) {
        match &other.repr {
            Repr::Small(hashes) | Repr::Array(hashes) => {
                for &h in hashes {
                    self.insert_hash(h);
                }
            }
            Repr::Hll {
                registers: other_regs,
                ..
            } => {
                if self.is_exact() {
                    self.promote_to_hll();
                }
                if let Repr::Hll {
                    registers,
                    zeros,
                    harmonic_sum,
                } = &mut self.repr
                {
                    for (r, &o) in registers.iter_mut().zip(other_regs) {
                        if o > *r {
                            if *r == 0 {
                                *zeros -= 1;
                            }
                            *harmonic_sum -= pow2_neg(*r);
                            *harmonic_sum += pow2_neg(o);
                            *r = o;
                        }
                    }
                }
            }
        }
    }

    fn promote_to_array(&mut self) {
        if let Repr::Small(hashes) = &mut self.repr {
            let mut sorted = std::mem::take(hashes);
            sorted.sort_unstable();
            sorted.dedup();
            self.repr = Repr::Array(sorted);
        }
    }

    fn promote_to_hll(&mut self) {
        let hashes = match &mut self.repr {
            Repr::Small(h) | Repr::Array(h) => std::mem::take(h),
            Repr::Hll { .. } => return,
        };
        self.repr = Repr::Hll {
            registers: vec![0u8; HLL_REGISTERS],
            zeros: HLL_REGISTERS,
            harmonic_sum: HLL_REGISTERS as f64,
        };
        for h in hashes {
            self.hll_insert(h);
        }
    }

    fn hll_insert(&mut self, h: u64) {
        if let Repr::Hll {
            registers,
            zeros,
            harmonic_sum,
        } = &mut self.repr
        {
            let idx = (h & (HLL_REGISTERS as u64 - 1)) as usize;
            // Rank of the first set bit in the remaining 64 - p bits.
            let rest = h >> HLL_PRECISION;
            let rank = (rest.trailing_zeros().min(63 - HLL_PRECISION) + 1) as u8;
            let r = &mut registers[idx];
            if rank > *r {
                if *r == 0 {
                    *zeros -= 1;
                }
                *harmonic_sum -= pow2_neg(*r);
                *harmonic_sum += pow2_neg(rank);
                *r = rank;
            }
        }
    }
}

/// `2^-r` for a register value.
fn pow2_neg(r: u8) -> f64 {
    f64::from_bits((1023u64 - u64::from(r)) << 52)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch_of(n: u64) -> DistinctSketch {
        let mut s = DistinctSketch::new();
        for i in 0..n {
            s.insert(&Value::from(i as i64));
        }
        s
    }

    #[test]
    fn exact_through_small_and_array_stages() {
        let s = sketch_of(10);
        assert_eq!(s.stage(), "small");
        assert_eq!(s.estimate(), 10);
        let s = sketch_of(500);
        assert_eq!(s.stage(), "array");
        assert_eq!(s.estimate(), 500);
        assert!(s.is_exact());
        // Duplicates never inflate the count.
        let mut s = sketch_of(100);
        for i in 0..100 {
            s.insert(&Value::from(i as i64));
        }
        assert_eq!(s.estimate(), 100);
    }

    #[test]
    fn hll_stage_estimates_within_tolerance() {
        for n in [5_000u64, 50_000] {
            let s = sketch_of(n);
            assert_eq!(s.stage(), "hll");
            assert!(!s.is_exact());
            let est = s.estimate() as f64;
            let err = (est - n as f64).abs() / n as f64;
            assert!(err < 0.05, "n = {n}: estimate {est} off by {err:.3}");
        }
    }

    #[test]
    fn merge_of_partials_matches_from_scratch() {
        for n in [40u64, 2_000, 20_000] {
            let whole = sketch_of(n);
            // Build per-1024 block partials, merge them in order.
            let mut merged = DistinctSketch::new();
            let mut lo = 0;
            while lo < n {
                let hi = (lo + 1024).min(n);
                let mut part = DistinctSketch::new();
                for i in lo..hi {
                    part.insert(&Value::from(i as i64));
                }
                merged.merge(&part);
                lo = hi;
            }
            assert_eq!(merged, whole, "n = {n}");
        }
    }

    #[test]
    fn merge_with_overlap_does_not_double_count() {
        let mut a = sketch_of(300);
        let b = sketch_of(300);
        a.merge(&b);
        assert_eq!(a.estimate(), 300);
    }

    #[test]
    fn merge_into_hll_operand_is_register_max() {
        let mut big = sketch_of(10_000);
        let small = sketch_of(100);
        let before = big.estimate();
        big.merge(&small); // subset: estimate must not move
        assert_eq!(big.estimate(), before);

        // Exact ∪ HLL promotes the exact side.
        let mut exact = sketch_of(100);
        exact.merge(&sketch_of(10_000));
        assert_eq!(exact.stage(), "hll");
        let est = exact.estimate() as f64;
        assert!((est - 10_000.0).abs() / 10_000.0 < 0.05, "estimate {est}");
    }

    #[test]
    fn numeric_cross_type_values_hash_identically() {
        let mut s = DistinctSketch::new();
        s.insert(&Value::from(3i64));
        s.insert(&Value::from(3.0f64));
        s.insert(&Value::from(0.0f64));
        s.insert(&Value::from(-0.0f64));
        assert_eq!(s.estimate(), 2);
    }

    #[test]
    fn empty_sketch() {
        let s = DistinctSketch::new();
        assert_eq!(s.estimate(), 0);
        assert!(s.is_exact());
        let mut a = DistinctSketch::new();
        a.merge(&s);
        assert_eq!(a.estimate(), 0);
    }
}
