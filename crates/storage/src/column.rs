//! Column-major table storage with per-block zone maps.
//!
//! A [`ColumnTable`] is the columnar projection of a row-major
//! [`Table`]: every attribute is stored in its own dense,
//! type-specialised vector, logically split into fixed-size blocks of
//! [`COLUMN_BLOCK_ROWS`] rows.  For each *purely numeric* column every block
//! carries a **zone map** — the min/max of the block's values — which lets a
//! columnar scan skip whole blocks:
//!
//! * **filter pruning** — a pushed-down comparison (`σ p1 ≥ 0.9`) skips
//!   blocks whose value range cannot satisfy the predicate;
//! * **score pruning** — a top-k consumer skips blocks whose *maximal
//!   possible query score* (the scoring function over the blocks' clamped
//!   score maxima) cannot beat the current k-th best score.
//!
//! The layout follows the buffer/block structure of classic columnar engines
//! (fixed-row blocks, per-block metadata); the executor's `ColumnScan` fills
//! its output batches from the column vectors directly and materialises row
//! tuples only for rows that survive the pushed filter — late
//! materialisation on the σ/π spine.

use std::fmt;
use std::ops::Range;

use ranksql_common::{Schema, Tuple, TupleId, Value};

use crate::table::Table;

/// Rows per columnar block (the zone-map granularity).
pub const COLUMN_BLOCK_ROWS: usize = 1024;

/// Which physical layout a table (or a scan over it) uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StorageBackend {
    /// Row-major heap of tuples (the seed layout).
    #[default]
    Row,
    /// Column-major blocks with zone maps ([`ColumnTable`]).
    Columnar,
}

impl StorageBackend {
    /// Stable lowercase tag used in plan-cache keys and explain output.
    pub fn tag(self) -> &'static str {
        match self {
            StorageBackend::Row => "row",
            StorageBackend::Columnar => "columnar",
        }
    }
}

impl fmt::Display for StorageBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// Per-block min/max of one numeric column, in the column's native type.
///
/// Int64 zones stay exact (no float rounding), so integer pushed filters can
/// prune without conservative widening.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ColumnZones<'a> {
    /// Zones of an `Int64` column.
    Int64(&'a [(i64, i64)]),
    /// Zones of a `Float64` column.  `NaN` values are folded with the same
    /// total order [`Value`] uses (`NaN` sorts greatest), so the max
    /// dominates every value the way `Value` comparisons see them.
    Float64(&'a [(f64, f64)]),
}

/// Type-specialised column storage.
#[derive(Debug)]
enum ColumnData {
    /// Every value is `Value::Int64`.
    Int64(Vec<i64>),
    /// Every value is `Value::Float64`.
    Float64(Vec<f64>),
    /// Mixed types, strings, booleans or NULLs — stored as dynamic values
    /// (no zone maps: range pruning over mixed types is unsound under the
    /// cross-type total order).
    Generic(Vec<Value>),
}

/// A borrowed view of one column's values.
#[derive(Debug, Clone, Copy)]
pub enum ColumnSlice<'a> {
    /// Dense `i64` values.
    Int64(&'a [i64]),
    /// Dense `f64` values.
    Float64(&'a [f64]),
    /// Dynamic values (mixed / non-numeric columns).
    Generic(&'a [Value]),
}

/// One column: its data plus per-block zone metadata (numeric columns only).
#[derive(Debug)]
struct Column {
    data: ColumnData,
    /// Raw per-block min/max in the native type (`None` for generic
    /// columns).
    zones_i64: Option<Vec<(i64, i64)>>,
    zones_f64: Option<Vec<(f64, f64)>>,
    /// Per-block maximum of the column's values *as ranking scores*:
    /// clamped into `[0, 1]`, `NaN` ignored (a `NaN` score sorts below every
    /// ranked tuple, so it never lifts a block's score bound).
    /// `f64::NEG_INFINITY` for empty blocks.  `None` for generic columns.
    score_max: Option<Vec<f64>>,
}

/// The columnar projection of a [`Table`]: per-attribute vectors in
/// fixed-size blocks, each numeric column carrying per-block zone maps.
///
/// Built once from a row snapshot (see [`Table::columnar`], which caches the
/// projection and invalidates it on insert, like the table's indexes) and
/// shared read-only across scans.
#[derive(Debug)]
pub struct ColumnTable {
    table_id: u32,
    name: String,
    schema: Schema,
    row_count: usize,
    columns: Vec<Column>,
}

impl ColumnTable {
    /// Builds the columnar projection of a row table (one full snapshot
    /// scan).
    pub fn from_table(table: &Table) -> Self {
        let rows = table.scan();
        let schema = table.schema().clone();
        let n_cols = schema.len();
        let mut columns = Vec::with_capacity(n_cols);
        for col in 0..n_cols {
            columns.push(build_column(&rows, col));
        }
        ColumnTable {
            table_id: table.id(),
            name: table.name().to_owned(),
            schema,
            row_count: rows.len(),
            columns,
        }
    }

    /// The id of the table this projection was built from.
    pub fn table_id(&self) -> u32 {
        self.table_id
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// Number of blocks (`ceil(rows / COLUMN_BLOCK_ROWS)`).
    pub fn num_blocks(&self) -> usize {
        self.row_count.div_ceil(COLUMN_BLOCK_ROWS)
    }

    /// The row range of block `block`.
    pub fn block_rows(&self, block: usize) -> Range<usize> {
        let start = block * COLUMN_BLOCK_ROWS;
        start..((start + COLUMN_BLOCK_ROWS).min(self.row_count))
    }

    /// A borrowed view of one column's values.
    pub fn column_slice(&self, column: usize) -> ColumnSlice<'_> {
        match &self.columns[column].data {
            ColumnData::Int64(v) => ColumnSlice::Int64(v),
            ColumnData::Float64(v) => ColumnSlice::Float64(v),
            ColumnData::Generic(v) => ColumnSlice::Generic(v),
        }
    }

    /// The per-block zone maps of a column (`None` for non-numeric / mixed
    /// columns, which cannot be range-pruned soundly).
    pub fn zones(&self, column: usize) -> Option<ColumnZones<'_>> {
        let c = &self.columns[column];
        if let Some(z) = &c.zones_i64 {
            return Some(ColumnZones::Int64(z));
        }
        c.zones_f64.as_deref().map(ColumnZones::Float64)
    }

    /// The maximal possible *ranking score* of column `column` within
    /// `block`: the block maximum clamped into `[0, 1]` (`NaN` ignored).
    /// `None` when the column carries no zone maps.
    pub fn score_zone_max(&self, column: usize, block: usize) -> Option<f64> {
        self.columns[column]
            .score_max
            .as_ref()
            .and_then(|m| m.get(block).copied())
    }

    /// The maximal possible ranking score of column `column` over the whole
    /// table (the fold of every block's [`ColumnTable::score_zone_max`]).
    /// `None` when the column carries no zone maps.
    pub fn table_score_max(&self, column: usize) -> Option<f64> {
        self.columns[column]
            .score_max
            .as_ref()
            .map(|m| m.iter().copied().fold(f64::NEG_INFINITY, f64::max))
    }

    /// The value at `(row, column)` (reconstructed from the typed storage).
    pub fn value(&self, row: usize, column: usize) -> Value {
        match &self.columns[column].data {
            ColumnData::Int64(v) => Value::Int64(v[row]),
            ColumnData::Float64(v) => Value::Float64(v[row]),
            ColumnData::Generic(v) => v[row].clone(),
        }
    }

    /// Materialises the full tuple of `row` (identity
    /// `(table_id, row)` — identical to the row backend's, so results are
    /// byte-compatible across backends).
    pub fn tuple(&self, row: usize) -> Tuple {
        let mut values = Vec::with_capacity(self.columns.len());
        for col in &self.columns {
            values.push(match &col.data {
                ColumnData::Int64(v) => Value::Int64(v[row]),
                ColumnData::Float64(v) => Value::Float64(v[row]),
                ColumnData::Generic(v) => v[row].clone(),
            });
        }
        Tuple::new(TupleId::base(self.table_id, row as u64), values)
    }
}

/// Classifies and packs one column, computing its zone maps.
fn build_column(rows: &[Tuple], col: usize) -> Column {
    let mut all_i64 = true;
    let mut all_f64 = true;
    for t in rows {
        match t.value(col) {
            Value::Int64(_) => all_f64 = false,
            Value::Float64(_) => all_i64 = false,
            _ => {
                all_i64 = false;
                all_f64 = false;
                break;
            }
        }
        if !all_i64 && !all_f64 {
            break;
        }
    }
    if all_i64 {
        let data: Vec<i64> = rows
            .iter()
            .map(|t| match t.value(col) {
                Value::Int64(v) => *v,
                _ => unreachable!("classified as pure Int64"),
            })
            .collect();
        let zones = per_block(&data, |chunk| {
            let min = chunk.iter().copied().min().expect("non-empty block");
            let max = chunk.iter().copied().max().expect("non-empty block");
            (min, max)
        });
        let score_max = per_block(&data, |chunk| {
            chunk
                .iter()
                .map(|&v| (v as f64).clamp(0.0, 1.0))
                .fold(f64::NEG_INFINITY, f64::max)
        });
        Column {
            data: ColumnData::Int64(data),
            zones_i64: Some(zones),
            zones_f64: None,
            score_max: Some(score_max),
        }
    } else if all_f64 {
        let data: Vec<f64> = rows
            .iter()
            .map(|t| match t.value(col) {
                Value::Float64(v) => *v,
                _ => unreachable!("classified as pure Float64"),
            })
            .collect();
        // Fold with the same total order `Value` comparisons use: NaN sorts
        // greatest, so the max dominates every value as the filter sees it.
        let zones = per_block(&data, |chunk| {
            let mut min = chunk[0];
            let mut max = chunk[0];
            for &v in &chunk[1..] {
                if cmp_f64_total(v, min).is_lt() {
                    min = v;
                }
                if cmp_f64_total(v, max).is_gt() {
                    max = v;
                }
            }
            (min, max)
        });
        let score_max = per_block(&data, |chunk| {
            chunk
                .iter()
                .filter(|v| !v.is_nan())
                .map(|&v| v.clamp(0.0, 1.0))
                .fold(f64::NEG_INFINITY, f64::max)
        });
        Column {
            data: ColumnData::Float64(data),
            zones_i64: None,
            zones_f64: Some(zones),
            score_max: Some(score_max),
        }
    } else {
        Column {
            data: ColumnData::Generic(rows.iter().map(|t| t.value(col).clone()).collect()),
            zones_i64: None,
            zones_f64: None,
            score_max: None,
        }
    }
}

/// Maps `f` over the `COLUMN_BLOCK_ROWS`-sized chunks of a column.
fn per_block<T, Z>(data: &[T], f: impl Fn(&[T]) -> Z) -> Vec<Z> {
    data.chunks(COLUMN_BLOCK_ROWS).map(f).collect()
}

/// The total order over `f64` used by `Value` comparisons (`NaN` greatest),
/// re-exported from `ranksql-common` so zone-map folds and the executor's
/// typed filters share the one definition the soundness argument needs.
pub use ranksql_common::cmp_f64_total;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;
    use ranksql_common::{DataType, Field};

    fn table(rows: usize) -> Table {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("p", DataType::Float64),
            Field::new("name", DataType::Utf8),
        ])
        .qualify_all("T");
        TableBuilder::new("T", schema)
            .rows((0..rows).map(|i| {
                vec![
                    Value::from(i as i64),
                    Value::from(((i * 37) % 100) as f64 / 100.0),
                    Value::from(format!("r{i}").as_str()),
                ]
            }))
            .build(3)
            .unwrap()
    }

    #[test]
    fn round_trips_rows_and_identities() {
        let t = table(10);
        let c = ColumnTable::from_table(&t);
        assert_eq!(c.row_count(), 10);
        assert_eq!(c.num_blocks(), 1);
        for (i, want) in t.scan().iter().enumerate() {
            let got = c.tuple(i);
            assert_eq!(got.id(), want.id());
            assert_eq!(got.values(), want.values());
        }
    }

    #[test]
    fn blocks_and_zone_maps() {
        let t = table(COLUMN_BLOCK_ROWS + 100);
        let c = ColumnTable::from_table(&t);
        assert_eq!(c.num_blocks(), 2);
        assert_eq!(c.block_rows(0), 0..COLUMN_BLOCK_ROWS);
        assert_eq!(c.block_rows(1), COLUMN_BLOCK_ROWS..COLUMN_BLOCK_ROWS + 100);
        // Int64 zones are exact.
        match c.zones(0).unwrap() {
            ColumnZones::Int64(z) => {
                assert_eq!(z[0], (0, COLUMN_BLOCK_ROWS as i64 - 1));
                assert_eq!(
                    z[1],
                    (COLUMN_BLOCK_ROWS as i64, COLUMN_BLOCK_ROWS as i64 + 99)
                );
            }
            other => panic!("expected Int64 zones, got {other:?}"),
        }
        // Float64 zones cover [0, 0.99].
        match c.zones(1).unwrap() {
            ColumnZones::Float64(z) => {
                assert!(z[0].0 >= 0.0 && z[0].1 <= 0.99 + 1e-12);
            }
            other => panic!("expected Float64 zones, got {other:?}"),
        }
        // Utf8 columns carry no zones.
        assert!(c.zones(2).is_none());
        assert!(c.score_zone_max(2, 0).is_none());
        // Score maxima are clamped into [0, 1].
        let s = c.score_zone_max(0, 1).unwrap();
        assert_eq!(s, 1.0, "large integers clamp to 1.0 as scores");
        assert!(c.table_score_max(1).unwrap() <= 1.0);
    }

    #[test]
    fn nan_dominates_value_zones_but_not_score_zones() {
        let schema = Schema::new(vec![Field::new("p", DataType::Float64)]).qualify_all("N");
        let t = TableBuilder::new("N", schema)
            .rows([
                vec![Value::from(0.4)],
                vec![Value::from(f64::NAN)],
                vec![Value::from(0.2)],
            ])
            .build(0)
            .unwrap();
        let c = ColumnTable::from_table(&t);
        match c.zones(0).unwrap() {
            ColumnZones::Float64(z) => {
                assert_eq!(z[0].0, 0.2);
                assert!(z[0].1.is_nan(), "NaN sorts greatest in the value order");
            }
            other => panic!("{other:?}"),
        }
        // NaN scores sort below everything, so they never lift the bound.
        assert_eq!(c.score_zone_max(0, 0), Some(0.4));
    }

    #[test]
    fn mixed_columns_fall_back_to_generic() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int64)]).qualify_all("M");
        let t = TableBuilder::new("M", schema)
            .rows([vec![Value::from(1)], vec![Value::from(2.5)]])
            .build(0)
            .unwrap();
        let c = ColumnTable::from_table(&t);
        assert!(matches!(c.column_slice(0), ColumnSlice::Generic(_)));
        assert!(c.zones(0).is_none());
        assert_eq!(c.value(1, 0), Value::from(2.5));
    }

    #[test]
    fn backend_tags_render() {
        assert_eq!(StorageBackend::Row.to_string(), "row");
        assert_eq!(StorageBackend::Columnar.to_string(), "columnar");
        assert_eq!(StorageBackend::default(), StorageBackend::Row);
    }
}
