//! Column-major table storage with per-block zone maps.
//!
//! A [`ColumnTable`] is the columnar projection of a row-major
//! [`Table`]: every attribute is stored type-specialised inside immutable
//! **sealed blocks** of [`COLUMN_BLOCK_ROWS`] rows.  For each *purely
//! numeric* column a block carries a **zone map** — the min/max of the
//! block's values — which lets a columnar scan skip whole blocks:
//!
//! * **filter pruning** — a pushed-down comparison (`σ p1 ≥ 0.9`) skips
//!   blocks whose value range cannot satisfy the predicate;
//! * **score pruning** — a top-k consumer skips blocks whose *maximal
//!   possible query score* (the scoring function over the blocks' clamped
//!   score maxima) cannot beat the current k-th best score.
//!
//! Blocks are the unit of immutability of the MVCC write path: a
//! `ColumnTable` is a persistent (in the functional-data-structure sense)
//! list of `Arc`-shared blocks, so sealing the next 1024 appended rows
//! produces a *new* `ColumnTable` that reuses every previously sealed block
//! untouched ([`ColumnTable::resealed`]) — readers holding an older epoch's
//! projection keep scanning their own block list while writers publish new
//! ones.  Only a trailing *partial* block (rows past the last 1024-row
//! boundary at bulk-build time) is ever replaced, once, by its completed
//! version.
//!
//! The layout follows the buffer/block structure of classic columnar engines
//! (fixed-row blocks, per-block metadata); the executor's `ColumnScan` fills
//! its output batches from the column vectors directly and materialises row
//! tuples only for rows that survive the pushed filter — late
//! materialisation on the σ/π spine.

use std::fmt;
use std::ops::Range;
use std::sync::Arc;

use ranksql_common::{DataType, RankSqlError, Result, Schema, Tuple, TupleId, Value};

use crate::page::BlockMeta;
use crate::recovery::TableStore;
use crate::table::Table;

/// Rows per columnar block (the zone-map granularity and the seal boundary
/// of the incremental write path).
pub const COLUMN_BLOCK_ROWS: usize = 1024;

/// Which physical layout a table (or a scan over it) uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StorageBackend {
    /// Row-major heap of tuples (the seed layout).
    #[default]
    Row,
    /// Column-major blocks with zone maps ([`ColumnTable`]), fully
    /// RAM-resident.
    Columnar,
    /// Column-major blocks backed by fixed-size pages in a table file,
    /// faulted in through a buffer pool on demand
    /// ([`crate::recovery::PagedStore`]).  A zone-pruned block is a page
    /// never read.
    Paged,
}

impl StorageBackend {
    /// Stable lowercase tag used in plan-cache keys and explain output.
    pub fn tag(self) -> &'static str {
        match self {
            StorageBackend::Row => "row",
            StorageBackend::Columnar => "columnar",
            StorageBackend::Paged => "paged",
        }
    }

    /// Whether scans over this backend read the columnar block layout (and
    /// therefore go through the `columnarize` lowering pass).  `Paged` is
    /// columnar: the same sealed blocks, just faulted through a buffer pool.
    pub fn is_columnar(self) -> bool {
        !matches!(self, StorageBackend::Row)
    }
}

impl fmt::Display for StorageBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// The storage type of a column, uniform across every block of one
/// `ColumnTable` version (a block whose values do not fit the established
/// type demotes the whole column to [`ColumnKind::Generic`], which routes
/// scans to the untyped fallback path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnKind {
    /// Every value is `Value::Int64`.
    Int64,
    /// Every value is `Value::Float64`.
    Float64,
    /// Mixed types, strings, booleans or NULLs — stored as dynamic values
    /// (no typed kernels: cross-type range pruning is handled per block).
    Generic,
}

/// The min/max zone of one numeric column within one block, in the column's
/// native type.
///
/// Int64 zones stay exact (no float rounding), so integer pushed filters can
/// prune without conservative widening.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ZoneEntry {
    /// Zone of an `Int64` block.
    Int64(i64, i64),
    /// Zone of a `Float64` block.  `NaN` values are folded with the same
    /// total order [`Value`] uses (`NaN` sorts greatest), so the max
    /// dominates every value the way `Value` comparisons see them.
    Float64(f64, f64),
}

/// Type-specialised storage of one column within one block.
#[derive(Debug)]
pub(crate) enum BlockData {
    Int64(Vec<i64>),
    Float64(Vec<f64>),
    Generic(Vec<Value>),
}

impl BlockData {
    fn kind(&self) -> ColumnKind {
        match self {
            BlockData::Int64(_) => ColumnKind::Int64,
            BlockData::Float64(_) => ColumnKind::Float64,
            BlockData::Generic(_) => ColumnKind::Generic,
        }
    }

    fn len(&self) -> usize {
        match self {
            BlockData::Int64(v) => v.len(),
            BlockData::Float64(v) => v.len(),
            BlockData::Generic(v) => v.len(),
        }
    }
}

/// A borrowed view of one column's values within one block.
#[derive(Debug, Clone, Copy)]
pub enum ColumnSlice<'a> {
    /// Dense `i64` values.
    Int64(&'a [i64]),
    /// Dense `f64` values.
    Float64(&'a [f64]),
    /// Dynamic values (mixed / non-numeric blocks).
    Generic(&'a [Value]),
}

/// One column of a sealed block: its data plus zone metadata (numeric
/// blocks only).
#[derive(Debug)]
pub(crate) struct BlockColumn {
    pub(crate) data: BlockData,
    /// Min/max of the block's values in the native type (`None` for
    /// generic blocks).
    zone: Option<ZoneEntry>,
    /// Maximum of the block's values *as a ranking score*: clamped into
    /// `[0, 1]`, `NaN` ignored (a `NaN` score sorts below every ranked
    /// tuple, so it never lifts a block's score bound).
    /// `f64::NEG_INFINITY` for empty blocks.  `None` for generic blocks.
    score_max: Option<f64>,
}

impl BlockColumn {
    /// Rebuilds a column from its raw data, recomputing zone metadata with
    /// the same folds the seal path uses — the decode side of the extent
    /// format never stores zones on disk, it re-derives them here so both
    /// paths cannot disagree.
    pub(crate) fn from_data(data: BlockData) -> BlockColumn {
        match data {
            BlockData::Int64(v) => BlockColumn::from_i64(v),
            BlockData::Float64(v) => BlockColumn::from_f64(v),
            BlockData::Generic(v) => BlockColumn {
                data: BlockData::Generic(v),
                zone: None,
                score_max: None,
            },
        }
    }

    fn from_i64(data: Vec<i64>) -> BlockColumn {
        let zone = (!data.is_empty()).then(|| {
            let min = data.iter().copied().min().expect("non-empty block");
            let max = data.iter().copied().max().expect("non-empty block");
            ZoneEntry::Int64(min, max)
        });
        let score_max = data
            .iter()
            .map(|&v| (v as f64).clamp(0.0, 1.0))
            .fold(f64::NEG_INFINITY, f64::max);
        BlockColumn {
            data: BlockData::Int64(data),
            zone,
            score_max: Some(score_max),
        }
    }

    fn from_f64(data: Vec<f64>) -> BlockColumn {
        // Fold with the same total order `Value` comparisons use: NaN sorts
        // greatest, so the max dominates every value as the filter sees it.
        let zone = (!data.is_empty()).then(|| {
            let mut min = data[0];
            let mut max = data[0];
            for &v in &data[1..] {
                if cmp_f64_total(v, min).is_lt() {
                    min = v;
                }
                if cmp_f64_total(v, max).is_gt() {
                    max = v;
                }
            }
            ZoneEntry::Float64(min, max)
        });
        let score_max = data
            .iter()
            .filter(|v| !v.is_nan())
            .map(|&v| v.clamp(0.0, 1.0))
            .fold(f64::NEG_INFINITY, f64::max);
        BlockColumn {
            data: BlockData::Float64(data),
            zone,
            score_max: Some(score_max),
        }
    }
}

/// An immutable block of up to [`COLUMN_BLOCK_ROWS`] rows: per-column typed
/// vectors with zone maps and score maxima, built once at seal time and
/// never touched again.
#[derive(Debug)]
pub struct SealedBlock {
    rows: usize,
    pub(crate) columns: Vec<BlockColumn>,
}

impl SealedBlock {
    /// Reassembles a block from decoded column data (the extent decode
    /// path), recomputing per-column zone metadata.
    pub(crate) fn from_data(columns: Vec<BlockData>) -> SealedBlock {
        let rows = columns.first().map(BlockData::len).unwrap_or(0);
        SealedBlock {
            rows,
            columns: columns.into_iter().map(BlockColumn::from_data).collect(),
        }
    }

    /// Number of rows in this block.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// A borrowed view of one column's values.
    pub fn slice(&self, column: usize) -> ColumnSlice<'_> {
        match &self.columns[column].data {
            BlockData::Int64(v) => ColumnSlice::Int64(v),
            BlockData::Float64(v) => ColumnSlice::Float64(v),
            BlockData::Generic(v) => ColumnSlice::Generic(v),
        }
    }

    /// The zone map of `column` (`None` for non-numeric blocks).
    pub fn zone(&self, column: usize) -> Option<ZoneEntry> {
        self.columns[column].zone
    }

    /// The maximal possible ranking score of `column` (clamped `[0, 1]`,
    /// `NaN` ignored; `None` for non-numeric blocks).
    pub fn score_max(&self, column: usize) -> Option<f64> {
        self.columns[column].score_max
    }

    /// The value at `(local_row, column)` within this block.
    pub fn value(&self, local_row: usize, column: usize) -> Value {
        match &self.columns[column].data {
            BlockData::Int64(v) => Value::Int64(v[local_row]),
            BlockData::Float64(v) => Value::Float64(v[local_row]),
            BlockData::Generic(v) => v[local_row].clone(),
        }
    }

    /// Materialises the full tuple at `local_row`, with the row-backend
    /// identity `(table_id, base_row + local_row)` so results stay
    /// byte-compatible across backends.
    pub fn tuple(&self, table_id: u32, base_row: usize, local_row: usize) -> Tuple {
        let mut values = Vec::with_capacity(self.columns.len());
        for col in &self.columns {
            values.push(match &col.data {
                BlockData::Int64(v) => Value::Int64(v[local_row]),
                BlockData::Float64(v) => Value::Float64(v[local_row]),
                BlockData::Generic(v) => v[local_row].clone(),
            });
        }
        Tuple::new(
            TupleId::base(table_id, (base_row + local_row) as u64),
            values,
        )
    }
}

/// One block position of a [`ColumnTable`]: either the sealed block itself
/// (RAM-resident, the `Row`/`Columnar` backends and unsealed tails) or the
/// page-extent metadata of a block that lives in the table file and is
/// faulted in through the buffer pool on first touch (`Paged`).
///
/// A paged slot keeps the zone maps and score maxima in RAM
/// ([`BlockMeta`]), so zone-map pruning decides *without touching disk* —
/// a pruned block is a page never read.
#[derive(Debug, Clone)]
pub(crate) enum BlockSlot {
    /// The block data itself, RAM-resident.
    Resident(Arc<SealedBlock>),
    /// Metadata of a block stored as a page extent in the table file.
    Paged(Arc<BlockMeta>),
}

impl BlockSlot {
    fn rows(&self) -> usize {
        match self {
            BlockSlot::Resident(b) => b.rows,
            BlockSlot::Paged(m) => m.rows,
        }
    }

    fn kind(&self, column: usize) -> ColumnKind {
        match self {
            BlockSlot::Resident(b) => b.columns[column].data.kind(),
            BlockSlot::Paged(m) => m.columns[column].kind,
        }
    }

    fn zone(&self, column: usize) -> Option<ZoneEntry> {
        match self {
            BlockSlot::Resident(b) => b.columns[column].zone,
            BlockSlot::Paged(m) => m.columns[column].zone,
        }
    }

    fn score_max(&self, column: usize) -> Option<f64> {
        match self {
            BlockSlot::Resident(b) => b.columns[column].score_max,
            BlockSlot::Paged(m) => m.columns[column].score_max,
        }
    }
}

/// The columnar projection of a [`Table`]: `Arc`-shared sealed blocks, each
/// numeric column carrying per-block zone maps.
///
/// Built from a row snapshot on first use (see [`Table::columnar`]) and then
/// maintained incrementally: every 1024 appended rows the table seals one
/// new block and publishes a new `ColumnTable` that shares all previously
/// sealed blocks ([`ColumnTable::resealed`]).  Handles are shared read-only
/// across scans; a handle pinned in a [`TableEpoch`](crate::TableEpoch)
/// stays valid forever.
#[derive(Debug)]
pub struct ColumnTable {
    table_id: u32,
    name: String,
    schema: Schema,
    row_count: usize,
    /// Per-column storage kind, the fold of every block's kind (`Generic`
    /// when blocks disagree).  Typed scan kernels only engage on columns
    /// whose kind is uniform and numeric.
    kinds: Vec<ColumnKind>,
    pub(crate) blocks: Vec<BlockSlot>,
    /// The paged table store behind `Paged` slots (`None` for fully
    /// RAM-resident projections).
    pub(crate) store: Option<Arc<TableStore>>,
}

impl ColumnTable {
    /// Builds the columnar projection of a row table (one full snapshot
    /// scan).
    pub fn from_table(table: &Table) -> Self {
        ColumnTable::from_rows(table.id(), table.name(), table.schema(), &table.scan())
    }

    /// Builds a projection covering exactly `rows` (block-chunked; the last
    /// block may be partial).
    pub fn from_rows(table_id: u32, name: &str, schema: &Schema, rows: &[Tuple]) -> Self {
        let n_cols = schema.len();
        let blocks: Vec<BlockSlot> = rows
            .chunks(COLUMN_BLOCK_ROWS)
            .map(|chunk| BlockSlot::Resident(Arc::new(build_block(chunk, n_cols))))
            .collect();
        let kinds = fold_kinds(&blocks, schema);
        ColumnTable {
            table_id,
            name: name.to_owned(),
            schema: schema.clone(),
            row_count: rows.len(),
            kinds,
            blocks,
            store: None,
        }
    }

    /// A new version of this projection covering `rows[..coverage]`,
    /// sharing every already-sealed *full* block untouched and building
    /// only the blocks past them — the incremental seal step of the write
    /// path.  A trailing partial block of `self` (possible after a bulk
    /// build at a non-aligned row count) is replaced by its completed
    /// version; full blocks are never rebuilt.
    pub fn resealed(&self, rows: &[Tuple], coverage: usize) -> ColumnTable {
        debug_assert!(coverage <= rows.len());
        let full_blocks = (self.row_count / COLUMN_BLOCK_ROWS).min(coverage / COLUMN_BLOCK_ROWS);
        let keep_rows = full_blocks * COLUMN_BLOCK_ROWS;
        let n_cols = self.schema.len();
        let mut blocks: Vec<BlockSlot> = self.blocks[..full_blocks].to_vec();
        for chunk in rows[keep_rows..coverage].chunks(COLUMN_BLOCK_ROWS) {
            blocks.push(BlockSlot::Resident(Arc::new(build_block(chunk, n_cols))));
        }
        let kinds = fold_kinds(&blocks, &self.schema);
        ColumnTable {
            table_id: self.table_id,
            name: self.name.clone(),
            schema: self.schema.clone(),
            row_count: coverage,
            kinds,
            blocks,
            store: self.store.clone(),
        }
    }

    /// The id of the table this projection was built from.
    pub fn table_id(&self) -> u32 {
        self.table_id
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// Number of blocks (`ceil(rows / COLUMN_BLOCK_ROWS)`).
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The row range of block `block`.
    pub fn block_rows(&self, block: usize) -> Range<usize> {
        let start = block * COLUMN_BLOCK_ROWS;
        start..(start + self.blocks[block].rows())
    }

    /// The storage kind of a column (uniform across blocks; `Generic` when
    /// blocks disagree or hold non-numeric values).
    pub fn column_kind(&self, column: usize) -> ColumnKind {
        self.kinds[column]
    }

    /// A borrowed view of one column's values within `block`.
    ///
    /// Only valid for RAM-resident blocks; scans over a paged projection
    /// must fault the block in through [`ColumnTable::fetch_block`] and
    /// slice the returned [`SealedBlock`] instead.
    ///
    /// # Panics
    /// If `block` is paged out.
    pub fn block_slice(&self, column: usize, block: usize) -> ColumnSlice<'_> {
        match &self.blocks[block] {
            BlockSlot::Resident(b) => b.slice(column),
            BlockSlot::Paged(_) => {
                panic!("block {block} is paged out; fault it in through fetch_block")
            }
        }
    }

    /// The block at `block`, faulting it in through the buffer pool when it
    /// is paged out.  Returns the block and whether a page fault (a disk
    /// read) happened — `false` for resident blocks and pool hits.
    pub fn fetch_block(&self, block: usize) -> Result<(Arc<SealedBlock>, bool)> {
        match &self.blocks[block] {
            BlockSlot::Resident(b) => Ok((Arc::clone(b), false)),
            BlockSlot::Paged(meta) => {
                let store = self.store.as_ref().ok_or_else(|| {
                    RankSqlError::Storage(format!(
                        "table `{}` block {block} is paged but no store is attached",
                        self.name
                    ))
                })?;
                store.fetch(meta)
            }
        }
    }

    /// How many disk pages backing `block` a scan *avoids* by pruning it:
    /// the extent size of a paged slot, `0` for RAM-resident blocks (there
    /// is no I/O to save).
    pub fn block_pages(&self, block: usize) -> u64 {
        match &self.blocks[block] {
            BlockSlot::Resident(_) => 0,
            BlockSlot::Paged(meta) => meta.pages,
        }
    }

    /// The zone map of `column` within `block` (`None` for non-numeric /
    /// mixed blocks, which cannot be range-pruned soundly).  Zone metadata
    /// stays RAM-resident even for paged blocks, so pruning never touches
    /// disk.
    pub fn zone(&self, column: usize, block: usize) -> Option<ZoneEntry> {
        self.blocks.get(block)?.zone(column)
    }

    /// The maximal possible *ranking score* of column `column` within
    /// `block`: the block maximum clamped into `[0, 1]` (`NaN` ignored).
    /// `None` when the block carries no zone maps for the column.
    pub fn score_zone_max(&self, column: usize, block: usize) -> Option<f64> {
        self.blocks.get(block)?.score_max(column)
    }

    /// The maximal possible ranking score of column `column` over the whole
    /// table (the fold of every block's [`ColumnTable::score_zone_max`]).
    /// `None` when any block cannot bound the column's scores.
    pub fn table_score_max(&self, column: usize) -> Option<f64> {
        if self.blocks.is_empty() {
            return (self.kinds[column] != ColumnKind::Generic).then_some(f64::NEG_INFINITY);
        }
        let mut acc = f64::NEG_INFINITY;
        for b in &self.blocks {
            acc = acc.max(b.score_max(column)?);
        }
        Some(acc)
    }

    /// The value at `(row, column)` (reconstructed from the typed storage,
    /// faulting the block in when paged out).
    ///
    /// # Panics
    /// If a paged block cannot be read back from disk.
    pub fn value(&self, row: usize, column: usize) -> Value {
        let (block, _) = self
            .fetch_block(row / COLUMN_BLOCK_ROWS)
            .expect("paged block read failed");
        block.value(row % COLUMN_BLOCK_ROWS, column)
    }

    /// Materialises the full tuple of `row` (identity
    /// `(table_id, row)` — identical to the row backend's, so results are
    /// byte-compatible across backends), faulting the block in when paged
    /// out.
    ///
    /// # Panics
    /// If a paged block cannot be read back from disk.
    pub fn tuple(&self, row: usize) -> Tuple {
        let local = row % COLUMN_BLOCK_ROWS;
        let (block, _) = self
            .fetch_block(row / COLUMN_BLOCK_ROWS)
            .expect("paged block read failed");
        block.tuple(self.table_id, row - local, local)
    }

    /// The resident block at `block`, `None` when it is paged out (test
    /// and bench introspection).
    #[cfg(test)]
    pub(crate) fn resident_block(&self, block: usize) -> Option<&Arc<SealedBlock>> {
        match &self.blocks[block] {
            BlockSlot::Resident(b) => Some(b),
            BlockSlot::Paged(_) => None,
        }
    }

    /// How many of this projection's blocks are paged out to the table
    /// file (rather than RAM-resident).
    pub fn paged_blocks(&self) -> usize {
        self.blocks
            .iter()
            .filter(|s| matches!(s, BlockSlot::Paged(_)))
            .count()
    }
}

/// Folds the per-block column kinds into one kind per column; an empty
/// block list (fresh table) falls back to the schema's declared types.
fn fold_kinds(blocks: &[BlockSlot], schema: &Schema) -> Vec<ColumnKind> {
    (0..schema.len())
        .map(|col| {
            let mut it = blocks.iter().map(|b| b.kind(col));
            match it.next() {
                None => match schema.fields()[col].data_type {
                    DataType::Int64 => ColumnKind::Int64,
                    DataType::Float64 => ColumnKind::Float64,
                    _ => ColumnKind::Generic,
                },
                Some(first) => {
                    if it.all(|k| k == first) {
                        first
                    } else {
                        ColumnKind::Generic
                    }
                }
            }
        })
        .collect()
}

/// Seals one block: classifies and packs every column, computing its zone
/// map and score maximum.
fn build_block(rows: &[Tuple], n_cols: usize) -> SealedBlock {
    SealedBlock {
        rows: rows.len(),
        columns: (0..n_cols)
            .map(|col| build_block_column(rows, col))
            .collect(),
    }
}

/// Classifies and packs one column of one block.
fn build_block_column(rows: &[Tuple], col: usize) -> BlockColumn {
    let mut all_i64 = true;
    let mut all_f64 = true;
    for t in rows {
        match t.value(col) {
            Value::Int64(_) => all_f64 = false,
            Value::Float64(_) => all_i64 = false,
            _ => {
                all_i64 = false;
                all_f64 = false;
                break;
            }
        }
        if !all_i64 && !all_f64 {
            break;
        }
    }
    if all_i64 {
        BlockColumn::from_i64(
            rows.iter()
                .map(|t| match t.value(col) {
                    Value::Int64(v) => *v,
                    _ => unreachable!("classified as pure Int64"),
                })
                .collect(),
        )
    } else if all_f64 {
        BlockColumn::from_f64(
            rows.iter()
                .map(|t| match t.value(col) {
                    Value::Float64(v) => *v,
                    _ => unreachable!("classified as pure Float64"),
                })
                .collect(),
        )
    } else {
        BlockColumn {
            data: BlockData::Generic(rows.iter().map(|t| t.value(col).clone()).collect()),
            zone: None,
            score_max: None,
        }
    }
}

/// The total order over `f64` used by `Value` comparisons (`NaN` greatest),
/// re-exported from `ranksql-common` so zone-map folds and the executor's
/// typed filters share the one definition the soundness argument needs.
pub use ranksql_common::cmp_f64_total;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;
    use ranksql_common::{DataType, Field};

    fn table(rows: usize) -> Table {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("p", DataType::Float64),
            Field::new("name", DataType::Utf8),
        ])
        .qualify_all("T");
        TableBuilder::new("T", schema)
            .rows((0..rows).map(|i| {
                vec![
                    Value::from(i as i64),
                    Value::from(((i * 37) % 100) as f64 / 100.0),
                    Value::from(format!("r{i}").as_str()),
                ]
            }))
            .build(3)
            .unwrap()
    }

    #[test]
    fn round_trips_rows_and_identities() {
        let t = table(10);
        let c = ColumnTable::from_table(&t);
        assert_eq!(c.row_count(), 10);
        assert_eq!(c.num_blocks(), 1);
        for (i, want) in t.scan().iter().enumerate() {
            let got = c.tuple(i);
            assert_eq!(got.id(), want.id());
            assert_eq!(got.values(), want.values());
        }
    }

    #[test]
    fn blocks_and_zone_maps() {
        let t = table(COLUMN_BLOCK_ROWS + 100);
        let c = ColumnTable::from_table(&t);
        assert_eq!(c.num_blocks(), 2);
        assert_eq!(c.block_rows(0), 0..COLUMN_BLOCK_ROWS);
        assert_eq!(c.block_rows(1), COLUMN_BLOCK_ROWS..COLUMN_BLOCK_ROWS + 100);
        // Int64 zones are exact.
        assert_eq!(
            c.zone(0, 0),
            Some(ZoneEntry::Int64(0, COLUMN_BLOCK_ROWS as i64 - 1))
        );
        assert_eq!(
            c.zone(0, 1),
            Some(ZoneEntry::Int64(
                COLUMN_BLOCK_ROWS as i64,
                COLUMN_BLOCK_ROWS as i64 + 99
            ))
        );
        // Float64 zones cover [0, 0.99].
        match c.zone(1, 0).unwrap() {
            ZoneEntry::Float64(min, max) => {
                assert!(min >= 0.0 && max <= 0.99 + 1e-12);
            }
            other => panic!("expected Float64 zone, got {other:?}"),
        }
        // Utf8 columns carry no zones.
        assert_eq!(c.column_kind(2), ColumnKind::Generic);
        assert!(c.zone(2, 0).is_none());
        assert!(c.score_zone_max(2, 0).is_none());
        // Score maxima are clamped into [0, 1].
        let s = c.score_zone_max(0, 1).unwrap();
        assert_eq!(s, 1.0, "large integers clamp to 1.0 as scores");
        assert!(c.table_score_max(1).unwrap() <= 1.0);
    }

    #[test]
    fn nan_dominates_value_zones_but_not_score_zones() {
        let schema = Schema::new(vec![Field::new("p", DataType::Float64)]).qualify_all("N");
        let t = TableBuilder::new("N", schema)
            .rows([
                vec![Value::from(0.4)],
                vec![Value::from(f64::NAN)],
                vec![Value::from(0.2)],
            ])
            .build(0)
            .unwrap();
        let c = ColumnTable::from_table(&t);
        match c.zone(0, 0).unwrap() {
            ZoneEntry::Float64(min, max) => {
                assert_eq!(min, 0.2);
                assert!(max.is_nan(), "NaN sorts greatest in the value order");
            }
            other => panic!("{other:?}"),
        }
        // NaN scores sort below everything, so they never lift the bound.
        assert_eq!(c.score_zone_max(0, 0), Some(0.4));
    }

    #[test]
    fn mixed_columns_fall_back_to_generic() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int64)]).qualify_all("M");
        let t = TableBuilder::new("M", schema)
            .rows([vec![Value::from(1)], vec![Value::from(2.5)]])
            .build(0)
            .unwrap();
        let c = ColumnTable::from_table(&t);
        assert_eq!(c.column_kind(0), ColumnKind::Generic);
        assert!(matches!(c.block_slice(0, 0), ColumnSlice::Generic(_)));
        assert!(c.zone(0, 0).is_none());
        assert_eq!(c.value(1, 0), Value::from(2.5));
    }

    #[test]
    fn resealing_shares_full_blocks_and_replaces_the_partial_tail() {
        let t = table(COLUMN_BLOCK_ROWS + 500);
        let rows = t.scan();
        let c = ColumnTable::from_rows(t.id(), t.name(), t.schema(), &rows);
        assert_eq!(c.num_blocks(), 2);

        // Grow the row set past the next seal boundary and reseal.
        let more = table(2 * COLUMN_BLOCK_ROWS + 10).scan();
        let sealed = c.resealed(&more, 2 * COLUMN_BLOCK_ROWS);
        assert_eq!(sealed.row_count(), 2 * COLUMN_BLOCK_ROWS);
        assert_eq!(sealed.num_blocks(), 2);
        // Block 0 was full before the reseal: shared, not rebuilt.
        assert!(
            Arc::ptr_eq(
                c.resident_block(0).unwrap(),
                sealed.resident_block(0).unwrap()
            ),
            "sealed blocks must be shared across versions"
        );
        // Block 1 was partial (500 rows): replaced by its completed version.
        assert!(!Arc::ptr_eq(
            c.resident_block(1).unwrap(),
            sealed.resident_block(1).unwrap()
        ));
        assert_eq!(sealed.block_rows(1).len(), COLUMN_BLOCK_ROWS);

        // A reseal matches a from-scratch build over the same prefix.
        let cold =
            ColumnTable::from_rows(t.id(), t.name(), t.schema(), &more[..2 * COLUMN_BLOCK_ROWS]);
        assert_eq!(sealed.zone(0, 1), cold.zone(0, 1));
        assert_eq!(sealed.score_zone_max(1, 1), cold.score_zone_max(1, 1));
        for row in [
            0,
            COLUMN_BLOCK_ROWS - 1,
            COLUMN_BLOCK_ROWS,
            2 * COLUMN_BLOCK_ROWS - 1,
        ] {
            assert_eq!(sealed.tuple(row).values(), cold.tuple(row).values());
        }
    }

    #[test]
    fn backend_tags_render() {
        assert_eq!(StorageBackend::Row.to_string(), "row");
        assert_eq!(StorageBackend::Columnar.to_string(), "columnar");
        assert_eq!(StorageBackend::Paged.to_string(), "paged");
        assert_eq!(StorageBackend::default(), StorageBackend::Row);
        assert!(!StorageBackend::Row.is_columnar());
        assert!(StorageBackend::Columnar.is_columnar());
        assert!(StorageBackend::Paged.is_columnar());
    }
}
