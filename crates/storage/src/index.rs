//! Index structures: score (rank) indexes, ordered attribute indexes and
//! hash indexes.
//!
//! The rank-scan access path of the paper (`idxScan_p(R)`, Section 4.2)
//! "accesses tuples of a table in the order of some predicate `p` when there
//! exists an index such as B+tree on `p`".  [`ScoreIndex`] is exactly that
//! index: the scores of one ranking predicate, pre-computed for every row and
//! kept sorted descending, so a scan returns rows in rank order without
//! evaluating the predicate at query time.

use std::collections::HashMap;

use ranksql_common::{Result, Schema, Score, Tuple, Value};
use ranksql_expr::RankPredicate;

/// An ordered index over the scores of one ranking predicate.
///
/// Entries are sorted by descending score (ties broken by row index), which
/// is the emission order of a rank-scan.
#[derive(Debug, Clone)]
pub struct ScoreIndex {
    predicate_name: String,
    /// `(score, row_index)` sorted by descending score, ascending row index.
    entries: Vec<(Score, u64)>,
}

impl ScoreIndex {
    /// Builds a score index by evaluating `predicate` on every tuple.
    ///
    /// Building the index evaluates the predicate once per row — the paper's
    /// model is that such indexes exist ahead of query time, so this
    /// evaluation is *not* charged to query execution (it bypasses the
    /// query-time evaluation counters by evaluating through the predicate
    /// directly, which only burns the build-time cost).
    pub fn build(
        predicate: &RankPredicate,
        schema: &Schema,
        tuples: &[Tuple],
    ) -> Result<ScoreIndex> {
        let mut entries = Vec::with_capacity(tuples.len());
        for (i, t) in tuples.iter().enumerate() {
            let score = predicate.evaluate(t, schema)?;
            entries.push((score, i as u64));
        }
        entries.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        Ok(ScoreIndex {
            predicate_name: predicate.name.clone(),
            entries,
        })
    }

    /// Builds a score index from precomputed `(score, row_index)` pairs.
    pub fn from_entries(predicate_name: impl Into<String>, mut entries: Vec<(Score, u64)>) -> Self {
        entries.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        ScoreIndex {
            predicate_name: predicate_name.into(),
            entries,
        }
    }

    /// The ranking predicate this index covers.
    pub fn predicate_name(&self) -> &str {
        &self.predicate_name
    }

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of table rows this index covered when it was built; an index
    /// whose coverage differs from the table's current row count is stale.
    pub fn indexed_rows(&self) -> usize {
        self.entries.len()
    }

    /// The entries in descending-score order.
    pub fn entries(&self) -> &[(Score, u64)] {
        &self.entries
    }

    /// The `i`-th best `(score, row_index)` pair.
    pub fn get(&self, i: usize) -> Option<(Score, u64)> {
        self.entries.get(i).copied()
    }

    /// Extends the index over rows appended after it was built, evaluating
    /// `predicate` only on `new_tuples` (the rows starting at table row
    /// `first_row`, i.e. the index's coverage watermark) and merging the
    /// two descending-sorted runs.  Cost is O(new · log new + total) —
    /// never a from-scratch re-evaluation of already-indexed rows.
    pub fn extended(
        &self,
        predicate: &RankPredicate,
        schema: &Schema,
        new_tuples: &[Tuple],
        first_row: u64,
    ) -> Result<ScoreIndex> {
        let mut new_run = Vec::with_capacity(new_tuples.len());
        for (i, t) in new_tuples.iter().enumerate() {
            let score = predicate.evaluate(t, schema)?;
            new_run.push((score, first_row + i as u64));
        }
        new_run.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut entries = Vec::with_capacity(self.entries.len() + new_run.len());
        let (mut old, mut new) = (
            self.entries.iter().peekable(),
            new_run.into_iter().peekable(),
        );
        loop {
            match (old.peek(), new.peek()) {
                // On score ties the old run wins: its rows are < first_row,
                // so this preserves the ascending-row tie-break.
                (Some(&&o), Some(n)) if o.0 >= n.0 => {
                    entries.push(o);
                    old.next();
                }
                (_, Some(_)) => entries.push(new.next().unwrap()),
                (Some(&&o), None) => {
                    entries.push(o);
                    old.next();
                }
                (None, None) => break,
            }
        }
        Ok(ScoreIndex {
            predicate_name: self.predicate_name.clone(),
            entries,
        })
    }
}

/// An ordered index over an attribute (ascending `Value` order).
///
/// Provides the *interesting order* physical property used by sort-merge
/// joins, and range scans for selections.
#[derive(Debug, Clone)]
pub struct BTreeIndex {
    column_name: String,
    column_index: usize,
    /// `(value, row_index)` sorted ascending.
    entries: Vec<(Value, u64)>,
}

impl BTreeIndex {
    /// Builds an ordered index over the column named `column` (qualified).
    pub fn build(column: &str, schema: &Schema, tuples: &[Tuple]) -> Result<BTreeIndex> {
        let column_index = schema.index_of_str(column)?;
        let mut entries: Vec<(Value, u64)> = tuples
            .iter()
            .enumerate()
            .map(|(i, t)| (t.value(column_index).clone(), i as u64))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        Ok(BTreeIndex {
            column_name: column.to_owned(),
            column_index,
            entries,
        })
    }

    /// The indexed column name.
    pub fn column_name(&self) -> &str {
        &self.column_name
    }

    /// The indexed column position in the table schema.
    pub fn column_index(&self) -> usize {
        self.column_index
    }

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of table rows this index covered when it was built; an index
    /// whose coverage differs from the table's current row count is stale.
    pub fn indexed_rows(&self) -> usize {
        self.entries.len()
    }

    /// Entries in ascending value order.
    pub fn entries(&self) -> &[(Value, u64)] {
        &self.entries
    }

    /// Row indexes whose value equals `key`.
    pub fn lookup(&self, key: &Value) -> Vec<u64> {
        let start = self.entries.partition_point(|(v, _)| v < key);
        self.entries[start..]
            .iter()
            .take_while(|(v, _)| v == key)
            .map(|&(_, r)| r)
            .collect()
    }

    /// Row indexes whose value lies in `[low, high]` (inclusive); `None`
    /// bounds are unbounded.
    pub fn range(&self, low: Option<&Value>, high: Option<&Value>) -> Vec<u64> {
        let start = match low {
            Some(l) => self.entries.partition_point(|(v, _)| v < l),
            None => 0,
        };
        let end = match high {
            Some(h) => self.entries.partition_point(|(v, _)| v <= h),
            None => self.entries.len(),
        };
        self.entries[start..end].iter().map(|&(_, r)| r).collect()
    }

    /// Extends the index over rows appended after it was built: `new_tuples`
    /// are the rows starting at table row `first_row` (the index's coverage
    /// watermark).  Merges the two ascending-sorted runs without touching
    /// already-indexed entries.
    pub fn extended(&self, new_tuples: &[Tuple], first_row: u64) -> BTreeIndex {
        let mut new_run: Vec<(Value, u64)> = new_tuples
            .iter()
            .enumerate()
            .map(|(i, t)| (t.value(self.column_index).clone(), first_row + i as u64))
            .collect();
        new_run.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut entries = Vec::with_capacity(self.entries.len() + new_run.len());
        let (mut old, mut new) = (
            self.entries.iter().peekable(),
            new_run.into_iter().peekable(),
        );
        loop {
            match (old.peek(), new.peek()) {
                // On value ties the old run wins (its rows are < first_row),
                // preserving the ascending-row tie-break.
                (Some(&o), Some(n)) if o.0 <= n.0 => {
                    entries.push(o.clone());
                    old.next();
                }
                (_, Some(_)) => entries.push(new.next().unwrap()),
                (Some(&o), None) => {
                    entries.push(o.clone());
                    old.next();
                }
                (None, None) => break,
            }
        }
        BTreeIndex {
            column_name: self.column_name.clone(),
            column_index: self.column_index,
            entries,
        }
    }
}

/// A hash index over an attribute, mapping each value to the rows holding it.
#[derive(Debug, Clone)]
pub struct HashIndex {
    column_name: String,
    column_index: usize,
    buckets: HashMap<Value, Vec<u64>>,
}

impl HashIndex {
    /// Builds a hash index over the column named `column` (qualified).
    pub fn build(column: &str, schema: &Schema, tuples: &[Tuple]) -> Result<HashIndex> {
        let column_index = schema.index_of_str(column)?;
        let mut buckets: HashMap<Value, Vec<u64>> = HashMap::new();
        for (i, t) in tuples.iter().enumerate() {
            buckets
                .entry(t.value(column_index).clone())
                .or_default()
                .push(i as u64);
        }
        Ok(HashIndex {
            column_name: column.to_owned(),
            column_index,
            buckets,
        })
    }

    /// The indexed column name.
    pub fn column_name(&self) -> &str {
        &self.column_name
    }

    /// The indexed column position in the table schema.
    pub fn column_index(&self) -> usize {
        self.column_index
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.buckets.len()
    }

    /// Rows matching `key`.
    pub fn lookup(&self, key: &Value) -> &[u64] {
        self.buckets.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Extends the index over rows appended after it was built: `new_tuples`
    /// are the rows starting at table row `first_row`.  Buckets gain the new
    /// rows in ascending order (appended row ids exceed all existing ones).
    pub fn extended(&self, new_tuples: &[Tuple], first_row: u64) -> HashIndex {
        let mut buckets = self.buckets.clone();
        for (i, t) in new_tuples.iter().enumerate() {
            buckets
                .entry(t.value(self.column_index).clone())
                .or_default()
                .push(first_row + i as u64);
        }
        HashIndex {
            column_name: self.column_name.clone(),
            column_index: self.column_index,
            buckets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ranksql_common::{DataType, Field, TupleId};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::qualified("S", "a", DataType::Int64),
            Field::qualified("S", "p3", DataType::Float64),
        ])
    }

    fn tuples() -> Vec<Tuple> {
        // Mirrors the `a` and `p3` columns of relation S in Figure 2(c).
        let rows = [(4, 0.7), (1, 0.9), (1, 0.5), (4, 0.4), (5, 0.3), (2, 0.25)];
        rows.iter()
            .enumerate()
            .map(|(i, &(a, p3))| {
                Tuple::new(
                    TupleId::base(0, i as u64),
                    vec![Value::from(a), Value::from(p3)],
                )
            })
            .collect()
    }

    #[test]
    fn score_index_orders_descending() {
        let p = RankPredicate::attribute("p3", "S.p3");
        let idx = ScoreIndex::build(&p, &schema(), &tuples()).unwrap();
        assert_eq!(idx.len(), 6);
        // Figure 2(f): order s2, s1, s3, s4, s5, s6 (row indexes 1,0,2,3,4,5).
        let order: Vec<u64> = idx.entries().iter().map(|&(_, r)| r).collect();
        assert_eq!(order, vec![1, 0, 2, 3, 4, 5]);
        assert_eq!(idx.get(0).unwrap().0, Score::new(0.9));
        assert_eq!(idx.predicate_name(), "p3");
    }

    #[test]
    fn score_index_tie_break_by_row() {
        let entries = vec![
            (Score::new(0.5), 3),
            (Score::new(0.5), 1),
            (Score::new(0.9), 2),
        ];
        let idx = ScoreIndex::from_entries("p", entries);
        let order: Vec<u64> = idx.entries().iter().map(|&(_, r)| r).collect();
        assert_eq!(order, vec![2, 1, 3]);
    }

    #[test]
    fn btree_index_lookup_and_range() {
        let idx = BTreeIndex::build("S.a", &schema(), &tuples()).unwrap();
        assert_eq!(idx.len(), 6);
        assert_eq!(idx.lookup(&Value::from(1)), vec![1, 2]);
        assert_eq!(idx.lookup(&Value::from(4)), vec![0, 3]);
        assert_eq!(idx.lookup(&Value::from(99)), Vec::<u64>::new());
        let r = idx.range(Some(&Value::from(2)), Some(&Value::from(4)));
        assert_eq!(r, vec![5, 0, 3]);
        let all = idx.range(None, None);
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn hash_index_lookup() {
        let idx = HashIndex::build("S.a", &schema(), &tuples()).unwrap();
        assert_eq!(idx.distinct_keys(), 4);
        assert_eq!(idx.lookup(&Value::from(1)), &[1, 2]);
        assert_eq!(idx.lookup(&Value::from(7)), &[] as &[u64]);
        assert_eq!(idx.column_name(), "S.a");
        assert_eq!(idx.column_index(), 0);
    }

    #[test]
    fn extended_indexes_match_from_scratch_builds() {
        let p = RankPredicate::attribute("p3", "S.p3");
        let all = tuples();
        // Build over a 4-row prefix, then extend with the remaining rows —
        // including a score tie against an already-indexed row (0.5 at rows
        // 2 and 6) to exercise the merge tie-break.
        let mut rows = all.clone();
        rows.push(Tuple::new(
            TupleId::base(0, 6),
            vec![Value::from(1), Value::from(0.5)],
        ));
        let (prefix, suffix) = rows.split_at(4);

        let score = ScoreIndex::build(&p, &schema(), prefix).unwrap();
        let ext = score.extended(&p, &schema(), suffix, 4).unwrap();
        let cold = ScoreIndex::build(&p, &schema(), &rows).unwrap();
        assert_eq!(ext.entries(), cold.entries());
        assert_eq!(ext.indexed_rows(), 7);

        let btree = BTreeIndex::build("S.a", &schema(), prefix).unwrap();
        let ext = btree.extended(suffix, 4);
        let cold = BTreeIndex::build("S.a", &schema(), &rows).unwrap();
        assert_eq!(ext.entries(), cold.entries());

        let hash = HashIndex::build("S.a", &schema(), prefix).unwrap();
        let ext = hash.extended(suffix, 4);
        let cold = HashIndex::build("S.a", &schema(), &rows).unwrap();
        assert_eq!(ext.lookup(&Value::from(1)), cold.lookup(&Value::from(1)));
        assert_eq!(ext.lookup(&Value::from(4)), cold.lookup(&Value::from(4)));
        assert_eq!(ext.distinct_keys(), cold.distinct_keys());
    }

    #[test]
    fn unknown_column_rejected() {
        assert!(BTreeIndex::build("S.zzz", &schema(), &tuples()).is_err());
        assert!(HashIndex::build("S.zzz", &schema(), &tuples()).is_err());
    }
}
