//! A minimal CSV reader for loading tables from delimited text.
//!
//! The RankSQL prototype in the paper sat inside PostgreSQL and loaded its
//! synthetic tables with `COPY`; this module is the equivalent ingestion path
//! for the in-memory engine.  It is intentionally small — comma (or custom
//! single-byte) delimiter, optional header row, double-quote quoting with
//! `""` escapes — because the workloads this repository ships generate their
//! data programmatically; the reader exists so downstream users can point the
//! engine at their own files without pulling in an external dependency.
//!
//! Two entry points:
//!
//! * [`parse_csv`] — parse text into rows of [`Value`]s against a known
//!   [`Schema`] (per-column type coercion, `NULL`/empty handling);
//! * [`infer_schema`] — inspect the first rows of a file with a header line
//!   and guess a column type for each field (Int64 ⊂ Float64 ⊂ Utf8, plus
//!   Bool for `true`/`false` columns).

use ranksql_common::{DataType, Field, RankSqlError, Result, Schema, Value};

/// Options controlling CSV parsing.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field delimiter (default `,`).
    pub delimiter: char,
    /// Whether the first non-empty line is a header naming the columns.
    pub has_header: bool,
    /// Strings (compared case-insensitively) treated as SQL `NULL`.
    pub null_markers: Vec<String>,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            delimiter: ',',
            has_header: true,
            null_markers: vec!["".into(), "null".into(), "\\n".into()],
        }
    }
}

impl CsvOptions {
    fn is_null(&self, raw: &str) -> bool {
        self.null_markers
            .iter()
            .any(|m| m.eq_ignore_ascii_case(raw))
    }
}

/// Splits one CSV record into raw fields, honouring double-quote quoting and
/// `""` escapes inside quoted fields.
fn split_record(line: &str, delimiter: char) -> Vec<String> {
    let mut fields = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    current.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            } else {
                current.push(c);
            }
        } else if c == '"' && current.is_empty() {
            in_quotes = true;
        } else if c == delimiter {
            fields.push(std::mem::take(&mut current));
        } else {
            current.push(c);
        }
    }
    fields.push(current);
    fields
}

fn coerce(raw: &str, ty: DataType, line_no: usize, options: &CsvOptions) -> Result<Value> {
    let trimmed = raw.trim();
    if options.is_null(trimmed) {
        return Ok(Value::Null);
    }
    let fail = |what: &str| {
        RankSqlError::Storage(format!(
            "line {line_no}: cannot parse `{trimmed}` as {what}"
        ))
    };
    match ty {
        DataType::Int64 => trimmed
            .parse::<i64>()
            .map(Value::from)
            .map_err(|_| fail("Int64")),
        DataType::Float64 => trimmed
            .parse::<f64>()
            .map(Value::from)
            .map_err(|_| fail("Float64")),
        DataType::Bool => match trimmed.to_ascii_lowercase().as_str() {
            "true" | "t" | "1" | "yes" => Ok(Value::from(true)),
            "false" | "f" | "0" | "no" => Ok(Value::from(false)),
            _ => Err(fail("Bool")),
        },
        DataType::Utf8 => Ok(Value::from(trimmed)),
        DataType::Null => Ok(Value::Null),
    }
}

/// Parses CSV text into rows of values matching `schema`.
///
/// The header line (if [`CsvOptions::has_header`]) is only used to check the
/// column count; columns are matched positionally.  Blank lines are skipped.
pub fn parse_csv(text: &str, schema: &Schema, options: &CsvOptions) -> Result<Vec<Vec<Value>>> {
    let mut rows = Vec::new();
    let mut header_seen = !options.has_header;
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let fields = split_record(line, options.delimiter);
        if !header_seen {
            header_seen = true;
            if fields.len() != schema.len() {
                return Err(RankSqlError::Storage(format!(
                    "header has {} columns but the schema has {}",
                    fields.len(),
                    schema.len()
                )));
            }
            continue;
        }
        if fields.len() != schema.len() {
            return Err(RankSqlError::Storage(format!(
                "line {line_no}: expected {} fields, found {}",
                schema.len(),
                fields.len()
            )));
        }
        let mut row = Vec::with_capacity(fields.len());
        for (j, raw) in fields.iter().enumerate() {
            row.push(coerce(raw, schema.field(j).data_type, line_no, options)?);
        }
        rows.push(row);
    }
    Ok(rows)
}

/// Infers a schema from CSV text with a header line: each column gets the
/// narrowest type (`Bool` < `Int64` < `Float64` < `Utf8`) that accepts every
/// non-null sample value.
pub fn infer_schema(text: &str, options: &CsvOptions) -> Result<Schema> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines
        .next()
        .ok_or_else(|| RankSqlError::Storage("cannot infer a schema from empty input".into()))?;
    let names = split_record(header, options.delimiter);
    if names.iter().any(|n| n.trim().is_empty()) {
        return Err(RankSqlError::Storage(
            "header contains an empty column name".into(),
        ));
    }

    // Start from the narrowest guess and widen as counter-examples appear.
    let mut types = vec![DataType::Bool; names.len()];
    let mut saw_value = vec![false; names.len()];
    for line in lines {
        let fields = split_record(line, options.delimiter);
        if fields.len() != names.len() {
            return Err(RankSqlError::Storage(format!(
                "row has {} fields but the header has {}",
                fields.len(),
                names.len()
            )));
        }
        for (j, raw) in fields.iter().enumerate() {
            let trimmed = raw.trim();
            if options.is_null(trimmed) {
                continue;
            }
            saw_value[j] = true;
            types[j] = widen(types[j], trimmed);
        }
    }
    let fields = names
        .iter()
        .zip(types.iter().zip(saw_value.iter()))
        .map(|(name, (ty, saw))| Field::new(name.trim(), if *saw { *ty } else { DataType::Utf8 }))
        .collect();
    Ok(Schema::new(fields))
}

/// The narrowest type at least as wide as `current` that accepts `sample`.
fn widen(current: DataType, sample: &str) -> DataType {
    let accepts = |ty: DataType| -> bool {
        match ty {
            DataType::Bool => matches!(
                sample.to_ascii_lowercase().as_str(),
                "true" | "false" | "t" | "f" | "yes" | "no"
            ),
            DataType::Int64 => sample.parse::<i64>().is_ok(),
            DataType::Float64 => sample.parse::<f64>().is_ok(),
            DataType::Utf8 => true,
            DataType::Null => false,
        }
    };
    let ladder = [
        DataType::Bool,
        DataType::Int64,
        DataType::Float64,
        DataType::Utf8,
    ];
    let start = ladder.iter().position(|t| *t == current).unwrap_or(0);
    for ty in &ladder[start..] {
        if accepts(*ty) {
            return *ty;
        }
    }
    DataType::Utf8
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("name", DataType::Utf8),
            Field::new("score", DataType::Float64),
            Field::new("active", DataType::Bool),
        ])
    }

    #[test]
    fn parses_simple_rows_with_header() {
        let text = "id,name,score,active\n1,alpha,0.5,true\n2,beta,0.25,false\n";
        let rows = parse_csv(text, &schema(), &CsvOptions::default()).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], Value::from(1));
        assert_eq!(rows[0][1], Value::from("alpha"));
        assert_eq!(rows[1][2], Value::from(0.25));
        assert_eq!(rows[1][3], Value::from(false));
    }

    #[test]
    fn quoted_fields_and_escaped_quotes() {
        let text = "id,name,score,active\n1,\"hello, world\",0.1,t\n2,\"say \"\"hi\"\"\",0.2,f\n";
        let rows = parse_csv(text, &schema(), &CsvOptions::default()).unwrap();
        assert_eq!(rows[0][1], Value::from("hello, world"));
        assert_eq!(rows[1][1], Value::from("say \"hi\""));
    }

    #[test]
    fn null_markers_and_blank_lines() {
        let text = "id,name,score,active\n\n1,,NULL,true\n";
        let rows = parse_csv(text, &schema(), &CsvOptions::default()).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][1], Value::Null);
        assert_eq!(rows[0][2], Value::Null);
    }

    #[test]
    fn no_header_and_custom_delimiter() {
        let options = CsvOptions {
            delimiter: ';',
            has_header: false,
            ..CsvOptions::default()
        };
        let text = "1;x;0.5;yes\n2;y;1.5;no\n";
        let rows = parse_csv(text, &schema(), &options).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][3], Value::from(true));
        assert_eq!(rows[1][3], Value::from(false));
    }

    #[test]
    fn arity_and_type_errors_are_reported_with_line_numbers() {
        let text = "id,name,score,active\n1,alpha,0.5\n";
        let err = parse_csv(text, &schema(), &CsvOptions::default()).unwrap_err();
        assert!(err.to_string().contains("line 2"));

        let text = "id,name,score,active\n1,alpha,not-a-number,true\n";
        let err = parse_csv(text, &schema(), &CsvOptions::default()).unwrap_err();
        assert!(err.to_string().contains("Float64"));

        let text = "id,name\n1,alpha\n";
        assert!(parse_csv(text, &schema(), &CsvOptions::default()).is_err());
    }

    #[test]
    fn schema_inference_widens_types() {
        let text = "a,b,c,d\n1,0.5,true,word\n2,3,false,other\n,,,\n";
        let inferred = infer_schema(text, &CsvOptions::default()).unwrap();
        assert_eq!(inferred.field(0).data_type, DataType::Int64);
        assert_eq!(inferred.field(1).data_type, DataType::Float64);
        assert_eq!(inferred.field(2).data_type, DataType::Bool);
        assert_eq!(inferred.field(3).data_type, DataType::Utf8);
    }

    #[test]
    fn inference_rejects_empty_or_malformed_input() {
        assert!(infer_schema("", &CsvOptions::default()).is_err());
        assert!(infer_schema("a,,c\n1,2,3\n", &CsvOptions::default()).is_err());
        assert!(infer_schema("a,b\n1,2,3\n", &CsvOptions::default()).is_err());
    }

    #[test]
    fn all_null_column_defaults_to_utf8() {
        let text = "a,b\n1,\n2,NULL\n";
        let inferred = infer_schema(text, &CsvOptions::default()).unwrap();
        assert_eq!(inferred.field(1).data_type, DataType::Utf8);
    }
}
