//! In-memory relational storage substrate for RankSQL.
//!
//! The RankSQL paper prototypes its algebra and optimizer inside PostgreSQL;
//! this crate provides the equivalent substrate the prototype relied on,
//! implemented from scratch:
//!
//! * [`Table`] — an append-only, in-memory heap of tuples with a schema.
//!   Reads are MVCC snapshots: a [`table::TableEpoch`] pins the sealed
//!   1024-row columnar blocks plus a frozen delta tail at a row-count
//!   watermark, so open cursors keep streaming while writers append, and
//!   inserts *extend* the columnar blocks, indexes and statistics instead of
//!   invalidating them.
//! * [`Catalog`] — the named collection of tables of a database.
//! * Indexes — [`index::ScoreIndex`] (a B-tree-style ordered index over a
//!   *ranking predicate's* scores, what the paper calls the access path of a
//!   `rank-scan` / `idxScan_p`), [`index::BTreeIndex`] (ordered attribute
//!   index, providing *interesting orders* for merge joins), and
//!   [`index::HashIndex`] (equi-join lookups).
//! * [`stats::TableStatistics`] — row counts, per-column distinct counts and
//!   histograms used by the classical half of the cost model, backed by
//!   [`stats::StatsCatalog`] — the per-column summaries (staged
//!   [`sketch::DistinctSketch`] NDV, min/max, null counts) every table
//!   maintains incrementally on insert.
//! * [`sample`] — reservoir sampling used by the optimizer's sampling-based
//!   cardinality estimator (Section 5.2 of the paper).
//! * [`csv`] — a dependency-free CSV reader (with optional schema inference)
//!   so user data can be loaded into tables, the counterpart of the `COPY`
//!   path the PostgreSQL prototype used.
//! * Paged storage — [`recovery::PagedStore`] turns a catalog into a
//!   database *directory*: sealed columnar blocks live in page-aligned,
//!   CRC-guarded extents on disk ([`page`]), faulted in on demand through a
//!   clock-replacement [`buffer::BufferPool`], with a per-table write-ahead
//!   log ([`wal`]) and crash recovery to the last durable epoch.
//!   Zone/score metadata stays RAM-resident, so a zone-map prune is a page
//!   never read.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod buffer;
pub mod catalog;
pub mod column;
pub mod csv;
pub mod index;
pub mod page;
pub mod recovery;
pub mod sample;
pub mod sketch;
pub mod stats;
pub mod table;
pub mod wal;

pub use buffer::{BufferPool, FrameKey};
pub use catalog::Catalog;
pub use column::{
    cmp_f64_total, ColumnKind, ColumnSlice, ColumnTable, SealedBlock, StorageBackend, ZoneEntry,
    COLUMN_BLOCK_ROWS,
};
pub use csv::{infer_schema, parse_csv, CsvOptions};
pub use index::{BTreeIndex, HashIndex, ScoreIndex};
pub use page::{crc32, BlockMeta, PagedColumn, PAGE_SIZE};
pub use recovery::{PagedOptions, PagedStore, TableStore};
pub use sample::{reservoir_sample, sample_fraction};
pub use sketch::{stable_value_hash, DistinctSketch, ARRAY_CAPACITY, HLL_PRECISION};
pub use stats::{
    ColumnStatistics, ColumnSummary, StatsCatalog, TableStatistics, HISTOGRAM_BUCKETS,
};
pub use table::{EpochSet, Table, TableBuilder, TableEpoch};
