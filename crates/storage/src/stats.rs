//! Table and column statistics for the classical half of the cost model.
//!
//! Two layers live here:
//!
//! * [`StatsCatalog`] — the incrementally maintained per-column summaries a
//!   [`Table`] carries: null / non-null counts, numeric min/max, boolean
//!   true counts and a staged [`DistinctSketch`] for the NDV.  Summaries
//!   are built per 1024-row block ([`crate::column::COLUMN_BLOCK_ROWS`],
//!   the zone-map granularity) and merged, and [`Table::insert`] folds each
//!   new row into them in place instead of invalidating anything.
//! * [`TableStatistics`] — the classical snapshot (distinct counts,
//!   histograms, selectivity arithmetic) the optimizer consumes.  It now
//!   reads everything except the histogram off the catalog, so building it
//!   costs one histogram pass instead of an exact `HashSet` scan per
//!   column.

use ranksql_common::{Result, Schema, Tuple, Value};

use crate::column::COLUMN_BLOCK_ROWS;
use crate::sketch::DistinctSketch;
use crate::table::Table;

/// Number of buckets used by equi-width histograms.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// Statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStatistics {
    /// Qualified column name.
    pub name: String,
    /// Number of non-null values.
    pub non_null_count: usize,
    /// Number of nulls.
    pub null_count: usize,
    /// Number of distinct values.
    pub distinct_count: usize,
    /// Minimum numeric value (if the column is numeric and non-empty).
    pub min: Option<f64>,
    /// Maximum numeric value (if the column is numeric and non-empty).
    pub max: Option<f64>,
    /// Fraction of rows whose value is boolean `true` (only for Bool columns).
    pub true_fraction: Option<f64>,
    /// Equi-width histogram bucket counts over `[min, max]` for numeric
    /// columns.
    pub histogram: Vec<usize>,
}

impl ColumnStatistics {
    /// Estimated selectivity of an equality predicate `col = value`.
    ///
    /// Uses the uniform-distinct assumption (`1 / distinct_count`) classic to
    /// System-R optimizers.
    pub fn eq_selectivity(&self) -> f64 {
        if self.distinct_count == 0 {
            0.0
        } else {
            1.0 / self.distinct_count as f64
        }
    }

    /// Estimated selectivity of a range predicate `col <= value` using the
    /// histogram (falls back to 1/3 when no histogram is available, the
    /// traditional default).
    pub fn le_selectivity(&self, value: f64) -> f64 {
        match (self.min, self.max) {
            (Some(min), Some(max)) if max > min && !self.histogram.is_empty() => {
                if value <= min {
                    return 0.0;
                }
                if value >= max {
                    return 1.0;
                }
                let width = (max - min) / self.histogram.len() as f64;
                let pos = (value - min) / width;
                let full_buckets = pos.floor() as usize;
                let frac = pos - pos.floor();
                let total: usize = self.histogram.iter().sum();
                if total == 0 {
                    return 0.5;
                }
                let mut covered: f64 =
                    self.histogram.iter().take(full_buckets).sum::<usize>() as f64;
                if full_buckets < self.histogram.len() {
                    covered += self.histogram[full_buckets] as f64 * frac;
                }
                (covered / total as f64).clamp(0.0, 1.0)
            }
            _ => 1.0 / 3.0,
        }
    }
}

/// Incrementally maintained summary of one column.
///
/// Everything in here is a streaming aggregate: one value can be folded in
/// ([`ColumnSummary::observe`]) and two summaries over disjoint row ranges
/// can be merged ([`ColumnSummary::merge`]), which is what lets the insert
/// path keep statistics fresh without rescanning the column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSummary {
    /// Qualified column name.
    pub name: String,
    /// Number of non-null values observed.
    pub non_null_count: usize,
    /// Number of nulls observed.
    pub null_count: usize,
    /// Minimum numeric value (if any numeric value was observed).
    pub min: Option<f64>,
    /// Maximum numeric value (if any numeric value was observed).
    pub max: Option<f64>,
    /// Number of boolean values observed.
    pub bool_count: usize,
    /// Number of boolean `true` values observed.
    pub true_count: usize,
    /// Staged distinct-count sketch over the non-null values.
    pub sketch: DistinctSketch,
}

impl ColumnSummary {
    /// An empty summary for a column.
    pub fn empty(name: impl Into<String>) -> Self {
        ColumnSummary {
            name: name.into(),
            non_null_count: 0,
            null_count: 0,
            min: None,
            max: None,
            bool_count: 0,
            true_count: 0,
            sketch: DistinctSketch::new(),
        }
    }

    /// Folds one value into the summary.
    pub fn observe(&mut self, v: &Value) {
        if v.is_null() {
            self.null_count += 1;
            return;
        }
        self.non_null_count += 1;
        self.sketch.insert(v);
        if let Some(x) = v.as_f64() {
            self.min = Some(self.min.map_or(x, |m| m.min(x)));
            self.max = Some(self.max.map_or(x, |m| m.max(x)));
        }
        if let Value::Bool(b) = v {
            self.bool_count += 1;
            if *b {
                self.true_count += 1;
            }
        }
    }

    /// Merges a summary over a disjoint row range into this one.
    pub fn merge(&mut self, other: &ColumnSummary) {
        self.non_null_count += other.non_null_count;
        self.null_count += other.null_count;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        self.bool_count += other.bool_count;
        self.true_count += other.true_count;
        self.sketch.merge(&other.sketch);
    }

    /// Estimated (exact below the sketch's array capacity) distinct count.
    pub fn ndv(&self) -> usize {
        self.sketch.estimate()
    }

    /// Fraction of boolean values that are `true`, if the column held any.
    pub fn true_fraction(&self) -> Option<f64> {
        (self.bool_count > 0).then(|| self.true_count as f64 / self.bool_count as f64)
    }
}

/// The incrementally maintained statistics catalog of a table: one
/// [`ColumnSummary`] per schema column plus the row count.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsCatalog {
    /// Number of rows the summaries cover.
    pub row_count: usize,
    /// Per-column summaries, in schema order.
    pub columns: Vec<ColumnSummary>,
}

impl StatsCatalog {
    /// An empty catalog for a schema.
    pub fn empty(schema: &Schema) -> Self {
        StatsCatalog {
            row_count: 0,
            columns: schema
                .fields()
                .iter()
                .map(|f| ColumnSummary::empty(f.qualified_name()))
                .collect(),
        }
    }

    /// Builds a catalog from a row snapshot by folding per-1024-row block
    /// partials (the zone-map granularity), exercising the same merge the
    /// incremental insert path relies on.
    pub fn build(schema: &Schema, rows: &[Tuple]) -> Self {
        let mut total = StatsCatalog::empty(schema);
        for block in rows.chunks(COLUMN_BLOCK_ROWS) {
            let mut partial = StatsCatalog::empty(schema);
            for t in block {
                partial.observe_row(t.values());
            }
            total.merge(&partial);
        }
        total
    }

    /// Folds one row into the catalog (the insert hot path).
    pub fn observe_row(&mut self, values: &[Value]) {
        self.row_count += 1;
        for (c, v) in self.columns.iter_mut().zip(values) {
            c.observe(v);
        }
    }

    /// Merges a catalog over a disjoint row range into this one.
    pub fn merge(&mut self, other: &StatsCatalog) {
        self.row_count += other.row_count;
        for (c, o) in self.columns.iter_mut().zip(&other.columns) {
            c.merge(o);
        }
    }

    /// The summary for the column with the given (possibly unqualified)
    /// name.
    pub fn column(&self, name: &str) -> Option<&ColumnSummary> {
        self.columns
            .iter()
            .find(|c| c.name == name || c.name.ends_with(&format!(".{name}")))
    }
}

/// Statistics for a whole table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStatistics {
    /// Table name.
    pub table: String,
    /// Number of rows.
    pub row_count: usize,
    /// Per-column statistics, in schema order.
    pub columns: Vec<ColumnStatistics>,
}

impl TableStatistics {
    /// Computes statistics for a table.
    ///
    /// Counts, min/max, distinct counts and boolean fractions come straight
    /// off the table's incrementally maintained [`StatsCatalog`] (sketch
    /// NDV: exact up to the sketch's array capacity); only the equi-width
    /// histograms still need a pass over the rows, because bucket bounds
    /// depend on the final min/max.
    pub fn compute(table: &Table) -> Result<TableStatistics> {
        let catalog = table.stats_catalog();
        let tuples = table.scan();
        let mut columns = Vec::with_capacity(catalog.columns.len());
        for (ci, summary) in catalog.columns.iter().enumerate() {
            // Histogram pass (numeric columns with a non-degenerate range).
            let mut histogram = Vec::new();
            if let (Some(lo), Some(hi)) = (summary.min, summary.max) {
                if hi > lo {
                    histogram = vec![0usize; HISTOGRAM_BUCKETS];
                    let width = (hi - lo) / HISTOGRAM_BUCKETS as f64;
                    for t in &tuples {
                        if let Some(x) = t.value(ci).as_f64() {
                            let mut b = ((x - lo) / width) as usize;
                            if b >= HISTOGRAM_BUCKETS {
                                b = HISTOGRAM_BUCKETS - 1;
                            }
                            histogram[b] += 1;
                        }
                    }
                }
            }
            columns.push(ColumnStatistics {
                name: summary.name.clone(),
                non_null_count: summary.non_null_count,
                null_count: summary.null_count,
                distinct_count: summary.ndv(),
                min: summary.min,
                max: summary.max,
                true_fraction: summary.true_fraction(),
                histogram,
            });
        }
        Ok(TableStatistics {
            table: table.name().to_owned(),
            row_count: catalog.row_count,
            columns,
        })
    }

    /// Statistics for the column with the given qualified name.
    pub fn column(&self, name: &str) -> Option<&ColumnStatistics> {
        self.columns
            .iter()
            .find(|c| c.name == name || c.name.ends_with(&format!(".{name}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;
    use ranksql_common::{DataType, Field, Schema};

    fn build_table() -> Table {
        let schema = Schema::new(vec![
            Field::qualified("T", "a", DataType::Int64),
            Field::qualified("T", "flag", DataType::Bool),
            Field::qualified("T", "score", DataType::Float64),
        ]);
        let mut b = TableBuilder::new("T", schema);
        for i in 0..100i64 {
            b = b.row(vec![
                Value::from(i % 10),
                Value::from(i % 5 == 0),
                Value::from(i as f64 / 100.0),
            ]);
        }
        b.build(0).unwrap()
    }

    #[test]
    fn basic_statistics() {
        let t = build_table();
        let stats = TableStatistics::compute(&t).unwrap();
        assert_eq!(stats.row_count, 100);
        let a = stats.column("T.a").unwrap();
        assert_eq!(a.distinct_count, 10);
        assert_eq!(a.null_count, 0);
        assert_eq!(a.min, Some(0.0));
        assert_eq!(a.max, Some(9.0));
        assert!((a.eq_selectivity() - 0.1).abs() < 1e-12);
        let flag = stats.column("flag").unwrap();
        assert_eq!(flag.true_fraction, Some(0.2));
    }

    #[test]
    fn histogram_range_selectivity() {
        let t = build_table();
        let stats = TableStatistics::compute(&t).unwrap();
        let score = stats.column("T.score").unwrap();
        assert!(!score.histogram.is_empty());
        let sel = score.le_selectivity(0.5);
        assert!(
            (sel - 0.5).abs() < 0.1,
            "selectivity {sel} should be near 0.5"
        );
        assert_eq!(score.le_selectivity(-1.0), 0.0);
        assert_eq!(score.le_selectivity(2.0), 1.0);
    }

    #[test]
    fn nulls_counted() {
        let schema = Schema::new(vec![Field::qualified("T", "x", DataType::Int64)]);
        let t = TableBuilder::new("T", schema)
            .row(vec![Value::Null])
            .row(vec![Value::from(1)])
            .build(0)
            .unwrap();
        let stats = TableStatistics::compute(&t).unwrap();
        let x = stats.column("x").unwrap();
        assert_eq!(x.null_count, 1);
        assert_eq!(x.non_null_count, 1);
        assert_eq!(x.distinct_count, 1);
    }

    #[test]
    fn empty_table_statistics() {
        let schema = Schema::new(vec![Field::qualified("T", "x", DataType::Int64)]);
        let t = TableBuilder::new("T", schema).build(0).unwrap();
        let stats = TableStatistics::compute(&t).unwrap();
        assert_eq!(stats.row_count, 0);
        let x = &stats.columns[0];
        assert_eq!(x.distinct_count, 0);
        assert_eq!(x.eq_selectivity(), 0.0);
        assert_eq!(x.le_selectivity(1.0), 1.0 / 3.0);
    }

    #[test]
    fn missing_column_lookup() {
        let t = build_table();
        let stats = TableStatistics::compute(&t).unwrap();
        assert!(stats.column("T.nope").is_none());
    }
}
