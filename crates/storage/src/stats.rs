//! Table and column statistics for the classical half of the cost model.

use std::collections::HashSet;

use ranksql_common::{Result, Value};

use crate::table::Table;

/// Number of buckets used by equi-width histograms.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// Statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStatistics {
    /// Qualified column name.
    pub name: String,
    /// Number of non-null values.
    pub non_null_count: usize,
    /// Number of nulls.
    pub null_count: usize,
    /// Number of distinct values.
    pub distinct_count: usize,
    /// Minimum numeric value (if the column is numeric and non-empty).
    pub min: Option<f64>,
    /// Maximum numeric value (if the column is numeric and non-empty).
    pub max: Option<f64>,
    /// Fraction of rows whose value is boolean `true` (only for Bool columns).
    pub true_fraction: Option<f64>,
    /// Equi-width histogram bucket counts over `[min, max]` for numeric
    /// columns.
    pub histogram: Vec<usize>,
}

impl ColumnStatistics {
    /// Estimated selectivity of an equality predicate `col = value`.
    ///
    /// Uses the uniform-distinct assumption (`1 / distinct_count`) classic to
    /// System-R optimizers.
    pub fn eq_selectivity(&self) -> f64 {
        if self.distinct_count == 0 {
            0.0
        } else {
            1.0 / self.distinct_count as f64
        }
    }

    /// Estimated selectivity of a range predicate `col <= value` using the
    /// histogram (falls back to 1/3 when no histogram is available, the
    /// traditional default).
    pub fn le_selectivity(&self, value: f64) -> f64 {
        match (self.min, self.max) {
            (Some(min), Some(max)) if max > min && !self.histogram.is_empty() => {
                if value <= min {
                    return 0.0;
                }
                if value >= max {
                    return 1.0;
                }
                let width = (max - min) / self.histogram.len() as f64;
                let pos = (value - min) / width;
                let full_buckets = pos.floor() as usize;
                let frac = pos - pos.floor();
                let total: usize = self.histogram.iter().sum();
                if total == 0 {
                    return 0.5;
                }
                let mut covered: f64 =
                    self.histogram.iter().take(full_buckets).sum::<usize>() as f64;
                if full_buckets < self.histogram.len() {
                    covered += self.histogram[full_buckets] as f64 * frac;
                }
                (covered / total as f64).clamp(0.0, 1.0)
            }
            _ => 1.0 / 3.0,
        }
    }
}

/// Statistics for a whole table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStatistics {
    /// Table name.
    pub table: String,
    /// Number of rows.
    pub row_count: usize,
    /// Per-column statistics, in schema order.
    pub columns: Vec<ColumnStatistics>,
}

impl TableStatistics {
    /// Computes statistics by a full scan of the table.
    pub fn compute(table: &Table) -> Result<TableStatistics> {
        let schema = table.schema();
        let tuples = table.scan();
        let mut columns = Vec::with_capacity(schema.len());
        for (ci, field) in schema.fields().iter().enumerate() {
            let mut non_null = 0usize;
            let mut nulls = 0usize;
            let mut distinct: HashSet<Value> = HashSet::new();
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            let mut numeric = 0usize;
            let mut trues = 0usize;
            let mut bools = 0usize;
            for t in &tuples {
                let v = t.value(ci);
                if v.is_null() {
                    nulls += 1;
                    continue;
                }
                non_null += 1;
                distinct.insert(v.clone());
                if let Some(x) = v.as_f64() {
                    numeric += 1;
                    min = min.min(x);
                    max = max.max(x);
                }
                if let Value::Bool(b) = v {
                    bools += 1;
                    if *b {
                        trues += 1;
                    }
                }
            }
            let (min, max) = if numeric > 0 {
                (Some(min), Some(max))
            } else {
                (None, None)
            };
            // Histogram pass (numeric columns only).
            let mut histogram = Vec::new();
            if let (Some(lo), Some(hi)) = (min, max) {
                if hi > lo {
                    histogram = vec![0usize; HISTOGRAM_BUCKETS];
                    let width = (hi - lo) / HISTOGRAM_BUCKETS as f64;
                    for t in &tuples {
                        if let Some(x) = t.value(ci).as_f64() {
                            let mut b = ((x - lo) / width) as usize;
                            if b >= HISTOGRAM_BUCKETS {
                                b = HISTOGRAM_BUCKETS - 1;
                            }
                            histogram[b] += 1;
                        }
                    }
                }
            }
            columns.push(ColumnStatistics {
                name: field.qualified_name(),
                non_null_count: non_null,
                null_count: nulls,
                distinct_count: distinct.len(),
                min,
                max,
                true_fraction: if bools > 0 {
                    Some(trues as f64 / bools as f64)
                } else {
                    None
                },
                histogram,
            });
        }
        Ok(TableStatistics {
            table: table.name().to_owned(),
            row_count: tuples.len(),
            columns,
        })
    }

    /// Statistics for the column with the given qualified name.
    pub fn column(&self, name: &str) -> Option<&ColumnStatistics> {
        self.columns
            .iter()
            .find(|c| c.name == name || c.name.ends_with(&format!(".{name}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;
    use ranksql_common::{DataType, Field, Schema};

    fn build_table() -> Table {
        let schema = Schema::new(vec![
            Field::qualified("T", "a", DataType::Int64),
            Field::qualified("T", "flag", DataType::Bool),
            Field::qualified("T", "score", DataType::Float64),
        ]);
        let mut b = TableBuilder::new("T", schema);
        for i in 0..100i64 {
            b = b.row(vec![
                Value::from(i % 10),
                Value::from(i % 5 == 0),
                Value::from(i as f64 / 100.0),
            ]);
        }
        b.build(0).unwrap()
    }

    #[test]
    fn basic_statistics() {
        let t = build_table();
        let stats = TableStatistics::compute(&t).unwrap();
        assert_eq!(stats.row_count, 100);
        let a = stats.column("T.a").unwrap();
        assert_eq!(a.distinct_count, 10);
        assert_eq!(a.null_count, 0);
        assert_eq!(a.min, Some(0.0));
        assert_eq!(a.max, Some(9.0));
        assert!((a.eq_selectivity() - 0.1).abs() < 1e-12);
        let flag = stats.column("flag").unwrap();
        assert_eq!(flag.true_fraction, Some(0.2));
    }

    #[test]
    fn histogram_range_selectivity() {
        let t = build_table();
        let stats = TableStatistics::compute(&t).unwrap();
        let score = stats.column("T.score").unwrap();
        assert!(!score.histogram.is_empty());
        let sel = score.le_selectivity(0.5);
        assert!(
            (sel - 0.5).abs() < 0.1,
            "selectivity {sel} should be near 0.5"
        );
        assert_eq!(score.le_selectivity(-1.0), 0.0);
        assert_eq!(score.le_selectivity(2.0), 1.0);
    }

    #[test]
    fn nulls_counted() {
        let schema = Schema::new(vec![Field::qualified("T", "x", DataType::Int64)]);
        let t = TableBuilder::new("T", schema)
            .row(vec![Value::Null])
            .row(vec![Value::from(1)])
            .build(0)
            .unwrap();
        let stats = TableStatistics::compute(&t).unwrap();
        let x = stats.column("x").unwrap();
        assert_eq!(x.null_count, 1);
        assert_eq!(x.non_null_count, 1);
        assert_eq!(x.distinct_count, 1);
    }

    #[test]
    fn empty_table_statistics() {
        let schema = Schema::new(vec![Field::qualified("T", "x", DataType::Int64)]);
        let t = TableBuilder::new("T", schema).build(0).unwrap();
        let stats = TableStatistics::compute(&t).unwrap();
        assert_eq!(stats.row_count, 0);
        let x = &stats.columns[0];
        assert_eq!(x.distinct_count, 0);
        assert_eq!(x.eq_selectivity(), 0.0);
        assert_eq!(x.le_selectivity(1.0), 1.0 / 3.0);
    }

    #[test]
    fn missing_column_lookup() {
        let t = build_table();
        let stats = TableStatistics::compute(&t).unwrap();
        assert!(stats.column("T.nope").is_none());
    }
}
