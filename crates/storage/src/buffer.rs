//! The buffer pool: a page-budgeted cache of faulted-in sealed blocks with
//! clock (second-chance) replacement.
//!
//! Frames are whole block extents, weighted by the number of
//! [`crate::page::PAGE_SIZE`] pages they span, so the configured capacity
//! bounds *bytes held*, not block count.  The pool is shared by every table
//! of one [`crate::recovery::PagedStore`]; keys are
//! `(table_id, block_no)`.
//!
//! Eviction is the classic clock: every frame carries a reference bit, set
//! on each hit; the clock hand sweeps the ring, clearing set bits and
//! evicting the first frame found clear.  Blocks are immutable (sealed), so
//! there are no dirty frames and eviction never writes — the WAL and the
//! seal-time extent appends are the only writers of the data files.
//!
//! An extent larger than the whole pool is still admitted (the scan needs
//! it); it simply becomes the next eviction victim.  Evicting a block that
//! a scan still holds an `Arc` to is safe — the scan keeps its clone alive,
//! the pool just forgets it.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::column::SealedBlock;

/// The cache key of one block frame: `(table_id, block_no)`.
pub type FrameKey = (u32, u64);

/// A page-budgeted block cache with clock replacement.
#[derive(Debug)]
pub struct BufferPool {
    capacity_pages: u64,
    inner: Mutex<PoolInner>,
}

#[derive(Debug, Default)]
struct PoolInner {
    frames: HashMap<FrameKey, Frame>,
    /// The clock ring (FIFO of keys; the hand is the front).
    ring: VecDeque<FrameKey>,
    used_pages: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

#[derive(Debug)]
struct Frame {
    block: Arc<SealedBlock>,
    pages: u64,
    referenced: bool,
}

impl BufferPool {
    /// A pool holding at most `capacity_pages` pages (minimum 1).
    pub fn new(capacity_pages: u64) -> Self {
        BufferPool {
            capacity_pages: capacity_pages.max(1),
            inner: Mutex::new(PoolInner::default()),
        }
    }

    /// The configured capacity in pages.
    pub fn capacity_pages(&self) -> u64 {
        self.capacity_pages
    }

    /// Pages currently held.
    pub fn used_pages(&self) -> u64 {
        self.inner.lock().used_pages
    }

    /// Resident frame count.
    pub fn len(&self) -> usize {
        self.inner.lock().frames.len()
    }

    /// Whether the pool holds no frames.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses, evictions)` since the pool was created.
    pub fn stats(&self) -> (u64, u64, u64) {
        let inner = self.inner.lock();
        (inner.hits, inner.misses, inner.evictions)
    }

    /// Looks `key` up, setting its reference bit on a hit.
    pub fn get(&self, key: FrameKey) -> Option<Arc<SealedBlock>> {
        let mut inner = self.inner.lock();
        match inner.frames.get_mut(&key) {
            Some(frame) => {
                frame.referenced = true;
                let block = Arc::clone(&frame.block);
                inner.hits += 1;
                Some(block)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Admits `block` under `key`, clock-evicting frames until the pool
    /// fits the budget again.  The incoming block is always admitted, even
    /// when it alone exceeds the capacity (it is then the next victim).
    pub fn insert(&self, key: FrameKey, block: Arc<SealedBlock>, pages: u64) {
        let pages = pages.max(1);
        let mut inner = self.inner.lock();
        if let Some(old) = inner.frames.insert(
            key,
            Frame {
                block,
                pages,
                referenced: true,
            },
        ) {
            // Re-insert of a resident key: swap the frame in place, keep
            // its ring entry.
            inner.used_pages -= old.pages;
            inner.used_pages += pages;
        } else {
            inner.ring.push_back(key);
            inner.used_pages += pages;
        }
        // Sweep the clock until the budget holds; never evict the frame we
        // just admitted unless it is the only one left.
        while inner.used_pages > self.capacity_pages && inner.ring.len() > 1 {
            let hand = inner.ring.pop_front().expect("ring non-empty");
            if hand == key {
                inner.ring.push_back(hand);
                continue;
            }
            let frame = inner.frames.get_mut(&hand).expect("ring tracks frames");
            if frame.referenced {
                frame.referenced = false;
                inner.ring.push_back(hand);
            } else {
                let evicted = inner.frames.remove(&hand).expect("frame exists");
                inner.used_pages -= evicted.pages;
                inner.evictions += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::BlockData;

    fn block(rows: usize) -> Arc<SealedBlock> {
        Arc::new(SealedBlock::from_data(vec![BlockData::Int64(
            (0..rows as i64).collect(),
        )]))
    }

    #[test]
    fn hits_set_reference_bits_and_misses_count() {
        let pool = BufferPool::new(10);
        assert!(pool.get((1, 0)).is_none());
        pool.insert((1, 0), block(4), 2);
        assert_eq!(pool.get((1, 0)).unwrap().rows(), 4);
        assert_eq!(pool.stats(), (1, 1, 0));
        assert_eq!(pool.used_pages(), 2);
    }

    #[test]
    fn clock_gives_rereferenced_frames_a_second_chance() {
        // 2-page frames A, B, X fill a 6-page pool; admitting C sweeps one
        // clearing lap and evicts A (the first frame found clear), leaving
        // B and X with cleared bits.
        let pool = BufferPool::new(6);
        pool.insert((1, 0), block(1), 2); // A
        pool.insert((1, 1), block(1), 2); // B
        pool.insert((1, 2), block(1), 2); // X
        pool.insert((1, 3), block(1), 2); // C — forces the first eviction
        assert!(pool.get((1, 0)).is_none(), "A is the first victim");
        // Re-reference B.  At the next sweep the hand passes B (bit set:
        // cleared and re-queued) and evicts X (bit clear) — a FIFO replacer
        // would have evicted B, the older frame at the ring front.
        assert!(pool.get((1, 1)).is_some());
        pool.insert((1, 4), block(1), 2); // D — forces the second eviction
        assert!(pool.get((1, 2)).is_none(), "unreferenced X is evicted");
        assert!(pool.get((1, 1)).is_some(), "re-referenced B survives");
        assert!(pool.get((1, 3)).is_some());
        assert!(pool.get((1, 4)).is_some());
        assert!(pool.used_pages() <= 6);
        let (_, _, evictions) = pool.stats();
        assert_eq!(evictions, 2);
    }

    #[test]
    fn oversized_blocks_are_still_admitted() {
        let pool = BufferPool::new(2);
        pool.insert((1, 0), block(1), 100);
        assert!(pool.get((1, 0)).is_some());
        // The next admission evicts it.
        pool.insert((1, 1), block(1), 1);
        pool.insert((1, 2), block(1), 1);
        assert!(pool.get((1, 0)).is_none());
    }

    #[test]
    fn reinsert_of_resident_key_keeps_accounting_straight() {
        let pool = BufferPool::new(10);
        pool.insert((1, 0), block(1), 3);
        pool.insert((1, 0), block(2), 5);
        assert_eq!(pool.used_pages(), 5);
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.get((1, 0)).unwrap().rows(), 2);
    }
}
