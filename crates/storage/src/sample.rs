//! Reservoir sampling of tables.
//!
//! The optimizer's sampling-based cardinality estimator (Section 5.2 of the
//! paper) "randomly samples a small number of tuples from each table and
//! evaluates all the predicates over each tuple".  This module provides the
//! sampling primitive; the estimator itself lives in `ranksql-optimizer`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ranksql_common::Tuple;

use crate::table::Table;

/// Draws a uniform random sample of `sample_size` tuples from `table` using
/// reservoir sampling (Vitter's algorithm R), deterministic for a given seed.
///
/// If the table has fewer rows than `sample_size` the whole table is
/// returned.  The relative order of sampled tuples follows their position in
/// the table (reservoir slots are positional), which keeps sample execution
/// deterministic.
pub fn reservoir_sample(table: &Table, sample_size: usize, seed: u64) -> Vec<Tuple> {
    let tuples = table.scan();
    if tuples.len() <= sample_size || sample_size == 0 {
        return if sample_size == 0 { Vec::new() } else { tuples };
    }
    let mut rng = StdRng::seed_from_u64(seed ^ u64::from(table.id()));
    let mut reservoir: Vec<Tuple> = tuples[..sample_size].to_vec();
    for (i, t) in tuples.iter().enumerate().skip(sample_size) {
        let j = rng.gen_range(0..=i);
        if j < sample_size {
            reservoir[j] = t.clone();
        }
    }
    reservoir
}

/// Draws a sample of `ratio` (e.g. `0.001` for the paper's 0.1 %) of the
/// table, with a minimum of one tuple for non-empty tables so that tiny
/// tables still produce usable samples.
pub fn sample_fraction(table: &Table, ratio: f64, seed: u64) -> Vec<Tuple> {
    let n = table.row_count();
    if n == 0 {
        return Vec::new();
    }
    let size = ((n as f64 * ratio).round() as usize).max(1);
    reservoir_sample(table, size, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;
    use ranksql_common::{DataType, Field, Schema, Value};
    use std::collections::HashSet;

    fn table(n: i64) -> Table {
        let schema = Schema::new(vec![Field::qualified("T", "x", DataType::Int64)]);
        let mut b = TableBuilder::new("T", schema);
        for i in 0..n {
            b = b.row(vec![Value::from(i)]);
        }
        b.build(0).unwrap()
    }

    #[test]
    fn sample_has_requested_size_and_unique_tuples() {
        let t = table(1000);
        let s = reservoir_sample(&t, 50, 7);
        assert_eq!(s.len(), 50);
        let ids: HashSet<_> = s.iter().map(|t| t.id().clone()).collect();
        assert_eq!(ids.len(), 50, "sampling without replacement");
    }

    #[test]
    fn sample_is_deterministic_for_seed() {
        let t = table(500);
        let a = reservoir_sample(&t, 20, 42);
        let b = reservoir_sample(&t, 20, 42);
        assert_eq!(a, b);
        let c = reservoir_sample(&t, 20, 43);
        assert_ne!(a, c, "different seeds should (overwhelmingly) differ");
    }

    #[test]
    fn small_table_returned_whole() {
        let t = table(5);
        assert_eq!(reservoir_sample(&t, 10, 1).len(), 5);
        assert!(reservoir_sample(&t, 0, 1).is_empty());
    }

    #[test]
    fn fraction_sampling() {
        let t = table(2000);
        let s = sample_fraction(&t, 0.01, 3);
        assert_eq!(s.len(), 20);
        // Tiny tables still yield at least one tuple.
        let tiny = table(3);
        assert_eq!(sample_fraction(&tiny, 0.001, 3).len(), 1);
        let empty = table(0);
        assert!(sample_fraction(&empty, 0.5, 3).is_empty());
    }

    #[test]
    fn sample_is_roughly_uniform() {
        // With 10_000 rows and a 10% sample, the mean of sampled values
        // should be near the population mean (4999.5).
        let t = table(10_000);
        let s = reservoir_sample(&t, 1000, 11);
        let mean: f64 =
            s.iter().map(|t| t.value(0).as_f64().unwrap()).sum::<f64>() / s.len() as f64;
        assert!(
            (mean - 4999.5).abs() < 500.0,
            "sample mean {mean} too far from 4999.5"
        );
    }
}
