//! On-disk page and extent formats of the `Paged` backend.
//!
//! The unit of disk allocation is the fixed-size [`PAGE_SIZE`] page; one
//! sealed columnar block is stored as one **extent** — a contiguous,
//! page-aligned run of pages in the table's data file:
//!
//! ```text
//! extent := header | payload | zero padding to a page boundary
//! header := magic u32 | block_no u64 | rows u32 | n_cols u32
//!         | payload_len u32 | payload_crc32 u32
//! payload := column*            (one per schema column)
//! column := tag u8 | data       (0 = Int64, 1 = Float64, 2 = Generic)
//! ```
//!
//! `Int64`/`Float64` columns store `rows × 8` little-endian bytes; generic
//! columns store per-value tagged encodings (see `encode_value`).  Zone
//! maps and score maxima are **not** stored: the decode path re-derives
//! them with the exact folds the seal path uses
//! ([`crate::column`]'s `BlockColumn::from_data`), so the two can never
//! disagree — and the RAM-resident copy in [`BlockMeta`] is what pruning
//! reads, making a pruned block a page never read.
//!
//! Torn writes are detected, not prevented: recovery accepts the longest
//! prefix of CRC-valid extents and truncates the rest (the write-ahead log
//! re-covers those rows — see [`crate::wal`]).

use std::sync::Arc;

use ranksql_common::{RankSqlError, Result, Value};

use crate::column::{BlockData, ColumnKind, ColumnSlice, SealedBlock, ZoneEntry};

/// Bytes per disk page — the buffer pool's accounting unit and the
/// alignment of every extent.
pub const PAGE_SIZE: usize = 16 * 1024;

/// Magic number opening every extent header (`"RqPg"`).
pub(crate) const EXTENT_MAGIC: u32 = 0x5271_5067;

/// Fixed extent header size in bytes.
const EXTENT_HEADER: usize = 4 + 8 + 4 + 4 + 4 + 4;

/// CRC-32 (IEEE 802.3, reflected) over `bytes` — the checksum guarding
/// extent payloads, WAL records and the catalog file.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Rounds `len` up to the next page boundary.
pub(crate) fn page_aligned(len: usize) -> usize {
    len.div_ceil(PAGE_SIZE) * PAGE_SIZE
}

/// The RAM-resident description of one paged-out block: where its extent
/// lives in the data file plus the per-column zone metadata pruning needs.
///
/// This is what a [`crate::TableEpoch`] actually pins for a paged table —
/// page ids (an offset/length extent) instead of the block data itself.
#[derive(Debug)]
pub struct BlockMeta {
    /// The block ordinal within the table (`row = block_no * 1024 + local`).
    pub block_no: u64,
    /// Rows in the block.
    pub rows: usize,
    /// Byte offset of the extent in the table's data file (page-aligned).
    pub offset: u64,
    /// Page-aligned extent length in bytes.
    pub len: usize,
    /// Pages the extent spans (`len / PAGE_SIZE`) — what a prune saves.
    pub pages: u64,
    /// Per-column kind + zone metadata, kept in RAM so pruning decides
    /// without touching disk.
    pub columns: Vec<PagedColumn>,
}

/// The RAM-resident zone metadata of one column of a paged block.
#[derive(Debug, Clone)]
pub struct PagedColumn {
    /// The column's storage kind within this block.
    pub kind: ColumnKind,
    /// Min/max zone (`None` for generic columns).
    pub zone: Option<ZoneEntry>,
    /// Score maximum, clamped `[0, 1]`, `NaN` ignored (`None` for generic
    /// columns).
    pub score_max: Option<f64>,
}

impl BlockMeta {
    /// Describes `block` as it was written at `offset` with page-aligned
    /// length `len`.
    pub(crate) fn describe(block_no: u64, offset: u64, len: usize, block: &SealedBlock) -> Self {
        let columns = (0..block.num_columns())
            .map(|c| PagedColumn {
                kind: match block.slice(c) {
                    ColumnSlice::Int64(_) => ColumnKind::Int64,
                    ColumnSlice::Float64(_) => ColumnKind::Float64,
                    ColumnSlice::Generic(_) => ColumnKind::Generic,
                },
                zone: block.zone(c),
                score_max: block.score_max(c),
            })
            .collect();
        BlockMeta {
            block_no,
            rows: block.rows(),
            offset,
            len,
            pages: (len / PAGE_SIZE) as u64,
            columns,
        }
    }
}

// ---------------------------------------------------------------------------
// Little-endian primitives and the tagged value codec, shared by the extent
// format, the WAL record format and the catalog file.
// ---------------------------------------------------------------------------

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked little-endian reader over a byte slice; every decode
/// error surfaces as [`RankSqlError::Storage`] so recovery can stop at the
/// first torn record instead of panicking.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(RankSqlError::Storage(format!(
                "truncated page data: need {n} bytes, have {}",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn skip(&mut self, n: usize) -> Result<()> {
        self.take(n).map(|_| ())
    }

    pub(crate) fn position(&self) -> usize {
        self.pos
    }

    pub(crate) fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| RankSqlError::Storage("invalid UTF-8 in page data".into()))
    }
}

/// Appends the tagged encoding of one dynamic value.
pub(crate) fn encode_value(out: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Null => out.push(0),
        Value::Int64(v) => {
            out.push(1);
            put_u64(out, *v as u64);
        }
        Value::Float64(v) => {
            out.push(2);
            put_u64(out, v.to_bits());
        }
        Value::Bool(v) => {
            out.push(3);
            out.push(*v as u8);
        }
        Value::Utf8(s) => {
            out.push(4);
            put_str(out, s);
        }
    }
}

/// Decodes one tagged dynamic value.
pub(crate) fn decode_value(r: &mut Reader<'_>) -> Result<Value> {
    Ok(match r.u8()? {
        0 => Value::Null,
        1 => Value::Int64(r.i64()?),
        2 => Value::Float64(r.f64()?),
        3 => Value::Bool(r.u8()? != 0),
        4 => Value::Utf8(r.str()?),
        tag => {
            return Err(RankSqlError::Storage(format!(
                "unknown value tag {tag} in page data"
            )))
        }
    })
}

// ---------------------------------------------------------------------------
// Extent encode / decode.
// ---------------------------------------------------------------------------

/// Encodes `block` as one page-aligned extent.
pub(crate) fn encode_extent(block_no: u64, block: &SealedBlock) -> Vec<u8> {
    let mut payload = Vec::new();
    for c in 0..block.num_columns() {
        match block.slice(c) {
            ColumnSlice::Int64(v) => {
                payload.push(0);
                for &x in v {
                    put_u64(&mut payload, x as u64);
                }
            }
            ColumnSlice::Float64(v) => {
                payload.push(1);
                for &x in v {
                    put_u64(&mut payload, x.to_bits());
                }
            }
            ColumnSlice::Generic(v) => {
                payload.push(2);
                for x in v {
                    encode_value(&mut payload, x);
                }
            }
        }
    }
    let mut out = Vec::with_capacity(page_aligned(EXTENT_HEADER + payload.len()));
    put_u32(&mut out, EXTENT_MAGIC);
    put_u64(&mut out, block_no);
    put_u32(&mut out, block.rows() as u32);
    put_u32(&mut out, block.num_columns() as u32);
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(&payload));
    out.extend_from_slice(&payload);
    out.resize(page_aligned(out.len()), 0);
    out
}

/// One extent decoded from the data file.
pub(crate) struct DecodedExtent {
    pub(crate) block_no: u64,
    /// Page-aligned on-disk length of the extent.
    pub(crate) len: usize,
    pub(crate) block: Arc<SealedBlock>,
}

/// Decodes the extent starting at `bytes[0]`.  Returns `Ok(None)` for a
/// torn or invalid extent (bad magic, short payload, CRC mismatch) — the
/// recovery path treats that as the end of the durable prefix.
pub(crate) fn decode_extent(bytes: &[u8]) -> Result<Option<DecodedExtent>> {
    if bytes.len() < EXTENT_HEADER {
        return Ok(None);
    }
    let mut r = Reader::new(bytes);
    if r.u32()? != EXTENT_MAGIC {
        return Ok(None);
    }
    let block_no = r.u64()?;
    let rows = r.u32()? as usize;
    let n_cols = r.u32()? as usize;
    let payload_len = r.u32()? as usize;
    let want_crc = r.u32()?;
    if bytes.len() < EXTENT_HEADER + payload_len {
        return Ok(None);
    }
    let payload = &bytes[EXTENT_HEADER..EXTENT_HEADER + payload_len];
    if crc32(payload) != want_crc {
        return Ok(None);
    }
    let mut pr = Reader::new(payload);
    let mut columns = Vec::with_capacity(n_cols);
    for _ in 0..n_cols {
        columns.push(match pr.u8()? {
            0 => BlockData::Int64((0..rows).map(|_| pr.i64()).collect::<Result<_>>()?),
            1 => BlockData::Float64((0..rows).map(|_| pr.f64()).collect::<Result<_>>()?),
            2 => BlockData::Generic(
                (0..rows)
                    .map(|_| decode_value(&mut pr))
                    .collect::<Result<_>>()?,
            ),
            tag => {
                return Err(RankSqlError::Storage(format!(
                    "unknown column tag {tag} in extent {block_no}"
                )))
            }
        });
    }
    Ok(Some(DecodedExtent {
        block_no,
        len: page_aligned(EXTENT_HEADER + payload_len),
        block: Arc::new(SealedBlock::from_data(columns)),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ranksql_common::Tuple;
    use ranksql_common::TupleId;

    fn block(rows: usize) -> SealedBlock {
        let tuples: Vec<Tuple> = (0..rows)
            .map(|i| {
                Tuple::new(
                    TupleId::base(1, i as u64),
                    vec![
                        Value::from(i as i64),
                        Value::from(i as f64 / 100.0),
                        Value::from(format!("r{i}").as_str()),
                    ],
                )
            })
            .collect();
        let ct = crate::ColumnTable::from_rows(
            1,
            "T",
            &ranksql_common::Schema::new(vec![
                ranksql_common::Field::new("a", ranksql_common::DataType::Int64),
                ranksql_common::Field::new("p", ranksql_common::DataType::Float64),
                ranksql_common::Field::new("s", ranksql_common::DataType::Utf8),
            ]),
            &tuples,
        );
        let (b, _) = ct.fetch_block(0).unwrap();
        SealedBlock::from_data(
            (0..b.num_columns())
                .map(|c| match b.slice(c) {
                    ColumnSlice::Int64(v) => BlockData::Int64(v.to_vec()),
                    ColumnSlice::Float64(v) => BlockData::Float64(v.to_vec()),
                    ColumnSlice::Generic(v) => BlockData::Generic(v.to_vec()),
                })
                .collect(),
        )
    }

    #[test]
    fn crc32_matches_known_vector() {
        // IEEE CRC-32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn extent_round_trips_and_is_page_aligned() {
        let b = block(100);
        let bytes = encode_extent(7, &b);
        assert_eq!(bytes.len() % PAGE_SIZE, 0);
        let d = decode_extent(&bytes).unwrap().expect("valid extent");
        assert_eq!(d.block_no, 7);
        assert_eq!(d.len, bytes.len());
        assert_eq!(d.block.rows(), 100);
        // Values and recomputed zone metadata both round-trip.
        for row in [0, 42, 99] {
            assert_eq!(d.block.value(row, 0), b.value(row, 0));
            assert_eq!(d.block.value(row, 1), b.value(row, 1));
            assert_eq!(d.block.value(row, 2), b.value(row, 2));
        }
        assert_eq!(d.block.zone(0), b.zone(0));
        assert_eq!(d.block.score_max(1), b.score_max(1));
    }

    #[test]
    fn corrupt_extents_read_as_torn_not_errors() {
        let b = block(10);
        let mut bytes = encode_extent(0, &b);
        assert!(decode_extent(&bytes).unwrap().is_some());
        // Flip a payload byte: CRC catches it.
        bytes[EXTENT_HEADER + 3] ^= 0xFF;
        assert!(decode_extent(&bytes).unwrap().is_none());
        // A write torn inside the payload is rejected ...
        let whole = encode_extent(0, &b);
        assert!(decode_extent(&whole[..EXTENT_HEADER + 4])
            .unwrap()
            .is_none());
        // ... but one torn inside the trailing padding still decodes: the
        // header and payload are complete, so the block's data survives.
        assert!(decode_extent(&whole[..whole.len() - 8]).unwrap().is_some());
        // Garbage magic is rejected.
        assert!(decode_extent(&[0u8; 64]).unwrap().is_none());
    }

    #[test]
    fn value_codec_round_trips_every_variant() {
        let values = vec![
            Value::Null,
            Value::from(-42),
            Value::from(f64::NAN),
            Value::from(true),
            Value::from("héllo"),
        ];
        let mut buf = Vec::new();
        for v in &values {
            encode_value(&mut buf, v);
        }
        let mut r = Reader::new(&buf);
        for v in &values {
            let got = decode_value(&mut r).unwrap();
            match (v, &got) {
                (Value::Float64(a), Value::Float64(b)) => {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
                _ => assert_eq!(v, &got),
            }
        }
        assert_eq!(r.remaining(), 0);
    }
}
