//! The per-table write-ahead log.
//!
//! The WAL covers exactly the rows past the data file's durable extent
//! coverage — the "delta tail" of the epoch machinery.  The file layout:
//!
//! ```text
//! wal    := header record*
//! header := magic u32 | table_id u32 | base_row u64
//! record := len u32 | crc32 u32 | row_index u64 | n_values u32 | value*
//! ```
//!
//! `base_row` is the row the first record *may* start at (the extent
//! coverage when the WAL was last rewritten); `len` covers everything after
//! the two leading words, `crc32` guards it.  Replay accepts the longest
//! valid record prefix and stops at the first torn record.
//!
//! Durability protocol (see [`crate::recovery::TableStore`]): every insert
//! appends one record with a plain buffered `write` — **no fsync** — and
//! each 1024-row seal boundary fsyncs the log before the sealed block's
//! extent is appended to the data file, then atomically rewrites the log to
//! hold only the remaining tail rows (write `wal.new`, fsync, rename).  The
//! epoch ordinal (the row-count watermark) is the LSN anchor: a record for
//! row `r` is LSN `r + 1`, and recovery replays records with
//! `row_index >= extent coverage` on top of the decoded extents.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use ranksql_common::{RankSqlError, Result, Value};

use crate::page::{crc32, decode_value, encode_value, put_u32, put_u64, Reader};

/// Magic number opening every WAL file (`"RqWl"`).
pub(crate) const WAL_MAGIC: u32 = 0x5271_576C;

const HEADER_LEN: usize = 4 + 4 + 8;

/// One replayed WAL record: the row index and its values.
pub(crate) struct WalRecord {
    pub(crate) row_index: u64,
    pub(crate) values: Vec<Value>,
}

/// An open per-table WAL file.
#[derive(Debug)]
pub(crate) struct WalFile {
    file: File,
    path: PathBuf,
    table_id: u32,
}

fn io_err(what: &str, path: &Path, e: std::io::Error) -> RankSqlError {
    RankSqlError::Storage(format!("{what} `{}`: {e}", path.display()))
}

fn header_bytes(table_id: u32, base_row: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN);
    put_u32(&mut out, WAL_MAGIC);
    put_u32(&mut out, table_id);
    put_u64(&mut out, base_row);
    out
}

fn record_bytes(row_index: u64, values: &[Value]) -> Vec<u8> {
    let mut body = Vec::new();
    put_u64(&mut body, row_index);
    put_u32(&mut body, values.len() as u32);
    for v in values {
        encode_value(&mut body, v);
    }
    let mut out = Vec::with_capacity(8 + body.len());
    put_u32(&mut out, body.len() as u32);
    put_u32(&mut out, crc32(&body));
    out.extend_from_slice(&body);
    out
}

impl WalFile {
    /// Creates a fresh WAL at `path` with `base_row = 0`, truncating any
    /// existing file.
    pub(crate) fn create(path: PathBuf, table_id: u32) -> Result<WalFile> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| io_err("cannot create WAL", &path, e))?;
        file.write_all(&header_bytes(table_id, 0))
            .map_err(|e| io_err("cannot write WAL header", &path, e))?;
        file.sync_all()
            .map_err(|e| io_err("cannot sync WAL", &path, e))?;
        Ok(WalFile {
            file,
            path,
            table_id,
        })
    }

    /// Opens an existing WAL (an atomically renamed `wal.new` left by an
    /// interrupted rewrite is *not* consulted — the rename either completed
    /// or the old log is still the valid one), replaying its valid record
    /// prefix.  Returns the open log, its `base_row` and the replayed
    /// records.
    pub(crate) fn open(path: PathBuf, table_id: u32) -> Result<(WalFile, u64, Vec<WalRecord>)> {
        // Drop any orphaned rewrite temp: if it exists the rename never
        // happened, so the old log is authoritative.
        let _ = std::fs::remove_file(rewrite_path(&path));
        if !path.exists() {
            let wal = WalFile::create(path, table_id)?;
            return Ok((wal, 0, Vec::new()));
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| io_err("cannot open WAL", &path, e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| io_err("cannot read WAL", &path, e))?;
        if bytes.len() < HEADER_LEN {
            // Torn header: treat as an empty fresh log.
            let wal = WalFile::create(path, table_id)?;
            return Ok((wal, 0, Vec::new()));
        }
        let mut r = Reader::new(&bytes);
        let magic = r.u32()?;
        let file_table = r.u32()?;
        let base_row = r.u64()?;
        if magic != WAL_MAGIC || file_table != table_id {
            return Err(RankSqlError::Storage(format!(
                "WAL `{}` does not belong to table {table_id}",
                path.display()
            )));
        }
        let mut records = Vec::new();
        let mut valid_len = HEADER_LEN;
        loop {
            if r.remaining() < 8 {
                break;
            }
            let len = r.u32()? as usize;
            let want_crc = r.u32()?;
            if r.remaining() < len {
                break; // torn tail record
            }
            let body = &bytes[r.position()..r.position() + len];
            if crc32(body) != want_crc {
                break;
            }
            let mut br = Reader::new(body);
            let row_index = br.u64()?;
            let n = br.u32()? as usize;
            let mut values = Vec::with_capacity(n);
            let mut ok = true;
            for _ in 0..n {
                match decode_value(&mut br) {
                    Ok(v) => values.push(v),
                    Err(_) => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                break;
            }
            r.skip(len)?;
            valid_len += 8 + len;
            records.push(WalRecord { row_index, values });
        }
        // Truncate any torn suffix so appends continue from a clean tail.
        file.set_len(valid_len as u64)
            .map_err(|e| io_err("cannot truncate WAL", &path, e))?;
        file.seek(SeekFrom::End(0))
            .map_err(|e| io_err("cannot seek WAL", &path, e))?;
        Ok((
            WalFile {
                file,
                path,
                table_id,
            },
            base_row,
            records,
        ))
    }

    /// Appends one record with a buffered write — **no fsync**; durability
    /// arrives at the next seal-boundary [`WalFile::sync`].
    pub(crate) fn append(&mut self, row_index: u64, values: &[Value]) -> Result<()> {
        self.file
            .write_all(&record_bytes(row_index, values))
            .map_err(|e| io_err("cannot append to WAL", &self.path, e))
    }

    /// Fsyncs the log — the durability point of every row appended since
    /// the last sync.
    pub(crate) fn sync(&mut self) -> Result<()> {
        self.file
            .sync_all()
            .map_err(|e| io_err("cannot sync WAL", &self.path, e))
    }

    /// Atomically replaces the log with one holding `base_row` and only
    /// `tail` (the rows past the new extent coverage): the new content is
    /// written to a side file, fsynced, then renamed over the log — a crash
    /// anywhere leaves either the complete old log or the complete new one.
    pub(crate) fn rewrite(&mut self, base_row: u64, tail: &[(u64, &[Value])]) -> Result<()> {
        let tmp = rewrite_path(&self.path);
        let mut out = header_bytes(self.table_id, base_row);
        for (row, values) in tail {
            out.extend_from_slice(&record_bytes(*row, values));
        }
        {
            let mut f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)
                .map_err(|e| io_err("cannot create WAL rewrite", &tmp, e))?;
            f.write_all(&out)
                .map_err(|e| io_err("cannot write WAL rewrite", &tmp, e))?;
            f.sync_all()
                .map_err(|e| io_err("cannot sync WAL rewrite", &tmp, e))?;
        }
        std::fs::rename(&tmp, &self.path)
            .map_err(|e| io_err("cannot rename WAL rewrite", &self.path, e))?;
        self.file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&self.path)
            .map_err(|e| io_err("cannot reopen WAL", &self.path, e))?;
        self.file
            .seek(SeekFrom::End(0))
            .map_err(|e| io_err("cannot seek WAL", &self.path, e))?;
        Ok(())
    }
}

fn rewrite_path(path: &Path) -> PathBuf {
    let mut p = path.as_os_str().to_owned();
    p.push(".new");
    PathBuf::from(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_wal(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ranksql_wal_test_{}_{tag}.wal", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn row(i: i64) -> Vec<Value> {
        vec![Value::from(i), Value::from(i as f64 / 10.0)]
    }

    #[test]
    fn append_sync_reopen_replays_records() {
        let path = temp_wal("replay");
        {
            let mut wal = WalFile::create(path.clone(), 3).unwrap();
            for i in 0..5 {
                wal.append(i as u64, &row(i)).unwrap();
            }
            wal.sync().unwrap();
        }
        let (_wal, base, records) = WalFile::open(path.clone(), 3).unwrap();
        assert_eq!(base, 0);
        assert_eq!(records.len(), 5);
        assert_eq!(records[4].row_index, 4);
        assert_eq!(records[4].values, row(4));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_records_are_dropped_on_replay() {
        let path = temp_wal("torn");
        {
            let mut wal = WalFile::create(path.clone(), 1).unwrap();
            for i in 0..3 {
                wal.append(i as u64, &row(i)).unwrap();
            }
            wal.sync().unwrap();
        }
        // Chop bytes off the last record.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let (mut wal, _, records) = WalFile::open(path.clone(), 1).unwrap();
        assert_eq!(records.len(), 2, "torn third record dropped");
        // The truncated log accepts fresh appends cleanly.
        wal.append(2, &row(2)).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_, _, records) = WalFile::open(path.clone(), 1).unwrap();
        assert_eq!(records.len(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rewrite_keeps_only_the_tail_atomically() {
        let path = temp_wal("rewrite");
        let values = row(7);
        {
            let mut wal = WalFile::create(path.clone(), 2).unwrap();
            for i in 0..10 {
                wal.append(i as u64, &row(i)).unwrap();
            }
            let tail: Vec<(u64, &[Value])> = vec![(8, values.as_slice()), (9, values.as_slice())];
            wal.rewrite(8, &tail).unwrap();
            // The rewritten log accepts appends.
            wal.append(10, &row(10)).unwrap();
            wal.sync().unwrap();
        }
        let (_wal, base, records) = WalFile::open(path.clone(), 2).unwrap();
        assert_eq!(base, 8);
        assert_eq!(
            records.iter().map(|r| r.row_index).collect::<Vec<_>>(),
            vec![8, 9, 10]
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn orphaned_rewrite_temp_is_ignored() {
        let path = temp_wal("orphan");
        {
            let mut wal = WalFile::create(path.clone(), 4).unwrap();
            wal.append(0, &row(0)).unwrap();
            wal.sync().unwrap();
        }
        // Simulate a crash mid-rewrite: a half-written temp beside the log.
        std::fs::write(rewrite_path(&path), b"garbage").unwrap();
        let (_wal, base, records) = WalFile::open(path.clone(), 4).unwrap();
        assert_eq!(base, 0);
        assert_eq!(records.len(), 1);
        assert!(!rewrite_path(&path).exists());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn wrong_table_id_is_rejected() {
        let path = temp_wal("wrongid");
        {
            WalFile::create(path.clone(), 5).unwrap();
        }
        assert!(WalFile::open(path.clone(), 6).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
