//! The paged table store and crash recovery.
//!
//! A [`PagedStore`] is a database directory:
//!
//! ```text
//! <dir>/catalog.rsql   table specs (id, name, schema), CRC-guarded,
//!                      rewritten atomically on every CREATE TABLE
//! <dir>/t<id>.dat      per-table data file: page-aligned block extents
//! <dir>/t<id>.wal      per-table write-ahead log (rows past the extents)
//! ```
//!
//! Each table's [`TableStore`] owns the data file + WAL pair and drives the
//! durability protocol, anchored on the epoch ordinal (the row-count
//! watermark) as the LSN:
//!
//! 1. every insert appends one WAL record — buffered write, **no fsync**;
//! 2. at each 1024-row seal boundary: fsync the WAL (rows now durable) →
//!    append the sealed block's extent(s) to the data file → fsync it →
//!    atomically rewrite the WAL to hold only the rows past the new extent
//!    coverage → the sealed block's slot in the columnar projection flips
//!    from RAM-resident to paged ([`crate::column`]'s `BlockSlot::Paged`),
//!    and the block itself enters the buffer pool (write-through);
//! 3. recovery ([`PagedStore::open`]) decodes the longest CRC-valid extent
//!    prefix of each data file, truncates everything past it, then replays
//!    the WAL's valid record prefix on top — landing exactly on the last
//!    durable epoch.
//!
//! Scans fault paged blocks back in through the shared [`BufferPool`]
//! (`TableStore::fetch`); zone metadata never leaves RAM, so a zone-map
//! prune is a page never read.
//!
//! Scoping note: the *row heap* of a paged table is still rebuilt into RAM
//! at open (row-path operators, indexes and statistics are unchanged);
//! what pages to disk is the columnar scan path — the hot path of every
//! top-k plan.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;
use ranksql_common::{DataType, Field, RankSqlError, Result, Schema, Tuple, TupleId, Value};

use crate::buffer::BufferPool;
use crate::catalog::Catalog;
use crate::column::{BlockSlot, ColumnTable, SealedBlock, COLUMN_BLOCK_ROWS};
use crate::page::{
    crc32, decode_extent, encode_extent, put_str, put_u32, BlockMeta, Reader, PAGE_SIZE,
};
use crate::table::Table;
use crate::wal::WalFile;

/// Magic number opening the catalog file (`"RqCt"`).
const CATALOG_MAGIC: u32 = 0x5271_4374;

/// Configuration of a [`PagedStore`].
#[derive(Debug, Clone, Copy)]
pub struct PagedOptions {
    /// Buffer-pool capacity in [`PAGE_SIZE`] pages, shared by every table
    /// of the store.  The default (1024 pages = 16 MiB) comfortably holds
    /// small working sets while letting the `ablation_buffer_pool` bench
    /// squeeze it below dataset size.
    pub pool_pages: u64,
}

impl Default for PagedOptions {
    fn default() -> Self {
        PagedOptions { pool_pages: 1024 }
    }
}

fn io_err(what: &str, path: &Path, e: std::io::Error) -> RankSqlError {
    RankSqlError::Storage(format!("{what} `{}`: {e}", path.display()))
}

// ---------------------------------------------------------------------------
// TableStore: one table's data file + WAL.
// ---------------------------------------------------------------------------

/// The disk half of one paged table: its extent data file, its WAL and the
/// metadata of every durable block.  Shared between the [`Table`] (which
/// appends) and every [`ColumnTable`] version with paged slots (which
/// fault blocks back in through the pool).
#[derive(Debug)]
pub struct TableStore {
    table_id: u32,
    pool: Arc<BufferPool>,
    inner: Mutex<StoreInner>,
}

#[derive(Debug)]
struct StoreInner {
    data: File,
    data_path: PathBuf,
    data_len: u64,
    wal: WalFile,
    /// Metadata of every durable extent, in block order.  `metas.len()`
    /// is the durable block count — the idempotency anchor that lets two
    /// racing epoch builders call [`TableStore::persist`] safely.
    metas: Vec<Arc<BlockMeta>>,
}

fn data_path(dir: &Path, table_id: u32) -> PathBuf {
    dir.join(format!("t{table_id}.dat"))
}

fn wal_path(dir: &Path, table_id: u32) -> PathBuf {
    dir.join(format!("t{table_id}.wal"))
}

impl TableStore {
    /// Creates fresh (empty) files for a new table.
    fn create(dir: &Path, table_id: u32, pool: Arc<BufferPool>) -> Result<TableStore> {
        let path = data_path(dir, table_id);
        let data = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| io_err("cannot create table data file", &path, e))?;
        let wal = WalFile::create(wal_path(dir, table_id), table_id)?;
        Ok(TableStore {
            table_id,
            pool,
            inner: Mutex::new(StoreInner {
                data,
                data_path: path,
                data_len: 0,
                wal,
                metas: Vec::new(),
            }),
        })
    }

    /// Opens and recovers one table: decodes the longest CRC-valid extent
    /// prefix (truncating any torn tail), replays the WAL past the extent
    /// coverage, and returns the store plus the recovered row heap.
    fn open(dir: &Path, table_id: u32, pool: Arc<BufferPool>) -> Result<(TableStore, Vec<Tuple>)> {
        let path = data_path(dir, table_id);
        let mut data = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            // Existing bytes are the durable prefix we recover from.
            .truncate(false)
            .open(&path)
            .map_err(|e| io_err("cannot open table data file", &path, e))?;
        let mut bytes = Vec::new();
        data.read_to_end(&mut bytes)
            .map_err(|e| io_err("cannot read table data file", &path, e))?;

        let mut metas = Vec::new();
        let mut rows: Vec<Tuple> = Vec::new();
        let mut offset = 0usize;
        while offset < bytes.len() {
            let decoded = match decode_extent(&bytes[offset..])? {
                Some(d) if d.block_no == metas.len() as u64 => d,
                // Torn, corrupt or out-of-order extent: the durable prefix
                // ends here.
                _ => break,
            };
            let base_row = rows.len();
            for local in 0..decoded.block.rows() {
                rows.push(decoded.block.tuple(table_id, base_row, local));
            }
            metas.push(Arc::new(BlockMeta::describe(
                decoded.block_no,
                offset as u64,
                decoded.len,
                &decoded.block,
            )));
            offset += decoded.len;
        }
        if offset < bytes.len() {
            data.set_len(offset as u64)
                .map_err(|e| io_err("cannot truncate table data file", &path, e))?;
        }

        let (wal, _base_row, records) = WalFile::open(wal_path(dir, table_id), table_id)?;
        for rec in records {
            // Records below the extent coverage are duplicates of sealed
            // rows (a crash between the extent fsync and the WAL rewrite);
            // records past the next expected row would leave a hole —
            // either way the durable epoch ends at the last contiguous row.
            if (rec.row_index as usize) < rows.len() {
                continue;
            }
            if rec.row_index as usize != rows.len() {
                break;
            }
            rows.push(Tuple::new(
                TupleId::base(table_id, rec.row_index),
                rec.values,
            ));
        }

        Ok((
            TableStore {
                table_id,
                pool,
                inner: Mutex::new(StoreInner {
                    data,
                    data_path: path,
                    data_len: offset as u64,
                    wal,
                    metas,
                }),
            },
            rows,
        ))
    }

    /// The id of the table this store backs.
    pub fn table_id(&self) -> u32 {
        self.table_id
    }

    /// The buffer pool this store faults blocks through.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Appends one row to the WAL (buffered, unsynced — called from
    /// [`Table::insert`] under the row write lock).
    pub(crate) fn append_wal(&self, row_index: u64, values: &[Value]) -> Result<()> {
        self.inner.lock().wal.append(row_index, values)
    }

    /// Makes `ct`'s sealed full blocks durable and flips them to paged
    /// slots, following the seal-boundary protocol (WAL fsync → extent
    /// append → data fsync → WAL rewrite).  Idempotent: blocks already
    /// durable are re-pointed at their existing [`BlockMeta`], so racing
    /// epoch builders converge on shared metadata.  `rows` must be the
    /// full row slice `ct` was built from (its tail re-seeds the WAL).
    ///
    /// With `force_wal_rewrite`, the WAL is re-seeded even when no new
    /// extent was appended — the attach path for tables that carried rows
    /// before the store existed.
    pub(crate) fn persist(
        self: &Arc<Self>,
        ct: &mut ColumnTable,
        rows: &[Tuple],
        force_wal_rewrite: bool,
    ) -> Result<()> {
        let full_blocks = ct.row_count() / COLUMN_BLOCK_ROWS;
        let mut inner = self.inner.lock();
        let mut appended = false;
        for i in 0..full_blocks {
            let resident = match &ct.blocks[i] {
                BlockSlot::Resident(b) => Arc::clone(b),
                BlockSlot::Paged(_) => continue,
            };
            if i < inner.metas.len() {
                // Another epoch builder already wrote this block.
                ct.blocks[i] = BlockSlot::Paged(Arc::clone(&inner.metas[i]));
                continue;
            }
            debug_assert_eq!(i, inner.metas.len(), "extents are appended in order");
            if !appended {
                // Rows about to leave the WAL's coverage must be durable
                // *in the WAL* before the extent exists — else a crash
                // between here and the rewrite could lose them.
                inner.wal.sync()?;
                appended = true;
            }
            let bytes = encode_extent(i as u64, &resident);
            let offset = inner.data_len;
            inner
                .data
                .seek(SeekFrom::Start(offset))
                .and_then(|_| inner.data.write_all(&bytes))
                .map_err(|e| io_err("cannot append extent", &inner.data_path, e))?;
            inner.data_len += bytes.len() as u64;
            let meta = Arc::new(BlockMeta::describe(
                i as u64,
                offset,
                bytes.len(),
                &resident,
            ));
            inner.metas.push(Arc::clone(&meta));
            // Write-through: the freshly sealed block is hot; admit it so
            // the next scan doesn't immediately fault it back in.
            self.pool
                .insert((self.table_id, i as u64), resident, meta.pages);
            ct.blocks[i] = BlockSlot::Paged(meta);
        }
        if appended || force_wal_rewrite {
            if appended {
                inner
                    .data
                    .sync_all()
                    .map_err(|e| io_err("cannot sync table data file", &inner.data_path, e))?;
            }
            let coverage = inner.metas.len() * COLUMN_BLOCK_ROWS;
            let tail: Vec<(u64, &[Value])> = rows[coverage.min(rows.len())..]
                .iter()
                .enumerate()
                .map(|(k, t)| ((coverage + k) as u64, t.values()))
                .collect();
            inner.wal.rewrite(coverage as u64, &tail)?;
        }
        drop(inner);
        ct.store = Some(Arc::clone(self));
        Ok(())
    }

    /// Faults the block described by `meta` in through the buffer pool:
    /// pool hit → `(block, false)`; miss → read + CRC-check + decode the
    /// extent, admit it, `(block, true)`.
    pub(crate) fn fetch(&self, meta: &BlockMeta) -> Result<(Arc<SealedBlock>, bool)> {
        let key = (self.table_id, meta.block_no);
        if let Some(block) = self.pool.get(key) {
            return Ok((block, false));
        }
        let mut inner = self.inner.lock();
        // Re-check under the lock: a racing scan may have faulted it in.
        if let Some(block) = self.pool.get(key) {
            return Ok((block, false));
        }
        let mut buf = vec![0u8; meta.len];
        inner
            .data
            .seek(SeekFrom::Start(meta.offset))
            .and_then(|_| inner.data.read_exact(&mut buf))
            .map_err(|e| io_err("cannot read extent", &inner.data_path, e))?;
        drop(inner);
        let decoded = decode_extent(&buf)?.ok_or_else(|| {
            RankSqlError::Storage(format!(
                "extent {} of table {} failed its checksum",
                meta.block_no, self.table_id
            ))
        })?;
        if decoded.block_no != meta.block_no || decoded.block.rows() != meta.rows {
            return Err(RankSqlError::Storage(format!(
                "extent {} of table {} does not match its metadata",
                meta.block_no, self.table_id
            )));
        }
        self.pool
            .insert(key, Arc::clone(&decoded.block), meta.pages);
        Ok((decoded.block, true))
    }
}

// ---------------------------------------------------------------------------
// PagedStore: the database directory.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct TableSpec {
    id: u32,
    name: String,
    schema: Schema,
}

/// A database directory of paged tables: the durable catalog plus one
/// [`TableStore`] per table, all sharing one [`BufferPool`].
///
/// Attach one to a [`Catalog`] (done by [`PagedStore::open`]) and every
/// subsequent `create_table` becomes durable: catalog file rewritten +
/// fsynced, data/WAL files created, the store attached to the new table so
/// its inserts follow the WAL protocol.
#[derive(Debug)]
pub struct PagedStore {
    dir: PathBuf,
    pool: Arc<BufferPool>,
    specs: Mutex<Vec<TableSpec>>,
}

impl PagedStore {
    /// Opens (or initialises) the database directory, recovers every
    /// table in the on-disk catalog into `catalog`, and attaches the store
    /// so future `create_table` calls are durable.
    pub fn open(
        dir: impl Into<PathBuf>,
        options: PagedOptions,
        catalog: &Catalog,
    ) -> Result<Arc<PagedStore>> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| io_err("cannot create database directory", &dir, e))?;
        let store = Arc::new(PagedStore {
            pool: Arc::new(BufferPool::new(options.pool_pages)),
            specs: Mutex::new(read_catalog_file(&dir)?),
            dir,
        });
        let specs = store.specs.lock().clone();
        for spec in &specs {
            let (ts, rows) = TableStore::open(&store.dir, spec.id, Arc::clone(&store.pool))?;
            let ts = Arc::new(ts);
            let mut ct = ColumnTable::from_rows(spec.id, &spec.name, &spec.schema, &rows);
            // No-op on disk (every full block is already durable): flips
            // the slots to paged and drops the decoded block data.
            ts.persist(&mut ct, &rows, false)?;
            let table = Table::recovered(spec.id, &spec.name, spec.schema.clone(), rows, ts, ct);
            catalog.adopt_recovered(table)?;
        }
        catalog.attach_paged_store(Arc::clone(&store));
        Ok(store)
    }

    /// The shared buffer pool.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The database directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Page-size constant re-exported for pool sizing
    /// (`pool_pages = budget_bytes / PAGE_SIZE`).
    pub const PAGE_SIZE: usize = PAGE_SIZE;

    /// Makes a newly created table durable: creates its data/WAL files,
    /// attaches a [`TableStore`] to it, and atomically rewrites the
    /// catalog file.  Called by [`Catalog::create_table`] /
    /// [`Catalog::register_table`] when a store is attached.
    pub(crate) fn register_table(self: &Arc<Self>, table: &Table) -> Result<()> {
        let ts = Arc::new(TableStore::create(
            &self.dir,
            table.id(),
            Arc::clone(&self.pool),
        )?);
        table.attach_store(ts)?;
        let mut specs = self.specs.lock();
        specs.push(TableSpec {
            id: table.id(),
            name: table.name().to_owned(),
            schema: table.schema().clone(),
        });
        write_catalog_file(&self.dir, &specs)
    }

    /// Removes a dropped table's catalog entry and files (called by
    /// [`Catalog::drop_table`]), so it cannot resurrect at the next open.
    pub(crate) fn unregister_table(self: &Arc<Self>, table_id: u32) -> Result<()> {
        let mut specs = self.specs.lock();
        specs.retain(|s| s.id != table_id);
        write_catalog_file(&self.dir, &specs)?;
        let _ = std::fs::remove_file(data_path(&self.dir, table_id));
        let _ = std::fs::remove_file(wal_path(&self.dir, table_id));
        Ok(())
    }
}

fn catalog_path(dir: &Path) -> PathBuf {
    dir.join("catalog.rsql")
}

fn dtype_tag(dt: DataType) -> u8 {
    match dt {
        DataType::Int64 => 0,
        DataType::Float64 => 1,
        DataType::Bool => 2,
        DataType::Utf8 => 3,
        DataType::Null => 4,
    }
}

fn dtype_from_tag(tag: u8) -> Result<DataType> {
    Ok(match tag {
        0 => DataType::Int64,
        1 => DataType::Float64,
        2 => DataType::Bool,
        3 => DataType::Utf8,
        4 => DataType::Null,
        _ => {
            return Err(RankSqlError::Storage(format!(
                "unknown data-type tag {tag} in catalog file"
            )))
        }
    })
}

fn write_catalog_file(dir: &Path, specs: &[TableSpec]) -> Result<()> {
    let mut payload = Vec::new();
    put_u32(&mut payload, specs.len() as u32);
    for spec in specs {
        put_u32(&mut payload, spec.id);
        put_str(&mut payload, &spec.name);
        put_u32(&mut payload, spec.schema.len() as u32);
        for field in spec.schema.fields() {
            match &field.relation {
                Some(rel) => {
                    payload.push(1);
                    put_str(&mut payload, rel);
                }
                None => payload.push(0),
            }
            put_str(&mut payload, &field.name);
            payload.push(dtype_tag(field.data_type));
        }
    }
    let mut out = Vec::with_capacity(12 + payload.len());
    put_u32(&mut out, CATALOG_MAGIC);
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(&payload));
    out.extend_from_slice(&payload);

    // Atomic rewrite: side file + fsync + rename, like the WAL rewrite.
    let path = catalog_path(dir);
    let tmp = path.with_extension("rsql.new");
    {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)
            .map_err(|e| io_err("cannot create catalog file", &tmp, e))?;
        f.write_all(&out)
            .map_err(|e| io_err("cannot write catalog file", &tmp, e))?;
        f.sync_all()
            .map_err(|e| io_err("cannot sync catalog file", &tmp, e))?;
    }
    std::fs::rename(&tmp, &path).map_err(|e| io_err("cannot publish catalog file", &path, e))
}

fn read_catalog_file(dir: &Path) -> Result<Vec<TableSpec>> {
    let path = catalog_path(dir);
    let _ = std::fs::remove_file(path.with_extension("rsql.new"));
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(io_err("cannot read catalog file", &path, e)),
    };
    let mut r = Reader::new(&bytes);
    if r.u32()? != CATALOG_MAGIC {
        return Err(RankSqlError::Storage(format!(
            "`{}` is not a RankSQL catalog file",
            path.display()
        )));
    }
    let payload_len = r.u32()? as usize;
    let want_crc = r.u32()?;
    if r.remaining() < payload_len {
        return Err(RankSqlError::Storage(format!(
            "catalog file `{}` is truncated",
            path.display()
        )));
    }
    let payload = &bytes[r.position()..r.position() + payload_len];
    if crc32(payload) != want_crc {
        return Err(RankSqlError::Storage(format!(
            "catalog file `{}` failed its checksum",
            path.display()
        )));
    }
    let mut pr = Reader::new(payload);
    let n_tables = pr.u32()? as usize;
    let mut specs = Vec::with_capacity(n_tables);
    for _ in 0..n_tables {
        let id = pr.u32()?;
        let name = pr.str()?;
        let n_fields = pr.u32()? as usize;
        let mut fields = Vec::with_capacity(n_fields);
        for _ in 0..n_fields {
            let relation = match pr.u8()? {
                0 => None,
                _ => Some(pr.str()?),
            };
            let field_name = pr.str()?;
            let data_type = dtype_from_tag(pr.u8()?)?;
            fields.push(match relation {
                Some(rel) => Field::qualified(rel, field_name, data_type),
                None => Field::new(field_name, data_type),
            });
        }
        specs.push(TableSpec {
            id,
            name,
            schema: Schema::new(fields),
        });
    }
    Ok(specs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ranksql_store_test_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("p", DataType::Float64),
            Field::new("s", DataType::Utf8),
        ])
    }

    fn row(i: i64) -> Vec<Value> {
        vec![
            Value::from(i),
            Value::from((i % 100) as f64 / 100.0),
            Value::from(format!("r{i}").as_str()),
        ]
    }

    #[test]
    fn create_insert_reopen_round_trips_across_the_seal_boundary() {
        let dir = temp_dir("roundtrip");
        let n = COLUMN_BLOCK_ROWS as i64 + 300;
        {
            let catalog = Catalog::new();
            PagedStore::open(&dir, PagedOptions::default(), &catalog).unwrap();
            let t = catalog.create_table("T", schema()).unwrap();
            for i in 0..n {
                t.insert(row(i)).unwrap();
            }
            // The sealed block is paged out; the tail is WAL-covered.
            assert_eq!(t.columnar().paged_blocks(), 1);
        }
        let catalog = Catalog::new();
        PagedStore::open(&dir, PagedOptions::default(), &catalog).unwrap();
        let t = catalog.table("T").unwrap();
        assert_eq!(t.row_count(), n as usize);
        assert_eq!(t.schema().field(0).qualified_name(), "T.a");
        for i in [
            0,
            COLUMN_BLOCK_ROWS as i64 - 1,
            COLUMN_BLOCK_ROWS as i64,
            n - 1,
        ] {
            let tuple = t.tuple(i as u64).unwrap();
            assert_eq!(tuple.values(), &row(i)[..], "row {i}");
        }
        // Recovered columnar projection reads back through the pool.
        let c = t.columnar();
        assert_eq!(c.row_count(), n as usize);
        assert_eq!(c.tuple(5).values(), &row(5)[..]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fetch_counts_faults_and_hits() {
        let dir = temp_dir("faults");
        let catalog = Catalog::new();
        let store = PagedStore::open(&dir, PagedOptions { pool_pages: 2048 }, &catalog).unwrap();
        let t = catalog.create_table("T", schema()).unwrap();
        for i in 0..(COLUMN_BLOCK_ROWS as i64 * 2) {
            t.insert(row(i)).unwrap();
        }
        let c = t.columnar();
        assert_eq!(c.paged_blocks(), 2);
        // Write-through at seal time: the first fetch is a pool hit.
        let (_, faulted) = c.fetch_block(0).unwrap();
        assert!(!faulted);
        // A pool too small to hold anything forces real faults.
        let cold = Catalog::new();
        drop(store);
        drop(catalog);
        PagedStore::open(&dir, PagedOptions { pool_pages: 1 }, &cold).unwrap();
        let c = cold.table("T").unwrap().columnar();
        let (b0, faulted) = c.fetch_block(0).unwrap();
        assert!(faulted, "cold pool must fault the extent in");
        assert_eq!(b0.rows(), COLUMN_BLOCK_ROWS);
        let (_, faulted) = c.fetch_block(1).unwrap();
        assert!(faulted);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_extent_tail_is_truncated_and_wal_rows_survive() {
        let dir = temp_dir("torn");
        let n = COLUMN_BLOCK_ROWS as i64 + 50;
        {
            let catalog = Catalog::new();
            PagedStore::open(&dir, PagedOptions::default(), &catalog).unwrap();
            let t = catalog.create_table("T", schema()).unwrap();
            for i in 0..n {
                t.insert(row(i)).unwrap();
            }
        }
        // Corrupt the sealed extent's payload: the sealed block is lost,
        // and (the WAL having been rewritten past it) the durable epoch
        // ends at the truncation point.
        let data = data_path(&dir, 0);
        let mut bytes = std::fs::read(&data).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&data, &bytes).unwrap();
        let catalog = Catalog::new();
        PagedStore::open(&dir, PagedOptions::default(), &catalog).unwrap();
        let t = catalog.table("T").unwrap();
        assert_eq!(
            t.row_count(),
            0,
            "corrupt first extent leaves no contiguous durable prefix"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn catalog_file_round_trips_qualified_schemas() {
        let dir = temp_dir("catalog");
        {
            let catalog = Catalog::new();
            PagedStore::open(&dir, PagedOptions::default(), &catalog).unwrap();
            catalog.create_table("A", schema()).unwrap();
            catalog.create_table("B", schema()).unwrap();
        }
        let catalog = Catalog::new();
        PagedStore::open(&dir, PagedOptions::default(), &catalog).unwrap();
        assert_eq!(catalog.table_names(), vec!["A".to_owned(), "B".to_owned()]);
        assert_eq!(catalog.table("B").unwrap().id(), 1);
        // Ids keep advancing past recovered tables.
        assert_eq!(catalog.create_table("C", schema()).unwrap().id(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn register_prebuilt_table_becomes_durable() {
        let dir = temp_dir("register");
        {
            let catalog = Catalog::new();
            PagedStore::open(&dir, PagedOptions::default(), &catalog).unwrap();
            let prebuilt = crate::table::TableBuilder::new("W", schema().qualify_all("W"))
                .rows((0..10).map(row))
                .build(0)
                .unwrap();
            catalog.register_table(prebuilt).unwrap();
        }
        let catalog = Catalog::new();
        PagedStore::open(&dir, PagedOptions::default(), &catalog).unwrap();
        let t = catalog.table("W").unwrap();
        assert_eq!(t.row_count(), 10, "pre-attach rows reach the WAL");
        assert_eq!(t.tuple(9).unwrap().values(), &row(9)[..]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
