//! Figure 12(c): execution time of the four plans as the join selectivity
//! varies.  Very selective joins shrink the intermediate results so much that
//! the traditional plan becomes competitive — the crossover the paper points
//! out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ranksql_bench::{build_plan, PaperPlan};
use ranksql_executor::execute_query_plan;
use ranksql_workload::{SyntheticConfig, SyntheticWorkload};

fn bench_fig12c(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12c_vary_join_selectivity");
    group.sample_size(10);
    for selectivity in [0.0005f64, 0.005, 0.02] {
        let config = SyntheticConfig {
            table_size: 2_000,
            join_selectivity: selectivity,
            predicate_cost: 1,
            k: 10,
            ..SyntheticConfig::default()
        };
        let workload = SyntheticWorkload::generate(config).expect("workload");
        for plan_kind in PaperPlan::all() {
            let plan = build_plan(&workload, plan_kind).expect("plan");
            group.bench_with_input(
                BenchmarkId::new(plan_kind.name(), format!("{selectivity}")),
                &plan,
                |b, plan| {
                    b.iter(|| {
                        execute_query_plan(&workload.query, plan, &workload.catalog)
                            .expect("execution")
                            .tuples
                            .len()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig12c);
criterion_main!(benches);
