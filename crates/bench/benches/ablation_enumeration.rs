//! Ablation (beyond the paper's figures): optimization time and explored
//! plan count of the exhaustive two-dimensional enumeration vs the Figure 10
//! heuristics vs the traditional (ranking-blind) baseline.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ranksql_optimizer::{optimize_traditional, CostModel, DpOptimizer, SamplingEstimator};
use ranksql_workload::{SyntheticConfig, SyntheticWorkload};

fn bench_enumeration(c: &mut Criterion) {
    let config = SyntheticConfig {
        table_size: 1_500,
        join_selectivity: 0.01,
        predicate_cost: 2,
        k: 10,
        ..SyntheticConfig::default()
    };
    let workload = SyntheticWorkload::generate(config).expect("workload");
    let estimator = Arc::new(
        SamplingEstimator::build(&workload.query, &workload.catalog, 0.02, 1).expect("estimator"),
    );

    // Report the explored-plan counts once.
    for (label, heuristic) in [("exhaustive", false), ("heuristic", true)] {
        let dp = DpOptimizer::new(
            &workload.query,
            &workload.catalog,
            Arc::clone(&estimator),
            CostModel::default(),
            heuristic,
        );
        let plan = dp.optimize().expect("plan");
        eprintln!(
            "{label}: {} plans considered, {} signatures, cost {:.1}",
            plan.stats.plans_considered,
            plan.stats.signatures_kept,
            plan.cost.value()
        );
    }

    let mut group = c.benchmark_group("ablation_enumeration");
    group.sample_size(10);
    for (label, heuristic) in [("exhaustive_2d", false), ("heuristic_fig10", true)] {
        group.bench_with_input(
            BenchmarkId::new("dp", label),
            &heuristic,
            |b, &heuristic| {
                b.iter(|| {
                    DpOptimizer::new(
                        &workload.query,
                        &workload.catalog,
                        Arc::clone(&estimator),
                        CostModel::default(),
                        heuristic,
                    )
                    .optimize()
                    .expect("plan")
                    .stats
                    .plans_considered
                })
            },
        );
    }
    group.bench_function("traditional_baseline", |b| {
        b.iter(|| {
            optimize_traditional(
                &workload.query,
                &workload.catalog,
                &estimator,
                &CostModel::default(),
            )
            .expect("plan")
            .stats
            .plans_considered
        })
    });
    group.finish();
}

criterion_group!(benches, bench_enumeration);
criterion_main!(benches);
