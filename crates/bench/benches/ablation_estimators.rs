//! Ablation (beyond the paper's figures): the paper's sampling-based
//! cardinality estimator (Section 5.2) versus the analytic
//! histogram-convolution estimator added as an extension.
//!
//! The comparison is along the two axes that matter to an optimizer:
//!
//! * **accuracy** — geometric-mean ratio error of the per-operator output
//!   cardinality estimates against the real execution of plan 3 and plan 4,
//! * **overhead** — the time to build each estimator and the time to estimate
//!   one candidate plan (the sampling estimator executes the subplan over the
//!   samples; the histogram estimator only does histogram arithmetic).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ranksql_bench::{build_plan, PaperPlan};
use ranksql_executor::execute_query_plan;
use ranksql_optimizer::{HistogramEstimator, SamplingEstimator};
use ranksql_workload::{SyntheticConfig, SyntheticWorkload};

const SAMPLE_RATIO: f64 = 0.02;
const SEED: u64 = 0xF16;

fn geometric_mean_ratio_error(real: &[(String, u64)], estimated: &[(String, f64)]) -> f64 {
    let mut log_sum = 0.0;
    let mut count = 0usize;
    for ((_, real_card), (_, est)) in real.iter().zip(estimated.iter()) {
        let r = (*real_card as f64).max(1.0);
        let e = est.max(1.0);
        log_sum += (e / r).max(r / e).ln();
        count += 1;
    }
    (log_sum / count.max(1) as f64).exp()
}

fn bench_estimators(c: &mut Criterion) {
    let config = SyntheticConfig {
        table_size: 4_000,
        join_selectivity: 0.0025,
        predicate_cost: 1,
        k: 10,
        ..SyntheticConfig::default()
    };
    let workload = SyntheticWorkload::generate(config).expect("workload");
    workload.build_indexes().expect("indexes");

    let sampling = SamplingEstimator::build(&workload.query, &workload.catalog, SAMPLE_RATIO, SEED)
        .expect("sampling estimator");
    let histogram =
        HistogramEstimator::build(&workload.query, &workload.catalog, SAMPLE_RATIO, SEED)
            .expect("histogram estimator");

    // Accuracy report (once, outside the timed loops).
    for which in [PaperPlan::Plan3, PaperPlan::Plan4] {
        let plan = build_plan(&workload, which).expect("plan");
        let result =
            execute_query_plan(&workload.query, &plan, &workload.catalog).expect("execution");
        let real = result.metrics.output_cardinalities();
        let s = sampling
            .estimate_per_operator(&plan)
            .expect("sampling estimates");
        let h = histogram
            .estimate_per_operator(&plan)
            .expect("histogram estimates");
        eprintln!(
            "{}: sampling error {:.2}x, histogram error {:.2}x over {} operators",
            which.name(),
            geometric_mean_ratio_error(&real, &s),
            geometric_mean_ratio_error(&real, &h),
            real.len()
        );
    }

    let plan3 = build_plan(&workload, PaperPlan::Plan3).expect("plan3");

    let mut group = c.benchmark_group("ablation_estimators");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("build", "sampling"), |b| {
        b.iter(|| {
            SamplingEstimator::build(&workload.query, &workload.catalog, SAMPLE_RATIO, SEED)
                .expect("estimator")
                .x_threshold()
        })
    });
    group.bench_function(BenchmarkId::new("build", "histogram"), |b| {
        b.iter(|| {
            HistogramEstimator::build(&workload.query, &workload.catalog, SAMPLE_RATIO, SEED)
                .expect("estimator")
                .x_threshold()
        })
    });
    group.bench_function(BenchmarkId::new("estimate_plan3", "sampling"), |b| {
        b.iter(|| {
            // Fresh estimator per batch would hide the memoisation advantage;
            // estimating the same plan repeatedly is what enumeration does.
            sampling.estimate_cardinality(&plan3).expect("estimate")
        })
    });
    group.bench_function(BenchmarkId::new("estimate_plan3", "histogram"), |b| {
        b.iter(|| histogram.estimate_cardinality(&plan3).expect("estimate"))
    });
    group.finish();
}

criterion_group!(benches, bench_estimators);
criterion_main!(benches);
