//! Figure 12(b): execution time of the four plans as the per-evaluation cost
//! of the ranking predicates grows (0 → 1000 unit costs).  Rank-aware plans
//! evaluate far fewer predicates, so the gap widens with the cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ranksql_bench::{build_plan, PaperPlan};
use ranksql_executor::execute_query_plan;
use ranksql_expr::{RankPredicate, RankingContext};
use ranksql_workload::{SyntheticConfig, SyntheticWorkload};

fn set_cost(workload: &mut SyntheticWorkload, cost: u64) {
    let predicates: Vec<RankPredicate> = workload
        .query
        .ranking
        .predicates()
        .iter()
        .map(|p| RankPredicate {
            name: p.name.clone(),
            source: p.source.clone(),
            cost,
        })
        .collect();
    workload.query.ranking =
        RankingContext::new(predicates, workload.query.ranking.scoring().clone());
}

fn bench_fig12b(c: &mut Criterion) {
    let config = SyntheticConfig {
        table_size: 2_000,
        join_selectivity: 0.005,
        predicate_cost: 1,
        k: 10,
        ..SyntheticConfig::default()
    };
    let mut workload = SyntheticWorkload::generate(config).expect("workload");
    let mut group = c.benchmark_group("fig12b_vary_cost");
    group.sample_size(10);
    for cost in [0u64, 10, 100, 1000] {
        set_cost(&mut workload, cost);
        for plan_kind in PaperPlan::all() {
            let plan = build_plan(&workload, plan_kind).expect("plan");
            group.bench_with_input(
                BenchmarkId::new(plan_kind.name(), cost),
                &plan,
                |b, plan| {
                    b.iter(|| {
                        execute_query_plan(&workload.query, plan, &workload.catalog)
                            .expect("execution")
                            .tuples
                            .len()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig12b);
criterion_main!(benches);
