//! Ablation: zone-map score pruning on the materialise-then-sort top-k
//! spine.
//!
//! The measured plan is `SortLimit(ColumnScan[zone-prune])` (Traditional
//! mode on the columnar backend) against the same query on the row backend
//! (`SortLimit(SeqScan)`).  Two data layouts are swept:
//!
//! * **clustered** — scores fall with the row index, so the top-k heap
//!   fills in the first block and every later block's zone-map maximum is
//!   strictly below the threshold: the scan touches one block and prunes
//!   the rest (the zone-map best case);
//! * **shuffled** — scores are spread uniformly across blocks, so every
//!   block's maximum stays near 1.0 and pruning cannot trigger (the
//!   honest worst case: columnar then pays full materialisation).
//!
//! Before timing, every configuration asserts byte-identical results across
//! the two backends and reports the `tuples_scanned` reduction — the same
//! invariant `tests/storage_equivalence.rs` pins.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ranksql_common::{DataType, Field, Schema, Value};
use ranksql_core::{Database, PlanMode, QueryBuilder};
use ranksql_expr::RankPredicate;
use ranksql_storage::StorageBackend;

const ROWS: i64 = 32 * 1024; // 32 columnar blocks

/// Builds the single-table workload; `clustered` controls whether scores
/// fall with the row index or are spread across blocks.
fn build(backend: StorageBackend, clustered: bool) -> Database {
    let db = Database::new().with_storage_backend(backend);
    db.create_table(
        "T",
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("p", DataType::Float64),
        ]),
    )
    .unwrap();
    db.insert_batch(
        "T",
        (0..ROWS).map(|i| {
            let rank = if clustered {
                i
            } else {
                // Deterministic shuffle: stride coprime to ROWS spreads the
                // best scores across all blocks.
                (i * 31 + 7) % ROWS
            };
            vec![
                Value::from(i),
                Value::from((ROWS - rank) as f64 / ROWS as f64),
            ]
        }),
    )
    .unwrap();
    db.prebuild_columnar().unwrap();
    db
}

fn bench_zone_map(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_zone_map");
    group.sample_size(10);
    for clustered in [true, false] {
        let layout = if clustered { "clustered" } else { "shuffled" };
        let row_db = build(StorageBackend::Row, clustered);
        let col_db = build(StorageBackend::Columnar, clustered);
        for k in [1usize, 10, 100] {
            let query = QueryBuilder::new()
                .table("T")
                .rank_predicate(RankPredicate::attribute("p", "T.p"))
                .limit(k)
                .build()
                .unwrap();
            let run = |db: &Database| {
                db.session()
                    .with_mode(PlanMode::Traditional)
                    .with_threads(1)
                    .execute(&query)
                    .unwrap()
            };
            // Determinism gate: identical ordered results across backends.
            let row = run(&row_db);
            let col = run(&col_db);
            assert_eq!(row.scores(), col.scores(), "{layout}/k={k}");
            let ids = |r: &ranksql_core::QueryResult| -> Vec<_> {
                r.rows.iter().map(|t| t.tuple.id().clone()).collect()
            };
            assert_eq!(ids(&row), ids(&col), "{layout}/k={k}");
            println!(
                "ablation_zone_map {layout}/k={k}: tuples_scanned row={} columnar={} \
                 (blocks pruned: {})",
                row.tuples_scanned, col.tuples_scanned, col.blocks_pruned
            );
            if clustered {
                assert!(
                    col.tuples_scanned < row.tuples_scanned,
                    "{layout}/k={k}: pruning must reduce tuples_scanned"
                );
            }
            group.bench_function(format!("{layout}/k{k}/row"), |b| {
                b.iter(|| black_box(run(&row_db).rows.len()))
            });
            group.bench_function(format!("{layout}/k{k}/columnar_zone_prune"), |b| {
                b.iter(|| black_box(run(&col_db).rows.len()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_zone_map);
criterion_main!(benches);
