//! Server front-end throughput: what does putting the Session API behind
//! the wire cost, per request?
//!
//! Three scenarios over the same small top-k workload:
//!
//! * `in_process` — the baseline: bind + cursor + take(10) straight on the
//!   `Session` API, no socket.
//! * `wire_roundtrip` — the same work as seen by a tenant: `BIND` → `OPEN`
//!   → `FETCH 10` → `CLOSE` over a persistent loopback connection (the
//!   statement is prepared once, so the steady-state path is plan-cache
//!   hits plus framing).
//! * `wire_fetch_more` — the incremental path: `FETCH 5` then
//!   `FETCH_MORE 5`, exercising the server-held cursor extension.
//!
//! The spread between `in_process` and `wire_roundtrip` is the front end's
//! overhead budget; the regression gate pins all three.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ranksql_common::{DataType, Field, Schema, Value};
use ranksql_core::{Database, Params, PlanMode};
use ranksql_server::{Server, ServerConfig};
use ranksql_workload::client::WireClient;

const SQL: &str = "SELECT * FROM T WHERE T.jc < ? ORDER BY s(T.score) LIMIT 10";

fn build_db() -> Database {
    let db = Database::new();
    db.create_table(
        "T",
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("jc", DataType::Int64),
            Field::new("score", DataType::Float64),
        ]),
    )
    .expect("create table");
    db.insert_batch(
        "T",
        (0..2_000i64).map(|i| {
            vec![
                Value::from(i),
                Value::from(i % 16),
                Value::from((((i * 2_654_435_761) % 10_000).abs() as f64) / 10_000.0),
            ]
        }),
    )
    .expect("seed rows");
    db
}

fn bench_server_throughput(c: &mut Criterion) {
    // The server must outlive the (criterion-owned) benchmark closures, so
    // the database and server are leaked for the life of the bench process
    // and served from a plain detached thread.
    let db: &'static Database = Box::leak(Box::new(build_db()));
    let server: &'static Server = Box::leak(Box::new(
        Server::bind(ServerConfig::default()).expect("bind"),
    ));
    let addr = server.local_addr().expect("addr");
    std::thread::spawn(move || {
        let _ = server.serve(db);
    });

    let mut group = c.benchmark_group("server_throughput");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(200));

    let session = db.session().with_mode(PlanMode::RankAware);
    let prepared = session.prepare(SQL).expect("prepare");
    group.bench_function("in_process", |b| {
        b.iter(|| {
            let mut cursor = prepared
                .bind(Params::new().set(0, Value::from(8i64)))
                .expect("bind")
                .cursor()
                .expect("cursor");
            black_box(cursor.take(10).expect("take").len())
        })
    });

    let mut client = WireClient::connect(addr).expect("connect");
    client
        .hello("bench", PlanMode::RankAware, 0, 0, 0)
        .expect("hello");
    let stmt = client.prepare(SQL).expect("prepare");
    group.bench_function("wire_roundtrip", |b| {
        b.iter(|| {
            let bound = client
                .bind(stmt.statement_id, None, &[(0, Value::from(8i64))])
                .expect("bind");
            let opened = client.open(bound.binding_id).expect("open");
            let rows = client.fetch(opened.cursor_id, 10).expect("fetch");
            client.close(opened.cursor_id).expect("close");
            black_box(rows.rows.len())
        })
    });

    group.bench_function("wire_fetch_more", |b| {
        b.iter(|| {
            let bound = client
                .bind(stmt.statement_id, None, &[(0, Value::from(8i64))])
                .expect("bind");
            let opened = client.open(bound.binding_id).expect("open");
            let first = client.fetch(opened.cursor_id, 5).expect("fetch");
            let more = client.fetch_more(opened.cursor_id, 5).expect("fetch_more");
            client.close(opened.cursor_id).expect("close");
            black_box(first.rows.len() + more.rows.len())
        })
    });

    group.finish();
    server.shutdown_handle().shutdown();
}

criterion_group!(benches, bench_server_throughput);
criterion_main!(benches);
