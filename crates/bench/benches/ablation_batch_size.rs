//! Ablation: how the configured execution batch size affects wall-clock on
//! the membership-heavy plan shapes (scan, scan+filter, hash join) and on a
//! rank-aware top-k plan whose operators use the tuple-at-a-time adapter.
//!
//! Batch size 1 degrades the engine to tuple-at-a-time pulls (the historical
//! scheme); larger sizes amortize per-pull dispatch, metric updates and
//! budget accounting.  The membership plans are expected to improve steeply
//! up to a few hundred tuples per batch and flatten after; the rank-aware
//! plan is expected to be insensitive — its cost is dominated by ranking
//! queues and probe scheduling, which batching deliberately leaves alone.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ranksql_algebra::{JoinAlgorithm, LogicalPlan, PhysicalPlan};
use ranksql_executor::{build_operator, drain_batched, ExecutionContext};
use ranksql_expr::{BoolExpr, CompareOp, ScalarExpr};
use ranksql_workload::{SyntheticConfig, SyntheticWorkload};

const BATCH_SIZES: [usize; 6] = [1, 16, 64, 256, 1024, 4096];

fn bench_batch_size(c: &mut Criterion) {
    let config = SyntheticConfig {
        table_size: 5_000,
        join_selectivity: 0.002,
        predicate_cost: 1,
        k: 10,
        ..SyntheticConfig::default()
    };
    let workload = SyntheticWorkload::generate(config).expect("workload");
    let catalog = &workload.catalog;
    let a = catalog.table("A").expect("A");
    let b = catalog.table("B").expect("B");
    let ranking = Arc::clone(&workload.query.ranking);

    let plans = [
        ("seq_scan", LogicalPlan::scan(&a)),
        (
            "filter",
            LogicalPlan::scan(&a).select(BoolExpr::compare(
                ScalarExpr::col("A.p1"),
                CompareOp::GtEq,
                ScalarExpr::lit(0.25),
            )),
        ),
        (
            "hash_join",
            LogicalPlan::scan(&a).join(
                LogicalPlan::scan(&b),
                Some(BoolExpr::col_eq_col("A.jc1", "B.jc1")),
                JoinAlgorithm::Hash,
            ),
        ),
        (
            "hrjn_topk",
            LogicalPlan::rank_scan(&a, 0)
                .rank(1)
                .join(
                    LogicalPlan::rank_scan(&b, 2).rank(3),
                    Some(BoolExpr::col_eq_col("A.jc1", "B.jc1")),
                    JoinAlgorithm::HashRankJoin,
                )
                .limit(workload.query.k),
        ),
    ];

    for (name, logical) in plans {
        let physical = PhysicalPlan::from_logical(&logical).expect("lowering");
        let mut group = c.benchmark_group(format!("ablation_batch_size/{name}"));
        group.sample_size(10);
        group.measurement_time(std::time::Duration::from_millis(100));
        for batch_size in BATCH_SIZES {
            group.bench_with_input(
                BenchmarkId::from_parameter(batch_size),
                &batch_size,
                |bench, &batch_size| {
                    bench.iter(|| {
                        let exec =
                            ExecutionContext::new(Arc::clone(&ranking)).with_batch_size(batch_size);
                        let mut root = build_operator(&physical, catalog, &exec).expect("build");
                        black_box(
                            drain_batched(root.as_mut(), batch_size)
                                .expect("drain")
                                .len(),
                        )
                    })
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_batch_size);
criterion_main!(benches);
