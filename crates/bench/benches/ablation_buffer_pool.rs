//! Ablation: buffer-pool size vs paging I/O on the disk-backed backend.
//!
//! A 32 768-row table seals into 32 columnar blocks = 64 data pages
//! (one i64 + one f64 column, two 16 KiB pages per block), with scores
//! clustered so the best values live in the first block.  The sweep reopens
//! the same database directory under three pool budgets — 128 pages (the
//! whole table fits), 16 and 4 (the table does not) — and measures two
//! queries at each:
//!
//! * **topk_prune** — a selective top-10: once the threshold fills from
//!   block 0, zone-map score pruning skips every later block, so a pruned
//!   block is a page never read and the query barely notices the tiny pool.
//! * **full_noprune** — `k > rows`, so the threshold never prunes and the
//!   scan faults the whole table through the pool; below dataset size this
//!   pays eviction + re-fault every iteration.
//!
//! One accounting line per pool size records `pages_faulted` /
//! `pages_pruned` for both shapes, pinning the claim that pruning (not the
//! pool) is what keeps the selective query's I/O flat.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ranksql_common::{DataType, Field, Schema, Value};
use ranksql_core::{Database, PlanMode, QueryBuilder};
use ranksql_expr::RankPredicate;
use ranksql_storage::PagedOptions;

const ROWS: i64 = 32_768; // 32 sealed blocks = 64 data pages

/// Creates (once) the on-disk database the sweep reopens under different
/// pool budgets: clustered descending scores, fully sealed and durable.
fn seed_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ranksql-bench-pool-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = Database::open_paged(&dir).unwrap();
    db.create_table(
        "T",
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("p", DataType::Float64),
        ]),
    )
    .unwrap();
    db.insert_batch(
        "T",
        (0..ROWS).map(|i| vec![Value::from(i), Value::from((ROWS - i) as f64 / ROWS as f64)]),
    )
    .unwrap();
    dir
}

fn bench_buffer_pool(c: &mut Criterion) {
    let dir = seed_dir();
    let mut group = c.benchmark_group("ablation_buffer_pool");
    group.sample_size(10);

    let topk = QueryBuilder::new()
        .table("T")
        .rank_predicate(RankPredicate::attribute("p", "T.p"))
        .limit(10)
        .build()
        .unwrap();
    let full = QueryBuilder::new()
        .table("T")
        .rank_predicate(RankPredicate::attribute("p", "T.p"))
        .limit(ROWS as usize + 1)
        .build()
        .unwrap();

    for pool_pages in [128u64, 16, 4] {
        let db = Database::open_paged_with(&dir, PagedOptions { pool_pages }).unwrap();
        let session = db
            .session()
            .with_mode(PlanMode::Traditional)
            .with_threads(1);

        group.bench_function(format!("topk_prune/pool_{pool_pages}"), |bench| {
            bench.iter(|| black_box(session.execute(&topk).unwrap().rows.len()))
        });
        group.bench_function(format!("full_noprune/pool_{pool_pages}"), |bench| {
            bench.iter(|| black_box(session.execute(&full).unwrap().rows.len()))
        });

        // The I/O accounting behind the timings: pruning must keep the
        // selective query's faults at or below the unpruned scan's at
        // every pool size.
        let t = session.execute(&topk).unwrap();
        let f = session.execute(&full).unwrap();
        println!(
            "pool={pool_pages}: topk pages_faulted={} pages_pruned={}, \
             full pages_faulted={} pages_pruned={}",
            t.pages_faulted, t.pages_pruned, f.pages_faulted, f.pages_pruned
        );
        assert!(
            t.pages_faulted <= f.pages_faulted,
            "pruning must not fault more pages than the full scan"
        );
    }

    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_buffer_pool);
criterion_main!(benches);
