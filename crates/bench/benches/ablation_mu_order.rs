//! Ablation: sensitivity to the scheduling order of µ operators (the
//! Example 4 analysis at scale).  The same query is executed with the rank
//! operators of table B applied in both orders, and with the rank predicates
//! evaluated before vs after the join.

use criterion::{criterion_group, criterion_main, Criterion};
use ranksql_algebra::{JoinAlgorithm, LogicalPlan};
use ranksql_executor::execute_query_plan;
use ranksql_expr::BoolExpr;
use ranksql_workload::{SyntheticConfig, SyntheticWorkload};

fn bench_mu_order(c: &mut Criterion) {
    let config = SyntheticConfig {
        table_size: 3_000,
        join_selectivity: 0.005,
        predicate_cost: 20,
        k: 10,
        ..SyntheticConfig::default()
    };
    let workload = SyntheticWorkload::generate(config).expect("workload");
    let catalog = &workload.catalog;
    let a = catalog.table("A").expect("A");
    let b_table = catalog.table("B").expect("B");
    let jc1 = BoolExpr::col_eq_col("A.jc1", "B.jc1");
    let filter_a = BoolExpr::column_is_true("A.b");
    let filter_b = BoolExpr::column_is_true("B.b");
    let k = workload.query.k;

    // Two-table variant of query Q so the µ-order effect is isolated.
    let mut query = workload.query.clone();
    query.tables = vec!["A".into(), "B".into()];
    query.bool_predicates = vec![jc1.clone(), filter_a.clone(), filter_b.clone()];

    let left = LogicalPlan::rank_scan(&a, 0).select(filter_a).rank(1);
    let right_f3_first = LogicalPlan::rank_scan(&b_table, 2)
        .select(filter_b.clone())
        .rank(3);
    let right_f4_first = LogicalPlan::rank_scan(&b_table, 3)
        .select(filter_b.clone())
        .rank(2);
    let plan_f3_first = left
        .clone()
        .join(
            right_f3_first,
            Some(jc1.clone()),
            JoinAlgorithm::HashRankJoin,
        )
        .limit(k);
    let plan_f4_first = left
        .clone()
        .join(
            right_f4_first,
            Some(jc1.clone()),
            JoinAlgorithm::HashRankJoin,
        )
        .limit(k);
    // All µ above the join (no push-down).
    let plan_mu_above = LogicalPlan::rank_scan(&a, 0)
        .select(BoolExpr::column_is_true("A.b"))
        .join(
            LogicalPlan::rank_scan(&b_table, 2).select(filter_b),
            Some(jc1),
            JoinAlgorithm::HashRankJoin,
        )
        .rank(1)
        .rank(3)
        .limit(k);

    let mut group = c.benchmark_group("ablation_mu_order");
    group.sample_size(10);
    for (label, plan) in [
        ("b_scan_by_f3_then_mu_f4", &plan_f3_first),
        ("b_scan_by_f4_then_mu_f3", &plan_f4_first),
        ("mu_above_join", &plan_mu_above),
    ] {
        group.bench_function(label, |bench| {
            bench.iter(|| {
                execute_query_plan(&query, plan, catalog)
                    .expect("execution")
                    .tuples
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mu_order);
criterion_main!(benches);
