//! Micro-benchmarks of the individual rank-aware operators against their
//! traditional counterparts: µ + rank-scan vs sort, HRJN vs hash-join + sort
//! — plus the sequential-scan hot path, where the current move-out-of-the-
//! snapshot scheme is compared against the historical clone-per-tuple
//! baseline it replaced, and the batched (vectorized) pull path against
//! tuple-at-a-time driving on the membership-heavy operators.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ranksql_algebra::{JoinAlgorithm, LogicalPlan, PhysicalPlan};
use ranksql_common::BitSet64;
use ranksql_executor::kernel;
use ranksql_executor::{
    build_operator, drain, drain_batched, execute_physical_plan, execute_query_plan, scan::SeqScan,
    ExecutionContext,
};
use ranksql_expr::{BoolExpr, CompareOp, RankedTuple, ScalarExpr};
use ranksql_workload::{SyntheticConfig, SyntheticWorkload};

/// The per-row branchy selection loop `kernel::select_f64` replaced: one
/// total-order comparison and one data-dependent branch per row (the
/// historical `ColumnScan` filter code).  Kept here as the measured
/// baseline for the within-run kernel-speedup gate.
fn branchy_select_f64(vals: &[f64], base: u32, sel: &mut Vec<u32>, op: CompareOp, rhs: f64) {
    use std::cmp::Ordering;
    for (i, v) in vals.iter().enumerate() {
        let ord = ranksql_common::cmp_f64_total(*v, rhs);
        let keep = match op {
            CompareOp::Eq => ord == Ordering::Equal,
            CompareOp::NotEq => ord != Ordering::Equal,
            CompareOp::Lt => ord == Ordering::Less,
            CompareOp::LtEq => ord != Ordering::Greater,
            CompareOp::Gt => ord == Ordering::Greater,
            CompareOp::GtEq => ord != Ordering::Less,
        };
        if keep {
            sel.push(base + i as u32);
        }
    }
}

fn bench_operators(c: &mut Criterion) {
    let config = SyntheticConfig {
        table_size: 5_000,
        join_selectivity: 0.002,
        predicate_cost: 1,
        k: 10,
        ..SyntheticConfig::default()
    };
    let workload = SyntheticWorkload::generate(config).expect("workload");
    let catalog = &workload.catalog;
    let a = catalog.table("A").expect("A");
    let b = catalog.table("B").expect("B");
    let k = workload.query.k;

    // Single-table top-k over A's two predicates.
    let mut single = workload.query.clone();
    single.tables = vec!["A".into()];
    single.bool_predicates = vec![];
    let single_sort = LogicalPlan::scan(&a)
        .sort(BitSet64::from_indices([0, 1]))
        .limit(k);
    let single_rank = LogicalPlan::rank_scan(&a, 0).rank(1).limit(k);

    // Two-table top-k join.
    let mut join_query = workload.query.clone();
    join_query.tables = vec!["A".into(), "B".into()];
    join_query.bool_predicates = vec![BoolExpr::col_eq_col("A.jc1", "B.jc1")];
    let jc1 = BoolExpr::col_eq_col("A.jc1", "B.jc1");
    let join_traditional = LogicalPlan::scan(&a)
        .join(
            LogicalPlan::scan(&b),
            Some(jc1.clone()),
            JoinAlgorithm::Hash,
        )
        .sort(BitSet64::from_indices([0, 1, 2, 3]))
        .limit(k);
    let join_hrjn = LogicalPlan::rank_scan(&a, 0)
        .rank(1)
        .join(
            LogicalPlan::rank_scan(&b, 2).rank(3),
            Some(jc1),
            JoinAlgorithm::HashRankJoin,
        )
        .limit(k);

    let mut group = c.benchmark_group("operators_micro");
    group.sample_size(10);
    for (label, query, plan) in [
        ("single_table/sort", &single, &single_sort),
        ("single_table/rank_scan_mu", &single, &single_rank),
        ("join/hash_join_sort", &join_query, &join_traditional),
        ("join/hrjn", &join_query, &join_hrjn),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), plan, |bench, plan| {
            bench.iter(|| {
                execute_query_plan(query, plan, catalog)
                    .expect("execution")
                    .tuples
                    .len()
            })
        });
    }
    group.finish();

    // ------------------------------------------------------------------
    // Scan hot path: the SeqScan operator moves tuples out of its snapshot
    // (one copy total); the baseline reproduces the historical scheme of
    // cloning every tuple out of a retained snapshot (two copies, with a
    // TupleId allocation per clone before TupleId's inline representation).
    // ------------------------------------------------------------------
    let mut scan_group = c.benchmark_group("seq_scan_hot_path");
    scan_group.sample_size(10);
    let ranking = Arc::clone(&workload.query.ranking);
    let n_preds = ranking.num_predicates();
    scan_group.bench_function("snapshot_move", |bench| {
        bench.iter(|| {
            // Current scheme: the snapshot is the only copy; tuples are
            // moved out of it.
            let mut out = Vec::with_capacity(a.row_count());
            for t in a.scan() {
                out.push(RankedTuple::unranked(t, n_preds));
            }
            black_box(out.len())
        })
    });
    scan_group.bench_function("snapshot_clone_per_tuple", |bench| {
        bench.iter(|| {
            // Historical scheme: the snapshot is retained and every
            // produced tuple is cloned out of it a second time.
            let snapshot = a.scan();
            let mut out = Vec::with_capacity(snapshot.len());
            #[allow(clippy::needless_range_loop)] // reproduces the indexed-clone scheme verbatim
            for i in 0..snapshot.len() {
                out.push(RankedTuple::unranked(snapshot[i].clone(), n_preds));
            }
            black_box(out.len())
        })
    });
    scan_group.bench_function("seq_scan_operator_drain", |bench| {
        // The full operator, including metrics and tuple-budget accounting.
        bench.iter(|| {
            let exec = ExecutionContext::new(Arc::clone(&ranking));
            let mut scan = SeqScan::new(&a, &exec, "seqscan");
            black_box(drain(&mut scan).expect("scan").len())
        })
    });
    scan_group.finish();

    // ------------------------------------------------------------------
    // Batched vs tuple-at-a-time pull on the membership-heavy hot paths:
    // the same physical plan driven through `next()` (batch size 1
    // everywhere, the historical engine) and through `next_batch` at
    // realistic batch sizes.
    // ------------------------------------------------------------------
    let mut bt = c.benchmark_group("batch_vs_tuple");
    bt.sample_size(10);
    // The hash-join hot path runs several milliseconds per drain; give the
    // group a budget that fits several iterations so the batch-vs-tuple
    // ratio is not a single-sample measurement.
    bt.measurement_time(std::time::Duration::from_millis(200));
    // The hash-join comparison runs on a probe-dominated (FK-like, ~1 match
    // per probe) workload: with wide match groups the cost is dominated by
    // materialising the joined tuples — identical in both modes — whereas
    // the per-probe machinery is what batching amortizes.
    let probe_heavy = SyntheticWorkload::generate(SyntheticConfig {
        table_size: 5_000,
        join_selectivity: 1.0 / 5_000.0,
        predicate_cost: 1,
        k: 10,
        ..SyntheticConfig::default()
    })
    .expect("probe-heavy workload");
    let pa = probe_heavy.catalog.table("A").expect("A");
    let pb = probe_heavy.catalog.table("B").expect("B");
    let hot_paths = [
        ("seq_scan", LogicalPlan::scan(&a), catalog, &ranking),
        (
            "filter",
            LogicalPlan::scan(&a).select(BoolExpr::compare(
                ScalarExpr::col("A.p1"),
                CompareOp::GtEq,
                ScalarExpr::lit(0.25),
            )),
            catalog,
            &ranking,
        ),
        (
            "hash_join",
            LogicalPlan::scan(&pa).join(
                LogicalPlan::scan(&pb),
                Some(BoolExpr::col_eq_col("A.jc1", "B.jc1")),
                JoinAlgorithm::Hash,
            ),
            &probe_heavy.catalog,
            &probe_heavy.query.ranking,
        ),
    ];
    for (name, logical, cat, ranking) in hot_paths {
        let physical = PhysicalPlan::from_logical(&logical).expect("lowering");
        bt.bench_function(format!("{name}/tuple"), |bench| {
            bench.iter(|| {
                let exec = ExecutionContext::new(Arc::clone(ranking)).with_batch_size(1);
                let mut root = build_operator(&physical, cat, &exec).expect("build");
                black_box(drain(root.as_mut()).expect("drain").len())
            })
        });
        for batch_size in [256usize, 1024] {
            bt.bench_function(format!("{name}/batch{batch_size}"), |bench| {
                bench.iter(|| {
                    let exec =
                        ExecutionContext::new(Arc::clone(ranking)).with_batch_size(batch_size);
                    let mut root = build_operator(&physical, cat, &exec).expect("build");
                    black_box(
                        drain_batched(root.as_mut(), batch_size)
                            .expect("drain")
                            .len(),
                    )
                })
            });
        }
    }
    bt.finish();

    // ------------------------------------------------------------------
    // Columnar vs row storage backend on the seq-scan + filter spine (the
    // PR 5 acceptance workload): the same logical `σ(scan)` plan executed
    // against the row heap (`Filter(SeqScan)`, interpreted per-tuple
    // evaluation over Arc-shared tuples) and against the columnar
    // projection (`ColumnScan[σ ..]`: typed-vector comparisons, zone maps,
    // tuples materialised only for passing rows).  Both drained at batch
    // size 1024.  The filter keeps ~25 % of the rows — a selectivity where
    // late materialisation pays clearly (the win grows toward ~3.5× at
    // 10 % and washes out above ~50 %, where per-row tuple assembly costs
    // as much as the interpreted evaluation it replaces).  A second pair
    // adds the top-k spine, where zone-map score pruning additionally
    // skips whole blocks.
    // ------------------------------------------------------------------
    let mut cvr = c.benchmark_group("columnar_vs_row");
    cvr.sample_size(10);
    let filter_spine = LogicalPlan::scan(&a).select(BoolExpr::compare(
        ScalarExpr::col("A.p1"),
        CompareOp::GtEq,
        ScalarExpr::lit(0.75),
    ));
    let row_plan = PhysicalPlan::from_logical(&filter_spine).expect("lowering");
    let col_plan =
        ranksql_optimizer::columnarize(row_plan.clone(), &ranksql_optimizer::CostModel::default());
    // Build the projection outside the timed region (loaders do the same).
    a.columnar();
    for (name, plan) in [
        ("row/scan_filter", &row_plan),
        ("columnar/scan_filter", &col_plan),
    ] {
        cvr.bench_function(name, |bench| {
            bench.iter(|| {
                let exec = ExecutionContext::new(Arc::clone(&ranking)).with_batch_size(1024);
                let mut root = build_operator(plan, catalog, &exec).expect("build");
                black_box(drain_batched(root.as_mut(), 1024).expect("drain").len())
            })
        });
    }
    // Top-k spine: SortLimit over the filtered scan; the columnar plan
    // zone-prunes blocks against the heap's threshold.
    let topk_spine = filter_spine.sort(BitSet64::from_indices([0, 1])).limit(k);
    let row_topk = PhysicalPlan::from_logical(&topk_spine).expect("lowering");
    let col_topk =
        ranksql_optimizer::columnarize(row_topk.clone(), &ranksql_optimizer::CostModel::default());
    for (name, plan) in [
        ("row/scan_filter_topk", &row_topk),
        ("columnar/scan_filter_topk", &col_topk),
    ] {
        cvr.bench_function(name, |bench| {
            bench.iter(|| {
                let exec = ExecutionContext::new(Arc::clone(&ranking)).with_batch_size(1024);
                execute_physical_plan(plan, catalog, &exec)
                    .expect("execution")
                    .tuples
                    .len()
            })
        });
    }

    // Raw compare kernels: the auto-vectorised branch-free select
    // (`ranksql_executor::kernel`) against the per-row branchy loop it
    // replaced, on data whose pass/fail pattern is unpredictable (the
    // branchy loop's worst case and the common one for real filters).
    // `scripts/bench_compare.py` gates the within-run speedup at >= 1.15x.
    let kernel_vals: Vec<f64> = {
        // SplitMix64-style mix keeps the branch outcome pattern-free.
        let mut state = 0x9E3779B97F4A7C15u64;
        (0..64 * 1024)
            .map(|_| {
                state = state.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                (z ^ (z >> 31)) as f64 / u64::MAX as f64
            })
            .collect()
    };
    let rhs = 0.5; // ~50 % selectivity: maximally unpredictable branches
    let mut branchy_sel: Vec<u32> = Vec::new();
    let mut kernel_sel: Vec<u32> = Vec::new();
    kernel::select_f64(&kernel_vals, 0, &mut kernel_sel, CompareOp::GtEq, rhs);
    branchy_select_f64(&kernel_vals, 0, &mut branchy_sel, CompareOp::GtEq, rhs);
    assert_eq!(branchy_sel, kernel_sel, "kernel and baseline must agree");
    cvr.bench_function("row/kernel_select_f64", |bench| {
        bench.iter(|| {
            let mut sel = Vec::new();
            branchy_select_f64(
                black_box(&kernel_vals),
                0,
                &mut sel,
                CompareOp::GtEq,
                black_box(rhs),
            );
            black_box(sel.len())
        })
    });
    cvr.bench_function("kernel/select_f64", |bench| {
        bench.iter(|| {
            let mut sel = Vec::new();
            kernel::select_f64(
                black_box(&kernel_vals),
                0,
                &mut sel,
                CompareOp::GtEq,
                black_box(rhs),
            );
            black_box(sel.len())
        })
    });
    cvr.finish();

    // Physical-plan execution (the IR path the Database uses end to end).
    let mut physical_group = c.benchmark_group("physical_plan_execution");
    physical_group.sample_size(10);
    let physical = PhysicalPlan::from_logical(&join_hrjn).expect("lowering");
    physical_group.bench_function("hrjn_topk_via_physical_ir", |bench| {
        bench.iter(|| {
            let exec = ExecutionContext::new(Arc::clone(&workload.query.ranking));
            execute_physical_plan(&physical, catalog, &exec)
                .expect("execution")
                .tuples
                .len()
        })
    });
    physical_group.finish();

    // Prepared-statement plan cache: a cache hit (re-bind a cached shape)
    // vs a cold execution that pays the full parse + optimize every time.
    let mut prepared_group = c.benchmark_group("prepared_vs_cold");
    prepared_group.sample_size(10);
    let db = workload.database().expect("database");
    let sql = "SELECT * FROM A, B WHERE A.jc1 = B.jc1 AND A.p1 > ? \
               ORDER BY f1(A.p1) + f2(A.p2) + f3(B.p1) + f4(B.p2) LIMIT 10";
    let session = db.session();
    let prepared = session.prepare(sql).expect("prepare");
    // Warm the cache once so the hot path below measures pure re-binding.
    prepared
        .bind(ranksql_core::Params::new().set(0, 0.1f64))
        .expect("bind")
        .execute()
        .expect("execute");
    prepared_group.bench_function("plan_cache_hit", |bench| {
        bench.iter(|| {
            let result = prepared
                .bind(ranksql_core::Params::new().set(0, black_box(0.1f64)))
                .expect("bind")
                .execute()
                .expect("execute");
            assert!(result.plan_cache.expect("prepared").hit);
            black_box(result.rows.len())
        })
    });
    prepared_group.bench_function("cold_parse_optimize_execute", |bench| {
        bench.iter(|| {
            // Dropping the cached shapes forces the full parse + optimize
            // on every iteration — the cost a hit amortises away.
            db.clear_plan_cache();
            let result = db
                .session()
                .prepare(sql)
                .expect("prepare")
                .bind(ranksql_core::Params::new().set(0, black_box(0.1f64)))
                .expect("bind")
                .execute()
                .expect("execute");
            assert!(!result.plan_cache.expect("prepared").hit);
            black_box(result.rows.len())
        })
    });
    prepared_group.finish();
}

criterion_group!(benches, bench_operators);
criterion_main!(benches);
