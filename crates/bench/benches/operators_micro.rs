//! Micro-benchmarks of the individual rank-aware operators against their
//! traditional counterparts: µ + rank-scan vs sort, HRJN vs hash-join + sort.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ranksql_algebra::{JoinAlgorithm, LogicalPlan};
use ranksql_common::BitSet64;
use ranksql_executor::execute_query_plan;
use ranksql_expr::BoolExpr;
use ranksql_workload::{SyntheticConfig, SyntheticWorkload};

fn bench_operators(c: &mut Criterion) {
    let config = SyntheticConfig {
        table_size: 5_000,
        join_selectivity: 0.002,
        predicate_cost: 1,
        k: 10,
        ..SyntheticConfig::default()
    };
    let workload = SyntheticWorkload::generate(config).expect("workload");
    let catalog = &workload.catalog;
    let a = catalog.table("A").expect("A");
    let b = catalog.table("B").expect("B");
    let k = workload.query.k;

    // Single-table top-k over A's two predicates.
    let mut single = workload.query.clone();
    single.tables = vec!["A".into()];
    single.bool_predicates = vec![];
    let single_sort = LogicalPlan::scan(&a).sort(BitSet64::from_indices([0, 1])).limit(k);
    let single_rank = LogicalPlan::rank_scan(&a, 0).rank(1).limit(k);

    // Two-table top-k join.
    let mut join_query = workload.query.clone();
    join_query.tables = vec!["A".into(), "B".into()];
    join_query.bool_predicates = vec![BoolExpr::col_eq_col("A.jc1", "B.jc1")];
    let jc1 = BoolExpr::col_eq_col("A.jc1", "B.jc1");
    let join_traditional = LogicalPlan::scan(&a)
        .join(LogicalPlan::scan(&b), Some(jc1.clone()), JoinAlgorithm::Hash)
        .sort(BitSet64::from_indices([0, 1, 2, 3]))
        .limit(k);
    let join_hrjn = LogicalPlan::rank_scan(&a, 0)
        .rank(1)
        .join(
            LogicalPlan::rank_scan(&b, 2).rank(3),
            Some(jc1),
            JoinAlgorithm::HashRankJoin,
        )
        .limit(k);

    let mut group = c.benchmark_group("operators_micro");
    group.sample_size(10);
    for (label, query, plan) in [
        ("single_table/sort", &single, &single_sort),
        ("single_table/rank_scan_mu", &single, &single_rank),
        ("join/hash_join_sort", &join_query, &join_traditional),
        ("join/hrjn", &join_query, &join_hrjn),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), plan, |bench, plan| {
            bench.iter(|| execute_query_plan(query, plan, catalog).expect("execution").tuples.len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_operators);
criterion_main!(benches);
