//! Figure 13: the sampling-based cardinality estimator.  Benchmarks the cost
//! of building the estimator and of producing per-operator estimates for
//! plan 3 and plan 4, and (once, outside the timed region) prints the real
//! vs estimated cardinalities the figure plots.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ranksql_bench::{build_plan, run_fig13, PaperPlan};
use ranksql_optimizer::SamplingEstimator;
use ranksql_workload::{SyntheticConfig, SyntheticWorkload};

fn config() -> SyntheticConfig {
    SyntheticConfig {
        table_size: 4_000,
        join_selectivity: 0.0025,
        predicate_cost: 1,
        k: 10,
        ..SyntheticConfig::default()
    }
}

fn bench_fig13(c: &mut Criterion) {
    let cfg = config();
    let workload = SyntheticWorkload::generate(cfg.clone()).expect("workload");

    // Print the accuracy series once so `cargo bench` output contains the
    // Figure 13 data alongside the timings.
    let rows = run_fig13(&cfg, 0.02).expect("fig13 series");
    eprintln!("fig13 real-vs-estimated output cardinalities:");
    for r in &rows {
        eprintln!(
            "  {:<6} op{:<2} {:<28} real={:<8} est={:.1}",
            r.plan, r.operator_index, r.operator, r.real, r.estimated
        );
    }

    let mut group = c.benchmark_group("fig13_cardinality_estimation");
    group.sample_size(10);
    group.bench_function("build_estimator_0.02_sample", |b| {
        b.iter(|| {
            SamplingEstimator::build(&workload.query, &workload.catalog, 0.02, 0xF16)
                .expect("estimator")
                .x_threshold()
        })
    });
    for plan_kind in [PaperPlan::Plan3, PaperPlan::Plan4] {
        let plan = build_plan(&workload, plan_kind).expect("plan");
        let estimator = SamplingEstimator::build(&workload.query, &workload.catalog, 0.02, 0xF16)
            .expect("estimator");
        group.bench_with_input(
            BenchmarkId::new("estimate_per_operator", plan_kind.name()),
            &plan,
            |b, plan| {
                b.iter(|| {
                    estimator
                        .estimate_per_operator(plan)
                        .expect("estimates")
                        .len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig13);
criterion_main!(benches);
