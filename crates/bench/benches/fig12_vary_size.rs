//! Figure 12(d): execution time of the rank-aware plans (2–4) as the table
//! size grows.  Plan 1 is excluded, as in the paper, because the
//! materialise-then-sort strategy is off the scale at large sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ranksql_bench::{build_plan, PaperPlan};
use ranksql_executor::execute_query_plan;
use ranksql_workload::{SyntheticConfig, SyntheticWorkload};

fn bench_fig12d(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12d_vary_table_size");
    group.sample_size(10);
    for size in [500usize, 2_000, 8_000] {
        let config = SyntheticConfig {
            table_size: size,
            join_selectivity: 10.0 / size as f64,
            predicate_cost: 1,
            k: 10,
            ..SyntheticConfig::default()
        };
        let workload = SyntheticWorkload::generate(config).expect("workload");
        for plan_kind in PaperPlan::scalable() {
            let plan = build_plan(&workload, plan_kind).expect("plan");
            group.bench_with_input(
                BenchmarkId::new(plan_kind.name(), size),
                &plan,
                |b, plan| {
                    b.iter(|| {
                        execute_query_plan(&workload.query, plan, &workload.catalog)
                            .expect("execution")
                            .tuples
                            .len()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig12d);
criterion_main!(benches);
