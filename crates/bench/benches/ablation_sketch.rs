//! Ablation: staged distinct-count sketch accuracy vs naive sample scale-up.
//!
//! Sweeps the true cardinality across the sketch's three stages — small
//! (≤ 16), array (≤ 1024, both exact) and HLL registers (approximate) —
//! and, before timing, reports each estimator's relative NDV error on a
//! table of `4 × NDV` rows:
//!
//! * **sketch** — the incrementally maintained catalog NDV
//!   (`Table::stats_catalog`), exact through the array stage and within a
//!   few percent in the HLL stage;
//! * **sampled** — the classical baseline (`sampled_statistics` at 5 %):
//!   distinct values counted in a reservoir sample and scaled by the
//!   inverse ratio, which overshoots whenever the sample repeats values.
//!
//! The timed portion measures what the maintenance actually costs: the
//! per-insert streaming fold (`insert` into a stats-warm table) against a
//! cold from-scratch `stats_catalog()` build at each cardinality.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ranksql_common::{DataType, Field, Schema, Value};
use ranksql_optimizer::sampled_statistics;
use std::sync::Arc;

use ranksql_storage::{Catalog, StatsCatalog, Table};

const SAMPLE_RATIO: f64 = 0.05;
const SEED: u64 = 7;

/// Builds a one-column table with exactly `ndv` distinct keys over
/// `4 * ndv` rows (every key appears four times).
fn build(ndv: usize) -> Arc<Table> {
    let cat = Catalog::new();
    let t = cat
        .create_table("T", Schema::new(vec![Field::new("k", DataType::Int64)]))
        .unwrap();
    for i in 0..ndv * 4 {
        t.insert(vec![Value::from((i % ndv) as i64)]).unwrap();
    }
    cat.table("T").unwrap()
}

fn bench_sketch(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_sketch");
    group.sample_size(10);

    // NDV sweep spanning all three stages: 12 (small), 800 (array),
    // 8_000 and 40_000 (HLL).
    for ndv in [12usize, 800, 8_000, 40_000] {
        let table = build(ndv);
        let stats = table.stats_catalog();
        let summary = stats.column("T.k").expect("column stats");
        let sketch_ndv = summary.ndv() as f64;
        let sketch_err = (sketch_ndv - ndv as f64).abs() / ndv as f64;
        let sampled = sampled_statistics(&table, SAMPLE_RATIO, SEED).expect("sampled stats");
        let sampled_ndv = sampled.column("T.k").expect("column stats").distinct_count as f64;
        let sampled_err = (sampled_ndv - ndv as f64).abs() / ndv as f64;
        println!(
            "ablation_sketch: ndv={ndv} stage={} sketch={sketch_ndv:.0} (err {:.1}%) \
             sampled-scale-up={sampled_ndv:.0} (err {:.1}%)",
            summary.sketch.stage(),
            sketch_err * 100.0,
            sampled_err * 100.0,
        );
        assert!(
            sketch_err < 0.05,
            "ndv={ndv}: sketch error {sketch_err:.3} above the 5% pin"
        );
        assert!(
            sketch_err <= sampled_err + 1e-9,
            "ndv={ndv}: sketch (err {sketch_err:.3}) should not lose to \
             naive scale-up (err {sampled_err:.3})"
        );

        // Incremental maintenance cost: one streamed row into a warm table.
        group.bench_with_input(
            BenchmarkId::new("insert_maintains_stats", ndv),
            &ndv,
            |bench, &ndv| {
                let warm = build(ndv);
                let _ = warm.stats_catalog(); // warm: inserts fold incrementally
                let mut next = (ndv * 4) as i64;
                bench.iter(|| {
                    warm.insert(vec![Value::from(black_box(next % ndv as i64))])
                        .unwrap();
                    next += 1;
                })
            },
        );
        // The rescan it replaces: a from-scratch build over the full
        // column (`Table::stats_catalog` caches, so drive the builder
        // directly on a row snapshot).
        group.bench_with_input(
            BenchmarkId::new("cold_rebuild", ndv),
            &ndv,
            |bench, &ndv| {
                let cold = build(ndv);
                let schema = cold.schema();
                let rows = cold.scan();
                bench.iter(|| black_box(StatsCatalog::build(schema, &rows).row_count))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sketch);
criterion_main!(benches);
