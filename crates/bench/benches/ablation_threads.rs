//! Ablation: morsel-driven parallel execution vs worker-thread count.
//!
//! The measured plan is the acceptance workload of the parallel engine: a
//! filtered sequential scan feeding a hash join, fully drained through a
//! per-partition top-k sort and an ordered-merge exchange —
//! `Exchange(merge; k)(SortLimit(HashJoin(σ(Repartition(SeqScan A)),
//! Exchange(concat)(Repartition(SeqScan B)))))` — produced by the
//! optimizer's `parallelize` pass from the serial plan, never hand-tuned.
//!
//! Two claims are checked here:
//!
//! 1. **Determinism** (asserted before timing, every run): the top-k output
//!    is byte-identical across all measured thread counts and identical to
//!    the serial (exchange-free) plan.
//! 2. **Scaling** (measured): wall-clock should drop roughly linearly with
//!    threads up to the machine's core count — ≥ 2× at 4 threads on a
//!    ≥ 4-core machine.  On fewer cores the curve flattens at the core
//!    count; the `threads=1` row doubles as the exchange-overhead baseline
//!    against the `serial` group.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ranksql_algebra::{JoinAlgorithm, LogicalPlan, PhysicalPlan};
use ranksql_common::BitSet64;
use ranksql_executor::{execute_physical_plan, ExecutionContext};
use ranksql_expr::{BoolExpr, CompareOp, ScalarExpr};
use ranksql_optimizer::parallelize;
use ranksql_workload::{SyntheticConfig, SyntheticWorkload};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn bench_threads(c: &mut Criterion) {
    let config = SyntheticConfig {
        table_size: 30_000,
        join_selectivity: 0.001,
        predicate_cost: 2,
        k: 10,
        ..SyntheticConfig::default()
    };
    let workload = SyntheticWorkload::generate(config).expect("workload");
    let catalog = &workload.catalog;
    let a = catalog.table("A").expect("A");
    let b = catalog.table("B").expect("B");
    let ranking = Arc::clone(&workload.query.ranking);
    // Predicates f1..f4 live on A and B; f5 (on C) stays unevaluated and
    // contributes its maximum to every upper bound uniformly.
    let preds = BitSet64::all(4);

    // Serial plan: filtered seq-scan ⋈ seq-scan, fused top-k sort on top.
    let logical = LogicalPlan::scan(&a)
        .select(BoolExpr::compare(
            ScalarExpr::col("A.b"),
            CompareOp::Eq,
            ScalarExpr::lit(true),
        ))
        .join(
            LogicalPlan::scan(&b),
            Some(BoolExpr::col_eq_col("A.jc1", "B.jc1")),
            JoinAlgorithm::Hash,
        )
        .sort(preds)
        .limit(workload.query.k);
    let serial = PhysicalPlan::from_logical(&logical).expect("lowering");
    let parallel = parallelize(serial.clone(), 4);
    assert!(parallel.contains_exchange(), "{}", parallel.explain(None));

    // Determinism gate: byte-identical top-k output for every measured
    // thread count, and identical to the serial exchange-free plan.
    let fingerprint = |plan: &PhysicalPlan, threads: usize| {
        let exec = ExecutionContext::new(Arc::clone(&ranking)).with_threads(threads);
        let result = execute_physical_plan(plan, catalog, &exec).expect("execution");
        result
            .tuples
            .iter()
            .map(|t| (t.tuple.id().clone(), ranking.upper_bound(&t.state)))
            .collect::<Vec<_>>()
    };
    let reference = fingerprint(&serial, 1);
    assert_eq!(reference.len(), workload.query.k);
    for threads in THREAD_COUNTS {
        assert_eq!(
            fingerprint(&parallel, threads),
            reference,
            "parallel output diverged at {threads} threads"
        );
    }

    let mut group = c.benchmark_group("ablation_threads/seq_scan_hash_join");
    group.sample_size(10);
    group.bench_function("serial", |bench| {
        bench.iter(|| {
            let exec = ExecutionContext::new(Arc::clone(&ranking)).with_threads(1);
            black_box(
                execute_physical_plan(&serial, catalog, &exec)
                    .expect("execution")
                    .tuples
                    .len(),
            )
        })
    });
    for threads in THREAD_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |bench, &threads| {
                bench.iter(|| {
                    let exec = ExecutionContext::new(Arc::clone(&ranking)).with_threads(threads);
                    black_box(
                        execute_physical_plan(&parallel, catalog, &exec)
                            .expect("execution")
                            .tuples
                            .len(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_threads);
criterion_main!(benches);
