//! Ablation (beyond the paper's figures): the Volcano/Cascades-style
//! rule-based search versus the two-dimensional dynamic program — plan search
//! time, number of plans considered, and quality (estimated cost and actual
//! predicate-evaluation work) of the chosen plan.
//!
//! The paper argues (Section 5) that rule-based optimizers absorb the
//! rank-relational algebra "for free" by registering the Figure 5 laws as
//! transformation rules, while bottom-up optimizers need the dedicated
//! two-dimensional enumeration; this bench quantifies the trade-off on the
//! Section 6 synthetic workload.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ranksql_executor::execute_query_plan;
use ranksql_optimizer::{
    CostModel, DpOptimizer, OptimizedPlan, RuleBasedConfig, RuleBasedOptimizer, SamplingEstimator,
};
use ranksql_workload::{SyntheticConfig, SyntheticWorkload};

const STRATEGIES: [&str; 4] = [
    "dp_exhaustive",
    "dp_heuristic",
    "rule_based",
    "rule_based_small_budget",
];

fn optimize_with(
    strategy: &str,
    workload: &SyntheticWorkload,
    estimator: &Arc<SamplingEstimator>,
) -> OptimizedPlan {
    match strategy {
        "dp_exhaustive" => DpOptimizer::new(
            &workload.query,
            &workload.catalog,
            Arc::clone(estimator),
            CostModel::default(),
            false,
        )
        .optimize()
        .expect("plan"),
        "dp_heuristic" => DpOptimizer::new(
            &workload.query,
            &workload.catalog,
            Arc::clone(estimator),
            CostModel::default(),
            true,
        )
        .optimize()
        .expect("plan"),
        "rule_based" => RuleBasedOptimizer::new(
            &workload.query,
            &workload.catalog,
            Arc::clone(estimator),
            CostModel::default(),
        )
        .optimize()
        .expect("plan"),
        "rule_based_small_budget" => RuleBasedOptimizer::new(
            &workload.query,
            &workload.catalog,
            Arc::clone(estimator),
            CostModel::default(),
        )
        .with_config(RuleBasedConfig {
            max_plans: 300,
            max_costed: 60,
        })
        .optimize()
        .expect("plan"),
        other => unreachable!("unknown strategy {other}"),
    }
}

fn bench_rulebased(c: &mut Criterion) {
    let config = SyntheticConfig {
        table_size: 1_500,
        join_selectivity: 0.01,
        predicate_cost: 20,
        k: 10,
        ..SyntheticConfig::default()
    };
    let workload = SyntheticWorkload::generate(config).expect("workload");
    workload.build_indexes().expect("indexes");
    let estimator = Arc::new(
        SamplingEstimator::build(&workload.query, &workload.catalog, 0.02, 1).expect("estimator"),
    );

    // One-off report: chosen-plan quality of each strategy (estimated cost and
    // the real work its plan does when executed).
    for strategy in STRATEGIES {
        let chosen = optimize_with(strategy, &workload, &estimator);
        workload.query.ranking.counters().reset();
        let result = execute_query_plan(&workload.query, &chosen.plan, &workload.catalog)
            .expect("execution");
        eprintln!(
            "{strategy}: {} plans considered, estimated cost {:.0}, {} predicate evaluations, \
             {} results",
            chosen.stats.plans_considered,
            chosen.cost.value(),
            result.total_predicate_evaluations(),
            result.tuples.len()
        );
    }

    // Timed comparison of the searches themselves.
    let mut group = c.benchmark_group("ablation_rulebased");
    group.sample_size(10);
    for strategy in STRATEGIES {
        group.bench_with_input(
            BenchmarkId::new("search", strategy),
            &strategy,
            |b, strategy| {
                b.iter(|| {
                    optimize_with(strategy, &workload, &estimator)
                        .stats
                        .plans_considered
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_rulebased);
criterion_main!(benches);
