//! Figure 12(a): execution time of the four Figure 11 plans as the number of
//! requested results k grows (1 → 1000).
//!
//! The bench uses a scaled-down table size so Criterion finishes quickly; the
//! `paper-experiments --full` binary runs the paper-scale version.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ranksql_bench::{build_plan, PaperPlan};
use ranksql_executor::execute_query_plan;
use ranksql_workload::{SyntheticConfig, SyntheticWorkload};

fn bench_fig12a(c: &mut Criterion) {
    let config = SyntheticConfig {
        table_size: 2_000,
        join_selectivity: 0.005,
        predicate_cost: 1,
        k: 10,
        ..SyntheticConfig::default()
    };
    let mut workload = SyntheticWorkload::generate(config).expect("workload");
    let mut group = c.benchmark_group("fig12a_vary_k");
    group.sample_size(10);
    for k in [1usize, 10, 100, 1000] {
        workload.query.k = k;
        for plan_kind in PaperPlan::all() {
            let plan = build_plan(&workload, plan_kind).expect("plan");
            group.bench_with_input(BenchmarkId::new(plan_kind.name(), k), &plan, |b, plan| {
                b.iter(|| {
                    execute_query_plan(&workload.query, plan, &workload.catalog)
                        .expect("execution")
                        .tuples
                        .len()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig12a);
criterion_main!(benches);
