//! Ablation: the epoch-extending write path vs the invalidate-and-rebuild
//! cliff it replaced.
//!
//! Three measurements on an 8 192-row table with warm caches (statistics
//! catalog + columnar projection + epoch machinery):
//!
//! * **warm/insert** — one appended row on the PR-7 write path: the row
//!   lands in the delta, the stats delta folds it in, and the columnar
//!   projection reseals only when a 1024-row block fills.  Amortised
//!   O(1)-ish per row.
//! * **rebuild/insert** — the historical cliff: every insert invalidates,
//!   so the next reader rebuilds the statistics catalog *and* the columnar
//!   projection from scratch.  O(n) per row; the within-run gate in
//!   `scripts/bench_compare.py` asserts warm/insert beats this by a wide
//!   margin.
//! * **cursor/open_topk_during_inserts** — reader latency while a writer
//!   keeps the delta hot: each iteration appends a row and then opens a
//!   fresh cursor for a columnar top-10, which must pin its epoch and
//!   stream sealed blocks + frozen tail without any rebuild.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ranksql_common::{DataType, Field, Schema, Value};
use ranksql_core::{Database, PlanMode, QueryBuilder};
use ranksql_expr::RankPredicate;
use ranksql_storage::{Catalog, ColumnTable, StatsCatalog, StorageBackend};

const BASE_ROWS: usize = 8_192;

fn row(i: i64) -> Vec<Value> {
    vec![
        Value::from(i),
        Value::from(i % 97),
        Value::from(((i * 37) % 1000) as f64 / 1000.0),
    ]
}

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("id", DataType::Int64),
        Field::new("jc", DataType::Int64),
        Field::new("p", DataType::Float64),
    ])
}

fn bench_write_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_write_path");
    group.sample_size(10);

    // Warm path: statistics and columnar projection primed, every insert
    // extends them incrementally.
    group.bench_function("warm/insert", |bench| {
        let cat = Catalog::new();
        let t = cat.create_table("T", schema()).unwrap();
        for i in 0..BASE_ROWS as i64 {
            t.insert(row(i)).unwrap();
        }
        let _ = t.stats_catalog();
        let _ = t.columnar();
        let mut next = BASE_ROWS as i64;
        bench.iter(|| {
            t.insert(black_box(row(next))).unwrap();
            next += 1;
        })
    });

    // The cliff the epochs removed: insert, then rebuild the statistics
    // catalog and the columnar projection from scratch — what every
    // invalidating write used to cost the next reader.
    group.bench_function("rebuild/insert", |bench| {
        let cat = Catalog::new();
        let t = cat.create_table("T", schema()).unwrap();
        for i in 0..BASE_ROWS as i64 {
            t.insert(row(i)).unwrap();
        }
        let mut next = BASE_ROWS as i64;
        bench.iter(|| {
            t.insert(black_box(row(next))).unwrap();
            next += 1;
            let rows = t.scan();
            black_box(StatsCatalog::build(t.schema(), &rows).row_count);
            black_box(ColumnTable::from_rows(t.id(), t.name(), t.schema(), &rows).num_blocks());
        })
    });

    // Reader latency under writes: append one row, then open a fresh
    // columnar cursor and pull the top 10.  The cursor pins its epoch
    // (sealed blocks + frozen tail) — no rebuild, however hot the delta.
    group.bench_function("cursor/open_topk_during_inserts", |bench| {
        let db = Database::new().with_storage_backend(StorageBackend::Columnar);
        db.create_table("T", schema()).unwrap();
        db.insert_batch("T", (0..BASE_ROWS as i64).map(row))
            .unwrap();
        let t = db.catalog().table("T").unwrap();
        let _ = t.stats_catalog();
        let _ = t.columnar();
        let query = QueryBuilder::new()
            .table("T")
            .rank_predicate(RankPredicate::attribute("p", "T.p"))
            .limit(10)
            .build()
            .unwrap();
        let session = db.session().with_mode(PlanMode::RankAware).with_threads(1);
        let prepared = session.prepare_query(query).unwrap();
        let mut next = BASE_ROWS as i64;
        bench.iter(|| {
            db.insert("T", row(next)).unwrap();
            next += 1;
            let mut cursor = prepared
                .bind(ranksql_core::Params::none())
                .unwrap()
                .cursor()
                .unwrap();
            black_box(cursor.take(10).unwrap().len())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_write_path);
criterion_main!(benches);
