//! Ablation (beyond the paper's figures): the µ chain of Section 4 versus the
//! MPro-style multi-predicate rank operator with minimal probing.
//!
//! The paper implements µ as the single-predicate special case of MPro
//! (Section 4.2).  This bench quantifies the difference between the two for
//! the same top-k answer over one table ranked by three predicates (one
//! served by the rank-scan, two expensive):
//!
//! * `µ_{f5}(µ_{f4}(rank-scan_{f3}))` — the paper's chain, and
//! * `MPro{f4, f5}(rank-scan_{f3})` — one operator probing lazily per tuple.
//!
//! Both produce the identical rank-relation; MPro's probe count is usually at
//! or slightly below the chain's, and the gap is small when (as here) the
//! input already arrives in rank order — the interesting output is how close
//! the two are, i.e. how little slack the paper's µ chain leaves on the
//! table.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ranksql_executor::{
    mpro::MProOp, operator::take, rank::RankOp, scan::RankScan, ExecutionContext, PhysicalOperator,
};
use ranksql_expr::{RankPredicate, RankingContext, ScalarExpr, ScoringFunction};
use ranksql_storage::{ScoreIndex, Table};
use ranksql_workload::{SyntheticConfig, SyntheticWorkload};

const PREDICATE_COST: u64 = 50;
const KS: [usize; 3] = [1, 10, 100];

fn table_and_ctx() -> (Arc<Table>, Arc<RankingContext>) {
    let workload = SyntheticWorkload::generate(SyntheticConfig {
        table_size: 20_000,
        join_selectivity: 0.002,
        predicate_cost: PREDICATE_COST,
        k: 10,
        ..SyntheticConfig::default()
    })
    .expect("workload");
    let b = workload.catalog.table("B").expect("table B");
    // A private three-predicate context over B, independent of the rest of
    // the join query: f3 = B.p1 (served by the rank-scan), f4 = B.p2 and
    // f5 = B.p1 · B.p2 both expensive.
    let ctx = RankingContext::new(
        vec![
            RankPredicate::attribute("f3", "B.p1"),
            RankPredicate::attribute_with_cost("f4", "B.p2", PREDICATE_COST),
            RankPredicate::expression(
                "f5",
                ScalarExpr::col("B.p1").mul(ScalarExpr::col("B.p2")),
                PREDICATE_COST,
            ),
        ],
        ScoringFunction::Sum,
    );
    (b, ctx)
}

fn fresh_ctx(ctx: &RankingContext) -> Arc<RankingContext> {
    RankingContext::new(ctx.predicates().to_vec(), ctx.scoring().clone())
}

fn mu_chain(
    table: &Arc<Table>,
    index: &Arc<ScoreIndex>,
    ctx: &Arc<RankingContext>,
) -> Box<dyn PhysicalOperator> {
    let exec = ExecutionContext::new(Arc::clone(ctx));
    let scan =
        RankScan::new(Arc::clone(table), Arc::clone(index), 0, &exec, "scan").expect("rank-scan");
    let mu_f4 = RankOp::new(Box::new(scan), 1, &exec, "mu_f4");
    Box::new(RankOp::new(Box::new(mu_f4), 2, &exec, "mu_f5"))
}

fn mpro(
    table: &Arc<Table>,
    index: &Arc<ScoreIndex>,
    ctx: &Arc<RankingContext>,
) -> Box<dyn PhysicalOperator> {
    let exec = ExecutionContext::new(Arc::clone(ctx));
    let scan =
        RankScan::new(Arc::clone(table), Arc::clone(index), 0, &exec, "scan").expect("rank-scan");
    Box::new(MProOp::new(Box::new(scan), vec![1, 2], &exec, "mpro"))
}

fn bench_mpro(c: &mut Criterion) {
    let (table, base_ctx) = table_and_ctx();
    // The rank-scan's score index is built once and shared: both operators see
    // the same access path, only the probe scheduling differs.
    let index = Arc::new(
        ScoreIndex::build(base_ctx.predicate(0), table.schema(), &table.scan()).expect("index"),
    );

    // One-off probe-count report per k (outside the timed loops).
    for &k in &KS {
        let ctx_chain = fresh_ctx(&base_ctx);
        let mut chain = mu_chain(&table, &index, &ctx_chain);
        let chain_answers = take(chain.as_mut(), k).expect("chain").len();
        let ctx_mpro = fresh_ctx(&base_ctx);
        let mut lazy = mpro(&table, &index, &ctx_mpro);
        let mpro_answers = take(lazy.as_mut(), k).expect("mpro").len();
        assert_eq!(chain_answers, mpro_answers);
        eprintln!(
            "k = {k:>4}: µ-chain expensive probes = {}, MPro expensive probes = {}",
            ctx_chain.counters().count(1) + ctx_chain.counters().count(2),
            ctx_mpro.counters().count(1) + ctx_mpro.counters().count(2)
        );
    }

    let mut group = c.benchmark_group("ablation_mpro");
    group.sample_size(10);
    for &k in &KS {
        group.bench_with_input(BenchmarkId::new("mu_chain", k), &k, |b, &k| {
            b.iter(|| {
                let ctx = fresh_ctx(&base_ctx);
                let mut op = mu_chain(&table, &index, &ctx);
                take(op.as_mut(), k).expect("chain").len()
            })
        });
        group.bench_with_input(BenchmarkId::new("mpro", k), &k, |b, &k| {
            b.iter(|| {
                let ctx = fresh_ctx(&base_ctx);
                let mut op = mpro(&table, &index, &ctx);
                take(op.as_mut(), k).expect("mpro").len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mpro);
criterion_main!(benches);
