//! Ablation (beyond the paper's figures): sensitivity of the sampling-based
//! cardinality estimator (Section 5.2) to the sampling ratio.
//!
//! The paper fixes the ratio at 0.1 % and reports (Figure 13) that estimates
//! stay within an order of magnitude of the real cardinalities.  This bench
//! sweeps the ratio and reports, for plan 3's operators,
//!
//! * the geometric-mean ratio error `max(est/real, real/est)` (1.0 = perfect),
//! * and the time to build the estimator (sampling + evaluating all
//!   predicates on the sample + running the query on the sample),
//!
//! which is the accuracy-versus-optimizer-overhead trade-off an integrator
//! has to pick.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ranksql_bench::{build_plan, PaperPlan};
use ranksql_executor::execute_query_plan;
use ranksql_optimizer::SamplingEstimator;
use ranksql_workload::{SyntheticConfig, SyntheticWorkload};

const RATIOS: [f64; 4] = [0.005, 0.01, 0.05, 0.1];

fn geometric_mean_ratio_error(real: &[(String, u64)], estimated: &[(String, f64)]) -> f64 {
    let mut log_sum = 0.0;
    let mut count = 0usize;
    for ((_, real_card), (_, est)) in real.iter().zip(estimated.iter()) {
        let r = (*real_card as f64).max(1.0);
        let e = est.max(1.0);
        log_sum += (e / r).abs().max(r / e).ln();
        count += 1;
    }
    (log_sum / count.max(1) as f64).exp()
}

fn bench_sampling_ratio(c: &mut Criterion) {
    let config = SyntheticConfig {
        table_size: 4_000,
        join_selectivity: 0.0025,
        predicate_cost: 1,
        k: 10,
        ..SyntheticConfig::default()
    };
    let workload = SyntheticWorkload::generate(config).expect("workload");
    workload.build_indexes().expect("indexes");

    // Real cardinalities of plan 3's operators (measured once).
    let plan = build_plan(&workload, PaperPlan::Plan3).expect("plan3");
    let result = execute_query_plan(&workload.query, &plan, &workload.catalog).expect("execution");
    let real = result.metrics.output_cardinalities();

    // One-off accuracy report per ratio.
    for &ratio in &RATIOS {
        let estimator = SamplingEstimator::build(&workload.query, &workload.catalog, ratio, 0xF16)
            .expect("estimator");
        let estimated = estimator.estimate_per_operator(&plan).expect("estimates");
        eprintln!(
            "sample ratio {:>6.3}: geometric-mean ratio error {:.2}x over {} operators",
            ratio,
            geometric_mean_ratio_error(&real, &estimated),
            estimated.len()
        );
    }

    // Timed: estimator construction cost as the ratio grows.
    let mut group = c.benchmark_group("ablation_sampling_ratio");
    group.sample_size(10);
    for &ratio in &RATIOS {
        group.bench_with_input(
            BenchmarkId::new("build_estimator", format!("{ratio}")),
            &ratio,
            |b, &ratio| {
                b.iter(|| {
                    SamplingEstimator::build(&workload.query, &workload.catalog, ratio, 0xF16)
                        .expect("estimator")
                        .x_threshold()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sampling_ratio);
criterion_main!(benches);
