//! The four hand-built execution plans of Figure 11 for the paper's query Q.

use ranksql_algebra::{JoinAlgorithm, LogicalPlan};
use ranksql_common::{BitSet64, Result};
use ranksql_expr::BoolExpr;
use ranksql_workload::SyntheticWorkload;

/// Which of the paper's plans to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaperPlan {
    /// Plan 1: conventional materialise-then-sort with sort-merge joins and
    /// filters over attribute-index scans.
    Plan1,
    /// Plan 2: rank-scans on every table, µ for the second predicates of A
    /// and B, HRJN joins — the fully pipelined ranking plan.
    Plan2,
    /// Plan 3: like Plan 2 but table B is accessed by a sequential scan and
    /// both of its predicates are evaluated by µ operators.
    Plan3,
    /// Plan 4: µ operators stacked above a traditional sort-merge join of A
    /// and B, then an HRJN with a rank-scan of C.
    Plan4,
}

impl PaperPlan {
    /// All four plans in paper order.
    pub fn all() -> [PaperPlan; 4] {
        [
            PaperPlan::Plan1,
            PaperPlan::Plan2,
            PaperPlan::Plan3,
            PaperPlan::Plan4,
        ]
    }

    /// The plans that remain feasible at very large table sizes (the paper
    /// drops Plan 1 from Figure 12(d) because it "takes days to finish").
    pub fn scalable() -> [PaperPlan; 3] {
        [PaperPlan::Plan2, PaperPlan::Plan3, PaperPlan::Plan4]
    }

    /// Display name matching the paper's legend.
    pub fn name(self) -> &'static str {
        match self {
            PaperPlan::Plan1 => "plan1",
            PaperPlan::Plan2 => "plan2",
            PaperPlan::Plan3 => "plan3",
            PaperPlan::Plan4 => "plan4",
        }
    }
}

/// Builds one of the Figure 11 plans against a generated synthetic workload.
///
/// Predicate indices follow the workload's ranking context:
/// `f1 = A.p1`, `f2 = A.p2`, `f3 = B.p1`, `f4 = B.p2`, `f5 = C.p1`.
pub fn build_plan(workload: &SyntheticWorkload, which: PaperPlan) -> Result<LogicalPlan> {
    let catalog = &workload.catalog;
    let k = workload.query.k;
    let a = catalog.table("A")?;
    let b = catalog.table("B")?;
    let c = catalog.table("C")?;

    let jc1 = BoolExpr::col_eq_col("A.jc1", "B.jc1");
    let jc2 = BoolExpr::col_eq_col("B.jc2", "C.jc2");
    let filter_a = BoolExpr::column_is_true("A.b");
    let filter_b = BoolExpr::column_is_true("B.b");

    let plan = match which {
        PaperPlan::Plan1 => LogicalPlan::index_scan(&a, "A.jc1")
            .select(filter_a)
            .join(
                LogicalPlan::index_scan(&b, "B.jc1").select(filter_b),
                Some(jc1),
                JoinAlgorithm::SortMerge,
            )
            .join(
                LogicalPlan::index_scan(&c, "C.jc2"),
                Some(jc2),
                JoinAlgorithm::SortMerge,
            )
            .sort(BitSet64::all(5))
            .limit(k),
        PaperPlan::Plan2 => LogicalPlan::rank_scan(&a, 0)
            .select(filter_a)
            .rank(1)
            .join(
                LogicalPlan::rank_scan(&b, 2).select(filter_b).rank(3),
                Some(jc1),
                JoinAlgorithm::HashRankJoin,
            )
            .join(
                LogicalPlan::rank_scan(&c, 4),
                Some(jc2),
                JoinAlgorithm::HashRankJoin,
            )
            .limit(k),
        PaperPlan::Plan3 => LogicalPlan::rank_scan(&a, 0)
            .select(filter_a)
            .rank(1)
            .join(
                LogicalPlan::scan(&b).select(filter_b).rank(2).rank(3),
                Some(jc1),
                JoinAlgorithm::HashRankJoin,
            )
            .join(
                LogicalPlan::rank_scan(&c, 4),
                Some(jc2),
                JoinAlgorithm::HashRankJoin,
            )
            .limit(k),
        PaperPlan::Plan4 => LogicalPlan::index_scan(&a, "A.jc1")
            .select(filter_a)
            .join(
                LogicalPlan::index_scan(&b, "B.jc1").select(filter_b),
                Some(jc1),
                JoinAlgorithm::SortMerge,
            )
            .rank(0)
            .rank(1)
            .rank(2)
            .rank(3)
            .join(
                LogicalPlan::rank_scan(&c, 4),
                Some(jc2),
                JoinAlgorithm::HashRankJoin,
            )
            .limit(k),
    };
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ranksql_executor::{execute_query_plan, oracle_top_k};
    use ranksql_workload::SyntheticConfig;

    #[test]
    fn all_four_plans_agree_with_the_oracle() {
        let workload = SyntheticWorkload::generate(SyntheticConfig {
            table_size: 400,
            join_selectivity: 0.02,
            predicate_cost: 1,
            k: 10,
            ..SyntheticConfig::default()
        })
        .unwrap();
        let expected: Vec<f64> = oracle_top_k(&workload.query, &workload.catalog)
            .unwrap()
            .iter()
            .map(|t| workload.query.ranking.upper_bound(&t.state).value())
            .collect();
        for which in PaperPlan::all() {
            let plan = build_plan(&workload, which).unwrap();
            let result = execute_query_plan(&workload.query, &plan, &workload.catalog).unwrap();
            let got: Vec<f64> = result
                .tuples
                .iter()
                .map(|t| workload.query.ranking.upper_bound(&t.state).value())
                .collect();
            assert_eq!(got, expected, "{}", which.name());
        }
    }

    #[test]
    fn plan_shapes_match_figure11() {
        let workload = SyntheticWorkload::generate(SyntheticConfig::small(100)).unwrap();
        let p1 = build_plan(&workload, PaperPlan::Plan1).unwrap();
        assert!(p1.has_blocking_sort());
        assert_eq!(p1.rank_operator_count(), 0);
        let p2 = build_plan(&workload, PaperPlan::Plan2).unwrap();
        assert!(!p2.has_blocking_sort());
        assert_eq!(p2.rank_operator_count(), 7); // 3 rank-scans + 2 µ + 2 HRJN
        let p3 = build_plan(&workload, PaperPlan::Plan3).unwrap();
        assert_eq!(p3.rank_operator_count(), 7); // 2 rank-scans + 3 µ + 2 HRJN
        let p4 = build_plan(&workload, PaperPlan::Plan4).unwrap();
        assert_eq!(p4.rank_operator_count(), 6); // 1 rank-scan + 4 µ + 1 HRJN
        assert!(!p4.has_blocking_sort());
        assert_eq!(PaperPlan::scalable().len(), 3);
        assert_eq!(PaperPlan::Plan1.name(), "plan1");
    }
}
