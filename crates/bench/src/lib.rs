//! Benchmark harness regenerating the evaluation section of the RankSQL
//! paper (Section 6): the four execution plans of Figure 11, the four
//! parameter sweeps of Figure 12 and the cardinality-estimation comparison
//! of Figure 13.
//!
//! Two entry points use this library:
//!
//! * the Criterion benches under `benches/` (one per figure plus ablations),
//!   which run scaled-down configurations suitable for CI;
//! * the `paper-experiments` binary, which prints paper-style series and can
//!   be pushed to the full paper-scale parameters with `--full`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod plans;

pub use experiments::{
    run_fig12a, run_fig12b, run_fig12c, run_fig12d, run_fig13, ExperimentSeries, Fig13Row,
    Measurement,
};
pub use plans::{build_plan, PaperPlan};
