//! Prints the series of every figure in the RankSQL paper's evaluation
//! section (Figures 12(a)–(d) and 13).
//!
//! By default a scaled-down configuration is used so the whole run finishes
//! in a couple of minutes on a laptop; pass `--full` to use the paper-scale
//! parameters (s up to 1 000 000 tuples per table — this takes a while).
//! Pass `--json <path>` to also dump the raw series as JSON (used to refresh
//! EXPERIMENTS.md).

use std::collections::BTreeMap;

use ranksql_bench::experiments::fig13_to_json;
use ranksql_bench::{run_fig12a, run_fig12b, run_fig12c, run_fig12d, run_fig13};
use ranksql_workload::SyntheticConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let (base, ks, costs, sels, sizes) = if full {
        (
            SyntheticConfig::default(), // s = 100 000, j = 0.0001, c = 1, k = 10
            vec![1usize, 10, 100, 1000],
            vec![0u64, 1, 10, 100, 1000],
            vec![0.00001, 0.0001, 0.001],
            vec![10_000usize, 100_000, 1_000_000],
        )
    } else {
        (
            SyntheticConfig {
                table_size: 5_000,
                join_selectivity: 0.002,
                predicate_cost: 1,
                k: 10,
                ..SyntheticConfig::default()
            },
            vec![1usize, 10, 100, 1000],
            vec![0u64, 1, 10, 100, 1000],
            vec![0.0002, 0.002, 0.02],
            vec![1_000usize, 5_000, 20_000],
        )
    };

    println!(
        "RankSQL paper experiments ({} configuration)\n\
         base parameters: s = {}, j = {}, c = {}, k = {}\n",
        if full {
            "full paper-scale"
        } else {
            "scaled-down"
        },
        base.table_size,
        base.join_selectivity,
        base.predicate_cost,
        base.k
    );

    let mut json = BTreeMap::new();

    println!("==== Figure 12(a): execution time vs k ====");
    let a = run_fig12a(&base, &ks).expect("fig12a");
    println!("{}", a.to_table());
    json.insert("fig12a", a.to_json());

    println!("==== Figure 12(b): execution time vs predicate cost c ====");
    let b = run_fig12b(&base, &costs).expect("fig12b");
    println!("{}", b.to_table());
    json.insert("fig12b", b.to_json());

    println!("==== Figure 12(c): execution time vs join selectivity j ====");
    let c = run_fig12c(&base, &sels).expect("fig12c");
    println!("{}", c.to_table());
    json.insert("fig12c", c.to_json());

    println!("==== Figure 12(d): execution time vs table size s (plans 2-4) ====");
    let d = run_fig12d(&base, &sizes).expect("fig12d");
    println!("{}", d.to_table());
    json.insert("fig12d", d.to_json());

    println!("==== Figure 13: real vs estimated operator output cardinalities ====");
    let ratio = if full { 0.001 } else { 0.02 };
    let rows = run_fig13(&base, ratio).expect("fig13");
    println!(
        "{:<6} {:>3}  {:<28} {:>12} {:>12}",
        "plan", "op", "operator", "real", "estimated"
    );
    for r in &rows {
        println!(
            "{:<6} {:>3}  {:<28} {:>12} {:>12.1}",
            r.plan, r.operator_index, r.operator, r.real, r.estimated
        );
    }
    json.insert("fig13", fig13_to_json(&rows));

    if let Some(path) = json_path {
        let body: Vec<String> = json
            .iter()
            .map(|(k, v)| format!("  \"{k}\": {v}"))
            .collect();
        std::fs::write(&path, format!("{{\n{}\n}}\n", body.join(",\n"))).expect("write json");
        println!("\nraw series written to {path}");
    }
}
