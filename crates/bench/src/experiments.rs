//! Parameter sweeps regenerating Figures 12(a–d) and 13.

use std::time::Instant;

use ranksql_common::Result;
use ranksql_executor::execute_query_plan;
use ranksql_expr::{RankPredicate, RankingContext};
use ranksql_optimizer::SamplingEstimator;
use ranksql_workload::{SyntheticConfig, SyntheticWorkload};

use crate::plans::{build_plan, PaperPlan};

/// One measured point of a sweep.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// The swept parameter's value (k, c, j or s).
    pub x: f64,
    /// Which plan was executed.
    pub plan: String,
    /// Wall-clock execution time in seconds.
    pub seconds: f64,
    /// Total ranking-predicate evaluations (hardware-independent cost).
    pub predicate_evaluations: u64,
    /// Tuples emitted by the scan operators (how much of the inputs was read).
    pub tuples_scanned: u64,
    /// Number of result rows returned.
    pub results: usize,
}

/// A complete series for one figure.
#[derive(Debug, Clone)]
pub struct ExperimentSeries {
    /// Figure identifier (e.g. `"fig12a"`).
    pub id: String,
    /// Meaning of the x axis.
    pub x_label: String,
    /// The measurements, grouped by plan in x order.
    pub rows: Vec<Measurement>,
}

impl ExperimentSeries {
    /// Renders the series as an aligned text table (one row per (x, plan)).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:>12}  {:<6}  {:>12}  {:>12}  {:>12}  {:>8}\n",
            self.x_label, "plan", "seconds", "pred-evals", "scanned", "results"
        ));
        for m in &self.rows {
            out.push_str(&format!(
                "{:>12}  {:<6}  {:>12.4}  {:>12}  {:>12}  {:>8}\n",
                m.x, m.plan, m.seconds, m.predicate_evaluations, m.tuples_scanned, m.results
            ));
        }
        out
    }

    /// Renders the series as a JSON array (hand-rolled: the build container
    /// has no crates.io access, so there is no serde to derive from).
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|m| {
                format!(
                    "{{\"x\":{},\"plan\":{},\"seconds\":{},\"predicate_evaluations\":{},\"tuples_scanned\":{},\"results\":{}}}",
                    json_f64(m.x),
                    json_string(&m.plan),
                    json_f64(m.seconds),
                    m.predicate_evaluations,
                    m.tuples_scanned,
                    m.results
                )
            })
            .collect();
        format!(
            "{{\"id\":{},\"x_label\":{},\"rows\":[{}]}}",
            json_string(&self.id),
            json_string(&self.x_label),
            rows.join(",")
        )
    }
}

/// Renders a Figure 13 row set as a JSON array.
pub fn fig13_to_json(rows: &[Fig13Row]) -> String {
    let items: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"plan\":{},\"operator_index\":{},\"operator\":{},\"real\":{},\"estimated\":{}}}",
                json_string(&r.plan),
                r.operator_index,
                json_string(&r.operator),
                r.real,
                json_f64(r.estimated)
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

/// Escapes a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a float as a JSON number (JSON has no NaN/∞ literals).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

fn run_one(workload: &SyntheticWorkload, which: PaperPlan, x: f64) -> Result<Measurement> {
    let plan = build_plan(workload, which)?;
    let start = Instant::now();
    let result = execute_query_plan(&workload.query, &plan, &workload.catalog)?;
    let seconds = start.elapsed().as_secs_f64();
    let tuples_scanned = result
        .metrics
        .snapshot()
        .iter()
        .filter(|m| m.name().contains("Scan"))
        .map(|m| m.tuples_out())
        .sum();
    Ok(Measurement {
        x,
        plan: which.name().to_owned(),
        seconds,
        predicate_evaluations: result.total_predicate_evaluations(),
        tuples_scanned,
        results: result.tuples.len(),
    })
}

/// Replaces the predicate cost of a generated workload's query without
/// regenerating the data (the data does not depend on `c`).
fn with_predicate_cost(workload: &mut SyntheticWorkload, cost: u64) {
    let predicates: Vec<RankPredicate> = workload
        .query
        .ranking
        .predicates()
        .iter()
        .map(|p| RankPredicate {
            name: p.name.clone(),
            source: p.source.clone(),
            cost,
        })
        .collect();
    workload.query.ranking =
        RankingContext::new(predicates, workload.query.ranking.scoring().clone());
}

/// Figure 12(a): execution time vs the number of results `k`
/// (paper: k ∈ {1, 10, 100, 1000}, s = 100 000, j = 0.0001, c = 1).
pub fn run_fig12a(base: &SyntheticConfig, ks: &[usize]) -> Result<ExperimentSeries> {
    let mut workload = SyntheticWorkload::generate(base.clone())?;
    let mut rows = Vec::new();
    for &k in ks {
        workload.query.k = k;
        for plan in PaperPlan::all() {
            rows.push(run_one(&workload, plan, k as f64)?);
        }
    }
    Ok(ExperimentSeries {
        id: "fig12a".into(),
        x_label: "k".into(),
        rows,
    })
}

/// Figure 12(b): execution time vs ranking-predicate cost `c`
/// (paper: c ∈ {0, 1, 10, 100, 1000}, k = 10).
pub fn run_fig12b(base: &SyntheticConfig, costs: &[u64]) -> Result<ExperimentSeries> {
    let mut workload = SyntheticWorkload::generate(base.clone())?;
    let mut rows = Vec::new();
    for &c in costs {
        with_predicate_cost(&mut workload, c);
        for plan in PaperPlan::all() {
            rows.push(run_one(&workload, plan, c as f64)?);
        }
    }
    Ok(ExperimentSeries {
        id: "fig12b".into(),
        x_label: "c (unit costs)".into(),
        rows,
    })
}

/// Figure 12(c): execution time vs join selectivity `j`
/// (paper: j ∈ {0.00001, 0.0001, 0.001}, k = 10, c = 1).
pub fn run_fig12c(base: &SyntheticConfig, selectivities: &[f64]) -> Result<ExperimentSeries> {
    let mut rows = Vec::new();
    for &j in selectivities {
        let mut cfg = base.clone();
        cfg.join_selectivity = j;
        let workload = SyntheticWorkload::generate(cfg)?;
        for plan in PaperPlan::all() {
            rows.push(run_one(&workload, plan, j)?);
        }
    }
    Ok(ExperimentSeries {
        id: "fig12c".into(),
        x_label: "join selectivity".into(),
        rows,
    })
}

/// Figure 12(d): execution time vs table size `s`
/// (paper: s ∈ {10 000, 100 000, 1 000 000}; plan 1 is excluded because it
/// is off the scale).
pub fn run_fig12d(base: &SyntheticConfig, sizes: &[usize]) -> Result<ExperimentSeries> {
    let mut rows = Vec::new();
    for &s in sizes {
        let mut cfg = base.clone();
        cfg.table_size = s;
        let workload = SyntheticWorkload::generate(cfg)?;
        for plan in PaperPlan::scalable() {
            rows.push(run_one(&workload, plan, s as f64)?);
        }
    }
    Ok(ExperimentSeries {
        id: "fig12d".into(),
        x_label: "table size".into(),
        rows,
    })
}

/// One operator's real vs estimated output cardinality (Figure 13).
#[derive(Debug, Clone)]
pub struct Fig13Row {
    /// Which plan the operator belongs to (`plan3` or `plan4`).
    pub plan: String,
    /// Operator index within the plan (post-order, as in the paper's x axis).
    pub operator_index: usize,
    /// Operator label.
    pub operator: String,
    /// Real output cardinality measured during execution.
    pub real: u64,
    /// Estimated output cardinality from the sampling-based estimator.
    pub estimated: f64,
}

/// Figure 13: real vs estimated output cardinality of every operator in
/// plan 3 and plan 4, using a sampling-based estimator.
pub fn run_fig13(base: &SyntheticConfig, sample_ratio: f64) -> Result<Vec<Fig13Row>> {
    let workload = SyntheticWorkload::generate(base.clone())?;
    let estimator =
        SamplingEstimator::build(&workload.query, &workload.catalog, sample_ratio, 0xF16)?;
    let cost_model = ranksql_optimizer::CostModel::default();
    let mut rows = Vec::new();
    for which in [PaperPlan::Plan3, PaperPlan::Plan4] {
        let plan = build_plan(&workload, which)?;
        // Lower with per-node estimates: the annotated physical tree pairs
        // one-to-one (post-order) with the executor's metric registration.
        let physical = ranksql_optimizer::lower_with_estimates(
            &plan,
            &workload.query.ranking,
            &estimator,
            &cost_model,
        )?;
        let estimated =
            ranksql_optimizer::physical_estimates(&physical, Some(&workload.query.ranking));
        let result = execute_query_plan(&workload.query, &plan, &workload.catalog)?;
        let real = result.metrics.output_cardinalities();
        assert_eq!(estimated.len(), real.len());
        for (i, ((label, est), (_, real_card))) in estimated.iter().zip(real.iter()).enumerate() {
            rows.push(Fig13Row {
                plan: which.name().to_owned(),
                operator_index: i,
                operator: label.clone(),
                real: *real_card,
                estimated: *est,
            });
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SyntheticConfig {
        SyntheticConfig {
            table_size: 200,
            join_selectivity: 0.05,
            predicate_cost: 1,
            k: 5,
            ..SyntheticConfig::default()
        }
    }

    #[test]
    fn fig12a_series_has_one_row_per_plan_and_k() {
        let series = run_fig12a(&tiny(), &[1, 5]).unwrap();
        assert_eq!(series.rows.len(), 8);
        assert!(series.to_table().contains("plan1"));
        // k = 5 runs return at most 5 results.
        assert!(series.rows.iter().all(|m| m.results <= 5));
    }

    #[test]
    fn fig12b_predicate_evaluations_do_not_depend_on_cost() {
        let series = run_fig12b(&tiny(), &[0, 10]).unwrap();
        // For a given plan the number of evaluations is the same for both
        // costs; only the time changes (Figure 12(b)'s parallel lines).
        for plan in ["plan1", "plan2", "plan3", "plan4"] {
            let evals: Vec<u64> = series
                .rows
                .iter()
                .filter(|m| m.plan == plan)
                .map(|m| m.predicate_evaluations)
                .collect();
            assert_eq!(evals.len(), 2);
            assert_eq!(evals[0], evals[1], "plan {plan}");
        }
    }

    #[test]
    fn fig12c_and_d_sweep_the_requested_parameters() {
        let c = run_fig12c(&tiny(), &[0.05, 0.1]).unwrap();
        assert_eq!(c.rows.len(), 8);
        let d = run_fig12d(&tiny(), &[100, 200]).unwrap();
        assert_eq!(d.rows.len(), 6); // 3 scalable plans × 2 sizes
        assert!(d.rows.iter().all(|m| m.plan != "plan1"));
    }

    #[test]
    fn fig13_produces_estimates_for_every_operator() {
        let rows = run_fig13(&tiny(), 0.1).unwrap();
        assert!(rows.iter().any(|r| r.plan == "plan3"));
        assert!(rows.iter().any(|r| r.plan == "plan4"));
        for r in &rows {
            assert!(r.estimated >= 0.0);
        }
        // Plan 4 has more operators than plan 3 (the paper reports 8 vs 7
        // estimated operators; our counts include scans and limits too).
        let n3 = rows.iter().filter(|r| r.plan == "plan3").count();
        let n4 = rows.iter().filter(|r| r.plan == "plan4").count();
        assert!(n4 > n3);
    }
}
