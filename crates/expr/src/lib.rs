//! Expressions, Boolean predicates, ranking predicates and scoring functions.
//!
//! A rank-relational query (Eq. 1 of the paper) combines two kinds of
//! predicates:
//!
//! * **Boolean predicates** (`c1, ..., cm`) — selections and join conditions
//!   that restrict tuple *membership*; modelled here by [`BoolExpr`].
//! * **Ranking predicates** (`p1, ..., pn`) — functions returning a score in
//!   `[0, 1]` that, combined by a monotonic [`ScoringFunction`] `F`, restrict
//!   the *order* of results; modelled here by [`RankPredicate`].
//!
//! The crate also defines [`ScoreState`] / [`RankedTuple`], the bookkeeping a
//! tuple carries through a ranking query plan: which predicates have been
//! evaluated and their scores, from which the *maximal-possible score*
//! `F_P[t]` (Property 1, the Ranking Principle) is computed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod boolean;
pub mod ranking;
pub mod scalar;
pub mod scoring;
pub mod state;

pub use boolean::{BoolExpr, BoundBoolExpr, CompareOp};
pub use ranking::{EvalCounters, RankPredicate, RankingContext, ScoreSource};
pub use scalar::{BinaryOp, BoundScalarExpr, ColumnRef, ScalarExpr};
pub use scoring::ScoringFunction;
pub use state::{RankedTuple, ScoreState};
