//! Scalar expressions over tuples.

use std::fmt;

use ranksql_common::{RankSqlError, Result, Schema, Tuple, Value};

/// A reference to a column by (optionally qualified) name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// Optional relation qualifier.
    pub relation: Option<String>,
    /// Column name.
    pub name: String,
}

impl ColumnRef {
    /// An unqualified column reference.
    pub fn new(name: impl Into<String>) -> Self {
        ColumnRef {
            relation: None,
            name: name.into(),
        }
    }

    /// A qualified column reference (`relation.name`).
    pub fn qualified(relation: impl Into<String>, name: impl Into<String>) -> Self {
        ColumnRef {
            relation: Some(relation.into()),
            name: name.into(),
        }
    }

    /// Parses `"rel.name"` or `"name"`.
    pub fn parse(s: &str) -> Self {
        match s.split_once('.') {
            Some((rel, name)) => ColumnRef::qualified(rel, name),
            None => ColumnRef::new(s),
        }
    }

    /// Resolves this reference to a column index in `schema`.
    pub fn resolve(&self, schema: &Schema) -> Result<usize> {
        schema.index_of(self.relation.as_deref(), &self.name)
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.relation {
            Some(rel) => write!(f, "{rel}.{}", self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

impl BinaryOp {
    fn apply(self, l: &Value, r: &Value) -> Result<Value> {
        if l.is_null() || r.is_null() {
            return Ok(Value::Null);
        }
        // Integer arithmetic stays integral except for division.
        if let (Value::Int64(a), Value::Int64(b)) = (l, r) {
            return Ok(match self {
                BinaryOp::Add => Value::Int64(a.wrapping_add(*b)),
                BinaryOp::Sub => Value::Int64(a.wrapping_sub(*b)),
                BinaryOp::Mul => Value::Int64(a.wrapping_mul(*b)),
                BinaryOp::Div => {
                    if *b == 0 {
                        Value::Null
                    } else {
                        Value::Float64(*a as f64 / *b as f64)
                    }
                }
            });
        }
        let (a, b) = match (l.as_f64(), r.as_f64()) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(RankSqlError::Expression(format!(
                    "cannot apply {self:?} to {l} and {r}"
                )))
            }
        };
        Ok(Value::Float64(match self {
            BinaryOp::Add => a + b,
            BinaryOp::Sub => a - b,
            BinaryOp::Mul => a * b,
            BinaryOp::Div => {
                if b == 0.0 {
                    return Ok(Value::Null);
                }
                a / b
            }
        }))
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
        })
    }
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// A column reference.
    Column(ColumnRef),
    /// A literal value.
    Literal(Value),
    /// A binary arithmetic expression.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        left: Box<ScalarExpr>,
        /// Right operand.
        right: Box<ScalarExpr>,
    },
    /// Negation (`-expr`).
    Negate(Box<ScalarExpr>),
    /// A prepared-statement parameter slot (displayed as `$index`).
    ///
    /// A parameter starts *unbound* (`value: None`); binding replaces the
    /// value in place while keeping the slot index, so a plan containing
    /// bound parameters can be re-bound with fresh values without
    /// re-optimizing — the expression *shape* (and therefore its display
    /// form, used for plan-cache keys) is independent of the bound value.
    Param {
        /// Zero-based parameter slot.
        index: usize,
        /// The currently bound value (`None` until bound).
        value: Option<Value>,
    },
}

impl ScalarExpr {
    /// Shorthand for a column reference expression.
    pub fn col(name: &str) -> Self {
        ScalarExpr::Column(ColumnRef::parse(name))
    }

    /// Shorthand for an unbound parameter slot (`$index`).
    pub fn param(index: usize) -> Self {
        ScalarExpr::Param { index, value: None }
    }

    /// Shorthand for a literal expression.
    pub fn lit(v: impl Into<Value>) -> Self {
        ScalarExpr::Literal(v.into())
    }

    /// Builds `self + other`.
    #[allow(clippy::should_implement_trait)] // builder DSL, not arithmetic on values
    pub fn add(self, other: ScalarExpr) -> Self {
        ScalarExpr::Binary {
            op: BinaryOp::Add,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// Builds `self - other`.
    #[allow(clippy::should_implement_trait)] // builder DSL, not arithmetic on values
    pub fn sub(self, other: ScalarExpr) -> Self {
        ScalarExpr::Binary {
            op: BinaryOp::Sub,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// Builds `self * other`.
    #[allow(clippy::should_implement_trait)] // builder DSL, not arithmetic on values
    pub fn mul(self, other: ScalarExpr) -> Self {
        ScalarExpr::Binary {
            op: BinaryOp::Mul,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// Builds `self / other`.
    #[allow(clippy::should_implement_trait)] // builder DSL, not arithmetic on values
    pub fn div(self, other: ScalarExpr) -> Self {
        ScalarExpr::Binary {
            op: BinaryOp::Div,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// All column references appearing in this expression.
    pub fn columns(&self) -> Vec<ColumnRef> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut Vec<ColumnRef>) {
        match self {
            ScalarExpr::Column(c) => out.push(c.clone()),
            ScalarExpr::Literal(_) | ScalarExpr::Param { .. } => {}
            ScalarExpr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            ScalarExpr::Negate(e) => e.collect_columns(out),
        }
    }

    /// The parameter slots referenced by this expression (sorted,
    /// deduplicated).
    pub fn param_slots(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_params(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_params(&self, out: &mut Vec<usize>) {
        match self {
            ScalarExpr::Param { index, .. } => out.push(*index),
            ScalarExpr::Column(_) | ScalarExpr::Literal(_) => {}
            ScalarExpr::Binary { left, right, .. } => {
                left.collect_params(out);
                right.collect_params(out);
            }
            ScalarExpr::Negate(e) => e.collect_params(out),
        }
    }

    /// Every parameter occurrence with its currently bound value (`None` =
    /// unbound), in syntactic order; used to let already-bound values act
    /// as defaults when a statement is re-bound.
    pub fn param_bindings(&self) -> Vec<(usize, Option<Value>)> {
        let mut out = Vec::new();
        self.collect_param_bindings(&mut out);
        out
    }

    fn collect_param_bindings(&self, out: &mut Vec<(usize, Option<Value>)>) {
        match self {
            ScalarExpr::Param { index, value } => out.push((*index, value.clone())),
            ScalarExpr::Column(_) | ScalarExpr::Literal(_) => {}
            ScalarExpr::Binary { left, right, .. } => {
                left.collect_param_bindings(out);
                right.collect_param_bindings(out);
            }
            ScalarExpr::Negate(e) => e.collect_param_bindings(out),
        }
    }

    /// Rebinds every parameter slot in the expression to the value at its
    /// index in `values`, leaving everything else untouched.  Fails if a
    /// slot has no corresponding value.
    pub fn with_params(&self, values: &[Value]) -> Result<ScalarExpr> {
        Ok(match self {
            ScalarExpr::Param { index, .. } => {
                let value = values.get(*index).cloned().ok_or_else(|| {
                    RankSqlError::Expression(format!(
                        "no value bound for parameter ${index} ({} values supplied)",
                        values.len()
                    ))
                })?;
                ScalarExpr::Param {
                    index: *index,
                    value: Some(value),
                }
            }
            ScalarExpr::Column(_) | ScalarExpr::Literal(_) => self.clone(),
            ScalarExpr::Binary { op, left, right } => ScalarExpr::Binary {
                op: *op,
                left: Box::new(left.with_params(values)?),
                right: Box::new(right.with_params(values)?),
            },
            ScalarExpr::Negate(e) => ScalarExpr::Negate(Box::new(e.with_params(values)?)),
        })
    }

    /// The relation names referenced by this expression (deduplicated).
    pub fn relations(&self) -> Vec<String> {
        let mut rels: Vec<String> = self
            .columns()
            .into_iter()
            .filter_map(|c| c.relation)
            .collect();
        rels.sort();
        rels.dedup();
        rels
    }

    /// Binds the expression against a schema, producing an index-resolved
    /// form suitable for repeated evaluation.
    pub fn bind(&self, schema: &Schema) -> Result<BoundScalarExpr> {
        Ok(match self {
            ScalarExpr::Column(c) => BoundScalarExpr::Column(c.resolve(schema)?),
            ScalarExpr::Literal(v) => BoundScalarExpr::Literal(v.clone()),
            ScalarExpr::Param { index, value } => match value {
                Some(v) => BoundScalarExpr::Literal(v.clone()),
                None => {
                    return Err(RankSqlError::Expression(format!(
                        "parameter ${index} is unbound; bind a value before execution"
                    )))
                }
            },
            ScalarExpr::Binary { op, left, right } => BoundScalarExpr::Binary {
                op: *op,
                left: Box::new(left.bind(schema)?),
                right: Box::new(right.bind(schema)?),
            },
            ScalarExpr::Negate(e) => BoundScalarExpr::Negate(Box::new(e.bind(schema)?)),
        })
    }

    /// Convenience: bind and evaluate in one step (used in tests and in the
    /// optimizer's sample executor where expressions are evaluated rarely).
    pub fn eval(&self, tuple: &Tuple, schema: &Schema) -> Result<Value> {
        self.bind(schema)?.eval(tuple)
    }
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Column(c) => write!(f, "{c}"),
            ScalarExpr::Literal(v) => write!(f, "{v}"),
            ScalarExpr::Binary { op, left, right } => write!(f, "({left} {op} {right})"),
            ScalarExpr::Negate(e) => write!(f, "(-{e})"),
            // The bound value is deliberately NOT shown: the display form is
            // the normalized shape plan-cache keys are built from.
            ScalarExpr::Param { index, .. } => write!(f, "${index}"),
        }
    }
}

/// A scalar expression with column references resolved to indices.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundScalarExpr {
    /// Column by index.
    Column(usize),
    /// Literal value.
    Literal(Value),
    /// Binary arithmetic.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        left: Box<BoundScalarExpr>,
        /// Right operand.
        right: Box<BoundScalarExpr>,
    },
    /// Negation.
    Negate(Box<BoundScalarExpr>),
}

impl BoundScalarExpr {
    /// Evaluates the expression against a tuple.
    pub fn eval(&self, tuple: &Tuple) -> Result<Value> {
        match self {
            BoundScalarExpr::Column(i) => tuple.values().get(*i).cloned().ok_or_else(|| {
                RankSqlError::Expression(format!(
                    "column index {i} out of bounds for tuple of arity {}",
                    tuple.arity()
                ))
            }),
            BoundScalarExpr::Literal(v) => Ok(v.clone()),
            BoundScalarExpr::Binary { op, left, right } => {
                let l = left.eval(tuple)?;
                let r = right.eval(tuple)?;
                op.apply(&l, &r)
            }
            BoundScalarExpr::Negate(e) => {
                let v = e.eval(tuple)?;
                match v {
                    Value::Null => Ok(Value::Null),
                    Value::Int64(i) => Ok(Value::Int64(-i)),
                    Value::Float64(x) => Ok(Value::Float64(-x)),
                    other => Err(RankSqlError::Expression(format!("cannot negate {other}"))),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ranksql_common::{DataType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::qualified("R", "a", DataType::Int64),
            Field::qualified("R", "b", DataType::Float64),
            Field::qualified("S", "a", DataType::Int64),
        ])
    }

    fn tuple() -> Tuple {
        Tuple::synthetic(0, vec![Value::from(4), Value::from(0.5), Value::from(7)])
    }

    #[test]
    fn column_resolution_and_eval() {
        let e = ScalarExpr::col("R.a");
        assert_eq!(e.eval(&tuple(), &schema()).unwrap(), Value::from(4));
        let e2 = ScalarExpr::col("S.a");
        assert_eq!(e2.eval(&tuple(), &schema()).unwrap(), Value::from(7));
    }

    #[test]
    fn arithmetic_mixed_types() {
        let e = ScalarExpr::col("R.a").add(ScalarExpr::col("R.b"));
        assert_eq!(e.eval(&tuple(), &schema()).unwrap(), Value::from(4.5));
        let e = ScalarExpr::col("R.a").mul(ScalarExpr::lit(3));
        assert_eq!(e.eval(&tuple(), &schema()).unwrap(), Value::from(12));
        let e = ScalarExpr::lit(10).sub(ScalarExpr::col("S.a"));
        assert_eq!(e.eval(&tuple(), &schema()).unwrap(), Value::from(3));
    }

    #[test]
    fn division_by_zero_is_null() {
        let e = ScalarExpr::lit(1).div(ScalarExpr::lit(0));
        assert_eq!(e.eval(&tuple(), &schema()).unwrap(), Value::Null);
        let e = ScalarExpr::lit(1.0).div(ScalarExpr::lit(0.0));
        assert_eq!(e.eval(&tuple(), &schema()).unwrap(), Value::Null);
    }

    #[test]
    fn null_propagates() {
        let e = ScalarExpr::lit(Value::Null).add(ScalarExpr::lit(1));
        assert_eq!(e.eval(&tuple(), &schema()).unwrap(), Value::Null);
    }

    #[test]
    fn negate() {
        let e = ScalarExpr::Negate(Box::new(ScalarExpr::col("R.b")));
        assert_eq!(e.eval(&tuple(), &schema()).unwrap(), Value::from(-0.5));
        let e = ScalarExpr::Negate(Box::new(ScalarExpr::lit("x")));
        assert!(e.eval(&tuple(), &schema()).is_err());
    }

    #[test]
    fn type_error_reported() {
        let e = ScalarExpr::lit("x").add(ScalarExpr::lit(1));
        assert!(e.eval(&tuple(), &schema()).is_err());
    }

    #[test]
    fn columns_and_relations() {
        let e = ScalarExpr::col("R.a")
            .add(ScalarExpr::col("S.a"))
            .mul(ScalarExpr::col("R.b"));
        assert_eq!(e.columns().len(), 3);
        assert_eq!(e.relations(), vec!["R".to_string(), "S".to_string()]);
    }

    #[test]
    fn display_forms() {
        let e = ScalarExpr::col("R.a").add(ScalarExpr::lit(1));
        assert_eq!(e.to_string(), "(R.a + 1)");
        assert_eq!(ColumnRef::parse("x").to_string(), "x");
    }

    #[test]
    fn unknown_column_errors_at_bind_time() {
        let e = ScalarExpr::col("R.zzz");
        assert!(e.bind(&schema()).is_err());
    }

    #[test]
    fn params_display_bind_and_rebind() {
        // Shape (display) is value-independent: the cache-key property.
        let e = ScalarExpr::col("R.a").add(ScalarExpr::param(0));
        assert_eq!(e.to_string(), "(R.a + $0)");
        assert_eq!(e.param_slots(), vec![0]);
        // Unbound parameters refuse to bind/evaluate.
        let err = e.eval(&tuple(), &schema()).unwrap_err();
        assert!(err.to_string().contains("unbound"), "{err}");
        // Binding substitutes the value but keeps the slot (and display).
        let bound = e.with_params(&[Value::from(10)]).unwrap();
        assert_eq!(bound.to_string(), "(R.a + $0)");
        assert_eq!(bound.eval(&tuple(), &schema()).unwrap(), Value::from(14));
        // Re-binding replaces the value in place.
        let rebound = bound.with_params(&[Value::from(100)]).unwrap();
        assert_eq!(rebound.eval(&tuple(), &schema()).unwrap(), Value::from(104));
        // A slot with no supplied value is an error.
        assert!(e.with_params(&[]).is_err());
        // Params are invisible to column collection.
        assert_eq!(bound.columns().len(), 1);
    }

    #[test]
    fn integer_division_produces_float() {
        let e = ScalarExpr::lit(3).div(ScalarExpr::lit(2));
        assert_eq!(e.eval(&tuple(), &schema()).unwrap(), Value::from(1.5));
    }
}
