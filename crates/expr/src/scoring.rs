//! Monotonic scoring functions.

use std::fmt;

use ranksql_common::Score;

/// A monotonic scoring function `F(p1, ..., pn)` combining the scores of the
/// query's ranking predicates into one overall query score.
///
/// All variants are monotonic: increasing any input cannot decrease the
/// output, which is the property the Ranking Principle (Property 1) and every
/// rank-aware operator rely on.  The paper uses summation throughout; the
/// other variants are provided because the model explicitly allows "other
/// monotonic functions such as multiplication, weighted average, and so on".
#[derive(Debug, Clone, PartialEq)]
pub enum ScoringFunction {
    /// `p1 + p2 + ... + pn` (the paper's default).
    Sum,
    /// `w1*p1 + ... + wn*pn` with non-negative weights.
    WeightedSum(Vec<f64>),
    /// `p1 * p2 * ... * pn` (scores in `[0,1]`, so monotonic).
    Product,
    /// `min(p1, ..., pn)`.
    Min,
    /// `max(p1, ..., pn)`.
    Max,
    /// Arithmetic mean.
    Average,
}

impl ScoringFunction {
    /// Creates a weighted sum, validating that the weights are non-negative.
    ///
    /// # Panics
    /// Panics if any weight is negative (a negative weight would break
    /// monotonicity and with it every rank-aware operator).
    pub fn weighted_sum(weights: Vec<f64>) -> Self {
        assert!(
            weights.iter().all(|w| *w >= 0.0),
            "weights of a monotonic scoring function must be non-negative"
        );
        ScoringFunction::WeightedSum(weights)
    }

    /// Combines a full vector of predicate scores into the overall score.
    pub fn combine(&self, scores: &[f64]) -> Score {
        if scores.is_empty() {
            return Score::ZERO;
        }
        let v = match self {
            ScoringFunction::Sum => scores.iter().sum(),
            ScoringFunction::WeightedSum(w) => {
                debug_assert_eq!(
                    w.len(),
                    scores.len(),
                    "weighted sum arity mismatch: {} weights, {} scores",
                    w.len(),
                    scores.len()
                );
                scores.iter().zip(w.iter()).map(|(s, w)| s * w).sum()
            }
            ScoringFunction::Product => scores.iter().product(),
            ScoringFunction::Min => scores.iter().copied().fold(f64::INFINITY, f64::min),
            ScoringFunction::Max => scores.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            ScoringFunction::Average => scores.iter().sum::<f64>() / scores.len() as f64,
        };
        Score::new(v)
    }

    /// Combines a partially evaluated score vector into the *maximal-possible*
    /// score, substituting `max_value` (1.0 for unit-range predicates) for
    /// every unevaluated predicate — exactly `F_P[t]` of Property 1.
    pub fn upper_bound(&self, partial: &[Option<f64>], max_value: f64) -> Score {
        let filled: Vec<f64> = partial.iter().map(|v| v.unwrap_or(max_value)).collect();
        self.combine(&filled)
    }

    /// The score every tuple has before any predicate is evaluated
    /// (e.g. `n * 1.0` for summation over `n` predicates, cf. Figure 6(a)
    /// where unevaluated tuples all carry score 3.0).
    pub fn initial_upper_bound(&self, n: usize, max_value: f64) -> Score {
        self.combine(&vec![max_value; n])
    }

    /// Verifies monotonicity empirically on a pair of score vectors; used by
    /// property tests and by debug assertions in the executor.
    pub fn check_monotonic(&self, lower: &[f64], higher: &[f64]) -> bool {
        debug_assert_eq!(lower.len(), higher.len());
        if lower.iter().zip(higher).all(|(l, h)| l <= h) {
            self.combine(lower) <= self.combine(higher)
        } else {
            true // precondition not met; nothing to check
        }
    }
}

impl fmt::Display for ScoringFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScoringFunction::Sum => f.write_str("sum"),
            ScoringFunction::WeightedSum(w) => write!(f, "wsum{w:?}"),
            ScoringFunction::Product => f.write_str("product"),
            ScoringFunction::Min => f.write_str("min"),
            ScoringFunction::Max => f.write_str("max"),
            ScoringFunction::Average => f.write_str("avg"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_matches_paper_example() {
        // Figure 2(d): r1 has p1 = 0.9, p2 unevaluated → F1{p1}[r1] = 1.9.
        let f = ScoringFunction::Sum;
        assert_eq!(f.upper_bound(&[Some(0.9), None], 1.0), Score::new(1.9));
        // Figure 4(a): both evaluated → 0.9 + 0.65 = 1.55.
        assert_eq!(f.combine(&[0.9, 0.65]), Score::new(1.55));
    }

    #[test]
    fn initial_upper_bound_matches_figure6a() {
        // Figure 6(a): F2 = sum of three predicates, nothing evaluated → 3.0.
        let f = ScoringFunction::Sum;
        assert_eq!(f.initial_upper_bound(3, 1.0), Score::new(3.0));
    }

    #[test]
    fn weighted_sum() {
        let f = ScoringFunction::weighted_sum(vec![2.0, 0.5]);
        assert_eq!(f.combine(&[0.5, 1.0]), Score::new(1.5));
        assert_eq!(f.upper_bound(&[None, Some(0.2)], 1.0), Score::new(2.1));
    }

    #[test]
    #[should_panic]
    fn negative_weight_rejected() {
        ScoringFunction::weighted_sum(vec![1.0, -0.1]);
    }

    #[test]
    fn product_min_max_average() {
        assert_eq!(
            ScoringFunction::Product.combine(&[0.5, 0.5]),
            Score::new(0.25)
        );
        assert_eq!(ScoringFunction::Min.combine(&[0.3, 0.7]), Score::new(0.3));
        assert_eq!(ScoringFunction::Max.combine(&[0.3, 0.7]), Score::new(0.7));
        assert_eq!(
            ScoringFunction::Average.combine(&[0.0, 1.0]),
            Score::new(0.5)
        );
    }

    #[test]
    fn empty_scores_give_zero() {
        assert_eq!(ScoringFunction::Sum.combine(&[]), Score::ZERO);
        assert_eq!(ScoringFunction::Min.combine(&[]), Score::ZERO);
    }

    #[test]
    fn upper_bound_never_below_final_score() {
        let fns = [
            ScoringFunction::Sum,
            ScoringFunction::Product,
            ScoringFunction::Min,
            ScoringFunction::Max,
            ScoringFunction::Average,
        ];
        let full = [0.3, 0.8, 0.1];
        for f in fns {
            for mask in 0..8u32 {
                let partial: Vec<Option<f64>> = (0..3)
                    .map(|i| {
                        if mask & (1 << i) != 0 {
                            Some(full[i])
                        } else {
                            None
                        }
                    })
                    .collect();
                assert!(
                    f.upper_bound(&partial, 1.0) >= f.combine(&full),
                    "upper bound must dominate the final score for {f}"
                );
            }
        }
    }

    #[test]
    fn monotonicity_check() {
        let f = ScoringFunction::Sum;
        assert!(f.check_monotonic(&[0.1, 0.2], &[0.3, 0.2]));
        assert!(ScoringFunction::Product.check_monotonic(&[0.1, 0.1], &[0.9, 0.9]));
    }

    #[test]
    fn display() {
        assert_eq!(ScoringFunction::Sum.to_string(), "sum");
        assert_eq!(ScoringFunction::Average.to_string(), "avg");
    }
}
