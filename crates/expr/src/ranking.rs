//! Ranking predicates and the per-query ranking context.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ranksql_common::{RankSqlError, Result, Schema, Score, Tuple};

use crate::scalar::{ColumnRef, ScalarExpr};
use crate::scoring::ScoringFunction;
use crate::state::ScoreState;

/// How a ranking predicate computes its score for a tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum ScoreSource {
    /// The score is stored in (or trivially derived from) a column, e.g. a
    /// pre-computed similarity column; this is the common case in the paper's
    /// synthetic workload where predicate scores are generated per tuple and
    /// the "user-defined function" simply reads them (at a configurable cost).
    Attribute(ColumnRef),
    /// The score is an arbitrary scalar expression over one or more
    /// relations' columns (e.g. `close(h.addr, r.addr)` is modelled as a
    /// normalised distance expression).  Expressions over columns of two
    /// relations yield *rank-join* predicates.
    Expression(ScalarExpr),
}

impl ScoreSource {
    fn columns(&self) -> Vec<ColumnRef> {
        match self {
            ScoreSource::Attribute(c) => vec![c.clone()],
            ScoreSource::Expression(e) => e.columns(),
        }
    }

    fn param_slots(&self) -> Vec<usize> {
        match self {
            ScoreSource::Attribute(_) => Vec::new(),
            ScoreSource::Expression(e) => e.param_slots(),
        }
    }

    fn with_params(&self, values: &[ranksql_common::Value]) -> Result<ScoreSource> {
        Ok(match self {
            ScoreSource::Attribute(c) => ScoreSource::Attribute(c.clone()),
            ScoreSource::Expression(e) => ScoreSource::Expression(e.with_params(values)?),
        })
    }
}

/// A ranking predicate `p_i`: produces a score in `[0, 1]` for a tuple, at a
/// configurable evaluation cost.
///
/// Mirrors the paper's ranking predicates: they may be as cheap as an
/// attribute read or as expensive as a user-defined function touching
/// external sources.  The `cost` field expresses that expense in abstract
/// *unit costs*; evaluating the predicate burns `cost` units of deterministic
/// CPU work (see [`simulate_cost_units`]) and increments the evaluation
/// counters, so both wall-clock and analytic costs can be measured.
#[derive(Debug, Clone, PartialEq)]
pub struct RankPredicate {
    /// Unique name (e.g. `"p1"` or `"cheap(h.price)"`).
    pub name: String,
    /// How the score is computed.
    pub source: ScoreSource,
    /// Evaluation cost in unit costs (0 = free).
    pub cost: u64,
}

impl RankPredicate {
    /// A predicate that reads its score from a column, with zero cost.
    pub fn attribute(name: impl Into<String>, column: &str) -> Self {
        RankPredicate {
            name: name.into(),
            source: ScoreSource::Attribute(ColumnRef::parse(column)),
            cost: 0,
        }
    }

    /// A predicate that reads its score from a column at a given cost.
    pub fn attribute_with_cost(name: impl Into<String>, column: &str, cost: u64) -> Self {
        RankPredicate {
            name: name.into(),
            source: ScoreSource::Attribute(ColumnRef::parse(column)),
            cost,
        }
    }

    /// A predicate computed by an expression (clamped to `[0,1]`).
    pub fn expression(name: impl Into<String>, expr: ScalarExpr, cost: u64) -> Self {
        RankPredicate {
            name: name.into(),
            source: ScoreSource::Expression(expr),
            cost,
        }
    }

    /// The relations referenced by this predicate (sorted, deduplicated).
    ///
    /// A predicate over one relation is a *rank-selection* predicate; over
    /// two or more it is a *rank-join* predicate (Section 2.1).
    pub fn relations(&self) -> Vec<String> {
        let mut rels: Vec<String> = self
            .source
            .columns()
            .into_iter()
            .filter_map(|c| c.relation)
            .collect();
        rels.sort();
        rels.dedup();
        rels
    }

    /// Whether this is a rank-join predicate (references ≥ 2 relations).
    pub fn is_join_predicate(&self) -> bool {
        self.relations().len() >= 2
    }

    /// The parameter slots referenced by this predicate's score expression
    /// (sorted, deduplicated; empty for attribute predicates).
    pub fn param_slots(&self) -> Vec<usize> {
        self.source.param_slots()
    }

    /// Every parameter occurrence in the score expression with its
    /// currently bound value (`None` = unbound).
    pub fn param_bindings(&self) -> Vec<(usize, Option<ranksql_common::Value>)> {
        match &self.source {
            ScoreSource::Attribute(_) => Vec::new(),
            ScoreSource::Expression(e) => e.param_bindings(),
        }
    }

    /// Rebinds every parameter slot in the predicate's score expression to
    /// the value at its index in `values`.
    pub fn with_params(&self, values: &[ranksql_common::Value]) -> Result<RankPredicate> {
        Ok(RankPredicate {
            name: self.name.clone(),
            source: self.source.with_params(values)?,
            cost: self.cost,
        })
    }

    /// Whether this predicate can be evaluated on a tuple having `schema`
    /// (i.e. all referenced columns are present).
    pub fn is_evaluable_on(&self, schema: &Schema) -> bool {
        self.source
            .columns()
            .iter()
            .all(|c| c.resolve(schema).is_ok())
    }

    /// Evaluates the predicate against a tuple, burning `cost` units of work.
    ///
    /// The returned score is clamped into `[0, 1]`; a NULL or non-numeric
    /// score evaluates to `0.0` (the worst possible score), so NULLs never
    /// promote a tuple.
    pub fn evaluate(&self, tuple: &Tuple, schema: &Schema) -> Result<Score> {
        simulate_cost_units(self.cost);
        let value = match &self.source {
            ScoreSource::Attribute(c) => {
                let idx = c.resolve(schema)?;
                tuple.value(idx).clone()
            }
            ScoreSource::Expression(e) => e.eval(tuple, schema)?,
        };
        Ok(Score::new(value.as_f64().unwrap_or(0.0)).clamp_unit())
    }
}

impl fmt::Display for RankPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if self.cost > 0 {
            write!(f, "[cost={}]", self.cost)?;
        }
        Ok(())
    }
}

/// Number of multiply-add iterations burned per unit of predicate cost.
///
/// One unit is roughly a hundred nanoseconds of CPU work on a modern core —
/// small enough that `c = 1` queries stay interactive, large enough that
/// `c = 1000` predicates dominate execution time exactly as in Figure 12(b).
pub const COST_UNIT_ITERS: u64 = 64;

/// Burns `units` of deterministic CPU work to simulate an expensive
/// user-defined ranking predicate.
#[inline]
pub fn simulate_cost_units(units: u64) {
    if units == 0 {
        return;
    }
    let mut x: u64 = 0x9E3779B97F4A7C15;
    for _ in 0..units.saturating_mul(COST_UNIT_ITERS) {
        // A cheap LCG step the optimiser cannot elide thanks to black_box.
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        std::hint::black_box(x);
    }
}

/// Per-predicate evaluation counters (shared, thread-safe).
///
/// Counting predicate evaluations is how Example 4 reasons about plan cost
/// (e.g. plan (b) evaluates `3·C4 + 2·C5`); the counters let tests and the
/// benchmark harness report those analytic numbers.
#[derive(Debug, Default)]
pub struct EvalCounters {
    per_predicate: Vec<AtomicU64>,
}

impl EvalCounters {
    /// Creates counters for `n` predicates.
    pub fn new(n: usize) -> Self {
        EvalCounters {
            per_predicate: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Records one evaluation of predicate `i`.
    pub fn record(&self, i: usize) {
        if let Some(c) = self.per_predicate.get(i) {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The number of evaluations of predicate `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.per_predicate
            .get(i)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Total evaluations across all predicates.
    pub fn total(&self) -> u64 {
        self.per_predicate
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// All counts as a vector.
    pub fn snapshot(&self) -> Vec<u64> {
        self.per_predicate
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        for c in &self.per_predicate {
            c.store(0, Ordering::Relaxed);
        }
    }
}

/// The ranking context of a query: its ranking predicates `p1..pn`, the
/// monotonic scoring function `F`, and shared evaluation counters.
///
/// Every rank-aware operator in a plan holds an `Arc<RankingContext>` so they
/// agree on predicate indices, the meaning of score states and the scoring
/// function.
#[derive(Debug)]
pub struct RankingContext {
    predicates: Vec<RankPredicate>,
    scoring: ScoringFunction,
    counters: EvalCounters,
    max_predicate_value: f64,
    /// Optional data-derived per-predicate score maxima (e.g. columnar
    /// zone-map maxima): unevaluated predicate `i` contributes
    /// `predicate_caps[i]` to upper bounds instead of the global
    /// `max_predicate_value`.  Tighter bounds mean rank-aware operators
    /// (µ, MPro, HRJN/NRJN) emit earlier and probe less — without changing
    /// results, because any valid cap still dominates every reachable final
    /// score.
    predicate_caps: Option<Vec<f64>>,
}

impl RankingContext {
    /// Creates a ranking context.
    pub fn new(predicates: Vec<RankPredicate>, scoring: ScoringFunction) -> Arc<Self> {
        let n = predicates.len();
        Arc::new(RankingContext {
            predicates,
            scoring,
            counters: EvalCounters::new(n),
            max_predicate_value: 1.0,
            predicate_caps: None,
        })
    }

    /// A context (fresh counters) whose upper bounds substitute the given
    /// per-predicate maxima for unevaluated predicates.
    ///
    /// Callers must pass *valid* upper bounds — every reachable score of
    /// predicate `i` must be `≤ caps[i]` (zone-map maxima are, by
    /// construction).  Caps are clamped into `[0, max_predicate_value]`; a
    /// `NaN` cap falls back to the global maximum (conservative).
    pub fn with_predicate_caps(&self, caps: Vec<f64>) -> Arc<Self> {
        assert_eq!(
            caps.len(),
            self.predicates.len(),
            "one cap per ranking predicate"
        );
        let max = self.max_predicate_value;
        let caps = caps
            .into_iter()
            .map(|c| if c.is_nan() { max } else { c.clamp(0.0, max) })
            .collect();
        Arc::new(RankingContext {
            predicates: self.predicates.clone(),
            scoring: self.scoring.clone(),
            counters: EvalCounters::new(self.predicates.len()),
            max_predicate_value: max,
            predicate_caps: Some(caps),
        })
    }

    /// The data-derived per-predicate score maxima, if installed.
    pub fn predicate_caps(&self) -> Option<&[f64]> {
        self.predicate_caps.as_deref()
    }

    /// The maximal possible score of predicate `i` under the installed caps
    /// (the global maximum when no caps are installed).
    pub fn max_value_for(&self, i: usize) -> f64 {
        self.predicate_caps
            .as_ref()
            .and_then(|c| c.get(i).copied())
            .unwrap_or(self.max_predicate_value)
    }

    /// A context with no ranking predicates (a purely Boolean query).
    pub fn unranked() -> Arc<Self> {
        RankingContext::new(Vec::new(), ScoringFunction::Sum)
    }

    /// A context with the same predicates but a different scoring function
    /// (fresh evaluation counters) — how prepared statements re-bind
    /// ranking weights without re-planning.  Installed predicate caps are
    /// preserved.
    pub fn with_scoring(&self, scoring: ScoringFunction) -> Arc<Self> {
        Arc::new(RankingContext {
            predicates: self.predicates.clone(),
            scoring,
            counters: EvalCounters::new(self.predicates.len()),
            max_predicate_value: self.max_predicate_value,
            predicate_caps: self.predicate_caps.clone(),
        })
    }

    /// The parameter slots referenced by any predicate's score expression
    /// (sorted, deduplicated).
    pub fn param_slots(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .predicates
            .iter()
            .flat_map(|p| p.param_slots())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Every parameter occurrence in any predicate's score expression with
    /// its currently bound value (`None` = unbound).
    pub fn param_bindings(&self) -> Vec<(usize, Option<ranksql_common::Value>)> {
        self.predicates
            .iter()
            .flat_map(|p| p.param_bindings())
            .collect()
    }

    /// A context (fresh counters) with every parameter slot in expression
    /// predicates rebound to the value at its index in `values`.
    pub fn with_params(&self, values: &[ranksql_common::Value]) -> Result<Arc<Self>> {
        let predicates = self
            .predicates
            .iter()
            .map(|p| p.with_params(values))
            .collect::<Result<Vec<_>>>()?;
        Ok(Arc::new(RankingContext {
            counters: EvalCounters::new(predicates.len()),
            predicates,
            scoring: self.scoring.clone(),
            max_predicate_value: self.max_predicate_value,
            predicate_caps: self.predicate_caps.clone(),
        }))
    }

    /// Number of ranking predicates.
    pub fn num_predicates(&self) -> usize {
        self.predicates.len()
    }

    /// The predicates.
    pub fn predicates(&self) -> &[RankPredicate] {
        &self.predicates
    }

    /// The predicate at index `i`.
    pub fn predicate(&self, i: usize) -> &RankPredicate {
        &self.predicates[i]
    }

    /// Finds a predicate index by name.
    pub fn predicate_index(&self, name: &str) -> Result<usize> {
        self.predicates
            .iter()
            .position(|p| p.name == name)
            .ok_or_else(|| RankSqlError::Plan(format!("unknown ranking predicate `{name}`")))
    }

    /// The scoring function `F`.
    pub fn scoring(&self) -> &ScoringFunction {
        &self.scoring
    }

    /// The evaluation counters.
    pub fn counters(&self) -> &EvalCounters {
        &self.counters
    }

    /// The maximal possible value of a single predicate (1.0 by default).
    pub fn max_predicate_value(&self) -> f64 {
        self.max_predicate_value
    }

    /// Creates a fresh (all-unevaluated) score state.
    pub fn new_state(&self) -> ScoreState {
        ScoreState::new(self.num_predicates())
    }

    /// The maximal-possible score `F_P[t]` for a score state (per-predicate
    /// caps applied when installed).
    pub fn upper_bound(&self, state: &ScoreState) -> Score {
        match &self.predicate_caps {
            Some(caps) => state.upper_bound_capped(&self.scoring, caps),
            None => state.upper_bound(&self.scoring, self.max_predicate_value),
        }
    }

    /// The upper bound of a tuple about which nothing has been evaluated.
    pub fn initial_upper_bound(&self) -> Score {
        match &self.predicate_caps {
            Some(caps) => self.scoring.combine(caps),
            None => self
                .scoring
                .initial_upper_bound(self.num_predicates(), self.max_predicate_value),
        }
    }

    /// The total order ranked streams are compared in: descending
    /// maximal-possible score (caps applied), ties broken by ascending tuple
    /// identity.  The context-aware form of
    /// [`RankedTuple::cmp_desc`](crate::state::RankedTuple::cmp_desc) —
    /// operators must use this one so capped and uncapped executions order
    /// buffered tuples consistently.
    pub fn cmp_desc(
        &self,
        a: &crate::state::RankedTuple,
        b: &crate::state::RankedTuple,
    ) -> std::cmp::Ordering {
        self.upper_bound(&b.state)
            .cmp(&self.upper_bound(&a.state))
            .then_with(|| a.tuple.id().cmp(b.tuple.id()))
    }

    /// Evaluates predicate `i` on a tuple (recording the evaluation) and
    /// returns the resulting score.
    pub fn evaluate_predicate(&self, i: usize, tuple: &Tuple, schema: &Schema) -> Result<Score> {
        let p = self.predicates.get(i).ok_or_else(|| {
            RankSqlError::Plan(format!(
                "predicate index {i} out of range ({} predicates)",
                self.predicates.len()
            ))
        })?;
        self.counters.record(i);
        p.evaluate(tuple, schema)
    }

    /// Evaluates predicate `i` and folds the result into `state`.
    pub fn evaluate_into(
        &self,
        i: usize,
        tuple: &Tuple,
        schema: &Schema,
        state: &mut ScoreState,
    ) -> Result<Score> {
        let s = self.evaluate_predicate(i, tuple, schema)?;
        state.set(i, s.value());
        Ok(s)
    }

    /// Indices of predicates evaluable on a given schema.
    pub fn evaluable_predicates(&self, schema: &Schema) -> Vec<usize> {
        (0..self.predicates.len())
            .filter(|&i| self.predicates[i].is_evaluable_on(schema))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ranksql_common::{DataType, Field, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::qualified("R", "a", DataType::Int64),
            Field::qualified("R", "p1", DataType::Float64),
            Field::qualified("S", "p2", DataType::Float64),
        ])
    }

    fn tuple(p1: f64, p2: f64) -> Tuple {
        Tuple::synthetic(1, vec![Value::from(3), Value::from(p1), Value::from(p2)])
    }

    #[test]
    fn attribute_predicate_reads_and_clamps() {
        let p = RankPredicate::attribute("p1", "R.p1");
        let s = schema();
        assert_eq!(p.evaluate(&tuple(0.7, 0.0), &s).unwrap(), Score::new(0.7));
        assert_eq!(p.evaluate(&tuple(1.7, 0.0), &s).unwrap(), Score::ONE);
        assert_eq!(p.evaluate(&tuple(-0.3, 0.0), &s).unwrap(), Score::ZERO);
    }

    #[test]
    fn expression_predicate() {
        // Score = 1 - |R.p1 - S.p2| as a tiny "closeness" predicate.
        let expr = ScalarExpr::lit(1.0).sub(ScalarExpr::col("R.p1").sub(ScalarExpr::col("S.p2")));
        let p = RankPredicate::expression("close", expr, 0);
        let s = schema();
        let score = p.evaluate(&tuple(0.6, 0.4), &s).unwrap();
        assert!((score.value() - 0.8).abs() < 1e-12);
        assert_eq!(p.relations(), vec!["R".to_string(), "S".to_string()]);
        assert!(p.is_join_predicate());
    }

    #[test]
    fn evaluable_on_checks_schema() {
        let p = RankPredicate::attribute("p2", "S.p2");
        assert!(p.is_evaluable_on(&schema()));
        let r_only = Schema::new(vec![Field::qualified("R", "p1", DataType::Float64)]);
        assert!(!p.is_evaluable_on(&r_only));
    }

    #[test]
    fn null_score_is_zero() {
        let p = RankPredicate::attribute("p1", "R.p1");
        let s = schema();
        let t = Tuple::synthetic(0, vec![Value::from(1), Value::Null, Value::from(0.5)]);
        assert_eq!(p.evaluate(&t, &s).unwrap(), Score::ZERO);
    }

    #[test]
    fn context_indexing_and_counters() {
        let ctx = RankingContext::new(
            vec![
                RankPredicate::attribute("p1", "R.p1"),
                RankPredicate::attribute("p2", "S.p2"),
            ],
            ScoringFunction::Sum,
        );
        assert_eq!(ctx.num_predicates(), 2);
        assert_eq!(ctx.predicate_index("p2").unwrap(), 1);
        assert!(ctx.predicate_index("nope").is_err());
        let s = schema();
        let t = tuple(0.25, 0.5);
        let mut state = ctx.new_state();
        assert_eq!(ctx.upper_bound(&state), Score::new(2.0));
        ctx.evaluate_into(0, &t, &s, &mut state).unwrap();
        assert_eq!(ctx.upper_bound(&state), Score::new(1.25));
        ctx.evaluate_into(1, &t, &s, &mut state).unwrap();
        assert_eq!(ctx.upper_bound(&state), Score::new(0.75));
        assert_eq!(ctx.counters().count(0), 1);
        assert_eq!(ctx.counters().count(1), 1);
        assert_eq!(ctx.counters().total(), 2);
        ctx.counters().reset();
        assert_eq!(ctx.counters().total(), 0);
    }

    #[test]
    fn evaluable_predicates_filters_by_schema() {
        let ctx = RankingContext::new(
            vec![
                RankPredicate::attribute("p1", "R.p1"),
                RankPredicate::attribute("p2", "S.p2"),
            ],
            ScoringFunction::Sum,
        );
        let r_only = Schema::new(vec![Field::qualified("R", "p1", DataType::Float64)]);
        assert_eq!(ctx.evaluable_predicates(&r_only), vec![0]);
        assert_eq!(ctx.evaluable_predicates(&schema()), vec![0, 1]);
    }

    #[test]
    fn cost_simulation_is_callable() {
        // Not a timing test; just exercise the code path.
        simulate_cost_units(0);
        simulate_cost_units(2);
        let p = RankPredicate::attribute_with_cost("p1", "R.p1", 1);
        assert_eq!(p.cost, 1);
        assert_eq!(
            p.evaluate(&tuple(0.5, 0.5), &schema()).unwrap(),
            Score::new(0.5)
        );
    }

    #[test]
    fn out_of_range_predicate_errors() {
        let ctx = RankingContext::unranked();
        let t = tuple(0.1, 0.2);
        assert!(ctx.evaluate_predicate(0, &t, &schema()).is_err());
    }

    #[test]
    fn display() {
        assert_eq!(RankPredicate::attribute("p1", "R.p1").to_string(), "p1");
        assert_eq!(
            RankPredicate::attribute_with_cost("p1", "R.p1", 5).to_string(),
            "p1[cost=5]"
        );
    }
}
