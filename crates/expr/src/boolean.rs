//! Boolean predicates: selections and join conditions.

use std::fmt;

use ranksql_common::{RankSqlError, Result, Schema, Tuple, Value};

use crate::scalar::{BoundScalarExpr, ColumnRef, ScalarExpr};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
}

impl CompareOp {
    fn apply(self, l: &Value, r: &Value) -> Option<bool> {
        if l.is_null() || r.is_null() {
            return None; // SQL three-valued logic: comparison with NULL is unknown.
        }
        Some(match self {
            CompareOp::Eq => l == r,
            CompareOp::NotEq => l != r,
            CompareOp::Lt => l < r,
            CompareOp::LtEq => l <= r,
            CompareOp::Gt => l > r,
            CompareOp::GtEq => l >= r,
        })
    }
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CompareOp::Eq => "=",
            CompareOp::NotEq => "<>",
            CompareOp::Lt => "<",
            CompareOp::LtEq => "<=",
            CompareOp::Gt => ">",
            CompareOp::GtEq => ">=",
        })
    }
}

/// A Boolean predicate tree.
///
/// Boolean predicates restrict *membership* (the traditional dimension of
/// query processing); they are evaluated with SQL three-valued logic where a
/// `NULL` comparison makes the tuple fail the filter.
#[derive(Debug, Clone, PartialEq)]
pub enum BoolExpr {
    /// A comparison between two scalar expressions.
    Compare {
        /// Operator.
        op: CompareOp,
        /// Left operand.
        left: ScalarExpr,
        /// Right operand.
        right: ScalarExpr,
    },
    /// A column that is itself a boolean (e.g. `A.b` in the paper's query Q).
    Column(ColumnRef),
    /// Conjunction.
    And(Box<BoolExpr>, Box<BoolExpr>),
    /// Disjunction.
    Or(Box<BoolExpr>, Box<BoolExpr>),
    /// Negation.
    Not(Box<BoolExpr>),
    /// A constant truth value.
    Literal(bool),
}

impl BoolExpr {
    /// Builds `left op right`.
    pub fn compare(left: ScalarExpr, op: CompareOp, right: ScalarExpr) -> Self {
        BoolExpr::Compare { op, left, right }
    }

    /// Builds an equality comparison between two columns (common join form).
    pub fn col_eq_col(left: &str, right: &str) -> Self {
        BoolExpr::compare(ScalarExpr::col(left), CompareOp::Eq, ScalarExpr::col(right))
    }

    /// Builds a predicate testing a boolean column.
    pub fn column_is_true(column: &str) -> Self {
        BoolExpr::Column(ColumnRef::parse(column))
    }

    /// Conjunction helper.
    pub fn and(self, other: BoolExpr) -> Self {
        BoolExpr::And(Box::new(self), Box::new(other))
    }

    /// Disjunction helper.
    pub fn or(self, other: BoolExpr) -> Self {
        BoolExpr::Or(Box::new(self), Box::new(other))
    }

    /// Negation helper.
    pub fn negate(self) -> Self {
        BoolExpr::Not(Box::new(self))
    }

    /// Splits a conjunction into its conjuncts (`a AND b AND c` → `[a, b, c]`).
    ///
    /// This mirrors the classical "splitting of selections" the paper points
    /// at when contrasting Boolean filtering with monolithic sorting.
    pub fn split_conjuncts(&self) -> Vec<BoolExpr> {
        match self {
            BoolExpr::And(l, r) => {
                let mut out = l.split_conjuncts();
                out.extend(r.split_conjuncts());
                out
            }
            other => vec![other.clone()],
        }
    }

    /// Re-assembles a conjunction from conjuncts; `None` for an empty list.
    pub fn conjoin(conjuncts: Vec<BoolExpr>) -> Option<BoolExpr> {
        conjuncts.into_iter().reduce(BoolExpr::and)
    }

    /// All column references appearing in this predicate.
    pub fn columns(&self) -> Vec<ColumnRef> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut Vec<ColumnRef>) {
        match self {
            BoolExpr::Compare { left, right, .. } => {
                out.extend(left.columns());
                out.extend(right.columns());
            }
            BoolExpr::Column(c) => out.push(c.clone()),
            BoolExpr::And(l, r) | BoolExpr::Or(l, r) => {
                l.collect_columns(out);
                r.collect_columns(out);
            }
            BoolExpr::Not(e) => e.collect_columns(out),
            BoolExpr::Literal(_) => {}
        }
    }

    /// The parameter slots referenced by this predicate (sorted,
    /// deduplicated).
    pub fn param_slots(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_params(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_params(&self, out: &mut Vec<usize>) {
        match self {
            BoolExpr::Compare { left, right, .. } => {
                out.extend(left.param_slots());
                out.extend(right.param_slots());
            }
            BoolExpr::And(l, r) | BoolExpr::Or(l, r) => {
                l.collect_params(out);
                r.collect_params(out);
            }
            BoolExpr::Not(e) => e.collect_params(out),
            BoolExpr::Column(_) | BoolExpr::Literal(_) => {}
        }
    }

    /// Every parameter occurrence with its currently bound value (`None` =
    /// unbound), in syntactic order.
    pub fn param_bindings(&self) -> Vec<(usize, Option<Value>)> {
        let mut out = Vec::new();
        self.collect_param_bindings(&mut out);
        out
    }

    fn collect_param_bindings(&self, out: &mut Vec<(usize, Option<Value>)>) {
        match self {
            BoolExpr::Compare { left, right, .. } => {
                out.extend(left.param_bindings());
                out.extend(right.param_bindings());
            }
            BoolExpr::And(l, r) | BoolExpr::Or(l, r) => {
                l.collect_param_bindings(out);
                r.collect_param_bindings(out);
            }
            BoolExpr::Not(e) => e.collect_param_bindings(out),
            BoolExpr::Column(_) | BoolExpr::Literal(_) => {}
        }
    }

    /// Rebinds every parameter slot in the predicate to the value at its
    /// index in `values` (see [`ScalarExpr::with_params`]).
    pub fn with_params(&self, values: &[Value]) -> Result<BoolExpr> {
        Ok(match self {
            BoolExpr::Compare { op, left, right } => BoolExpr::Compare {
                op: *op,
                left: left.with_params(values)?,
                right: right.with_params(values)?,
            },
            BoolExpr::And(l, r) => BoolExpr::And(
                Box::new(l.with_params(values)?),
                Box::new(r.with_params(values)?),
            ),
            BoolExpr::Or(l, r) => BoolExpr::Or(
                Box::new(l.with_params(values)?),
                Box::new(r.with_params(values)?),
            ),
            BoolExpr::Not(e) => BoolExpr::Not(Box::new(e.with_params(values)?)),
            BoolExpr::Column(_) | BoolExpr::Literal(_) => self.clone(),
        })
    }

    /// The relation names referenced (deduplicated, sorted).
    pub fn relations(&self) -> Vec<String> {
        let mut rels: Vec<String> = self
            .columns()
            .into_iter()
            .filter_map(|c| c.relation)
            .collect();
        rels.sort();
        rels.dedup();
        rels
    }

    /// Whether this predicate references columns of a single relation
    /// (a *Boolean-selection* predicate, e.g. `c1` in Example 1) as opposed
    /// to multiple relations (a *Boolean-join* predicate, e.g. `c2`, `c3`).
    pub fn is_selection(&self) -> bool {
        self.relations().len() <= 1
    }

    /// Binds against a schema for repeated evaluation.
    pub fn bind(&self, schema: &Schema) -> Result<BoundBoolExpr> {
        Ok(match self {
            BoolExpr::Compare { op, left, right } => BoundBoolExpr::Compare {
                op: *op,
                left: left.bind(schema)?,
                right: right.bind(schema)?,
            },
            BoolExpr::Column(c) => BoundBoolExpr::Column(c.resolve(schema)?),
            BoolExpr::And(l, r) => {
                BoundBoolExpr::And(Box::new(l.bind(schema)?), Box::new(r.bind(schema)?))
            }
            BoolExpr::Or(l, r) => {
                BoundBoolExpr::Or(Box::new(l.bind(schema)?), Box::new(r.bind(schema)?))
            }
            BoolExpr::Not(e) => BoundBoolExpr::Not(Box::new(e.bind(schema)?)),
            BoolExpr::Literal(b) => BoundBoolExpr::Literal(*b),
        })
    }

    /// Convenience: bind and evaluate in one step.
    pub fn eval(&self, tuple: &Tuple, schema: &Schema) -> Result<bool> {
        self.bind(schema)?.eval(tuple)
    }
}

impl fmt::Display for BoolExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoolExpr::Compare { op, left, right } => write!(f, "{left} {op} {right}"),
            BoolExpr::Column(c) => write!(f, "{c}"),
            BoolExpr::And(l, r) => write!(f, "({l} AND {r})"),
            BoolExpr::Or(l, r) => write!(f, "({l} OR {r})"),
            BoolExpr::Not(e) => write!(f, "(NOT {e})"),
            BoolExpr::Literal(b) => write!(f, "{b}"),
        }
    }
}

/// A Boolean predicate with column references resolved to indices.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundBoolExpr {
    /// Comparison.
    Compare {
        /// Operator.
        op: CompareOp,
        /// Left operand.
        left: BoundScalarExpr,
        /// Right operand.
        right: BoundScalarExpr,
    },
    /// Boolean column by index.
    Column(usize),
    /// Conjunction.
    And(Box<BoundBoolExpr>, Box<BoundBoolExpr>),
    /// Disjunction.
    Or(Box<BoundBoolExpr>, Box<BoundBoolExpr>),
    /// Negation.
    Not(Box<BoundBoolExpr>),
    /// Constant.
    Literal(bool),
}

impl BoundBoolExpr {
    /// Evaluates the predicate; an unknown (NULL-involving) comparison is
    /// treated as `false`, matching SQL `WHERE` semantics.
    pub fn eval(&self, tuple: &Tuple) -> Result<bool> {
        Ok(self.eval_tristate(tuple)?.unwrap_or(false))
    }

    /// Evaluates with three-valued logic (`None` = unknown).
    pub fn eval_tristate(&self, tuple: &Tuple) -> Result<Option<bool>> {
        match self {
            BoundBoolExpr::Compare { op, left, right } => {
                let l = left.eval(tuple)?;
                let r = right.eval(tuple)?;
                Ok(op.apply(&l, &r))
            }
            BoundBoolExpr::Column(i) => {
                let v = tuple.values().get(*i).ok_or_else(|| {
                    RankSqlError::Expression(format!("column index {i} out of bounds"))
                })?;
                if v.is_null() {
                    Ok(None)
                } else {
                    v.as_bool().map(Some).ok_or_else(|| {
                        RankSqlError::Expression(format!("column value {v} is not boolean"))
                    })
                }
            }
            BoundBoolExpr::And(l, r) => {
                let a = l.eval_tristate(tuple)?;
                let b = r.eval_tristate(tuple)?;
                Ok(match (a, b) {
                    (Some(false), _) | (_, Some(false)) => Some(false),
                    (Some(true), Some(true)) => Some(true),
                    _ => None,
                })
            }
            BoundBoolExpr::Or(l, r) => {
                let a = l.eval_tristate(tuple)?;
                let b = r.eval_tristate(tuple)?;
                Ok(match (a, b) {
                    (Some(true), _) | (_, Some(true)) => Some(true),
                    (Some(false), Some(false)) => Some(false),
                    _ => None,
                })
            }
            BoundBoolExpr::Not(e) => Ok(e.eval_tristate(tuple)?.map(|b| !b)),
            BoundBoolExpr::Literal(b) => Ok(Some(*b)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ranksql_common::{DataType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::qualified("R", "a", DataType::Int64),
            Field::qualified("R", "flag", DataType::Bool),
            Field::qualified("S", "a", DataType::Int64),
        ])
    }

    fn t(a: i64, flag: Option<bool>, sa: i64) -> Tuple {
        Tuple::synthetic(
            0,
            vec![
                Value::from(a),
                flag.map(Value::from).unwrap_or(Value::Null),
                Value::from(sa),
            ],
        )
    }

    #[test]
    fn comparisons() {
        let s = schema();
        let e = BoolExpr::compare(ScalarExpr::col("R.a"), CompareOp::Gt, ScalarExpr::lit(3));
        assert!(e.eval(&t(4, Some(true), 0), &s).unwrap());
        assert!(!e.eval(&t(3, Some(true), 0), &s).unwrap());
        let e = BoolExpr::col_eq_col("R.a", "S.a");
        assert!(e.eval(&t(5, None, 5), &s).unwrap());
        assert!(!e.eval(&t(5, None, 6), &s).unwrap());
    }

    #[test]
    fn boolean_column_predicate() {
        let s = schema();
        let e = BoolExpr::column_is_true("R.flag");
        assert!(e.eval(&t(0, Some(true), 0), &s).unwrap());
        assert!(!e.eval(&t(0, Some(false), 0), &s).unwrap());
        // NULL flag → unknown → filtered out.
        assert!(!e.eval(&t(0, None, 0), &s).unwrap());
    }

    #[test]
    fn three_valued_logic() {
        let s = schema();
        // NULL AND false = false ; NULL OR true = true ; NOT NULL = NULL.
        let null_cmp = BoolExpr::compare(
            ScalarExpr::lit(Value::Null),
            CompareOp::Eq,
            ScalarExpr::lit(1),
        );
        let f = BoolExpr::Literal(false);
        let tr = BoolExpr::Literal(true);
        let tu = t(0, Some(true), 0);
        assert_eq!(
            null_cmp
                .clone()
                .and(f)
                .bind(&s)
                .unwrap()
                .eval_tristate(&tu)
                .unwrap(),
            Some(false)
        );
        assert_eq!(
            null_cmp
                .clone()
                .or(tr)
                .bind(&s)
                .unwrap()
                .eval_tristate(&tu)
                .unwrap(),
            Some(true)
        );
        assert_eq!(
            null_cmp
                .clone()
                .negate()
                .bind(&s)
                .unwrap()
                .eval_tristate(&tu)
                .unwrap(),
            None
        );
        assert!(!null_cmp.eval(&tu, &s).unwrap());
    }

    #[test]
    fn split_and_conjoin_round_trip() {
        let a = BoolExpr::column_is_true("R.flag");
        let b = BoolExpr::col_eq_col("R.a", "S.a");
        let c = BoolExpr::compare(ScalarExpr::col("R.a"), CompareOp::Lt, ScalarExpr::lit(10));
        let all = a.clone().and(b.clone()).and(c.clone());
        let parts = all.split_conjuncts();
        assert_eq!(parts, vec![a, b, c]);
        let rejoined = BoolExpr::conjoin(parts).unwrap();
        assert_eq!(rejoined.split_conjuncts().len(), 3);
        assert!(BoolExpr::conjoin(vec![]).is_none());
    }

    #[test]
    fn selection_vs_join_classification() {
        assert!(BoolExpr::column_is_true("R.flag").is_selection());
        assert!(!BoolExpr::col_eq_col("R.a", "S.a").is_selection());
        let complex = BoolExpr::compare(
            ScalarExpr::col("R.a").add(ScalarExpr::col("S.a")),
            CompareOp::Lt,
            ScalarExpr::lit(100),
        );
        assert_eq!(complex.relations(), vec!["R".to_string(), "S".to_string()]);
        assert!(!complex.is_selection());
    }

    #[test]
    fn display() {
        let e = BoolExpr::col_eq_col("R.a", "S.a").and(BoolExpr::Literal(true));
        assert_eq!(e.to_string(), "(R.a = S.a AND true)");
    }
}
