//! Score states and ranked tuples: the bookkeeping of partial ranking.

use std::cmp::Ordering;

use ranksql_common::{BitSet64, Score, Tuple};

use crate::scoring::ScoringFunction;

/// Score storage: queries rarely rank by more than a handful of predicates,
/// so the scores live inline in the state (no heap allocation per tuple) up
/// to [`INLINE_PREDICATES`]; wider ranking contexts spill to a `Vec`.
///
/// Unused inline slots stay `0.0`, so the derived `PartialEq` matches the
/// previous `Vec`-based semantics (unevaluated positions are always `0.0`).
#[derive(Debug, Clone, PartialEq)]
enum Values {
    Inline {
        len: u8,
        data: [f64; INLINE_PREDICATES],
    },
    Heap(Vec<f64>),
}

/// Maximum number of ranking predicates stored inline in a [`ScoreState`]
/// without a heap allocation.
pub const INLINE_PREDICATES: usize = 6;

impl Values {
    fn new(n: usize) -> Self {
        if n <= INLINE_PREDICATES {
            Values::Inline {
                len: n as u8,
                data: [0.0; INLINE_PREDICATES],
            }
        } else {
            Values::Heap(vec![0.0; n])
        }
    }

    fn len(&self) -> usize {
        match self {
            Values::Inline { len, .. } => *len as usize,
            Values::Heap(v) => v.len(),
        }
    }

    fn as_slice(&self) -> &[f64] {
        match self {
            Values::Inline { len, data } => &data[..*len as usize],
            Values::Heap(v) => v,
        }
    }

    fn as_mut_slice(&mut self) -> &mut [f64] {
        match self {
            Values::Inline { len, data } => &mut data[..*len as usize],
            Values::Heap(v) => v,
        }
    }
}

/// Which of a query's ranking predicates have been evaluated for a tuple, and
/// with what scores.
///
/// A rank-relation `R_P` (Definition 1) is a relation whose tuples are ordered
/// by their maximal-possible score under the evaluated predicate set `P`.
/// `ScoreState` is the per-tuple record of `P` and the evaluated scores; the
/// upper bound is obtained by substituting the maximal predicate value for
/// every unevaluated predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreState {
    evaluated: BitSet64,
    /// Evaluated scores; positions not in `evaluated` are meaningless.
    values: Values,
}

impl ScoreState {
    /// A state over `n` predicates with nothing evaluated.
    ///
    /// Panics if `n > 64` — the `BitSet64` tracking the evaluated set (and
    /// the stack buffer in [`ScoreState::upper_bound`]) cap the engine at 64
    /// ranking predicates per query.
    pub fn new(n: usize) -> Self {
        assert!(
            n <= 64,
            "at most 64 ranking predicates are supported, got {n}"
        );
        ScoreState {
            evaluated: BitSet64::EMPTY,
            values: Values::new(n),
        }
    }

    /// Number of predicates tracked.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The set `P` of evaluated predicate indices.
    pub fn evaluated(&self) -> BitSet64 {
        self.evaluated
    }

    /// Whether predicate `i` has been evaluated.
    pub fn is_evaluated(&self, i: usize) -> bool {
        self.evaluated.contains(i)
    }

    /// Whether every predicate has been evaluated (the score is final).
    pub fn is_complete(&self) -> bool {
        self.evaluated.len() == self.values.len()
    }

    /// Records the score of predicate `i`.
    pub fn set(&mut self, i: usize, score: f64) {
        let values = self.values.as_mut_slice();
        assert!(i < values.len(), "predicate index {i} out of range");
        values[i] = score;
        self.evaluated.insert(i);
    }

    /// The evaluated score of predicate `i`, if present.
    pub fn get(&self, i: usize) -> Option<f64> {
        if self.is_evaluated(i) {
            Some(self.values.as_slice()[i])
        } else {
            None
        }
    }

    /// The score vector as `Option`s (None = not yet evaluated).
    pub fn as_partial(&self) -> Vec<Option<f64>> {
        (0..self.arity()).map(|i| self.get(i)).collect()
    }

    /// The maximal-possible score `F_P[t]` (Property 1): unevaluated
    /// predicates contribute `max_value`.
    pub fn upper_bound(&self, scoring: &ScoringFunction, max_value: f64) -> Score {
        // Hot path (ranking queues call this once per push): fill a stack
        // buffer instead of allocating.  `BitSet64` caps the predicate count
        // at 64, so the fixed buffer always suffices.
        let values = self.values.as_slice();
        let mut buf = [0.0f64; 64];
        let filled = &mut buf[..values.len()];
        for (i, slot) in filled.iter_mut().enumerate() {
            *slot = if self.evaluated.contains(i) {
                values[i]
            } else {
                max_value
            };
        }
        scoring.combine(filled)
    }

    /// Like [`ScoreState::upper_bound`] but with a *per-predicate* maximum:
    /// unevaluated predicate `i` contributes `caps[i]` instead of one global
    /// maximum.  Callers supply data-derived caps (e.g. zone-map maxima), so
    /// the bound is tighter but still dominates every reachable final score.
    pub fn upper_bound_capped(&self, scoring: &ScoringFunction, caps: &[f64]) -> Score {
        let values = self.values.as_slice();
        debug_assert_eq!(caps.len(), values.len(), "cap arity mismatch");
        let mut buf = [0.0f64; 64];
        let filled = &mut buf[..values.len()];
        for (i, slot) in filled.iter_mut().enumerate() {
            *slot = if self.evaluated.contains(i) {
                values[i]
            } else {
                caps[i]
            };
        }
        scoring.combine(filled)
    }

    /// Merges two score states over the same predicate universe (used by
    /// binary operators: the output order is induced by `P1 ∪ P2`).
    ///
    /// When both sides evaluated the same predicate the left value wins; the
    /// engine only merges states for the *same* underlying tuple (set
    /// operators) or for tuples over disjoint relations (joins), so the
    /// values agree whenever they overlap.
    pub fn merge(&self, other: &ScoreState) -> ScoreState {
        debug_assert_eq!(
            self.arity(),
            other.arity(),
            "merging states of different arity"
        );
        let mut out = self.clone();
        for i in other.evaluated.iter() {
            if !out.evaluated.contains(i) {
                out.set(i, other.values.as_slice()[i]);
            }
        }
        out
    }
}

/// A tuple travelling through a ranking query plan together with its score
/// state.  This is the unit of data flow between rank-aware operators.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedTuple {
    /// The tuple.
    pub tuple: Tuple,
    /// Its score state.
    pub state: ScoreState,
}

impl RankedTuple {
    /// Wraps a tuple with a fresh (unevaluated) state over `n` predicates.
    pub fn unranked(tuple: Tuple, n: usize) -> Self {
        RankedTuple {
            tuple,
            state: ScoreState::new(n),
        }
    }

    /// Wraps a tuple with a given state.
    pub fn new(tuple: Tuple, state: ScoreState) -> Self {
        RankedTuple { tuple, state }
    }

    /// The maximal-possible score of this tuple.
    pub fn upper_bound(&self, scoring: &ScoringFunction, max_value: f64) -> Score {
        self.state.upper_bound(scoring, max_value)
    }

    /// Joins two ranked tuples: concatenates values, combines identities and
    /// merges score states (the aggregate order of the paper's join
    /// definition: ordered by `P1 ∪ P2`).
    pub fn join(&self, other: &RankedTuple) -> RankedTuple {
        RankedTuple {
            tuple: self.tuple.join(&other.tuple),
            state: self.state.merge(&other.state),
        }
    }

    /// Total order used everywhere ranked streams need determinism:
    /// descending upper bound, ties broken by ascending tuple id.
    pub fn cmp_desc(
        &self,
        other: &RankedTuple,
        scoring: &ScoringFunction,
        max_value: f64,
    ) -> Ordering {
        other
            .upper_bound(scoring, max_value)
            .cmp(&self.upper_bound(scoring, max_value))
            .then_with(|| self.tuple.id().cmp(other.tuple.id()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ranksql_common::Value;

    fn t(n: u64) -> Tuple {
        Tuple::synthetic(n, vec![Value::from(n as i64)])
    }

    #[test]
    fn fresh_state_has_full_upper_bound() {
        let s = ScoreState::new(3);
        assert_eq!(s.upper_bound(&ScoringFunction::Sum, 1.0), Score::new(3.0));
        assert!(!s.is_complete());
        assert_eq!(s.as_partial(), vec![None, None, None]);
    }

    #[test]
    fn set_and_upper_bound_progression() {
        // Mirrors Figure 6(b): p3 = 0.9 seen → 2.9; then p4 = 0.85 → 2.75...
        let mut s = ScoreState::new(3);
        s.set(0, 0.9);
        assert_eq!(s.upper_bound(&ScoringFunction::Sum, 1.0), Score::new(2.9));
        s.set(1, 0.85);
        assert_eq!(s.upper_bound(&ScoringFunction::Sum, 1.0), Score::new(2.75));
        s.set(2, 0.8);
        assert!(s.is_complete());
        assert_eq!(s.upper_bound(&ScoringFunction::Sum, 1.0), Score::new(2.55));
        assert_eq!(s.get(1), Some(0.85));
        assert_eq!(s.get(2), Some(0.8));
    }

    #[test]
    fn upper_bound_is_monotone_decreasing_as_predicates_evaluate() {
        let mut s = ScoreState::new(4);
        let f = ScoringFunction::Sum;
        let mut prev = s.upper_bound(&f, 1.0);
        for (i, v) in [(0, 0.4), (1, 0.9), (2, 0.0), (3, 1.0)] {
            s.set(i, v);
            let now = s.upper_bound(&f, 1.0);
            assert!(now <= prev, "upper bound must never increase");
            prev = now;
        }
    }

    #[test]
    fn merge_unions_evaluated_sets() {
        let mut a = ScoreState::new(3);
        a.set(0, 0.5);
        let mut b = ScoreState::new(3);
        b.set(2, 0.25);
        let m = a.merge(&b);
        assert_eq!(m.evaluated(), BitSet64::from_indices([0, 2]));
        assert_eq!(m.get(0), Some(0.5));
        assert_eq!(m.get(2), Some(0.25));
        assert_eq!(m.upper_bound(&ScoringFunction::Sum, 1.0), Score::new(1.75));
    }

    #[test]
    fn merge_overlap_keeps_left() {
        let mut a = ScoreState::new(2);
        a.set(0, 0.3);
        let mut b = ScoreState::new(2);
        b.set(0, 0.3);
        b.set(1, 0.6);
        let m = a.merge(&b);
        assert_eq!(m.get(0), Some(0.3));
        assert_eq!(m.get(1), Some(0.6));
    }

    #[test]
    fn ranked_tuple_join_merges_scores_and_values() {
        let mut sa = ScoreState::new(3);
        sa.set(0, 0.9);
        let mut sb = ScoreState::new(3);
        sb.set(1, 0.7);
        let a = RankedTuple::new(t(1), sa);
        let b = RankedTuple::new(t(2), sb);
        let j = a.join(&b);
        assert_eq!(j.tuple.arity(), 2);
        assert_eq!(j.state.evaluated().len(), 2);
        assert_eq!(
            j.upper_bound(&ScoringFunction::Sum, 1.0),
            Score::new(0.9 + 0.7 + 1.0)
        );
    }

    #[test]
    fn cmp_desc_orders_by_score_then_id() {
        let f = ScoringFunction::Sum;
        let mut s1 = ScoreState::new(1);
        s1.set(0, 0.9);
        let mut s2 = ScoreState::new(1);
        s2.set(0, 0.5);
        let hi = RankedTuple::new(t(5), s1.clone());
        let lo = RankedTuple::new(t(1), s2);
        assert_eq!(hi.cmp_desc(&lo, &f, 1.0), Ordering::Less); // hi sorts first
        let tie_a = RankedTuple::new(t(1), s1.clone());
        let tie_b = RankedTuple::new(t(2), s1);
        assert_eq!(tie_a.cmp_desc(&tie_b, &f, 1.0), Ordering::Less);
    }

    #[test]
    #[should_panic]
    fn out_of_range_set_panics() {
        let mut s = ScoreState::new(1);
        s.set(3, 0.1);
    }
}
