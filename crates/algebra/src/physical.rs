//! The physical plan IR: the contract between the optimizer and the
//! executor.
//!
//! A [`LogicalPlan`] describes *what* rank-relation to compute; a
//! [`PhysicalPlan`] names the concrete operator that computes every node —
//! `SeqScan` vs `RankScan` vs `AttributeIndexScan`, `HashJoin` vs
//! `HashRankJoin` (HRJN) vs `NestedLoopsRankJoin` (NRJN), the rank
//! materialisation µ vs a multi-predicate `MproProbe`, and a blocking
//! `Sort` vs a fused top-k `SortLimit`.  Each node carries the optimizer's
//! per-node [`Cost`] and cardinality estimates, so `explain` can print the
//! physical tree the executor will actually run, and — after execution —
//! pair every node with the number of tuples it really produced.
//!
//! The executor consumes *only* this IR: `build_operator` in
//! `ranksql-executor` is a mechanical `PhysicalPlan → operator` walk with no
//! physical decisions left in it.  The optimizer's planners lower
//! `LogicalPlan → PhysicalPlan` (with real cost annotations); the
//! [`PhysicalPlan::from_logical`] lowering used for hand-built and canonical
//! plans performs the same structural mapping with zero-cost annotations.

use std::fmt;

use ranksql_common::{BitSet64, Cost, RankSqlError, Result, Schema};
use ranksql_expr::{BoolExpr, RankingContext};

use crate::plan::{JoinAlgorithm, LogicalPlan, ScanAccess, SetOpKind};

/// How an [`Exchange`](PhysicalOp::Exchange) reassembles the outputs of its
/// parallel partitions into one serial stream.
///
/// Both strategies are **deterministic**: `Concat` glues partition outputs
/// back together in morsel order (reproducing the serial emission order
/// exactly), and `Ordered` merges rank-sorted partition streams under the
/// total order of `RankedTuple::cmp_desc` (descending score, ties broken by
/// tuple identity) — so the merged stream is byte-identical across any
/// thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangeMerge {
    /// Concatenate partition outputs in morsel (scan) order.
    Concat,
    /// K-way merge of rank-ordered partition streams; `limit` keeps only the
    /// global top `k` of the merged stream (used when the partitions run a
    /// per-partition top-k sort).
    Ordered {
        /// Number of tuples to keep from the merged stream (`None` = all).
        limit: Option<usize>,
    },
}

/// Columnar-backend annotation of a sequential scan: produced by the
/// optimizer's `columnarize` pass when the database's storage backend is
/// columnar.  The executor lowers an annotated scan to a `ColumnScan` that
/// reads the table's [`ColumnTable`] projection block by block.
///
/// [`ColumnTable`]: ranksql_storage::ColumnTable
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ColumnarScan {
    /// A σ predicate fused into the scan (a conjunction of simple
    /// column-vs-constant comparisons): evaluated column-at-a-time against
    /// the typed column vectors, with zone maps skipping blocks whose value
    /// range cannot satisfy it.  Rows are materialised into tuples only
    /// *after* they pass — late materialisation on the σ spine.
    pub pushed_filter: Option<BoolExpr>,
    /// Whether the scan may additionally skip blocks whose maximal possible
    /// *query score* (zone-map maxima through the scoring function) cannot
    /// beat the downstream top-k's current threshold.  Set only when the
    /// scan feeds a `SortLimit` through an order/membership-preserving σ/π
    /// chain, so pruning can never change results — only `tuples_scanned`.
    pub zone_prune: bool,
}

/// A physical operator node; children are embedded [`PhysicalPlan`]s.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalOp {
    /// Sequential (heap) scan of a base table.
    SeqScan {
        /// Table name.
        table: String,
        /// Snapshot of the table schema.
        schema: Schema,
        /// Columnar-backend annotation (`None` = plain row scan).
        columnar: Option<ColumnarScan>,
    },
    /// Score-index scan emitting tuples in descending order of one ranking
    /// predicate (the paper's `idxScan_p`).
    RankScan {
        /// Table name.
        table: String,
        /// Snapshot of the table schema.
        schema: Schema,
        /// Index of the ranking predicate in the query's [`RankingContext`].
        predicate: usize,
    },
    /// Ordered scan over an attribute index (ascending attribute order).
    AttributeIndexScan {
        /// Table name.
        table: String,
        /// Snapshot of the table schema.
        schema: Schema,
        /// Qualified column the index covers.
        column: String,
    },
    /// Selection σ_c.
    Filter {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Boolean predicate.
        predicate: BoolExpr,
    },
    /// Projection π.
    Project {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Qualified column names to keep, in output order.
        columns: Vec<String>,
    },
    /// The rank operator µ_p: evaluates one ranking predicate and re-orders
    /// incrementally through a ranking queue.
    RankMaterialize {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Index of the ranking predicate evaluated.
        predicate: usize,
    },
    /// Multi-predicate rank with minimal probing (MPro): evaluates the
    /// scheduled predicates lazily, probing a tuple only when the probe is
    /// provably necessary.
    MproProbe {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Context predicate indices in probe order.
        schedule: Vec<usize>,
    },
    /// Tuple-at-a-time nested-loops join (blocking inner).
    NestedLoopsJoin {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
        /// Join condition (`None` = Cartesian product).
        condition: Option<BoolExpr>,
    },
    /// Classic hash join (builds on the right input; blocking).
    HashJoin {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
        /// Join condition (must contain an equi-conjunct).
        condition: Option<BoolExpr>,
    },
    /// Sort-merge join on the equi-join columns (blocking).
    SortMergeJoin {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
        /// Join condition (must contain an equi-conjunct).
        condition: Option<BoolExpr>,
    },
    /// Hash rank-join (HRJN): rank-aware, incremental, symmetric-hash.
    HashRankJoin {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
        /// Join condition (must contain an equi-conjunct).
        condition: Option<BoolExpr>,
    },
    /// Nested-loops rank-join (NRJN): rank-aware, arbitrary conditions.
    NestedLoopsRankJoin {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
        /// Join condition (`None` = rank-aware cross product).
        condition: Option<BoolExpr>,
    },
    /// Rank-aware set operation (∪, ∩, −).
    SetOp {
        /// Which set operation.
        kind: SetOpKind,
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
    },
    /// Blocking materialise-and-sort τ_F.
    Sort {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Predicates the sort evaluates/orders by.
        predicates: BitSet64,
    },
    /// Fused top-k sort (τ_F + λ_k): keeps only the best `k` tuples in a
    /// bounded heap instead of materialising and sorting the whole input.
    SortLimit {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Predicates the sort evaluates/orders by.
        predicates: BitSet64,
        /// Number of tuples to keep.
        k: usize,
    },
    /// Top-k limit λ_k over an already ranked input.
    Limit {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Number of tuples to keep.
        k: usize,
    },
    /// Gather boundary of morsel-driven parallel execution: the input
    /// subtree (which must contain exactly one [`Repartition`]
    /// marking its driving scan) is instantiated once per morsel, the
    /// morsels run across the execution context's worker pool, and the
    /// per-morsel outputs are reassembled deterministically according to
    /// `merge`.  With `threads = 1` the same machinery runs inline on the
    /// caller's thread — the serial degradation path.
    ///
    /// [`Repartition`]: PhysicalOp::Repartition
    Exchange {
        /// The parallel subtree (spine of parallel-safe operators over one
        /// `Repartition`-marked scan).
        input: Box<PhysicalPlan>,
        /// How partition outputs are merged back into one stream.
        merge: ExchangeMerge,
    },
    /// Partitioning boundary of morsel-driven parallel execution: marks the
    /// sequential scan whose rows are handed out to workers as contiguous
    /// morsel ranges.  Outside an [`Exchange`](PhysicalOp::Exchange) subtree
    /// it degrades to a transparent pass-through of its scan.
    Repartition {
        /// The driving scan (must be a `SeqScan`).
        input: Box<PhysicalPlan>,
    },
}

/// Runtime actuals of one executed physical operator, paired against plan
/// nodes by `explain_with_actuals`.
///
/// Produced by the executor's metrics registry in post-order (children
/// before parents) — the same order in which operators register during plan
/// lowering.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatorActuals {
    /// The operator label, matching [`PhysicalPlan::node_label`].
    pub label: String,
    /// Number of tuples the operator actually produced.
    pub rows: u64,
    /// Number of non-empty batches the operator emitted through the batched
    /// pull path (0 when driven tuple-at-a-time).
    pub batches: u64,
    /// Mean number of tuples per emitted batch (0 when no batch was
    /// emitted).
    pub mean_batch_fill: f64,
}

impl OperatorActuals {
    /// Actuals carrying only a tuple count (no batch statistics).
    pub fn rows_only(label: impl Into<String>, rows: u64) -> Self {
        OperatorActuals {
            label: label.into(),
            rows,
            batches: 0,
            mean_batch_fill: 0.0,
        }
    }
}

impl PhysicalOp {
    /// Rebuilds this operator with `f` applied to every direct child plan
    /// (leaves are returned unchanged).  The one exhaustive child walk
    /// rewrite passes share, so adding a `PhysicalOp` variant only needs
    /// its children threaded here.
    pub fn map_children(self, mut f: impl FnMut(PhysicalPlan) -> PhysicalPlan) -> PhysicalOp {
        match self {
            PhysicalOp::Filter { input, predicate } => PhysicalOp::Filter {
                input: Box::new(f(*input)),
                predicate,
            },
            PhysicalOp::Project { input, columns } => PhysicalOp::Project {
                input: Box::new(f(*input)),
                columns,
            },
            PhysicalOp::RankMaterialize { input, predicate } => PhysicalOp::RankMaterialize {
                input: Box::new(f(*input)),
                predicate,
            },
            PhysicalOp::MproProbe { input, schedule } => PhysicalOp::MproProbe {
                input: Box::new(f(*input)),
                schedule,
            },
            PhysicalOp::Sort { input, predicates } => PhysicalOp::Sort {
                input: Box::new(f(*input)),
                predicates,
            },
            PhysicalOp::SortLimit {
                input,
                predicates,
                k,
            } => PhysicalOp::SortLimit {
                input: Box::new(f(*input)),
                predicates,
                k,
            },
            PhysicalOp::Limit { input, k } => PhysicalOp::Limit {
                input: Box::new(f(*input)),
                k,
            },
            PhysicalOp::Exchange { input, merge } => PhysicalOp::Exchange {
                input: Box::new(f(*input)),
                merge,
            },
            PhysicalOp::Repartition { input } => PhysicalOp::Repartition {
                input: Box::new(f(*input)),
            },
            PhysicalOp::NestedLoopsJoin {
                left,
                right,
                condition,
            } => PhysicalOp::NestedLoopsJoin {
                left: Box::new(f(*left)),
                right: Box::new(f(*right)),
                condition,
            },
            PhysicalOp::HashJoin {
                left,
                right,
                condition,
            } => PhysicalOp::HashJoin {
                left: Box::new(f(*left)),
                right: Box::new(f(*right)),
                condition,
            },
            PhysicalOp::SortMergeJoin {
                left,
                right,
                condition,
            } => PhysicalOp::SortMergeJoin {
                left: Box::new(f(*left)),
                right: Box::new(f(*right)),
                condition,
            },
            PhysicalOp::HashRankJoin {
                left,
                right,
                condition,
            } => PhysicalOp::HashRankJoin {
                left: Box::new(f(*left)),
                right: Box::new(f(*right)),
                condition,
            },
            PhysicalOp::NestedLoopsRankJoin {
                left,
                right,
                condition,
            } => PhysicalOp::NestedLoopsRankJoin {
                left: Box::new(f(*left)),
                right: Box::new(f(*right)),
                condition,
            },
            PhysicalOp::SetOp { kind, left, right } => PhysicalOp::SetOp {
                kind,
                left: Box::new(f(*left)),
                right: Box::new(f(*right)),
            },
            leaf @ (PhysicalOp::SeqScan { .. }
            | PhysicalOp::RankScan { .. }
            | PhysicalOp::AttributeIndexScan { .. }) => leaf,
        }
    }
}

/// A physical plan node: a [`PhysicalOp`] plus the optimizer's per-node
/// estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalPlan {
    /// The operator and its children.
    pub op: PhysicalOp,
    /// Estimated cumulative cost of this subtree ([`Cost::ZERO`] when the
    /// plan was lowered without an estimator).
    pub estimated_cost: Cost,
    /// Estimated output cardinality of this node (0 when lowered without an
    /// estimator).
    pub estimated_rows: f64,
}

impl PhysicalPlan {
    /// Wraps an operator with zero estimates.
    pub fn unestimated(op: PhysicalOp) -> PhysicalPlan {
        PhysicalPlan {
            op,
            estimated_cost: Cost::ZERO,
            estimated_rows: 0.0,
        }
    }

    /// Structurally lowers a logical plan, carrying zero cost estimates.
    ///
    /// The mapping is mechanical because the logical plan already fixes the
    /// access path and join algorithm; the one *physical* rewrite applied
    /// here is fusing `Limit(Sort(x))` into the bounded-heap [`top-k
    /// sort`](PhysicalOp::SortLimit).  Optimizer lowerings re-annotate the
    /// result of this function with real per-node estimates.
    pub fn from_logical(plan: &LogicalPlan) -> Result<PhysicalPlan> {
        // Fuse λ_k directly above τ_F into one bounded top-k sort.
        if let LogicalPlan::Limit { input, k } = plan {
            if let LogicalPlan::Sort {
                input: sort_input,
                predicates,
            } = input.as_ref()
            {
                let child = PhysicalPlan::from_logical(sort_input)?;
                return Ok(PhysicalPlan::unestimated(PhysicalOp::SortLimit {
                    input: Box::new(child),
                    predicates: *predicates,
                    k: *k,
                }));
            }
        }
        let op = match plan {
            LogicalPlan::Scan {
                table,
                schema,
                access,
            } => match access {
                ScanAccess::Sequential => PhysicalOp::SeqScan {
                    table: table.clone(),
                    schema: schema.clone(),
                    columnar: None,
                },
                ScanAccess::RankIndex { predicate } => PhysicalOp::RankScan {
                    table: table.clone(),
                    schema: schema.clone(),
                    predicate: *predicate,
                },
                ScanAccess::AttributeIndex { column } => PhysicalOp::AttributeIndexScan {
                    table: table.clone(),
                    schema: schema.clone(),
                    column: column.clone(),
                },
            },
            LogicalPlan::Select { input, predicate } => PhysicalOp::Filter {
                input: Box::new(PhysicalPlan::from_logical(input)?),
                predicate: predicate.clone(),
            },
            LogicalPlan::Project { input, columns } => PhysicalOp::Project {
                input: Box::new(PhysicalPlan::from_logical(input)?),
                columns: columns.clone(),
            },
            LogicalPlan::Rank { input, predicate } => PhysicalOp::RankMaterialize {
                input: Box::new(PhysicalPlan::from_logical(input)?),
                predicate: *predicate,
            },
            LogicalPlan::Join {
                left,
                right,
                condition,
                algorithm,
            } => {
                let left = Box::new(PhysicalPlan::from_logical(left)?);
                let right = Box::new(PhysicalPlan::from_logical(right)?);
                let condition = condition.clone();
                match algorithm {
                    JoinAlgorithm::NestedLoop => PhysicalOp::NestedLoopsJoin {
                        left,
                        right,
                        condition,
                    },
                    JoinAlgorithm::Hash => PhysicalOp::HashJoin {
                        left,
                        right,
                        condition,
                    },
                    JoinAlgorithm::SortMerge => PhysicalOp::SortMergeJoin {
                        left,
                        right,
                        condition,
                    },
                    JoinAlgorithm::HashRankJoin => PhysicalOp::HashRankJoin {
                        left,
                        right,
                        condition,
                    },
                    JoinAlgorithm::NestedLoopRankJoin => PhysicalOp::NestedLoopsRankJoin {
                        left,
                        right,
                        condition,
                    },
                }
            }
            LogicalPlan::SetOp { kind, left, right } => PhysicalOp::SetOp {
                kind: *kind,
                left: Box::new(PhysicalPlan::from_logical(left)?),
                right: Box::new(PhysicalPlan::from_logical(right)?),
            },
            LogicalPlan::Sort { input, predicates } => PhysicalOp::Sort {
                input: Box::new(PhysicalPlan::from_logical(input)?),
                predicates: *predicates,
            },
            LogicalPlan::Limit { input, k } => PhysicalOp::Limit {
                input: Box::new(PhysicalPlan::from_logical(input)?),
                k: *k,
            },
        };
        Ok(PhysicalPlan::unestimated(op))
    }

    /// The output schema of this plan.
    pub fn schema(&self) -> Result<Schema> {
        match &self.op {
            PhysicalOp::SeqScan { schema, .. }
            | PhysicalOp::RankScan { schema, .. }
            | PhysicalOp::AttributeIndexScan { schema, .. } => Ok(schema.clone()),
            PhysicalOp::Filter { input, .. }
            | PhysicalOp::RankMaterialize { input, .. }
            | PhysicalOp::MproProbe { input, .. }
            | PhysicalOp::Sort { input, .. }
            | PhysicalOp::SortLimit { input, .. }
            | PhysicalOp::Limit { input, .. }
            | PhysicalOp::Exchange { input, .. }
            | PhysicalOp::Repartition { input } => input.schema(),
            PhysicalOp::Project { input, columns } => {
                let s = input.schema()?;
                let mut indices = Vec::with_capacity(columns.len());
                for c in columns {
                    indices.push(s.index_of_str(c)?);
                }
                Ok(s.project(&indices))
            }
            PhysicalOp::NestedLoopsJoin { left, right, .. }
            | PhysicalOp::HashJoin { left, right, .. }
            | PhysicalOp::SortMergeJoin { left, right, .. }
            | PhysicalOp::HashRankJoin { left, right, .. }
            | PhysicalOp::NestedLoopsRankJoin { left, right, .. } => {
                Ok(left.schema()?.join(&right.schema()?))
            }
            PhysicalOp::SetOp { left, right, .. } => {
                let l = left.schema()?;
                let r = right.schema()?;
                if l.len() != r.len() {
                    return Err(RankSqlError::Plan(format!(
                        "set operation inputs are not union compatible: {} vs {} columns",
                        l.len(),
                        r.len()
                    )));
                }
                Ok(l)
            }
        }
    }

    /// The direct children of this node.
    pub fn children(&self) -> Vec<&PhysicalPlan> {
        match &self.op {
            PhysicalOp::SeqScan { .. }
            | PhysicalOp::RankScan { .. }
            | PhysicalOp::AttributeIndexScan { .. } => vec![],
            PhysicalOp::Filter { input, .. }
            | PhysicalOp::Project { input, .. }
            | PhysicalOp::RankMaterialize { input, .. }
            | PhysicalOp::MproProbe { input, .. }
            | PhysicalOp::Sort { input, .. }
            | PhysicalOp::SortLimit { input, .. }
            | PhysicalOp::Limit { input, .. }
            | PhysicalOp::Exchange { input, .. }
            | PhysicalOp::Repartition { input } => vec![input],
            PhysicalOp::NestedLoopsJoin { left, right, .. }
            | PhysicalOp::HashJoin { left, right, .. }
            | PhysicalOp::SortMergeJoin { left, right, .. }
            | PhysicalOp::HashRankJoin { left, right, .. }
            | PhysicalOp::NestedLoopsRankJoin { left, right, .. }
            | PhysicalOp::SetOp { left, right, .. } => vec![left, right],
        }
    }

    /// Total number of nodes in the plan tree.
    pub fn node_count(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(|c| c.node_count())
            .sum::<usize>()
    }

    /// The nodes of this tree in post-order (children before parents) —
    /// the same order in which the executor registers operator metrics.
    pub fn post_order(&self) -> Vec<&PhysicalPlan> {
        let mut out = Vec::with_capacity(self.node_count());
        self.post_order_into(&mut out);
        out
    }

    fn post_order_into<'a>(&'a self, out: &mut Vec<&'a PhysicalPlan>) {
        for c in self.children() {
            c.post_order_into(out);
        }
        out.push(self);
    }

    /// The parameter slots referenced by any predicate in this plan
    /// (sorted, deduplicated).
    pub fn param_slots(&self) -> Vec<usize> {
        let mut out = Vec::new();
        match &self.op {
            PhysicalOp::Filter { predicate, .. } => out.extend(predicate.param_slots()),
            PhysicalOp::SeqScan {
                columnar:
                    Some(ColumnarScan {
                        pushed_filter: Some(f),
                        ..
                    }),
                ..
            } => out.extend(f.param_slots()),
            PhysicalOp::NestedLoopsJoin {
                condition: Some(c), ..
            }
            | PhysicalOp::HashJoin {
                condition: Some(c), ..
            }
            | PhysicalOp::SortMergeJoin {
                condition: Some(c), ..
            }
            | PhysicalOp::HashRankJoin {
                condition: Some(c), ..
            }
            | PhysicalOp::NestedLoopsRankJoin {
                condition: Some(c), ..
            } => out.extend(c.param_slots()),
            _ => {}
        }
        for c in self.children() {
            out.extend(c.param_slots());
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Rebinds every parameter slot in the plan's filter predicates and join
    /// conditions to the value at its index in `values`, preserving the
    /// per-node cost and cardinality estimates.
    ///
    /// This is the executor-side half of prepared statements: a cached
    /// physical plan (optimized once, containing `$i` parameter slots) is
    /// re-bound to fresh constants without re-running the optimizer.
    pub fn with_params(&self, values: &[ranksql_common::Value]) -> Result<PhysicalPlan> {
        let rebind = |c: &Option<BoolExpr>| -> Result<Option<BoolExpr>> {
            c.as_ref().map(|c| c.with_params(values)).transpose()
        };
        let child = |input: &PhysicalPlan| -> Result<Box<PhysicalPlan>> {
            Ok(Box::new(input.with_params(values)?))
        };
        let op = match &self.op {
            PhysicalOp::Filter { input, predicate } => PhysicalOp::Filter {
                input: child(input)?,
                predicate: predicate.with_params(values)?,
            },
            PhysicalOp::NestedLoopsJoin {
                left,
                right,
                condition,
            } => PhysicalOp::NestedLoopsJoin {
                left: child(left)?,
                right: child(right)?,
                condition: rebind(condition)?,
            },
            PhysicalOp::HashJoin {
                left,
                right,
                condition,
            } => PhysicalOp::HashJoin {
                left: child(left)?,
                right: child(right)?,
                condition: rebind(condition)?,
            },
            PhysicalOp::SortMergeJoin {
                left,
                right,
                condition,
            } => PhysicalOp::SortMergeJoin {
                left: child(left)?,
                right: child(right)?,
                condition: rebind(condition)?,
            },
            PhysicalOp::HashRankJoin {
                left,
                right,
                condition,
            } => PhysicalOp::HashRankJoin {
                left: child(left)?,
                right: child(right)?,
                condition: rebind(condition)?,
            },
            PhysicalOp::NestedLoopsRankJoin {
                left,
                right,
                condition,
            } => PhysicalOp::NestedLoopsRankJoin {
                left: child(left)?,
                right: child(right)?,
                condition: rebind(condition)?,
            },
            PhysicalOp::Project { input, columns } => PhysicalOp::Project {
                input: child(input)?,
                columns: columns.clone(),
            },
            PhysicalOp::RankMaterialize { input, predicate } => PhysicalOp::RankMaterialize {
                input: child(input)?,
                predicate: *predicate,
            },
            PhysicalOp::MproProbe { input, schedule } => PhysicalOp::MproProbe {
                input: child(input)?,
                schedule: schedule.clone(),
            },
            PhysicalOp::SetOp { kind, left, right } => PhysicalOp::SetOp {
                kind: *kind,
                left: child(left)?,
                right: child(right)?,
            },
            PhysicalOp::Sort { input, predicates } => PhysicalOp::Sort {
                input: child(input)?,
                predicates: *predicates,
            },
            PhysicalOp::SortLimit {
                input,
                predicates,
                k,
            } => PhysicalOp::SortLimit {
                input: child(input)?,
                predicates: *predicates,
                k: *k,
            },
            PhysicalOp::Limit { input, k } => PhysicalOp::Limit {
                input: child(input)?,
                k: *k,
            },
            PhysicalOp::Exchange { input, merge } => PhysicalOp::Exchange {
                input: child(input)?,
                merge: *merge,
            },
            PhysicalOp::Repartition { input } => PhysicalOp::Repartition {
                input: child(input)?,
            },
            PhysicalOp::SeqScan {
                table,
                schema,
                columnar: Some(c),
            } => PhysicalOp::SeqScan {
                table: table.clone(),
                schema: schema.clone(),
                columnar: Some(ColumnarScan {
                    pushed_filter: rebind(&c.pushed_filter)?,
                    zone_prune: c.zone_prune,
                }),
            },
            leaf @ (PhysicalOp::SeqScan { .. }
            | PhysicalOp::RankScan { .. }
            | PhysicalOp::AttributeIndexScan { .. }) => leaf.clone(),
        };
        Ok(PhysicalPlan {
            op,
            estimated_cost: self.estimated_cost,
            estimated_rows: self.estimated_rows,
        })
    }

    /// Rewrites every top-k cap of exactly `old_k` tuples — `Limit` and
    /// `SortLimit` nodes and `Exchange(merge; k)` re-limits — to `new_k`,
    /// preserving estimates.  In plans produced from a [`crate::RankQuery`]
    /// every such cap derives from the query's own `k` (including the
    /// per-partition top-k sorts the parallelization pass plants under an
    /// ordered exchange), so the value match is exact.
    pub fn with_limit(&self, old_k: usize, new_k: usize) -> PhysicalPlan {
        let mut op = self.op.clone();
        match &mut op {
            PhysicalOp::Limit { k, .. } if *k == old_k => *k = new_k,
            PhysicalOp::SortLimit { k, .. } if *k == old_k => *k = new_k,
            PhysicalOp::Exchange {
                merge: ExchangeMerge::Ordered { limit: Some(k) },
                ..
            } if *k == old_k => *k = new_k,
            _ => {}
        }
        // Recurse through whichever children the (possibly rewritten) node
        // has; every variant stores children behind `Box<PhysicalPlan>`.
        match &mut op {
            PhysicalOp::Filter { input, .. }
            | PhysicalOp::Project { input, .. }
            | PhysicalOp::RankMaterialize { input, .. }
            | PhysicalOp::MproProbe { input, .. }
            | PhysicalOp::Sort { input, .. }
            | PhysicalOp::SortLimit { input, .. }
            | PhysicalOp::Limit { input, .. }
            | PhysicalOp::Exchange { input, .. }
            | PhysicalOp::Repartition { input } => {
                **input = input.with_limit(old_k, new_k);
            }
            PhysicalOp::NestedLoopsJoin { left, right, .. }
            | PhysicalOp::HashJoin { left, right, .. }
            | PhysicalOp::SortMergeJoin { left, right, .. }
            | PhysicalOp::HashRankJoin { left, right, .. }
            | PhysicalOp::NestedLoopsRankJoin { left, right, .. }
            | PhysicalOp::SetOp { left, right, .. } => {
                **left = left.with_limit(old_k, new_k);
                **right = right.with_limit(old_k, new_k);
            }
            PhysicalOp::SeqScan { .. }
            | PhysicalOp::RankScan { .. }
            | PhysicalOp::AttributeIndexScan { .. } => {}
        }
        PhysicalPlan {
            op,
            estimated_cost: self.estimated_cost,
            estimated_rows: self.estimated_rows,
        }
    }

    /// Whether this subtree contains a rank-aware operator (rank-scan, µ,
    /// MPro, HRJN, NRJN).
    pub fn is_rank_aware(&self) -> bool {
        matches!(
            self.op,
            PhysicalOp::RankScan { .. }
                | PhysicalOp::RankMaterialize { .. }
                | PhysicalOp::MproProbe { .. }
                | PhysicalOp::HashRankJoin { .. }
                | PhysicalOp::NestedLoopsRankJoin { .. }
        ) || self.children().iter().any(|c| c.is_rank_aware())
    }

    /// Whether this subtree contains an [`Exchange`](PhysicalOp::Exchange)
    /// node (i.e. has already been parallelized — the optimizer's
    /// parallelization pass is a no-op on such plans).
    pub fn contains_exchange(&self) -> bool {
        matches!(self.op, PhysicalOp::Exchange { .. })
            || self.children().iter().any(|c| c.contains_exchange())
    }

    /// A one-line name of this node for explain output and operator metrics.
    ///
    /// Labels match the corresponding logical node labels where the two
    /// plans correspond one-to-one, so logical and physical explains (and
    /// per-operator metric series) line up.
    pub fn node_label(&self, ctx: Option<&RankingContext>) -> String {
        // Out-of-range indices fall back to `p#i` instead of panicking, so
        // labels can be produced for invalid plans too (their validation
        // error then carries a printable label).
        let pname = |i: usize| -> String {
            ctx.filter(|c| i < c.num_predicates())
                .map(|c| c.predicate(i).name.clone())
                .unwrap_or_else(|| format!("p#{i}"))
        };
        let cond = |c: &Option<BoolExpr>| -> String {
            match c {
                Some(c) => format!("[{c}]"),
                None => "[cross]".to_owned(),
            }
        };
        match &self.op {
            PhysicalOp::SeqScan {
                table,
                columnar: None,
                ..
            } => format!("SeqScan({table})"),
            PhysicalOp::SeqScan {
                table,
                columnar: Some(c),
                ..
            } => {
                let mut label = format!("ColumnScan({table})");
                if let Some(f) = &c.pushed_filter {
                    let _ = std::fmt::Write::write_fmt(&mut label, format_args!("[σ {f}]"));
                }
                if c.zone_prune {
                    label.push_str("[zone-prune]");
                }
                label
            }
            PhysicalOp::RankScan {
                table, predicate, ..
            } => {
                format!("RankScan_{}({table})", pname(*predicate))
            }
            PhysicalOp::AttributeIndexScan { table, column, .. } => {
                format!("IdxScan_{column}({table})")
            }
            PhysicalOp::Filter { predicate, .. } => format!("Select[{predicate}]"),
            PhysicalOp::Project { columns, .. } => format!("Project[{}]", columns.join(", ")),
            PhysicalOp::RankMaterialize { predicate, .. } => format!("Rank_{}", pname(*predicate)),
            PhysicalOp::MproProbe { schedule, .. } => {
                let names: Vec<String> = schedule.iter().map(|&p| pname(p)).collect();
                format!("MPro[{}]", names.join("→"))
            }
            PhysicalOp::NestedLoopsJoin { condition, .. } => {
                format!("NestedLoopJoin{}", cond(condition))
            }
            PhysicalOp::HashJoin { condition, .. } => format!("HashJoin{}", cond(condition)),
            PhysicalOp::SortMergeJoin { condition, .. } => {
                format!("SortMergeJoin{}", cond(condition))
            }
            PhysicalOp::HashRankJoin { condition, .. } => format!("HRJN{}", cond(condition)),
            PhysicalOp::NestedLoopsRankJoin { condition, .. } => {
                format!("NRJN{}", cond(condition))
            }
            PhysicalOp::SetOp { kind, .. } => match kind {
                SetOpKind::Union => "Union".to_owned(),
                SetOpKind::Intersect => "Intersect".to_owned(),
                SetOpKind::Except => "Except".to_owned(),
            },
            PhysicalOp::Sort { predicates, .. } => {
                let names: Vec<String> = predicates.iter().map(pname).collect();
                format!("Sort[{}]", names.join("+"))
            }
            PhysicalOp::SortLimit { predicates, k, .. } => {
                let names: Vec<String> = predicates.iter().map(pname).collect();
                format!("SortLimit[{}; k={k}]", names.join("+"))
            }
            PhysicalOp::Limit { k, .. } => format!("Limit[{k}]"),
            PhysicalOp::Exchange { merge, .. } => match merge {
                ExchangeMerge::Concat => "Exchange(concat)".to_owned(),
                ExchangeMerge::Ordered { limit: None } => "Exchange(merge)".to_owned(),
                ExchangeMerge::Ordered { limit: Some(k) } => format!("Exchange(merge; k={k})"),
            },
            PhysicalOp::Repartition { .. } => "Repartition(morsels)".to_owned(),
        }
    }

    /// Multi-line indented explain output with per-node estimates.
    pub fn explain(&self, ctx: Option<&RankingContext>) -> String {
        let mut out = String::new();
        self.explain_into(ctx, 0, &mut None, &mut out);
        out
    }

    /// Explain output annotated with the runtime actuals of each operator
    /// (tuples produced, and — when the plan ran through the batched pull
    /// path — batch count and mean batch fill), paired from a post-order
    /// [`OperatorActuals`] series as recorded by the executor's metrics
    /// registry.
    pub fn explain_with_actuals(
        &self,
        ctx: Option<&RankingContext>,
        actuals: &[OperatorActuals],
    ) -> String {
        let mut out = String::new();
        let mut remaining: Vec<OperatorActuals> = actuals.to_vec();
        let mut actuals = Some(&mut remaining);
        self.explain_into(ctx, 0, &mut actuals, &mut out);
        out
    }

    fn explain_into(
        &self,
        ctx: Option<&RankingContext>,
        depth: usize,
        actuals: &mut Option<&mut Vec<OperatorActuals>>,
        out: &mut String,
    ) {
        use std::fmt::Write as _;
        // Children first so the post-order actuals pairing lines up, but
        // write this node's line before theirs.
        let mut child_text = String::new();
        for c in self.children() {
            c.explain_into(ctx, depth + 1, actuals, &mut child_text);
        }
        let label = self.node_label(ctx);
        // Children consumed their entries first, so under post-order
        // registration the first remaining match belongs to this node.
        let actual = actuals
            .as_mut()
            .and_then(|a| {
                let pos = a.iter().position(|x| x.label == label)?;
                Some(a.remove(pos))
            })
            .map(|a| {
                if a.batches > 0 {
                    format!(
                        ", actual_rows={}, batches={}, mean_batch_fill={:.1}",
                        a.rows, a.batches, a.mean_batch_fill
                    )
                } else {
                    format!(", actual_rows={}", a.rows)
                }
            })
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "{}{} (cost={:.1}, est_rows={:.1}{})",
            "  ".repeat(depth),
            label,
            self.estimated_cost.value(),
            self.estimated_rows,
            actual
        );
        out.push_str(&child_text);
    }
}

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.explain(None).trim_end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ranksql_common::{DataType, Field, Value};
    use ranksql_expr::{RankPredicate, ScoringFunction};
    use ranksql_storage::{Table, TableBuilder};

    fn table(name: &str, id: u32) -> Table {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("p1", DataType::Float64),
        ])
        .qualify_all(name);
        TableBuilder::new(name, schema)
            .row(vec![Value::from(1), Value::from(0.5)])
            .build(id)
            .unwrap()
    }

    fn ctx() -> std::sync::Arc<RankingContext> {
        RankingContext::new(
            vec![
                RankPredicate::attribute("p1", "R.p1"),
                RankPredicate::attribute("p2", "S.p1"),
            ],
            ScoringFunction::Sum,
        )
    }

    #[test]
    fn lowering_maps_access_paths_and_algorithms() {
        let r = table("R", 0);
        let s = table("S", 1);
        let logical = LogicalPlan::rank_scan(&r, 0)
            .join(
                LogicalPlan::scan(&s).rank(1),
                Some(BoolExpr::col_eq_col("R.a", "S.a")),
                JoinAlgorithm::HashRankJoin,
            )
            .limit(5);
        let physical = PhysicalPlan::from_logical(&logical).unwrap();
        assert_eq!(physical.node_count(), 5);
        assert!(physical.is_rank_aware());
        assert!(matches!(physical.op, PhysicalOp::Limit { .. }));
        let text = physical.explain(Some(&ctx()));
        assert!(text.contains("HRJN[R.a = S.a]"), "{text}");
        assert!(text.contains("RankScan_p1(R)"), "{text}");
        assert!(text.contains("Rank_p2"), "{text}");
        assert!(text.contains("cost="), "{text}");
    }

    #[test]
    fn limit_over_sort_fuses_into_sort_limit() {
        let r = table("R", 0);
        let logical = LogicalPlan::scan(&r).sort(BitSet64::singleton(0)).limit(3);
        let physical = PhysicalPlan::from_logical(&logical).unwrap();
        assert_eq!(physical.node_count(), 2);
        assert!(matches!(physical.op, PhysicalOp::SortLimit { k: 3, .. }));
        assert!(physical
            .node_label(Some(&ctx()))
            .contains("SortLimit[p1; k=3]"));
        // A limit that is not directly above a sort is not fused.
        let unfused = LogicalPlan::scan(&r)
            .sort(BitSet64::singleton(0))
            .rank(1)
            .limit(3);
        let physical = PhysicalPlan::from_logical(&unfused).unwrap();
        assert_eq!(physical.node_count(), 4);
        assert!(matches!(physical.op, PhysicalOp::Limit { .. }));
    }

    #[test]
    fn schema_flows_like_the_logical_plan() {
        let r = table("R", 0);
        let s = table("S", 1);
        let logical = LogicalPlan::scan(&r)
            .join(LogicalPlan::scan(&s), None, JoinAlgorithm::NestedLoop)
            .project(vec!["R.p1".to_owned()]);
        let physical = PhysicalPlan::from_logical(&logical).unwrap();
        assert_eq!(physical.schema().unwrap().len(), 1);
        assert_eq!(
            physical.schema().unwrap().field(0).qualified_name(),
            logical.schema().unwrap().field(0).qualified_name()
        );
    }

    #[test]
    fn mpro_probe_labels_its_schedule() {
        let r = table("R", 0);
        let scan = PhysicalPlan::from_logical(&LogicalPlan::scan(&r)).unwrap();
        let mpro = PhysicalPlan::unestimated(PhysicalOp::MproProbe {
            input: Box::new(scan),
            schedule: vec![0, 1],
        });
        assert_eq!(mpro.node_label(Some(&ctx())), "MPro[p1→p2]");
        assert!(mpro.is_rank_aware());
    }

    #[test]
    fn exchange_and_repartition_are_transparent_in_the_ir() {
        let r = table("R", 0);
        let scan = PhysicalPlan::from_logical(&LogicalPlan::scan(&r)).unwrap();
        let schema_len = scan.schema().unwrap().len();
        let spine = PhysicalPlan::unestimated(PhysicalOp::Repartition {
            input: Box::new(scan),
        });
        let exchange = PhysicalPlan::unestimated(PhysicalOp::Exchange {
            input: Box::new(spine),
            merge: ExchangeMerge::Ordered { limit: Some(3) },
        });
        assert_eq!(exchange.schema().unwrap().len(), schema_len);
        assert_eq!(exchange.node_count(), 3);
        assert!(!exchange.is_rank_aware());
        assert!(exchange.contains_exchange());
        assert_eq!(exchange.node_label(None), "Exchange(merge; k=3)");
        let concat = PhysicalPlan::unestimated(PhysicalOp::Exchange {
            input: Box::new(PhysicalPlan::from_logical(&LogicalPlan::scan(&r)).unwrap()),
            merge: ExchangeMerge::Concat,
        });
        assert_eq!(concat.node_label(None), "Exchange(concat)");
        let text = exchange.explain(None);
        assert!(text.contains("Repartition(morsels)"), "{text}");
        // A plan without an exchange reports so.
        let plain = PhysicalPlan::from_logical(&LogicalPlan::scan(&r)).unwrap();
        assert!(!plain.contains_exchange());
    }

    #[test]
    fn explain_with_actuals_pairs_post_order_metrics() {
        let r = table("R", 0);
        let logical = LogicalPlan::scan(&r).rank(0).limit(2);
        let physical = PhysicalPlan::from_logical(&logical).unwrap();
        let actuals = vec![
            OperatorActuals {
                label: "SeqScan(R)".to_owned(),
                rows: 10,
                batches: 2,
                mean_batch_fill: 5.0,
            },
            OperatorActuals::rows_only("Rank_p1", 5),
            OperatorActuals::rows_only("Limit[2]", 2),
        ];
        let text = physical.explain_with_actuals(Some(&ctx()), &actuals);
        assert!(
            text.contains(
                "SeqScan(R) (cost=0.0, est_rows=0.0, actual_rows=10, batches=2, mean_batch_fill=5.0)"
            ),
            "{text}"
        );
        // Operators without batch statistics keep the rows-only annotation.
        assert!(
            text.contains("Limit[2] (cost=0.0, est_rows=0.0, actual_rows=2)"),
            "{text}"
        );
    }
}
