//! The algebraic laws of the rank-relational algebra (Figure 5) as
//! executable rewrite rules.
//!
//! The laws license exactly the two freedoms Section 2.2 asks for:
//!
//! * **Splitting** (Proposition 1): a monolithic sort over
//!   `F(p1, ..., pn)` is equivalent to a chain of rank operators
//!   `µ_{p1}(µ_{p2}(...))`.
//! * **Interleaving** (Propositions 4 and 5): rank operators commute with
//!   each other and with selections, and push through joins and set
//!   operations, so ranking work can be scheduled anywhere in the plan.
//!
//! Each law is a [`RewriteRule`]; [`equivalent_plans`] computes the closure
//! of a plan under a rule set, which both the optimizer's rule-based mode and
//! the property-based equivalence tests rely on.

use std::collections::HashSet;

use ranksql_common::BitSet64;

use crate::plan::{LogicalPlan, ScanAccess, SetOpKind};
use crate::query::RankQuery;

/// A plan produced by applying a named rule (used for explain/debugging).
#[derive(Debug, Clone)]
pub struct Rewrite {
    /// Name of the rule that produced the plan.
    pub rule: &'static str,
    /// The rewritten plan.
    pub plan: LogicalPlan,
}

/// An algebraic rewrite rule: applied at the *root* of a (sub)plan, returns
/// zero or more equivalent alternatives.
pub trait RewriteRule: Send + Sync {
    /// Rule name (for tracing).
    fn name(&self) -> &'static str;

    /// Alternatives equivalent to `plan`, where `plan` is treated as the
    /// root; returns an empty vector when the rule does not apply.
    fn apply(&self, plan: &LogicalPlan, query: &RankQuery) -> Vec<LogicalPlan>;
}

// ---------------------------------------------------------------------------
// Proposition 1: splitting law for µ
// ---------------------------------------------------------------------------

/// `R_{p1..pn} ≡ µ_{p1}(µ_{p2}(...(µ_{pn}(R))...))`: replaces a blocking sort
/// with a chain of rank operators over the predicates the input has not yet
/// evaluated.
pub struct SplitSortIntoRanks;

impl RewriteRule for SplitSortIntoRanks {
    fn name(&self) -> &'static str {
        "split-sort-into-ranks (Prop. 1)"
    }

    fn apply(&self, plan: &LogicalPlan, _query: &RankQuery) -> Vec<LogicalPlan> {
        let LogicalPlan::Sort { input, predicates } = plan else {
            return vec![];
        };
        let missing: Vec<usize> = predicates
            .difference(input.evaluated_predicates())
            .iter()
            .collect();
        let mut out = (**input).clone();
        // Apply the innermost predicate first so the chain reads
        // µ_{p1}(µ_{p2}(...)) top-down like the paper's notation.
        for p in missing.iter().rev() {
            out = out.rank(*p);
        }
        vec![out]
    }
}

// ---------------------------------------------------------------------------
// Proposition 2: commutativity of binary operators
// ---------------------------------------------------------------------------

/// `R Θ S ≡ S Θ R` for Θ ∈ {∩, ∪, ⋈}.
pub struct CommuteBinary;

impl RewriteRule for CommuteBinary {
    fn name(&self) -> &'static str {
        "commute-binary (Prop. 2)"
    }

    fn apply(&self, plan: &LogicalPlan, _query: &RankQuery) -> Vec<LogicalPlan> {
        match plan {
            LogicalPlan::Join {
                left,
                right,
                condition,
                algorithm,
            } => vec![LogicalPlan::Join {
                left: right.clone(),
                right: left.clone(),
                condition: condition.clone(),
                algorithm: *algorithm,
            }],
            LogicalPlan::SetOp { kind, left, right } if *kind != SetOpKind::Except => {
                vec![LogicalPlan::SetOp {
                    kind: *kind,
                    left: right.clone(),
                    right: left.clone(),
                }]
            }
            _ => vec![],
        }
    }
}

// ---------------------------------------------------------------------------
// Proposition 3: associativity of binary operators
// ---------------------------------------------------------------------------

/// `(R Θ S) Θ T ≡ R Θ (S Θ T)` for Θ ∈ {∩, ∪} and for joins when the join
/// conditions stay evaluable (we only re-associate when both joins use the
/// same algorithm and conditions reference columns that remain in scope,
/// which holds for the equi-join conjuncts the optimizer produces).
pub struct AssociateBinary;

impl RewriteRule for AssociateBinary {
    fn name(&self) -> &'static str {
        "associate-binary (Prop. 3)"
    }

    fn apply(&self, plan: &LogicalPlan, _query: &RankQuery) -> Vec<LogicalPlan> {
        match plan {
            LogicalPlan::SetOp { kind, left, right } if *kind != SetOpKind::Except => {
                // (A Θ B) Θ C  →  A Θ (B Θ C)
                if let LogicalPlan::SetOp {
                    kind: inner_kind,
                    left: a,
                    right: b,
                } = &**left
                {
                    if inner_kind == kind {
                        return vec![LogicalPlan::SetOp {
                            kind: *kind,
                            left: a.clone(),
                            right: Box::new(LogicalPlan::SetOp {
                                kind: *kind,
                                left: b.clone(),
                                right: right.clone(),
                            }),
                        }];
                    }
                }
                vec![]
            }
            _ => vec![],
        }
    }
}

// ---------------------------------------------------------------------------
// Proposition 4: commutative laws for µ
// ---------------------------------------------------------------------------

/// `µ_{p1}(µ_{p2}(R)) ≡ µ_{p2}(µ_{p1}(R))` and
/// `σ_c(µ_p(R)) ≡ µ_p(σ_c(R))`.
pub struct CommuteRank;

impl RewriteRule for CommuteRank {
    fn name(&self) -> &'static str {
        "commute-rank (Prop. 4)"
    }

    fn apply(&self, plan: &LogicalPlan, _query: &RankQuery) -> Vec<LogicalPlan> {
        let mut out = Vec::new();
        match plan {
            // µ_{p1}(µ_{p2}(X)) → µ_{p2}(µ_{p1}(X))
            LogicalPlan::Rank {
                input,
                predicate: p1,
            } => match &**input {
                LogicalPlan::Rank {
                    input: inner,
                    predicate: p2,
                } => {
                    out.push((**inner).clone().rank(*p1).rank(*p2));
                }
                // µ_p(σ_c(X)) → σ_c(µ_p(X))
                LogicalPlan::Select {
                    input: inner,
                    predicate,
                } => {
                    out.push((**inner).clone().rank(*p1).select(predicate.clone()));
                }
                _ => {}
            },
            // σ_c(µ_p(X)) → µ_p(σ_c(X))
            LogicalPlan::Select { input, predicate } => {
                if let LogicalPlan::Rank {
                    input: inner,
                    predicate: p,
                } = &**input
                {
                    out.push((**inner).clone().select(predicate.clone()).rank(*p));
                }
            }
            _ => {}
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Proposition 5: pushing µ over binary operators
// ---------------------------------------------------------------------------

/// Pushes a rank operator through joins and set operations:
///
/// * `µ_p(R ⋈ S) ≡ µ_p(R) ⋈ S` when only `R` has attributes of `p`
///   (symmetrically for `S`);
/// * `µ_p(R ∪ S) ≡ µ_p(R) ∪ µ_p(S) ≡ µ_p(R) ∪ S`, similarly for ∩;
/// * `µ_p(R − S) ≡ µ_p(R) − S`.
pub struct PushRankOverBinary;

impl RewriteRule for PushRankOverBinary {
    fn name(&self) -> &'static str {
        "push-rank-over-binary (Prop. 5)"
    }

    fn apply(&self, plan: &LogicalPlan, query: &RankQuery) -> Vec<LogicalPlan> {
        let LogicalPlan::Rank { input, predicate } = plan else {
            return vec![];
        };
        let Ok(pred_tables) = query.rank_predicate_tables(*predicate) else {
            return vec![];
        };
        let table_set = |p: &LogicalPlan| -> BitSet64 {
            let mut s = BitSet64::EMPTY;
            for rel in p.relations() {
                if let Ok(i) = query.table_index(&rel) {
                    s.insert(i);
                }
            }
            s
        };
        let mut out = Vec::new();
        match &**input {
            LogicalPlan::Join {
                left,
                right,
                condition,
                algorithm,
            } => {
                // Once the rank operator moves below the join, the join itself
                // must preserve the order property, so its implementation is
                // switched to the rank-aware counterpart.
                let algorithm = match algorithm {
                    crate::plan::JoinAlgorithm::Hash | crate::plan::JoinAlgorithm::SortMerge => {
                        crate::plan::JoinAlgorithm::HashRankJoin
                    }
                    crate::plan::JoinAlgorithm::NestedLoop => {
                        crate::plan::JoinAlgorithm::NestedLoopRankJoin
                    }
                    rank_aware => *rank_aware,
                };
                if pred_tables.is_subset_of(table_set(left)) {
                    out.push(LogicalPlan::Join {
                        left: Box::new((**left).clone().rank(*predicate)),
                        right: right.clone(),
                        condition: condition.clone(),
                        algorithm,
                    });
                }
                if pred_tables.is_subset_of(table_set(right)) {
                    out.push(LogicalPlan::Join {
                        left: left.clone(),
                        right: Box::new((**right).clone().rank(*predicate)),
                        condition: condition.clone(),
                        algorithm,
                    });
                }
            }
            LogicalPlan::SetOp { kind, left, right } => {
                match kind {
                    SetOpKind::Union | SetOpKind::Intersect => {
                        // Both-sides variant (set operands range over the same
                        // relation universe, so the predicate applies to each).
                        out.push(LogicalPlan::SetOp {
                            kind: *kind,
                            left: Box::new((**left).clone().rank(*predicate)),
                            right: Box::new((**right).clone().rank(*predicate)),
                        });
                        // One-sided variant.
                        out.push(LogicalPlan::SetOp {
                            kind: *kind,
                            left: Box::new((**left).clone().rank(*predicate)),
                            right: right.clone(),
                        });
                    }
                    SetOpKind::Except => {
                        out.push(LogicalPlan::SetOp {
                            kind: *kind,
                            left: Box::new((**left).clone().rank(*predicate)),
                            right: right.clone(),
                        });
                    }
                }
            }
            _ => {}
        }
        out
    }
}

/// The inverse of [`PushRankOverBinary`] for joins: pulls a rank operator
/// above a join (`µ_p(R) ⋈ S ≡ µ_p(R ⋈ S)`), useful when exploring the space
/// from an already-pushed-down plan.
pub struct PullRankOverJoin;

impl RewriteRule for PullRankOverJoin {
    fn name(&self) -> &'static str {
        "pull-rank-over-join (Prop. 5, inverse)"
    }

    fn apply(&self, plan: &LogicalPlan, _query: &RankQuery) -> Vec<LogicalPlan> {
        let LogicalPlan::Join {
            left,
            right,
            condition,
            algorithm,
        } = plan
        else {
            return vec![];
        };
        let mut out = Vec::new();
        if let LogicalPlan::Rank { input, predicate } = &**left {
            out.push(
                LogicalPlan::Join {
                    left: input.clone(),
                    right: right.clone(),
                    condition: condition.clone(),
                    algorithm: *algorithm,
                }
                .rank(*predicate),
            );
        }
        if let LogicalPlan::Rank { input, predicate } = &**right {
            out.push(
                LogicalPlan::Join {
                    left: left.clone(),
                    right: input.clone(),
                    condition: condition.clone(),
                    algorithm: *algorithm,
                }
                .rank(*predicate),
            );
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Proposition 6: multiple-scan of µ
// ---------------------------------------------------------------------------

/// `µ_{p1}(µ_{p2}(R_φ)) ≡ µ_{p1}(R_φ) ∩ µ_{p2}(R_φ)`: two rank operators over
/// the *same base scan* can be evaluated as two independent ranked scans
/// merged by a rank-aware intersection (the "multiple-scan" strategy).
pub struct MultipleScan;

impl RewriteRule for MultipleScan {
    fn name(&self) -> &'static str {
        "multiple-scan (Prop. 6)"
    }

    fn apply(&self, plan: &LogicalPlan, _query: &RankQuery) -> Vec<LogicalPlan> {
        let LogicalPlan::Rank {
            input,
            predicate: p1,
        } = plan
        else {
            return vec![];
        };
        let LogicalPlan::Rank {
            input: inner,
            predicate: p2,
        } = &**input
        else {
            return vec![];
        };
        // Only applies when the shared input is a plain base-relation scan
        // (R_φ): both branches must re-scan the same unranked relation.
        let is_base_scan = matches!(
            &**inner,
            LogicalPlan::Scan {
                access: ScanAccess::Sequential,
                ..
            } | LogicalPlan::Scan {
                access: ScanAccess::AttributeIndex { .. },
                ..
            }
        );
        if !is_base_scan {
            return vec![];
        }
        vec![LogicalPlan::SetOp {
            kind: SetOpKind::Intersect,
            left: Box::new((**inner).clone().rank(*p1)),
            right: Box::new((**inner).clone().rank(*p2)),
        }]
    }
}

/// The default rule set: every law of Figure 5.
pub fn all_rules() -> Vec<Box<dyn RewriteRule>> {
    vec![
        Box::new(SplitSortIntoRanks),
        Box::new(CommuteBinary),
        Box::new(AssociateBinary),
        Box::new(CommuteRank),
        Box::new(PushRankOverBinary),
        Box::new(PullRankOverJoin),
        Box::new(MultipleScan),
    ]
}

/// Applies `rule` at every node of `plan`, returning full plans with exactly
/// one subtree rewritten.
pub fn apply_rule_everywhere(
    plan: &LogicalPlan,
    rule: &dyn RewriteRule,
    query: &RankQuery,
) -> Vec<LogicalPlan> {
    let mut out = Vec::new();
    // At the root.
    out.extend(rule.apply(plan, query));
    // In each child subtree.
    let children = plan.children();
    for (i, child) in children.iter().enumerate() {
        for rewritten_child in apply_rule_everywhere(child, rule, query) {
            let mut new_children: Vec<LogicalPlan> =
                children.iter().map(|c| (*c).clone()).collect();
            new_children[i] = rewritten_child;
            out.push(plan.with_children(new_children));
        }
    }
    out
}

/// Computes (a bounded portion of) the closure of `plan` under the full rule
/// set: all plans reachable by repeatedly applying laws, up to `limit` plans.
///
/// The returned vector always contains the original plan first.  Every plan
/// in the closure is algebraically equivalent to the input — the
/// property-based tests in `ranksql-executor` and the integration suite
/// execute them and compare results.
pub fn equivalent_plans(plan: &LogicalPlan, query: &RankQuery, limit: usize) -> Vec<LogicalPlan> {
    let rules = all_rules();
    let mut seen: HashSet<String> = HashSet::new();
    let mut result: Vec<LogicalPlan> = Vec::new();
    let mut queue: Vec<LogicalPlan> = vec![plan.clone()];
    seen.insert(format!("{plan:?}"));
    while let Some(current) = queue.pop() {
        result.push(current.clone());
        if result.len() >= limit {
            break;
        }
        for rule in &rules {
            for alt in apply_rule_everywhere(&current, rule.as_ref(), query) {
                let key = format!("{alt:?}");
                if seen.insert(key) {
                    queue.push(alt);
                }
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::JoinAlgorithm;
    use ranksql_common::{DataType, Field, Schema, Value};
    use ranksql_expr::{BoolExpr, RankPredicate, RankingContext, ScoringFunction};
    use ranksql_storage::{Catalog, Table};
    use std::sync::Arc;

    fn setup() -> (Catalog, RankQuery, Arc<Table>, Arc<Table>) {
        let cat = Catalog::new();
        let mk = |_name: &str| {
            Schema::new(vec![
                Field::new("a", DataType::Int64),
                Field::new("p", DataType::Float64),
                Field::new("q", DataType::Float64),
            ])
        };
        let r = cat.create_table("R", mk("R")).unwrap();
        let s = cat.create_table("S", mk("S")).unwrap();
        for t in [&r, &s] {
            t.insert(vec![Value::from(1), Value::from(0.5), Value::from(0.25)])
                .unwrap();
        }
        let ranking = RankingContext::new(
            vec![
                RankPredicate::attribute("p1", "R.p"),
                RankPredicate::attribute("p2", "R.q"),
                RankPredicate::attribute("p3", "S.p"),
            ],
            ScoringFunction::Sum,
        );
        let query = RankQuery::new(
            vec!["R".into(), "S".into()],
            vec![BoolExpr::col_eq_col("R.a", "S.a")],
            ranking,
            5,
        );
        (cat, query, r, s)
    }

    #[test]
    fn splitting_law_replaces_sort_with_rank_chain() {
        let (_cat, query, r, _s) = setup();
        let plan = LogicalPlan::scan(&r).sort(BitSet64::from_indices([0, 1]));
        let alts = SplitSortIntoRanks.apply(&plan, &query);
        assert_eq!(alts.len(), 1);
        let alt = &alts[0];
        assert!(!alt.has_blocking_sort());
        assert_eq!(alt.rank_operator_count(), 2);
        // Order property is preserved.
        assert_eq!(alt.evaluated_predicates(), plan.evaluated_predicates());
    }

    #[test]
    fn splitting_skips_already_evaluated_predicates() {
        let (_cat, query, r, _s) = setup();
        let plan = LogicalPlan::rank_scan(&r, 0).sort(BitSet64::from_indices([0, 1]));
        let alt = &SplitSortIntoRanks.apply(&plan, &query)[0];
        // Only p2 needs a µ; p1 comes from the rank-scan.
        assert_eq!(alt.rank_operator_count(), 2); // rank-scan + one µ
        assert_eq!(alt.evaluated_predicates(), BitSet64::from_indices([0, 1]));
    }

    #[test]
    fn commute_rank_swaps_adjacent_mu() {
        let (_cat, query, r, _s) = setup();
        let plan = LogicalPlan::scan(&r).rank(1).rank(0); // µ_{p0}(µ_{p1}(R))
        let alts = CommuteRank.apply(&plan, &query);
        assert_eq!(alts.len(), 1);
        assert_eq!(alts[0], LogicalPlan::scan(&r).rank(0).rank(1));
        assert_eq!(alts[0].evaluated_predicates(), plan.evaluated_predicates());
    }

    #[test]
    fn rank_and_select_swap_both_ways() {
        let (_cat, query, r, _s) = setup();
        let c = BoolExpr::column_is_true("R.a");
        let select_over_rank = LogicalPlan::scan(&r).rank(0).select(c.clone());
        let alts = CommuteRank.apply(&select_over_rank, &query);
        assert_eq!(alts.len(), 1);
        let rank_over_select = &alts[0];
        assert!(matches!(rank_over_select, LogicalPlan::Rank { .. }));
        // And back.
        let back = CommuteRank.apply(rank_over_select, &query);
        assert!(back.contains(&select_over_rank));
    }

    #[test]
    fn push_rank_over_join_respects_predicate_scope() {
        let (_cat, query, r, s) = setup();
        let join = LogicalPlan::scan(&r).join(
            LogicalPlan::scan(&s),
            Some(BoolExpr::col_eq_col("R.a", "S.a")),
            JoinAlgorithm::HashRankJoin,
        );
        // p0 references R only → pushed to the left side only.
        let plan = join.clone().rank(0);
        let alts = PushRankOverBinary.apply(&plan, &query);
        assert_eq!(alts.len(), 1);
        assert!(matches!(
            &alts[0],
            LogicalPlan::Join { left, .. } if matches!(&**left, LogicalPlan::Rank { .. })
        ));
        // p2 references S only → pushed to the right side only.
        let plan3 = join.rank(2);
        let alts3 = PushRankOverBinary.apply(&plan3, &query);
        assert_eq!(alts3.len(), 1);
        assert!(matches!(
            &alts3[0],
            LogicalPlan::Join { right, .. } if matches!(&**right, LogicalPlan::Rank { .. })
        ));
    }

    #[test]
    fn push_and_pull_are_inverses() {
        let (_cat, query, r, s) = setup();
        let join = LogicalPlan::scan(&r).join(
            LogicalPlan::scan(&s),
            Some(BoolExpr::col_eq_col("R.a", "S.a")),
            JoinAlgorithm::HashRankJoin,
        );
        let above = join.rank(0);
        let pushed = PushRankOverBinary.apply(&above, &query).remove(0);
        let pulled = PullRankOverJoin.apply(&pushed, &query);
        assert!(pulled.contains(&above));
    }

    #[test]
    fn push_rank_over_set_ops() {
        let (_cat, query, r, _s) = setup();
        let union = LogicalPlan::scan(&r)
            .set_op(SetOpKind::Union, LogicalPlan::scan(&r))
            .rank(0);
        let alts = PushRankOverBinary.apply(&union, &query);
        assert_eq!(alts.len(), 2); // both-sides and one-sided variants
        let except = LogicalPlan::scan(&r)
            .set_op(SetOpKind::Except, LogicalPlan::scan(&r))
            .rank(0);
        let alts = PushRankOverBinary.apply(&except, &query);
        assert_eq!(alts.len(), 1);
        for a in alts {
            assert_eq!(a.relations(), vec!["R".to_string()]);
        }
    }

    #[test]
    fn multiple_scan_law() {
        let (_cat, query, r, _s) = setup();
        let plan = LogicalPlan::scan(&r).rank(1).rank(0);
        let alts = MultipleScan.apply(&plan, &query);
        assert_eq!(alts.len(), 1);
        assert!(matches!(
            &alts[0],
            LogicalPlan::SetOp {
                kind: SetOpKind::Intersect,
                ..
            }
        ));
        // Does not apply when the shared input is itself ranked.
        let ranked_input = LogicalPlan::rank_scan(&r, 2).rank(1).rank(0);
        assert!(MultipleScan.apply(&ranked_input, &query).is_empty());
    }

    #[test]
    fn commute_binary_swaps_children() {
        let (_cat, query, r, s) = setup();
        let join = LogicalPlan::scan(&r).join(
            LogicalPlan::scan(&s),
            Some(BoolExpr::col_eq_col("R.a", "S.a")),
            JoinAlgorithm::Hash,
        );
        let alts = CommuteBinary.apply(&join, &query);
        assert_eq!(alts.len(), 1);
        assert_eq!(alts[0].relations(), join.relations());
        // Except does not commute.
        let except = LogicalPlan::scan(&r).set_op(SetOpKind::Except, LogicalPlan::scan(&s));
        assert!(CommuteBinary.apply(&except, &query).is_empty());
    }

    #[test]
    fn associate_set_ops() {
        let (_cat, query, r, _s) = setup();
        let a = LogicalPlan::scan(&r);
        let nested = a
            .clone()
            .set_op(SetOpKind::Union, a.clone())
            .set_op(SetOpKind::Union, a);
        let alts = AssociateBinary.apply(&nested, &query);
        assert_eq!(alts.len(), 1);
        assert_eq!(alts[0].relations(), nested.relations());
    }

    #[test]
    fn closure_contains_ranking_plans_for_canonical_form() {
        let (cat, query, _r, _s) = setup();
        let canonical = query.canonical_plan(&cat).unwrap();
        let plans = equivalent_plans(&canonical, &query, 200);
        assert!(
            plans.len() > 5,
            "expected a non-trivial closure, got {}",
            plans.len()
        );
        // The closure must contain at least one pipelined plan without a
        // blocking sort (the whole point of the algebra).
        assert!(plans.iter().any(|p| !p.has_blocking_sort()));
        // Every plan keeps the same membership (relations) and order (P).
        for p in &plans {
            assert_eq!(p.relations(), canonical.relations());
            assert_eq!(p.evaluated_predicates(), canonical.evaluated_predicates());
        }
    }

    #[test]
    fn apply_everywhere_reaches_nested_nodes() {
        let (_cat, query, r, s) = setup();
        // The commuting µ pair is below a join: root-level application misses
        // it, apply_rule_everywhere must find it.
        let left = LogicalPlan::scan(&r).rank(1).rank(0);
        let plan = left.join(
            LogicalPlan::scan(&s),
            Some(BoolExpr::col_eq_col("R.a", "S.a")),
            JoinAlgorithm::Hash,
        );
        assert!(CommuteRank.apply(&plan, &query).is_empty());
        let alts = apply_rule_everywhere(&plan, &CommuteRank, &query);
        assert_eq!(alts.len(), 1);
        assert_eq!(alts[0].evaluated_predicates(), plan.evaluated_predicates());
    }
}
