//! Logical query plans over rank-relations.

use std::fmt;

use ranksql_common::{BitSet64, RankSqlError, Result, Schema};
use ranksql_expr::{BoolExpr, RankingContext};
use ranksql_storage::Table;

/// How a base table is accessed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanAccess {
    /// Sequential (heap) scan — output order is arbitrary, `P = ∅`.
    Sequential,
    /// Rank-scan: an index scan over the score index of ranking predicate
    /// `predicate` (by context index), emitting tuples in descending score
    /// order — `P = {predicate}`.  This is the paper's `idxScan_p`.
    RankIndex {
        /// Index of the ranking predicate in the query's [`RankingContext`].
        predicate: usize,
    },
    /// An ordered scan over an attribute index (ascending attribute order).
    /// `P = ∅` but the output carries an *interesting order* on `column`.
    AttributeIndex {
        /// Qualified column name.
        column: String,
    },
}

/// Physical join algorithm selection.
///
/// The paper's plans (Figure 11) mix rank-aware joins (HRJN, NRJN) with
/// traditional joins (sort-merge, nested loop); the enumeration keeps the
/// choice explicit on the plan node so costing and execution agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinAlgorithm {
    /// Tuple-at-a-time nested loops (traditional, blocking inner).
    NestedLoop,
    /// Sort-merge join on the equi-join columns (traditional).
    SortMerge,
    /// Hash join (traditional; builds on the right input).
    Hash,
    /// Hash rank-join (HRJN): rank-aware, incremental, symmetric-hash based.
    HashRankJoin,
    /// Nested-loop rank-join (NRJN): rank-aware, ripple-style nested loops.
    NestedLoopRankJoin,
}

impl JoinAlgorithm {
    /// Whether the algorithm is rank-aware (emits in upper-bound order).
    pub fn is_rank_aware(self) -> bool {
        matches!(
            self,
            JoinAlgorithm::HashRankJoin | JoinAlgorithm::NestedLoopRankJoin
        )
    }
}

/// Which set operation a [`LogicalPlan::SetOp`] node performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOpKind {
    /// Union (set semantics, duplicates by tuple identity merged).
    Union,
    /// Intersection.
    Intersect,
    /// Difference (left minus right).
    Except,
}

/// A query plan node over rank-relations.
///
/// Every node produces a rank-relation characterised by two logical
/// properties: its *membership* (which tuples) and its *order*, induced by
/// the set of ranking predicates evaluated at or below the node —
/// [`LogicalPlan::evaluated_predicates`].
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Base-table access.
    Scan {
        /// Table name.
        table: String,
        /// Snapshot of the table schema (fields qualified by table name).
        schema: Schema,
        /// Access path.
        access: ScanAccess,
    },
    /// Selection σ_c: filters membership, keeps the input order.
    Select {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Boolean predicate.
        predicate: BoolExpr,
    },
    /// Projection π: keeps membership, order and predicate evaluability;
    /// narrows the schema.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Qualified column names to keep, in output order.
        columns: Vec<String>,
    },
    /// The new rank operator µ_p: evaluates ranking predicate `predicate`
    /// and re-orders by `P ∪ {p}`.
    Rank {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Index of the ranking predicate in the query's [`RankingContext`].
        predicate: usize,
    },
    /// Join (⋈_c or Cartesian product when `condition` is `None`).
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Join condition (`None` = Cartesian product).
        condition: Option<BoolExpr>,
        /// Physical algorithm.
        algorithm: JoinAlgorithm,
    },
    /// Set operation (∪, ∩, −) over union-compatible inputs.
    SetOp {
        /// Which set operation.
        kind: SetOpKind,
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
    },
    /// The traditional blocking sort τ_F: evaluates every predicate in
    /// `predicates` that is still missing and sorts by the full score.
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Predicates of the scoring function this sort evaluates/orders by.
        predicates: BitSet64,
    },
    /// Top-k limit λ_k.
    Limit {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Number of tuples to keep.
        k: usize,
    },
}

impl LogicalPlan {
    // ---------------------------------------------------------------------
    // Constructors
    // ---------------------------------------------------------------------

    /// A sequential scan of `table`.
    pub fn scan(table: &Table) -> LogicalPlan {
        LogicalPlan::Scan {
            table: table.name().to_owned(),
            schema: table.schema().clone(),
            access: ScanAccess::Sequential,
        }
    }

    /// A rank-scan of `table` in the order of ranking predicate `predicate`.
    pub fn rank_scan(table: &Table, predicate: usize) -> LogicalPlan {
        LogicalPlan::Scan {
            table: table.name().to_owned(),
            schema: table.schema().clone(),
            access: ScanAccess::RankIndex { predicate },
        }
    }

    /// An ordered attribute-index scan of `table` on `column`.
    pub fn index_scan(table: &Table, column: &str) -> LogicalPlan {
        LogicalPlan::Scan {
            table: table.name().to_owned(),
            schema: table.schema().clone(),
            access: ScanAccess::AttributeIndex {
                column: column.to_owned(),
            },
        }
    }

    /// Wraps this plan in a selection.
    pub fn select(self, predicate: BoolExpr) -> LogicalPlan {
        LogicalPlan::Select {
            input: Box::new(self),
            predicate,
        }
    }

    /// Wraps this plan in a projection.
    pub fn project(self, columns: Vec<String>) -> LogicalPlan {
        LogicalPlan::Project {
            input: Box::new(self),
            columns,
        }
    }

    /// Wraps this plan in a rank operator µ_p.
    pub fn rank(self, predicate: usize) -> LogicalPlan {
        LogicalPlan::Rank {
            input: Box::new(self),
            predicate,
        }
    }

    /// Joins this plan with another.
    pub fn join(
        self,
        right: LogicalPlan,
        condition: Option<BoolExpr>,
        algorithm: JoinAlgorithm,
    ) -> LogicalPlan {
        LogicalPlan::Join {
            left: Box::new(self),
            right: Box::new(right),
            condition,
            algorithm,
        }
    }

    /// Set-operation constructor.
    pub fn set_op(self, kind: SetOpKind, right: LogicalPlan) -> LogicalPlan {
        LogicalPlan::SetOp {
            kind,
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// Wraps this plan in a blocking sort over `predicates`.
    pub fn sort(self, predicates: BitSet64) -> LogicalPlan {
        LogicalPlan::Sort {
            input: Box::new(self),
            predicates,
        }
    }

    /// Wraps this plan in a top-k limit.
    pub fn limit(self, k: usize) -> LogicalPlan {
        LogicalPlan::Limit {
            input: Box::new(self),
            k,
        }
    }

    // ---------------------------------------------------------------------
    // Properties
    // ---------------------------------------------------------------------

    // ---------------------------------------------------------------------
    // Prepared-statement rebinding
    // ---------------------------------------------------------------------

    /// The parameter slots referenced by any predicate in this plan
    /// (sorted, deduplicated).
    pub fn param_slots(&self) -> Vec<usize> {
        let mut out = Vec::new();
        match self {
            LogicalPlan::Select { predicate, .. } => out.extend(predicate.param_slots()),
            LogicalPlan::Join {
                condition: Some(c), ..
            } => out.extend(c.param_slots()),
            _ => {}
        }
        for c in self.children() {
            out.extend(c.param_slots());
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Rebinds every parameter slot in the plan's selection predicates and
    /// join conditions to the value at its index in `values`.
    pub fn with_params(&self, values: &[ranksql_common::Value]) -> Result<LogicalPlan> {
        Ok(match self {
            LogicalPlan::Select { input, predicate } => LogicalPlan::Select {
                input: Box::new(input.with_params(values)?),
                predicate: predicate.with_params(values)?,
            },
            LogicalPlan::Join {
                left,
                right,
                condition,
                algorithm,
            } => LogicalPlan::Join {
                left: Box::new(left.with_params(values)?),
                right: Box::new(right.with_params(values)?),
                condition: condition
                    .as_ref()
                    .map(|c| c.with_params(values))
                    .transpose()?,
                algorithm: *algorithm,
            },
            LogicalPlan::Scan { .. } => self.clone(),
            other => {
                let children = other
                    .children()
                    .into_iter()
                    .map(|c| c.with_params(values))
                    .collect::<Result<Vec<_>>>()?;
                other.with_children(children)
            }
        })
    }

    /// Rewrites every `Limit` node keeping exactly `old_k` tuples to keep
    /// `new_k` instead — how a cached plan shape is re-bound to a different
    /// top-k without re-optimizing.  In plans produced from a
    /// [`RankQuery`](crate::RankQuery)
    /// the only limits are the query's own `k`, so the value match is exact.
    pub fn with_limit(&self, old_k: usize, new_k: usize) -> LogicalPlan {
        let rebound = match self {
            LogicalPlan::Limit { input, k } if *k == old_k => {
                return LogicalPlan::Limit {
                    input: Box::new(input.with_limit(old_k, new_k)),
                    k: new_k,
                }
            }
            other => other,
        };
        let children = rebound
            .children()
            .into_iter()
            .map(|c| c.with_limit(old_k, new_k))
            .collect();
        rebound.with_children(children)
    }

    /// The output schema of this plan.
    pub fn schema(&self) -> Result<Schema> {
        match self {
            LogicalPlan::Scan { schema, .. } => Ok(schema.clone()),
            LogicalPlan::Select { input, .. }
            | LogicalPlan::Rank { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => input.schema(),
            LogicalPlan::Project { input, columns } => {
                let s = input.schema()?;
                let mut indices = Vec::with_capacity(columns.len());
                for c in columns {
                    indices.push(s.index_of_str(c)?);
                }
                Ok(s.project(&indices))
            }
            LogicalPlan::Join { left, right, .. } => Ok(left.schema()?.join(&right.schema()?)),
            LogicalPlan::SetOp { left, right, .. } => {
                let l = left.schema()?;
                let r = right.schema()?;
                if l.len() != r.len() {
                    return Err(RankSqlError::Plan(format!(
                        "set operation inputs are not union compatible: {} vs {} columns",
                        l.len(),
                        r.len()
                    )));
                }
                Ok(l)
            }
        }
    }

    /// The set `P` of ranking predicates evaluated at or below this node —
    /// the *order* property of the produced rank-relation.
    pub fn evaluated_predicates(&self) -> BitSet64 {
        match self {
            LogicalPlan::Scan { access, .. } => match access {
                ScanAccess::RankIndex { predicate } => BitSet64::singleton(*predicate),
                _ => BitSet64::EMPTY,
            },
            LogicalPlan::Select { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Limit { input, .. } => input.evaluated_predicates(),
            LogicalPlan::Rank { input, predicate } => input
                .evaluated_predicates()
                .union(BitSet64::singleton(*predicate)),
            LogicalPlan::Join { left, right, .. } => left
                .evaluated_predicates()
                .union(right.evaluated_predicates()),
            LogicalPlan::SetOp { kind, left, right } => match kind {
                // Difference keeps only the outer input's order (Figure 3).
                SetOpKind::Except => left.evaluated_predicates(),
                _ => left
                    .evaluated_predicates()
                    .union(right.evaluated_predicates()),
            },
            LogicalPlan::Sort { input, predicates } => {
                input.evaluated_predicates().union(*predicates)
            }
        }
    }

    /// The base relations (table names) below this node, sorted.
    pub fn relations(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_relations(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_relations(&self, out: &mut Vec<String>) {
        match self {
            LogicalPlan::Scan { table, .. } => out.push(table.clone()),
            LogicalPlan::Select { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Rank { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => input.collect_relations(out),
            LogicalPlan::Join { left, right, .. } | LogicalPlan::SetOp { left, right, .. } => {
                left.collect_relations(out);
                right.collect_relations(out);
            }
        }
    }

    /// The direct children of this node.
    pub fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::Scan { .. } => vec![],
            LogicalPlan::Select { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Rank { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => vec![input],
            LogicalPlan::Join { left, right, .. } | LogicalPlan::SetOp { left, right, .. } => {
                vec![left, right]
            }
        }
    }

    /// Rebuilds this node with new children (same arity required).
    pub fn with_children(&self, mut children: Vec<LogicalPlan>) -> LogicalPlan {
        match self {
            LogicalPlan::Scan { .. } => self.clone(),
            LogicalPlan::Select { predicate, .. } => LogicalPlan::Select {
                input: Box::new(children.remove(0)),
                predicate: predicate.clone(),
            },
            LogicalPlan::Project { columns, .. } => LogicalPlan::Project {
                input: Box::new(children.remove(0)),
                columns: columns.clone(),
            },
            LogicalPlan::Rank { predicate, .. } => LogicalPlan::Rank {
                input: Box::new(children.remove(0)),
                predicate: *predicate,
            },
            LogicalPlan::Sort { predicates, .. } => LogicalPlan::Sort {
                input: Box::new(children.remove(0)),
                predicates: *predicates,
            },
            LogicalPlan::Limit { k, .. } => LogicalPlan::Limit {
                input: Box::new(children.remove(0)),
                k: *k,
            },
            LogicalPlan::Join {
                condition,
                algorithm,
                ..
            } => {
                let left = children.remove(0);
                let right = children.remove(0);
                LogicalPlan::Join {
                    left: Box::new(left),
                    right: Box::new(right),
                    condition: condition.clone(),
                    algorithm: *algorithm,
                }
            }
            LogicalPlan::SetOp { kind, .. } => {
                let left = children.remove(0);
                let right = children.remove(0);
                LogicalPlan::SetOp {
                    kind: *kind,
                    left: Box::new(left),
                    right: Box::new(right),
                }
            }
        }
    }

    /// Total number of nodes in the plan tree.
    pub fn node_count(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(|c| c.node_count())
            .sum::<usize>()
    }

    /// Number of rank-aware operators (µ, rank-scan, rank-joins).
    pub fn rank_operator_count(&self) -> usize {
        let own = match self {
            LogicalPlan::Rank { .. } => 1,
            LogicalPlan::Scan {
                access: ScanAccess::RankIndex { .. },
                ..
            } => 1,
            LogicalPlan::Join { algorithm, .. } if algorithm.is_rank_aware() => 1,
            _ => 0,
        };
        own + self
            .children()
            .iter()
            .map(|c| c.rank_operator_count())
            .sum::<usize>()
    }

    /// Whether this plan contains a blocking sort (the hallmark of the
    /// traditional materialise-then-sort scheme).
    pub fn has_blocking_sort(&self) -> bool {
        matches!(self, LogicalPlan::Sort { .. })
            || self.children().iter().any(|c| c.has_blocking_sort())
    }

    /// Returns a copy of this plan in which every join uses its rank-aware
    /// physical counterpart (hash / sort-merge → HRJN, nested loops → NRJN).
    ///
    /// In the rank-relational algebra ⋈ is order-aware by definition
    /// (Figure 3); the traditional algorithms are only valid *implementations*
    /// when a blocking sort above them re-establishes the order.  Rewrites
    /// that remove or push ranking below a join (Propositions 1 and 5)
    /// therefore switch the affected joins to rank-aware implementations so
    /// the physical plan honours the logical order property.
    pub fn with_rank_aware_joins(&self) -> LogicalPlan {
        let children: Vec<LogicalPlan> = self
            .children()
            .into_iter()
            .map(|c| c.with_rank_aware_joins())
            .collect();
        let rebuilt = self.with_children(children);
        match rebuilt {
            LogicalPlan::Join {
                left,
                right,
                condition,
                algorithm,
            } => {
                let algorithm = match algorithm {
                    JoinAlgorithm::Hash | JoinAlgorithm::SortMerge => JoinAlgorithm::HashRankJoin,
                    JoinAlgorithm::NestedLoop => JoinAlgorithm::NestedLoopRankJoin,
                    rank_aware => rank_aware,
                };
                LogicalPlan::Join {
                    left,
                    right,
                    condition,
                    algorithm,
                }
            }
            other => other,
        }
    }

    /// A one-line name of this node for explain output.
    pub fn node_label(&self, ctx: Option<&RankingContext>) -> String {
        let pname = |i: usize| -> String {
            ctx.map(|c| c.predicate(i).name.clone())
                .unwrap_or_else(|| format!("p#{i}"))
        };
        match self {
            LogicalPlan::Scan { table, access, .. } => match access {
                ScanAccess::Sequential => format!("SeqScan({table})"),
                ScanAccess::RankIndex { predicate } => {
                    format!("RankScan_{}({table})", pname(*predicate))
                }
                ScanAccess::AttributeIndex { column } => format!("IdxScan_{column}({table})"),
            },
            LogicalPlan::Select { predicate, .. } => format!("Select[{predicate}]"),
            LogicalPlan::Project { columns, .. } => format!("Project[{}]", columns.join(", ")),
            LogicalPlan::Rank { predicate, .. } => format!("Rank_{}", pname(*predicate)),
            LogicalPlan::Join {
                condition,
                algorithm,
                ..
            } => {
                let alg = match algorithm {
                    JoinAlgorithm::NestedLoop => "NestedLoopJoin",
                    JoinAlgorithm::SortMerge => "SortMergeJoin",
                    JoinAlgorithm::Hash => "HashJoin",
                    JoinAlgorithm::HashRankJoin => "HRJN",
                    JoinAlgorithm::NestedLoopRankJoin => "NRJN",
                };
                match condition {
                    Some(c) => format!("{alg}[{c}]"),
                    None => format!("{alg}[cross]"),
                }
            }
            LogicalPlan::SetOp { kind, .. } => match kind {
                SetOpKind::Union => "Union".to_owned(),
                SetOpKind::Intersect => "Intersect".to_owned(),
                SetOpKind::Except => "Except".to_owned(),
            },
            LogicalPlan::Sort { predicates, .. } => {
                let names: Vec<String> = predicates.iter().map(pname).collect();
                format!("Sort[{}]", names.join("+"))
            }
            LogicalPlan::Limit { k, .. } => format!("Limit[{k}]"),
        }
    }

    /// Multi-line indented explain output.
    pub fn explain(&self, ctx: Option<&RankingContext>) -> String {
        let mut out = String::new();
        self.explain_into(ctx, 0, &mut out);
        out
    }

    fn explain_into(&self, ctx: Option<&RankingContext>, depth: usize, out: &mut String) {
        use std::fmt::Write as _;
        let _ = writeln!(out, "{}{}", "  ".repeat(depth), self.node_label(ctx));
        for c in self.children() {
            c.explain_into(ctx, depth + 1, out);
        }
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.explain(None).trim_end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ranksql_common::{DataType, Field, Value};
    use ranksql_expr::{RankPredicate, ScoringFunction};
    use ranksql_storage::TableBuilder;

    fn table(name: &str, id: u32) -> Table {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("p1", DataType::Float64),
        ])
        .qualify_all(name);
        TableBuilder::new(name, schema)
            .row(vec![Value::from(1), Value::from(0.5)])
            .build(id)
            .unwrap()
    }

    fn ctx() -> std::sync::Arc<RankingContext> {
        RankingContext::new(
            vec![
                RankPredicate::attribute("p1", "R.p1"),
                RankPredicate::attribute("p2", "S.p1"),
            ],
            ScoringFunction::Sum,
        )
    }

    #[test]
    fn scan_properties() {
        let r = table("R", 0);
        let plan = LogicalPlan::scan(&r);
        assert_eq!(plan.schema().unwrap().len(), 2);
        assert!(plan.evaluated_predicates().is_empty());
        assert_eq!(plan.relations(), vec!["R".to_string()]);

        let rs = LogicalPlan::rank_scan(&r, 0);
        assert_eq!(rs.evaluated_predicates(), BitSet64::singleton(0));
        assert_eq!(rs.rank_operator_count(), 1);
    }

    #[test]
    fn evaluated_predicates_propagate_through_operators() {
        let r = table("R", 0);
        let s = table("S", 1);
        let plan = LogicalPlan::rank_scan(&r, 0)
            .join(
                LogicalPlan::scan(&s).rank(1),
                Some(BoolExpr::col_eq_col("R.a", "S.a")),
                JoinAlgorithm::HashRankJoin,
            )
            .limit(5);
        assert_eq!(plan.evaluated_predicates(), BitSet64::from_indices([0, 1]));
        assert_eq!(plan.relations(), vec!["R".to_string(), "S".to_string()]);
        assert_eq!(plan.rank_operator_count(), 3); // rank-scan + µ + HRJN
        assert!(!plan.has_blocking_sort());
    }

    #[test]
    fn difference_keeps_left_order_only() {
        let r = table("R", 0);
        let s = table("S", 1);
        let left = LogicalPlan::rank_scan(&r, 0);
        let right = LogicalPlan::scan(&s).rank(1);
        let diff = left.clone().set_op(SetOpKind::Except, right.clone());
        assert_eq!(diff.evaluated_predicates(), BitSet64::singleton(0));
        let union = left.set_op(SetOpKind::Union, right);
        assert_eq!(union.evaluated_predicates(), BitSet64::from_indices([0, 1]));
    }

    #[test]
    fn sort_evaluates_its_predicates() {
        let r = table("R", 0);
        let plan = LogicalPlan::scan(&r)
            .sort(BitSet64::from_indices([0, 1]))
            .limit(3);
        assert_eq!(plan.evaluated_predicates(), BitSet64::from_indices([0, 1]));
        assert!(plan.has_blocking_sort());
        assert_eq!(plan.rank_operator_count(), 0);
    }

    #[test]
    fn project_schema() {
        let r = table("R", 0);
        let plan = LogicalPlan::scan(&r).project(vec!["R.p1".to_owned()]);
        let schema = plan.schema().unwrap();
        assert_eq!(schema.len(), 1);
        assert_eq!(schema.field(0).qualified_name(), "R.p1");
        let bad = LogicalPlan::scan(&r).project(vec!["R.zzz".to_owned()]);
        assert!(bad.schema().is_err());
    }

    #[test]
    fn set_op_schema_compatibility() {
        let r = table("R", 0);
        let s = table("S", 1);
        let ok = LogicalPlan::scan(&r).set_op(SetOpKind::Union, LogicalPlan::scan(&s));
        assert!(ok.schema().is_ok());
        let narrowed = LogicalPlan::scan(&s).project(vec!["S.a".to_owned()]);
        let bad = LogicalPlan::scan(&r).set_op(SetOpKind::Intersect, narrowed);
        assert!(bad.schema().is_err());
    }

    #[test]
    fn with_children_round_trip() {
        let r = table("R", 0);
        let s = table("S", 1);
        let plan = LogicalPlan::scan(&r).join(
            LogicalPlan::scan(&s),
            Some(BoolExpr::col_eq_col("R.a", "S.a")),
            JoinAlgorithm::Hash,
        );
        let kids: Vec<LogicalPlan> = plan.children().into_iter().cloned().collect();
        let rebuilt = plan.with_children(kids);
        assert_eq!(plan, rebuilt);
        assert_eq!(plan.node_count(), 3);
    }

    #[test]
    fn explain_mentions_operators_and_predicates() {
        let r = table("R", 0);
        let c = ctx();
        let plan = LogicalPlan::rank_scan(&r, 0).rank(1).limit(2);
        let text = plan.explain(Some(&c));
        assert!(text.contains("Limit[2]"));
        assert!(text.contains("Rank_p2"));
        assert!(text.contains("RankScan_p1(R)"));
        // Display without a context falls back to indices.
        let text2 = format!("{plan}");
        assert!(text2.contains("Rank_p#1"));
    }

    #[test]
    fn join_algorithm_classification() {
        assert!(JoinAlgorithm::HashRankJoin.is_rank_aware());
        assert!(JoinAlgorithm::NestedLoopRankJoin.is_rank_aware());
        assert!(!JoinAlgorithm::SortMerge.is_rank_aware());
    }
}
