//! Rank-relational query specifications and their canonical form.

use std::sync::Arc;

use ranksql_common::{BitSet64, RankSqlError, Result};
use ranksql_expr::{BoolExpr, RankingContext};
use ranksql_storage::Catalog;

use crate::plan::{JoinAlgorithm, LogicalPlan};

/// A rank-relational query (Eq. 1 of the paper):
///
/// ```text
/// Q = π*  λ_k  τ_F(p1..pn)  σ_B(c1..cm)  (R1 × ... × Rh)
/// ```
///
/// i.e. an SPJ query over `tables`, filtered by the conjunction of
/// `bool_predicates`, ranked by the scoring function and ranking predicates
/// of `ranking`, returning the top `k` tuples (optionally projected).
#[derive(Debug, Clone)]
pub struct RankQuery {
    /// The base relations `R1..Rh` (table names).
    pub tables: Vec<String>,
    /// The Boolean predicates `c1..cm` (implicitly conjoined).
    pub bool_predicates: Vec<BoolExpr>,
    /// The ranking predicates `p1..pn` and scoring function `F`.
    pub ranking: Arc<RankingContext>,
    /// The number of results requested.
    pub k: usize,
    /// Optional projection (qualified column names); `None` = `SELECT *`.
    pub projection: Option<Vec<String>>,
    /// Whether `k` is a prepared-statement placeholder (`LIMIT ?`): the
    /// stored `k` is then only a default and a binding must supply the real
    /// value before execution.
    pub k_is_param: bool,
}

impl RankQuery {
    /// Creates a query specification.
    pub fn new(
        tables: Vec<String>,
        bool_predicates: Vec<BoolExpr>,
        ranking: Arc<RankingContext>,
        k: usize,
    ) -> Self {
        RankQuery {
            tables,
            bool_predicates,
            ranking,
            k,
            projection: None,
            k_is_param: false,
        }
    }

    /// Sets the projection list.
    pub fn with_projection(mut self, columns: Vec<String>) -> Self {
        self.projection = Some(columns);
        self
    }

    /// Marks `k` as a prepared-statement placeholder (`LIMIT ?`).
    pub fn with_k_param(mut self) -> Self {
        self.k_is_param = true;
        self
    }

    /// The parameter slots referenced anywhere in the query — Boolean
    /// predicates and ranking-predicate expressions (sorted, deduplicated).
    pub fn param_slots(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .bool_predicates
            .iter()
            .flat_map(|p| p.param_slots())
            .collect();
        out.extend(self.ranking.param_slots());
        out.sort_unstable();
        out.dedup();
        out
    }

    /// One entry per parameter slot with its currently bound value: `None`
    /// when any occurrence of the slot is still unbound (an execution must
    /// supply it), `Some` when every occurrence carries a value (which then
    /// serves as the default for re-binding).  Sorted by slot.
    pub fn param_bindings(&self) -> Vec<(usize, Option<ranksql_common::Value>)> {
        let mut merged: std::collections::BTreeMap<usize, Option<ranksql_common::Value>> =
            std::collections::BTreeMap::new();
        let occurrences = self
            .bool_predicates
            .iter()
            .flat_map(|p| p.param_bindings())
            .chain(self.ranking.param_bindings());
        for (slot, value) in occurrences {
            match merged.entry(slot) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(value);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    // An unbound occurrence makes the whole slot unbound.
                    if value.is_none() {
                        e.insert(None);
                    }
                }
            }
        }
        merged.into_iter().collect()
    }

    /// A copy of the query with every parameter slot bound to the value at
    /// its index in `values` (fresh ranking context with fresh counters).
    pub fn with_params(&self, values: &[ranksql_common::Value]) -> Result<RankQuery> {
        let bool_predicates = self
            .bool_predicates
            .iter()
            .map(|p| p.with_params(values))
            .collect::<Result<Vec<_>>>()?;
        let ranking = if self.ranking.param_slots().is_empty() {
            Arc::clone(&self.ranking)
        } else {
            self.ranking.with_params(values)?
        };
        Ok(RankQuery {
            tables: self.tables.clone(),
            bool_predicates,
            ranking,
            k: self.k,
            projection: self.projection.clone(),
            k_is_param: self.k_is_param,
        })
    }

    /// Number of ranking predicates `n`.
    pub fn num_rank_predicates(&self) -> usize {
        self.ranking.num_predicates()
    }

    /// The set of all ranking predicate indices.
    pub fn all_rank_predicates(&self) -> BitSet64 {
        BitSet64::all(self.num_rank_predicates())
    }

    /// Index of a table name within the query's `tables` list.
    pub fn table_index(&self, name: &str) -> Result<usize> {
        self.tables
            .iter()
            .position(|t| t == name)
            .ok_or_else(|| RankSqlError::Plan(format!("table `{name}` is not part of the query")))
    }

    /// The set of query-table indices referenced by a Boolean predicate.
    pub fn bool_predicate_tables(&self, predicate: &BoolExpr) -> Result<BitSet64> {
        let mut set = BitSet64::EMPTY;
        for rel in predicate.relations() {
            set.insert(self.table_index(&rel)?);
        }
        Ok(set)
    }

    /// The set of query-table indices referenced by ranking predicate `i`.
    pub fn rank_predicate_tables(&self, i: usize) -> Result<BitSet64> {
        let mut set = BitSet64::EMPTY;
        for rel in self.ranking.predicate(i).relations() {
            set.insert(self.table_index(&rel)?);
        }
        Ok(set)
    }

    /// Boolean predicates fully evaluable on the given set of tables.
    pub fn bool_predicates_on(&self, tables: BitSet64) -> Result<Vec<BoolExpr>> {
        let mut out = Vec::new();
        for p in &self.bool_predicates {
            if self.bool_predicate_tables(p)?.is_subset_of(tables) {
                out.push(p.clone());
            }
        }
        Ok(out)
    }

    /// Boolean predicates that connect the two table sets (evaluable on the
    /// union but on neither side alone) — the join conditions to apply when
    /// joining those sides.
    pub fn join_predicates_between(
        &self,
        left: BitSet64,
        right: BitSet64,
    ) -> Result<Vec<BoolExpr>> {
        let both = left.union(right);
        let mut out = Vec::new();
        for p in &self.bool_predicates {
            let t = self.bool_predicate_tables(p)?;
            if t.is_subset_of(both) && !t.is_subset_of(left) && !t.is_subset_of(right) {
                out.push(p.clone());
            }
        }
        Ok(out)
    }

    /// Ranking predicates (indices) evaluable on the given set of tables.
    pub fn rank_predicates_on(&self, tables: BitSet64) -> Result<BitSet64> {
        let mut out = BitSet64::EMPTY;
        for i in 0..self.num_rank_predicates() {
            if self.rank_predicate_tables(i)?.is_subset_of(tables) {
                out.insert(i);
            }
        }
        Ok(out)
    }

    /// Builds the canonical (materialise-then-sort) plan of Eq. 1: the
    /// Cartesian product of all tables, one big selection, a blocking sort by
    /// the full scoring function and the top-k limit.
    ///
    /// This is the only plan a ranking-blind engine can produce; it serves as
    /// the correctness oracle and as the starting point of the traditional
    /// optimizer baseline.
    pub fn canonical_plan(&self, catalog: &Catalog) -> Result<LogicalPlan> {
        if self.tables.is_empty() {
            return Err(RankSqlError::Plan("query has no tables".into()));
        }
        let mut plan: Option<LogicalPlan> = None;
        for name in &self.tables {
            let table = catalog.table(name)?;
            let scan = LogicalPlan::scan(&table);
            plan = Some(match plan {
                None => scan,
                Some(acc) => acc.join(scan, None, JoinAlgorithm::NestedLoop),
            });
        }
        let mut plan = plan.expect("at least one table");
        if let Some(filter) = BoolExpr::conjoin(self.bool_predicates.clone()) {
            plan = plan.select(filter);
        }
        if self.num_rank_predicates() > 0 {
            plan = plan.sort(self.all_rank_predicates());
        }
        plan = plan.limit(self.k);
        if let Some(cols) = &self.projection {
            plan = plan.project(cols.clone());
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ranksql_common::{DataType, Field, Schema, Value};
    use ranksql_expr::{RankPredicate, ScoringFunction};

    fn catalog() -> Catalog {
        let cat = Catalog::new();
        for name in ["R", "S", "T"] {
            let t = cat
                .create_table(
                    name,
                    Schema::new(vec![
                        Field::new("a", DataType::Int64),
                        Field::new("p", DataType::Float64),
                        Field::new("b", DataType::Bool),
                    ]),
                )
                .unwrap();
            t.insert(vec![Value::from(1), Value::from(0.5), Value::from(true)])
                .unwrap();
        }
        cat
    }

    fn query() -> RankQuery {
        let ranking = RankingContext::new(
            vec![
                RankPredicate::attribute("p1", "R.p"),
                RankPredicate::attribute("p2", "S.p"),
                RankPredicate::attribute("p3", "T.p"),
            ],
            ScoringFunction::Sum,
        );
        RankQuery::new(
            vec!["R".into(), "S".into(), "T".into()],
            vec![
                BoolExpr::col_eq_col("R.a", "S.a"),
                BoolExpr::col_eq_col("S.a", "T.a"),
                BoolExpr::column_is_true("R.b"),
            ],
            ranking,
            10,
        )
    }

    #[test]
    fn table_and_predicate_indexing() {
        let q = query();
        assert_eq!(q.table_index("S").unwrap(), 1);
        assert!(q.table_index("X").is_err());
        assert_eq!(
            q.bool_predicate_tables(&q.bool_predicates[0]).unwrap(),
            BitSet64::from_indices([0, 1])
        );
        assert_eq!(q.rank_predicate_tables(2).unwrap(), BitSet64::singleton(2));
    }

    #[test]
    fn predicates_on_table_sets() {
        let q = query();
        let rs = BitSet64::from_indices([0, 1]);
        let on_rs = q.bool_predicates_on(rs).unwrap();
        assert_eq!(on_rs.len(), 2); // R.a=S.a and R.b
        let joins = q
            .join_predicates_between(BitSet64::from_indices([0, 1]), BitSet64::singleton(2))
            .unwrap();
        assert_eq!(joins.len(), 1); // S.a = T.a
        assert_eq!(
            q.rank_predicates_on(rs).unwrap(),
            BitSet64::from_indices([0, 1])
        );
        assert_eq!(
            q.rank_predicates_on(BitSet64::all(3)).unwrap(),
            BitSet64::all(3)
        );
    }

    #[test]
    fn canonical_plan_shape() {
        let q = query();
        let cat = catalog();
        let plan = q.canonical_plan(&cat).unwrap();
        // π is absent (SELECT *): Limit over Sort over Select over joins.
        assert!(plan.has_blocking_sort());
        assert_eq!(plan.rank_operator_count(), 0);
        assert_eq!(plan.evaluated_predicates(), BitSet64::all(3));
        assert_eq!(
            plan.relations(),
            vec!["R".to_string(), "S".to_string(), "T".to_string()]
        );
        let text = plan.explain(Some(&q.ranking));
        assert!(text.contains("Sort[p1+p2+p3]"));
        assert!(text.contains("Limit[10]"));
    }

    #[test]
    fn canonical_plan_with_projection() {
        let q = query().with_projection(vec!["R.a".into()]);
        let cat = catalog();
        let plan = q.canonical_plan(&cat).unwrap();
        assert_eq!(plan.schema().unwrap().len(), 1);
    }

    #[test]
    fn empty_query_rejected() {
        let q = RankQuery::new(vec![], vec![], RankingContext::unranked(), 1);
        assert!(q.canonical_plan(&Catalog::new()).is_err());
    }
}
