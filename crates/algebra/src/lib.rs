//! The rank-relational algebra (Section 3 of the RankSQL paper).
//!
//! The algebra extends relational algebra so that *ranking* is a first-class
//! logical property, parallel to membership:
//!
//! * a **rank-relation** `R_P` is a relation whose tuples are ordered by
//!   their maximal-possible score under the evaluated ranking-predicate set
//!   `P` (Definition 1);
//! * the new **rank operator** `µ_p` evaluates one more ranking predicate and
//!   re-orders its input accordingly;
//! * the existing operators (σ, π, ∪, ∩, −, ⋈) are generalised to be
//!   rank-aware: they manipulate membership exactly as before and maintain /
//!   combine the order property as defined in Figure 3;
//! * a set of **algebraic laws** (Figure 5) licenses splitting the monolithic
//!   sort into µ operators and interleaving them with other operators.
//!
//! This crate defines the *logical* side: [`LogicalPlan`] nodes, their
//! rank-relation properties (schema, evaluated predicate set, relations), the
//! query specification [`RankQuery`], the canonical materialise-then-sort
//! form (Eq. 1), and the laws as executable rewrite rules in [`laws`] — plus
//! the [`PhysicalPlan`] IR ([`physical`]) that the optimizer lowers logical
//! plans into and that the executor consumes.  Physical *execution* lives in
//! `ranksql-executor`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod laws;
pub mod physical;
pub mod plan;
pub mod query;

pub use laws::{equivalent_plans, Rewrite, RewriteRule};
pub use physical::{ColumnarScan, ExchangeMerge, OperatorActuals, PhysicalOp, PhysicalPlan};
pub use plan::{JoinAlgorithm, LogicalPlan, ScanAccess, SetOpKind};
pub use query::RankQuery;
