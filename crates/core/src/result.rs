//! Query results: ranked rows plus execution statistics.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use ranksql_algebra::{PhysicalPlan, RankQuery};
use ranksql_common::{Result, Schema};
use ranksql_executor::{ExecutionResult, MetricsRegistry};
use ranksql_expr::{RankedTuple, RankingContext};
use ranksql_storage::StatsCatalog;

use crate::database::PlanCacheLookup;

/// Renders one `statistics[T]` line for `explain_analyze`: the row count
/// plus each column's NDV as the planner saw it — `=` when the staged
/// sketch is still exact (small / array stages), `~` when it comes from the
/// HLL registers.
pub(crate) fn stats_line(table: &str, catalog: &StatsCatalog) -> String {
    let cols: Vec<String> = catalog
        .columns
        .iter()
        .map(|c| {
            let marker = if c.sketch.is_exact() { '=' } else { '~' };
            let name = c.name.rsplit('.').next().unwrap_or(&c.name);
            format!("{name} ndv{marker}{}", c.ndv())
        })
        .collect();
    format!(
        "statistics[{table}]: rows={} ({})",
        catalog.row_count,
        cols.join(", ")
    )
}

/// The result of executing a top-k query.
#[derive(Debug)]
pub struct QueryResult {
    /// The result rows, best first.
    pub rows: Vec<RankedTuple>,
    /// The schema of the rows.
    pub schema: Schema,
    /// The physical plan that produced the rows.
    pub physical: PhysicalPlan,
    /// Final query scores of the rows (same order).
    scores: Vec<f64>,
    /// Per-operator runtime metrics of the executed plan.
    pub metrics: Arc<MetricsRegistry>,
    /// Wall-clock execution time.
    pub elapsed: Duration,
    /// Number of evaluations of each ranking predicate during execution.
    pub predicate_evaluations: Vec<u64>,
    /// Tuples the scans actually examined.  Zone-map pruning on the
    /// columnar backend lowers this — and only this — for identical
    /// results.
    pub tuples_scanned: u64,
    /// Zone-map prune events (block ranges skipped by filter or score
    /// pruning); 0 on the row backend.  Counted per distinct (scan, block)
    /// even under morsel-parallel execution — a block overlapping several
    /// morsels contributes once.  `tuples_scanned` carries the exact row
    /// savings.
    pub blocks_pruned: u64,
    /// Pages faulted in from disk by columnar scans on the paged backend
    /// (16 KiB units); 0 on the in-memory backends and for buffer-pool
    /// hits.  Each block faults at most once per scan — late
    /// materialization reuses the admitted block.
    pub pages_faulted: u64,
    /// Pages that zone-map pruning kept from ever being read (the on-disk
    /// footprint of the pruned blocks); 0 outside the paged backend.  A
    /// pruned block is a page never read: together with `pages_faulted`
    /// this quantifies the I/O the pruning saved.
    pub pages_pruned: u64,
    /// The plan-cache outcome when this execution came through a prepared
    /// statement (`None` for hand-built plans executed directly).
    pub plan_cache: Option<PlanCacheLookup>,
    /// Snapshot of each referenced table's statistics catalog as it stood
    /// when the cursor opened (the statistics the planner had available).
    /// Empty when no table had built statistics yet — e.g. canonical-mode
    /// plans that bypass the optimizer.
    pub table_stats: Vec<(String, StatsCatalog)>,
}

impl QueryResult {
    /// Builds a result from a finished execution of `physical`.
    pub fn from_execution(
        query: &RankQuery,
        physical: &PhysicalPlan,
        execution: ExecutionResult,
    ) -> Result<Self> {
        QueryResult::from_ranking(&query.ranking, physical, execution)
    }

    /// Like [`QueryResult::from_execution`] but taking the ranking context
    /// directly (what a [`Cursor`](crate::Cursor) holds).
    pub fn from_ranking(
        ranking: &Arc<RankingContext>,
        physical: &PhysicalPlan,
        execution: ExecutionResult,
    ) -> Result<Self> {
        let schema = physical.schema()?;
        let scores = execution
            .tuples
            .iter()
            .map(|t| ranking.upper_bound(&t.state).value())
            .collect();
        Ok(QueryResult {
            rows: execution.tuples,
            schema,
            physical: physical.clone(),
            scores,
            metrics: execution.metrics,
            elapsed: execution.elapsed,
            predicate_evaluations: execution.predicate_evaluations,
            tuples_scanned: execution.tuples_scanned,
            blocks_pruned: execution.blocks_pruned,
            pages_faulted: execution.pages_faulted,
            pages_pruned: execution.pages_pruned,
            plan_cache: None,
            table_stats: Vec::new(),
        })
    }

    /// The executed physical tree annotated with each operator's runtime
    /// actuals (`EXPLAIN ANALYZE`-style): tuples produced, and — for
    /// operators that ran through the batched pull path — the number of
    /// batches emitted and the mean batch fill.  Executions that came
    /// through a prepared statement are prefixed with the plan-cache
    /// outcome (`plan cache: hit (hits=…, misses=…, entries=…)`) and one
    /// `statistics[T]` line per referenced table with built statistics
    /// (row count and per-column NDV from the staged sketches).
    pub fn explain_analyze(&self, ctx: Option<&RankingContext>) -> String {
        let mut out = String::new();
        if let Some(cache) = &self.plan_cache {
            out.push_str(&cache.to_line());
            out.push('\n');
        }
        for (table, catalog) in &self.table_stats {
            out.push_str(&stats_line(table, catalog));
            out.push('\n');
        }
        if self.pages_faulted > 0 || self.pages_pruned > 0 {
            out.push_str(&format!(
                "paged storage: pages_faulted={}, pages_pruned={}\n",
                self.pages_faulted, self.pages_pruned
            ));
        }
        out.push_str(
            &self
                .physical
                .explain_with_actuals(ctx, &self.metrics.operator_actuals()),
        );
        out
    }

    /// The final score of each returned row, best first.
    pub fn scores(&self) -> Vec<f64> {
        self.scores.clone()
    }

    /// Total ranking-predicate evaluations during execution.
    pub fn total_predicate_evaluations(&self) -> u64 {
        self.predicate_evaluations.iter().sum()
    }

    /// Renders the result as a small text table (used by the examples).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let header: Vec<String> = std::iter::once("score".to_owned())
            .chain(self.schema.fields().iter().map(|f| f.qualified_name()))
            .collect();
        out.push_str(&header.join(" | "));
        out.push('\n');
        out.push_str(&"-".repeat(header.join(" | ").len()));
        out.push('\n');
        for (row, score) in self.rows.iter().zip(self.scores.iter()) {
            let mut cells = vec![format!("{score:.4}")];
            cells.extend(row.tuple.values().iter().map(|v| v.to_string()));
            out.push_str(&cells.join(" | "));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for QueryResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QueryBuilder;
    use crate::database::Database;
    use ranksql_common::{DataType, Field, Value};
    use ranksql_expr::RankPredicate;

    #[test]
    fn result_exposes_scores_table_and_metrics() {
        let db = Database::new();
        db.create_table(
            "T",
            Schema::new(vec![
                Field::new("name", DataType::Utf8),
                Field::new("score", DataType::Float64),
            ]),
        )
        .unwrap();
        for (n, s) in [("a", 0.3), ("b", 0.9), ("c", 0.6)] {
            db.insert("T", vec![Value::from(n), Value::from(s)])
                .unwrap();
        }
        let q = QueryBuilder::new()
            .table("T")
            .rank_predicate(RankPredicate::attribute("p", "T.score"))
            .limit(2)
            .build()
            .unwrap();
        let r = db
            .execute_with_mode(&q, crate::PlanMode::Canonical)
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.scores(), vec![0.9, 0.6]);
        let table = r.to_table();
        assert!(table.contains("T.name"));
        assert!(table.contains("0.9000"));
        assert!(table.contains("'b'"));
        assert!(r.total_predicate_evaluations() >= 3);
        assert!(!r.metrics.is_empty());
        assert_eq!(format!("{r}"), table);
    }
}
