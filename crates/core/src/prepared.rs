//! Prepared statements: parse/build once, bind many times.
//!
//! A [`PreparedQuery`] is a query *template*: its filter constants (and
//! optionally `k` and the ranking weights) are [`Params`] placeholders.
//! [`PreparedQuery::bind`] supplies concrete values and plans the bound
//! query — once per normalized plan shape: the database's plan cache is
//! keyed by [`ranksql_optimizer::normalized_cache_key`] (query shape + plan
//! mode + thread budget, *not* the bound values or `k`), so re-executing
//! with fresh bindings skips parse and optimize entirely and only re-binds
//! the cached physical plan in place.

use std::collections::BTreeMap;

use ranksql_algebra::{LogicalPlan, PhysicalPlan, RankQuery};
use ranksql_common::{RankSqlError, Result, Value};
use ranksql_expr::ScoringFunction;

use crate::cursor::Cursor;
use crate::database::{Database, PlanCacheLookup};
use crate::result::QueryResult;
use crate::session::SessionSettings;

/// Values for one execution of a [`PreparedQuery`].
///
/// Three kinds of things are bindable:
///
/// * **value slots** (`?` in SQL, [`ScalarExpr::param`] in built queries) —
///   filter constants, set positionally with [`Params::set`];
/// * **`k`** — the top-k limit, overriding the template's `LIMIT`
///   (mandatory when the template used `LIMIT ?`);
/// * **ranking weights** — fresh weights for a `WeightedSum`-scored
///   template, re-ranking without re-planning.
///
/// [`ScalarExpr::param`]: ranksql_expr::ScalarExpr::param
#[derive(Debug, Clone, Default)]
pub struct Params {
    values: BTreeMap<usize, Value>,
    k: Option<usize>,
    weights: Option<Vec<f64>>,
}

impl Params {
    /// An empty parameter set (start of the builder chain).
    pub fn new() -> Self {
        Params::default()
    }

    /// The canonical empty binding for parameter-free queries.
    pub fn none() -> Self {
        Params::default()
    }

    /// Binds value slot `index` (the `index`-th `?`, zero-based).
    pub fn set(mut self, index: usize, value: impl Into<Value>) -> Self {
        self.values.insert(index, value.into());
        self
    }

    /// Binds value slots 0..n from an iterator, in order.
    pub fn positional<I, V>(values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        let mut p = Params::default();
        for (i, v) in values.into_iter().enumerate() {
            p.values.insert(i, v.into());
        }
        p
    }

    /// Overrides the top-k limit for this execution.
    pub fn k(mut self, k: usize) -> Self {
        self.k = Some(k);
        self
    }

    /// Binds fresh ranking weights (template must be `WeightedSum`-scored
    /// with the same arity).
    pub fn weights<I: IntoIterator<Item = f64>>(mut self, weights: I) -> Self {
        self.weights = Some(weights.into_iter().collect());
        self
    }
}

/// A query prepared once under a session's settings: parse and cache-key
/// normalization are done, optimization is deferred to the first
/// [`PreparedQuery::bind`] per plan shape.
#[derive(Debug)]
pub struct PreparedQuery<'db> {
    db: &'db Database,
    settings: SessionSettings,
    template: RankQuery,
    slots: Vec<usize>,
    cache_key: String,
}

impl<'db> PreparedQuery<'db> {
    pub(crate) fn new(
        db: &'db Database,
        settings: SessionSettings,
        template: RankQuery,
    ) -> Result<Self> {
        let slots = template.param_slots();
        let cache_key = ranksql_optimizer::normalized_cache_key(
            &template,
            &format!("{:?}", settings.mode),
            settings.threads,
            settings.backend.tag(),
        );
        Ok(PreparedQuery {
            db,
            settings,
            template,
            slots,
            cache_key,
        })
    }

    /// The query template (parameters unbound).
    pub fn query(&self) -> &RankQuery {
        &self.template
    }

    /// The value slots a binding must supply (sorted, deduplicated).
    pub fn param_slots(&self) -> &[usize] {
        &self.slots
    }

    /// The normalized plan-cache key this statement plans under.
    ///
    /// At bind time the key is further suffixed with the referenced tables'
    /// current log₂ size buckets (see [`PreparedQuery::bind`]), so a shape
    /// is re-optimized once its tables grow or shrink by about 2×.
    pub fn cache_key(&self) -> &str {
        &self.cache_key
    }

    /// The full cache key for the catalog's *current* table sizes: the
    /// normalized shape key plus each referenced table's log₂
    /// epoch-ordinal bucket (the epoch ordinal *is* the row count — tables
    /// are append-only, so the watermark doubles as the version).
    /// Bucketing (rather than exact ordinals) keeps steady inserts from
    /// defeating the cache while bounding how stale a cached plan's cost
    /// assumptions can get before it is re-optimized.
    fn size_bucketed_key(&self) -> Result<String> {
        use std::fmt::Write as _;
        let mut key = self.cache_key.clone();
        key.push_str(";sizes=");
        for (i, table) in self.template.tables.iter().enumerate() {
            if i > 0 {
                key.push(',');
            }
            let ordinal = self.db.catalog().table(table)?.epoch_ordinal();
            let _ = write!(key, "{}", u64::BITS - ordinal.leading_zeros());
        }
        Ok(key)
    }

    /// Binds parameters and plans the execution — against the plan cache:
    /// the first binding of a shape pays parse-free optimization, every
    /// later one re-binds the cached plan in place (a cache *hit*, visible
    /// in `explain_analyze` and [`Database::plan_cache_stats`]).
    pub fn bind(&self, params: Params) -> Result<BoundQuery<'db>> {
        // 1. Dense value vector covering every slot the template references:
        //    supplied values win, values already bound in the template act
        //    as defaults (so a query bound via `RankQuery::with_params`
        //    executes through the wrappers without re-supplying them), and
        //    slots with neither are an error.
        let bindings = self.template.param_bindings();
        let missing: Vec<usize> = bindings
            .iter()
            .filter(|(s, default)| default.is_none() && !params.values.contains_key(s))
            .map(|(s, _)| *s)
            .collect();
        if !missing.is_empty() {
            return Err(RankSqlError::Plan(format!(
                "missing values for parameter slot(s) {missing:?}; bind them with Params::set"
            )));
        }
        let dense_len = self.slots.iter().copied().max().map_or(0, |m| m + 1);
        let mut values = vec![Value::Null; dense_len];
        for (slot, default) in &bindings {
            if let Some(v) = params.values.get(slot).or(default.as_ref()) {
                values[*slot] = v.clone();
            }
        }

        // 2. The concrete query: parameters substituted, k and weights
        //    overridden.
        let mut query = self.template.with_params(&values)?;
        query.k = match (self.template.k_is_param, params.k) {
            (_, Some(k)) => k,
            (false, None) => self.template.k,
            (true, None) => {
                return Err(RankSqlError::Plan(
                    "the template uses `LIMIT ?`; bind k with Params::k".into(),
                ))
            }
        };
        if let Some(w) = &params.weights {
            match query.ranking.scoring() {
                ScoringFunction::WeightedSum(old) if old.len() == w.len() => {}
                ScoringFunction::WeightedSum(old) => {
                    return Err(RankSqlError::Plan(format!(
                        "weight binding has {} weights but the query has {}",
                        w.len(),
                        old.len()
                    )))
                }
                other => {
                    return Err(RankSqlError::Plan(format!(
                        "ranking weights can only be bound to a WeightedSum-scored template \
                         (template scoring is {other:?})"
                    )))
                }
            }
            // `!(x >= 0)` also rejects NaN, which would poison every score
            // and silently destabilise the rank order.
            if w.iter().any(|x| !x.is_finite() || *x < 0.0) {
                return Err(RankSqlError::Plan(
                    "ranking weights must be finite and non-negative (monotonicity)".into(),
                ));
            }
            query.ranking = query
                .ranking
                .with_scoring(ScoringFunction::WeightedSum(w.clone()));
        }

        // 3. Plan: reuse the cached shape or optimize once and cache it.
        //    The key carries the tables' current size buckets, so growth
        //    beyond ~2× re-optimizes instead of replaying a stale plan.
        let key = self.size_bucketed_key()?;
        let (entry, lookup) = match self.db.plan_cache().lookup(&key) {
            Some(hit) => hit,
            None => self.db.plan_cache().populate(&key, || {
                self.db
                    .plan_with_settings(
                        &query,
                        self.settings.mode,
                        self.settings.threads,
                        self.settings.backend,
                    )
                    .map(|plan| (plan, query.k))
            })?,
        };
        let mut physical = entry.plan.physical.with_params(&values)?;
        let mut logical = entry.plan.plan.with_params(&values)?;
        if entry.k != query.k {
            physical = physical.with_limit(entry.k, query.k);
            logical = logical.with_limit(entry.k, query.k);
        }

        Ok(BoundQuery {
            db: self.db,
            settings: self.settings.clone(),
            query,
            logical,
            physical,
            lookup,
        })
    }

    /// Shorthand: bind no parameters and open a cursor.
    pub fn cursor(&self) -> Result<Cursor> {
        self.bind(Params::none())?.cursor()
    }

    /// Shorthand: bind no parameters and execute eagerly.
    pub fn execute(&self) -> Result<QueryResult> {
        self.bind(Params::none())?.execute()
    }
}

/// A fully bound, fully planned execution: concrete parameter values, `k`
/// and weights, plus the (cache-reused) physical plan.  Open it as a
/// streaming [`Cursor`] or drain it eagerly into a [`QueryResult`].
#[derive(Debug)]
pub struct BoundQuery<'db> {
    db: &'db Database,
    settings: SessionSettings,
    query: RankQuery,
    logical: LogicalPlan,
    physical: PhysicalPlan,
    lookup: PlanCacheLookup,
}

impl BoundQuery<'_> {
    /// The bound query (parameters substituted).
    pub fn query(&self) -> &RankQuery {
        &self.query
    }

    /// The physical plan the cursor will run.
    pub fn physical(&self) -> &PhysicalPlan {
        &self.physical
    }

    /// Whether this binding's plan came from the plan cache.
    pub fn cache_hit(&self) -> bool {
        self.lookup.hit
    }

    /// The plan-cache lookup outcome and counters at bind time.
    pub fn plan_cache(&self) -> PlanCacheLookup {
        self.lookup
    }

    /// The `EXPLAIN` text of the bound plan (logical + costed physical).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        out.push_str("logical plan:\n");
        out.push_str(&self.logical.explain(Some(&self.query.ranking)));
        out.push_str("physical plan:\n");
        out.push_str(&self.physical.explain(Some(&self.query.ranking)));
        out
    }

    /// Opens a streaming cursor over the live operator tree.  Nothing has
    /// been executed yet; the first pull drives the plan incrementally.
    pub fn cursor(&self) -> Result<Cursor> {
        Cursor::open(
            self.db.catalog(),
            &self.settings,
            &self.query,
            self.physical.clone(),
            Some(self.lookup),
        )
    }

    /// Drains the whole result eagerly (the legacy `Database::execute`
    /// behavior): a cursor opened and pulled to exhaustion.
    pub fn execute(&self) -> Result<QueryResult> {
        self.cursor()?.into_result()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::PlanMode;
    use crate::QueryBuilder;
    use ranksql_common::{DataType, Field, Schema};
    use ranksql_expr::{BoolExpr, CompareOp, RankPredicate, ScalarExpr};

    fn db() -> Database {
        let db = Database::new();
        db.create_table(
            "T",
            Schema::new(vec![
                Field::new("id", DataType::Int64),
                Field::new("p", DataType::Float64),
            ]),
        )
        .unwrap();
        for i in 0..40i64 {
            db.insert("T", vec![Value::from(i), Value::from((i as f64) / 40.0)])
                .unwrap();
        }
        db
    }

    fn template() -> RankQuery {
        QueryBuilder::new()
            .table("T")
            .filter(BoolExpr::compare(
                ScalarExpr::col("T.id"),
                CompareOp::Lt,
                ScalarExpr::param(0),
            ))
            .rank_predicate(RankPredicate::attribute("p", "T.p"))
            .limit(3)
            .build()
            .unwrap()
    }

    #[test]
    fn rebinding_hits_the_cache_and_changes_results() {
        let db = db();
        let session = db.session();
        let prepared = session.prepare_query(template()).unwrap();
        assert_eq!(prepared.param_slots(), &[0]);

        let cold = prepared.bind(Params::new().set(0, 40i64)).unwrap();
        assert!(!cold.cache_hit());
        let cold_rows = cold.execute().unwrap();
        assert_eq!(cold_rows.rows[0].tuple.value(0), &Value::from(39));

        // Fresh binding: plan-cache hit, different filter constant.
        let hot = prepared.bind(Params::new().set(0, 10i64)).unwrap();
        assert!(hot.cache_hit());
        let hot_rows = hot.execute().unwrap();
        assert_eq!(hot_rows.rows[0].tuple.value(0), &Value::from(9));

        let stats = db.plan_cache_stats();
        assert_eq!(stats.misses, 1);
        assert!(stats.hits >= 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn identical_rebinding_is_byte_identical_to_cold() {
        let db = db();
        let prepared = db.session().prepare_query(template()).unwrap();
        let cold = prepared
            .bind(Params::new().set(0, 25i64))
            .unwrap()
            .execute()
            .unwrap();
        let hot = prepared
            .bind(Params::new().set(0, 25i64))
            .unwrap()
            .execute()
            .unwrap();
        assert_eq!(cold.scores(), hot.scores());
        let ids =
            |r: &QueryResult| -> Vec<_> { r.rows.iter().map(|t| t.tuple.id().clone()).collect() };
        assert_eq!(ids(&cold), ids(&hot));
        assert!(hot.plan_cache.unwrap().hit);
        assert!(!cold.plan_cache.unwrap().hit);
    }

    #[test]
    fn k_rebinding_rewrites_the_cached_limit() {
        let db = db();
        let prepared = db.session().prepare_query(template()).unwrap();
        let small = prepared.bind(Params::new().set(0, 40i64)).unwrap();
        assert_eq!(small.execute().unwrap().rows.len(), 3);
        let big = prepared.bind(Params::new().set(0, 40i64).k(7)).unwrap();
        assert!(big.cache_hit(), "k is not part of the cache key");
        assert_eq!(big.execute().unwrap().rows.len(), 7);
        assert!(big.explain().contains("Limit[7]") || big.explain().contains("k=7"));
    }

    #[test]
    fn doubling_a_table_re_optimizes_the_cached_shape() {
        let db = db(); // 40 rows in T
        let prepared = db.session().prepare_query(template()).unwrap();
        let cold = prepared.bind(Params::new().set(0, 1_000i64)).unwrap();
        assert!(!cold.cache_hit());
        // Small inserts stay in the same log2 size bucket: still a hit.
        db.insert_batch(
            "T",
            (40..44i64).map(|i| vec![Value::from(i), Value::from(0.5)]),
        )
        .unwrap();
        assert!(prepared
            .bind(Params::new().set(0, 1_000i64))
            .unwrap()
            .cache_hit());
        // Doubling the table crosses a bucket: the shape is re-optimized
        // under the current statistics instead of replaying the stale plan.
        db.insert_batch(
            "T",
            (44..100i64).map(|i| vec![Value::from(i), Value::from(0.5)]),
        )
        .unwrap();
        let recosted = prepared.bind(Params::new().set(0, 1_000i64)).unwrap();
        assert!(!recosted.cache_hit());
        assert_eq!(recosted.execute().unwrap().rows.len(), 3);
        assert_eq!(db.plan_cache_stats().entries, 2);
    }

    #[test]
    fn already_bound_params_act_as_defaults() {
        let db = db();
        // A query bound via `RankQuery::with_params` executes through the
        // wrappers without re-supplying the values...
        let bound_query = template().with_params(&[Value::from(10i64)]).unwrap();
        let eager = db.execute(&bound_query).unwrap();
        assert_eq!(eager.rows[0].tuple.value(0), &Value::from(9));
        // ...and a later Params::set still overrides the default.
        let overridden = db
            .session()
            .prepare_query(bound_query)
            .unwrap()
            .bind(Params::new().set(0, 40i64))
            .unwrap()
            .execute()
            .unwrap();
        assert_eq!(overridden.rows[0].tuple.value(0), &Value::from(39));
    }

    #[test]
    fn missing_params_and_missing_k_are_rejected() {
        let db = db();
        let prepared = db.session().prepare_query(template()).unwrap();
        let err = prepared.bind(Params::none()).unwrap_err();
        assert!(err.to_string().contains("parameter slot"), "{err}");

        let k_param = template().with_k_param();
        let prepared = db.session().prepare_query(k_param).unwrap();
        let err = prepared.bind(Params::new().set(0, 5i64)).unwrap_err();
        assert!(err.to_string().contains("Params::k"), "{err}");
        let ok = prepared.bind(Params::new().set(0, 40i64).k(2)).unwrap();
        assert_eq!(ok.execute().unwrap().rows.len(), 2);
    }

    #[test]
    fn weight_rebinding_reranks_without_replanning() {
        let db = db();
        db.create_table(
            "U",
            Schema::new(vec![
                Field::new("a", DataType::Float64),
                Field::new("b", DataType::Float64),
            ]),
        )
        .unwrap();
        for i in 0..20i64 {
            let a = (i as f64) / 20.0;
            db.insert("U", vec![Value::from(a), Value::from(1.0 - a)])
                .unwrap();
        }
        let template = QueryBuilder::new()
            .table("U")
            .rank_predicate(RankPredicate::attribute("a", "U.a"))
            .rank_predicate(RankPredicate::attribute("b", "U.b"))
            .scoring(ScoringFunction::weighted_sum(vec![1.0, 1.0]))
            .limit(1)
            .build()
            .unwrap();
        let prepared = db.session().prepare_query(template).unwrap();
        let a_heavy = prepared
            .bind(Params::new().weights([10.0, 0.1]))
            .unwrap()
            .execute()
            .unwrap();
        assert_eq!(a_heavy.rows[0].tuple.value(0), &Value::from(0.95));
        let b_heavy = prepared
            .bind(Params::new().weights([0.1, 10.0]))
            .unwrap()
            .execute()
            .unwrap();
        assert_eq!(b_heavy.rows[0].tuple.value(0), &Value::from(0.0));
        assert!(b_heavy.plan_cache.unwrap().hit);
        // Arity and sign are validated.
        assert!(prepared.bind(Params::new().weights([1.0])).is_err());
        assert!(prepared.bind(Params::new().weights([1.0, -1.0])).is_err());
    }

    #[test]
    fn different_modes_and_threads_key_separately() {
        let db = db();
        let q = template();
        let a = db.session().prepare_query(q.clone()).unwrap();
        let b = db
            .session()
            .with_mode(PlanMode::Canonical)
            .prepare_query(q.clone())
            .unwrap();
        // Pick an explicit thread count different from whatever the default
        // session resolved to (RANKSQL_THREADS can make the default 4).
        let threads = if a.cache_key().contains("threads=4") {
            2
        } else {
            4
        };
        let c = db.session().with_threads(threads).prepare_query(q).unwrap();
        assert_ne!(a.cache_key(), b.cache_key());
        assert_ne!(a.cache_key(), c.cache_key());
    }
}
