//! The `Database` facade: catalog + optimizer + executor + plan cache in
//! one handle.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use ranksql_algebra::{LogicalPlan, PhysicalPlan, RankQuery};
use ranksql_common::{Result, Schema, Value};
use ranksql_optimizer::{OptimizedPlan, OptimizerConfig, OptimizerMode, RankOptimizer};
use ranksql_storage::{Catalog, StorageBackend, Table};

use crate::cursor::Cursor;
use crate::result::QueryResult;
use crate::session::{Session, SessionSettings};

/// How a query should be planned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanMode {
    /// Rank-aware cost-based optimization with the Figure 10 heuristics
    /// (the default).
    #[default]
    RankAware,
    /// Rank-aware optimization with exhaustive two-dimensional enumeration.
    RankAwareExhaustive,
    /// Rank-aware optimization with the Volcano/Cascades-style rule-based
    /// search (transformation rules = the Figure 5 laws).
    RankAwareRuleBased,
    /// Traditional materialise-then-sort planning (ranking-blind baseline).
    Traditional,
    /// No optimization: execute the canonical plan of Eq. 1 directly.
    Canonical,
}

/// Aggregate plan-cache counters of a [`Database`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanCacheStats {
    /// Bindings that reused a cached plan shape.
    pub hits: u64,
    /// Bindings that had to run the optimizer.
    pub misses: u64,
    /// Cached plan shapes currently held.
    pub entries: usize,
}

/// The plan-cache outcome of one `bind`: whether *this* binding hit, plus
/// the cache counters at that moment.  Surfaced on
/// [`QueryResult::plan_cache`](crate::QueryResult) and in
/// `explain_analyze` output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanCacheLookup {
    /// Whether the binding reused a cached plan.
    pub hit: bool,
    /// Cache counters at bind time.
    pub stats: PlanCacheStats,
}

impl PlanCacheLookup {
    /// The one-line rendering used by `explain_analyze`.
    pub fn to_line(&self) -> String {
        format!(
            "plan cache: {} (hits={}, misses={}, entries={})",
            if self.hit { "hit" } else { "miss" },
            self.stats.hits,
            self.stats.misses,
            self.stats.entries
        )
    }
}

/// One cached plan shape: the optimizer output (whose expressions carry
/// re-bindable `$i` parameter slots) plus the `k` it was planned with, so a
/// binding with a different `k` knows which limit value to rewrite.
#[derive(Debug)]
pub(crate) struct CachedPlan {
    pub(crate) plan: OptimizedPlan,
    pub(crate) k: usize,
}

/// One cache slot: the plan plus its last-touched tick for LRU eviction.
#[derive(Debug)]
struct CacheSlot {
    plan: Arc<CachedPlan>,
    last_used: u64,
}

/// The most cached plan shapes a database holds; reaching the cap evicts the
/// **least recently used** entry, so hot shapes survive storms of ad-hoc
/// queries with distinct literal shapes streaming through the eager
/// wrappers.
const PLAN_CACHE_CAP: usize = 512;

/// Map + access log of the plan cache, guarded by one mutex so LRU order
/// and membership can never disagree.
#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<String, CacheSlot>,
    /// Append-only access log for amortized-O(1) LRU eviction: every touch
    /// pushes one `(key, stamp)` record.  A record is authoritative only
    /// while it equals its slot's `last_used`; superseded records are
    /// discarded lazily — when eviction pops them, or by the occasional
    /// compaction in [`CacheInner::record_touch`].
    queue: VecDeque<(String, u64)>,
}

impl CacheInner {
    /// Logs a touch of `key` at `tick`, compacting the log when superseded
    /// records dominate so it stays linear in the live entry count.  The
    /// compaction scan is paid at most once per `O(len)` touches —
    /// amortized O(1).
    fn record_touch(&mut self, key: &str, tick: u64) {
        self.queue.push_back((key.to_owned(), tick));
        if self.queue.len() > 2 * self.map.len().max(32) {
            let map = &self.map;
            self.queue
                .retain(|(k, s)| map.get(k).map(|slot| slot.last_used) == Some(*s));
        }
    }

    /// Evicts the least-recently-used entry in amortized O(1): records pop
    /// off the log in stamp order, so the first one still matching its
    /// slot's `last_used` names the live entry with the globally oldest
    /// stamp.  Superseded records are dropped for good as they pass by.
    fn evict_lru(&mut self) {
        while let Some((k, s)) = self.queue.pop_front() {
            if self.map.get(&k).map(|slot| slot.last_used) == Some(s) {
                self.map.remove(&k);
                return;
            }
        }
    }
}

/// The database-wide plan cache, keyed by
/// [`ranksql_optimizer::normalized_cache_key`] (query shape + mode +
/// threads + storage backend; never bound values, `k`, or weights) plus the
/// referenced tables' log₂ size buckets — so a cached shape is re-costed
/// once a table grows or shrinks by about 2×, bounding plan staleness under
/// mutation.
///
/// Bounded by [`PLAN_CACHE_CAP`] with true LRU eviction in amortized O(1):
/// every touch stamps the entry with a monotonically increasing tick and
/// appends a record to an access log; inserting into a full cache pops the
/// log until the first record that still matches its entry's latest stamp —
/// that entry is the least recently used (the old implementation scanned
/// the whole map per eviction, `O(cap)` under an ad-hoc query storm).
#[derive(Debug, Default)]
pub(crate) struct PlanCache {
    inner: Mutex<CacheInner>,
    /// Monotonic access clock for LRU stamps.
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Looks a key up, recording a hit (and refreshing the entry's LRU
    /// stamp) when present.
    pub(crate) fn lookup(&self, key: &str) -> Option<(Arc<CachedPlan>, PlanCacheLookup)> {
        let entry = {
            let mut inner = self.inner.lock();
            // The tick is taken *inside* the lock so stamps are monotone in
            // log-push order — the invariant `evict_lru` leans on (the
            // first record still matching its slot's `last_used` names the
            // globally oldest entry).  Ticked outside, two racing touches
            // could stamp a slot out of order and strand a live entry
            // behind a stale, never-matching record.
            let tick = self.tick();
            let slot = inner.map.get_mut(key)?;
            slot.last_used = tick;
            let plan = Arc::clone(&slot.plan);
            inner.record_touch(key, tick);
            plan
        };
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some((
            entry,
            PlanCacheLookup {
                hit: true,
                stats: self.stats(),
            },
        ))
    }

    /// Builds and inserts the plan for `key`, recording a miss.  The builder
    /// runs outside the lock (optimization is slow); if another thread
    /// populated the key meanwhile, its entry wins and ours is dropped.
    pub(crate) fn populate(
        &self,
        key: &str,
        build: impl FnOnce() -> Result<(OptimizedPlan, usize)>,
    ) -> Result<(Arc<CachedPlan>, PlanCacheLookup)> {
        let (plan, k) = build()?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        let entry = Arc::new(CachedPlan { plan, k });
        let entry = {
            let mut inner = self.inner.lock();
            if inner.map.len() >= PLAN_CACHE_CAP && !inner.map.contains_key(key) {
                inner.evict_lru();
            }
            // Ticked under the lock (see `lookup`): the stamp is strictly
            // newer than every record already in the log, so a key
            // re-inserted right after its own eviction can never sit
            // behind a stale record carrying its old stamp.
            let tick = self.tick();
            let slot = inner
                .map
                .entry(key.to_owned())
                .or_insert_with(|| CacheSlot {
                    plan: Arc::clone(&entry),
                    last_used: tick,
                });
            slot.last_used = tick;
            let plan = Arc::clone(&slot.plan);
            inner.record_touch(key, tick);
            plan
        };
        Ok((
            entry,
            PlanCacheLookup {
                hit: false,
                stats: self.stats(),
            },
        ))
    }

    pub(crate) fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.inner.lock().map.len(),
        }
    }

    pub(crate) fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.queue.clear();
    }
}

/// An embedded RankSQL database: owns the catalog and the plan cache, and
/// executes top-k queries.
///
/// Per-caller execution settings (plan mode, threads, batch size, budgets)
/// live on [`Session`]; `Database` keeps only what is shared across
/// callers.  `Database::execute*` remain as thin compatibility wrappers
/// over `session().prepare_query(..).bind(..).cursor()`.
pub struct Database {
    catalog: Catalog,
    optimizer_config: OptimizerConfig,
    /// Defaults handed to new sessions (and used by the compatibility
    /// wrappers); the deprecated thread setters mutate these.
    default_settings: SessionSettings,
    plan_cache: PlanCache,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("tables", &self.catalog.table_names())
            .field("default_settings", &self.default_settings)
            .field("plan_cache", &self.plan_cache.stats())
            .finish()
    }
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Database {
            catalog: Catalog::new(),
            optimizer_config: OptimizerConfig::default(),
            default_settings: SessionSettings::default(),
            plan_cache: PlanCache::default(),
        }
    }

    /// Creates a database with a custom optimizer configuration.
    pub fn with_optimizer_config(config: OptimizerConfig) -> Self {
        Database {
            optimizer_config: config,
            ..Database::new()
        }
    }

    /// Opens (or initialises) a disk-backed database directory with the
    /// default [`PagedOptions`](ranksql_storage::PagedOptions).
    ///
    /// Every table recorded in the directory's catalog file is recovered to
    /// its **last durable epoch** — the longest CRC-valid extent prefix of
    /// its data file plus the contiguous valid prefix of its write-ahead
    /// log — and re-registered under its original id and schema.  Tables
    /// created and rows inserted afterwards follow the WAL protocol, so a
    /// crash at any point loses at most the rows since the last fsync
    /// boundary.  New sessions default to [`StorageBackend::Paged`].
    pub fn open_paged(dir: impl AsRef<std::path::Path>) -> Result<Self> {
        Database::open_paged_with(dir, ranksql_storage::PagedOptions::default())
    }

    /// [`Database::open_paged`] with an explicit configuration — chiefly
    /// the buffer-pool page budget, which bounds how much of the columnar
    /// working set stays resident.
    pub fn open_paged_with(
        dir: impl AsRef<std::path::Path>,
        options: ranksql_storage::PagedOptions,
    ) -> Result<Self> {
        let catalog = Catalog::new();
        ranksql_storage::PagedStore::open(dir.as_ref(), options, &catalog)?;
        let default_settings = SessionSettings {
            backend: StorageBackend::Paged,
            ..SessionSettings::default()
        };
        Ok(Database {
            catalog,
            optimizer_config: OptimizerConfig::default(),
            default_settings,
            plan_cache: PlanCache::default(),
        })
    }

    /// Opens a [`Session`] carrying this database's default settings;
    /// configure it further with the session's `with_*` builders.
    pub fn session(&self) -> Session<'_> {
        Session::new(self, self.default_settings.clone())
    }

    /// Sets the worker-thread budget for parallel execution (builder form;
    /// clamped to at least 1).  `1` keeps planning and execution fully
    /// serial.
    #[deprecated(
        since = "0.2.0",
        note = "execution settings moved to `Session`: use `db.session().with_threads(n)`; \
                this shim only changes the default handed to new sessions"
    )]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.default_settings.threads = threads.clamp(1, ranksql_common::MAX_THREADS);
        self
    }

    /// Sets the worker-thread budget for parallel execution (clamped to at
    /// least 1).  Takes effect for subsequently planned queries.
    #[deprecated(
        since = "0.2.0",
        note = "execution settings moved to `Session`: use `db.session().with_threads(n)`; \
                this shim only changes the default handed to new sessions"
    )]
    pub fn set_threads(&mut self, threads: usize) {
        self.default_settings.threads = threads.clamp(1, ranksql_common::MAX_THREADS);
    }

    /// The worker-thread budget new sessions (and the compatibility
    /// wrappers) default to.
    pub fn threads(&self) -> usize {
        self.default_settings.threads
    }

    /// Picks the storage backend new sessions (and the compatibility
    /// wrappers) plan against (builder form).  With
    /// [`StorageBackend::Columnar`] (or [`StorageBackend::Paged`], its
    /// disk-backed sibling) the planner runs the `columnarize` pass:
    /// sequential scans read the tables' columnar projections, simple
    /// filters are pushed into the scans, and top-k spines zone-prune
    /// blocks.  Results are identical across backends — only access paths,
    /// `tuples_scanned` and (on `Paged`) `pages_faulted` change.
    pub fn with_storage_backend(mut self, backend: StorageBackend) -> Self {
        self.default_settings.backend = backend;
        self
    }

    /// The storage backend new sessions default to.
    pub fn storage_backend(&self) -> StorageBackend {
        self.default_settings.backend
    }

    /// Eagerly builds (and caches) the columnar projection of every table —
    /// workload loaders call this so first-query latency does not pay the
    /// projection build.
    pub fn prebuild_columnar(&self) -> Result<()> {
        for name in self.catalog.table_names() {
            self.catalog.table(&name)?.columnar();
        }
        Ok(())
    }

    /// The statistics catalog of a table: per-column null counts, numeric
    /// min/max, boolean fractions and the staged distinct-count sketch the
    /// cost model consumes.  Built on first call; afterwards every insert
    /// folds the new row in incrementally, so repeated calls are cheap and
    /// never stale.
    pub fn table_stats(&self, table: &str) -> Result<ranksql_storage::StatsCatalog> {
        Ok(self.catalog.table(table)?.stats_catalog())
    }

    /// Aggregate plan-cache counters (hits, misses, cached shapes).
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plan_cache.stats()
    }

    /// Drops every cached plan shape (counters are kept).
    pub fn clear_plan_cache(&self) {
        self.plan_cache.clear();
    }

    pub(crate) fn plan_cache(&self) -> &PlanCache {
        &self.plan_cache
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Creates a table.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<Arc<Table>> {
        self.catalog.create_table(name, schema)
    }

    /// Inserts a row into a table.
    pub fn insert(&self, table: &str, values: Vec<Value>) -> Result<u64> {
        self.catalog.table(table)?.insert(values)
    }

    /// Inserts many rows into a table.
    pub fn insert_batch<I>(&self, table: &str, rows: I) -> Result<usize>
    where
        I: IntoIterator<Item = Vec<Value>>,
    {
        self.catalog.table(table)?.insert_batch(rows)
    }

    /// Creates a table from CSV text, inferring the schema from a header line
    /// and the sampled column values, and loads every row.  Returns the new
    /// table handle.  Use [`Database::load_csv`] to append to an existing
    /// table with a known schema instead.
    pub fn create_table_from_csv(
        &self,
        name: &str,
        csv_text: &str,
        options: &ranksql_storage::CsvOptions,
    ) -> Result<Arc<Table>> {
        let schema = ranksql_storage::infer_schema(csv_text, options)?;
        let rows = ranksql_storage::parse_csv(csv_text, &schema, options)?;
        let table = self.catalog.create_table(name, schema)?;
        table.insert_batch(rows)?;
        Ok(table)
    }

    /// Appends CSV rows to an existing table, coercing each column to the
    /// table's schema.  Returns the number of rows inserted.
    pub fn load_csv(
        &self,
        table: &str,
        csv_text: &str,
        options: &ranksql_storage::CsvOptions,
    ) -> Result<usize> {
        let table = self.catalog.table(table)?;
        let rows = ranksql_storage::parse_csv(csv_text, table.schema(), options)?;
        table.insert_batch(rows)
    }

    /// Plans a query under the given mode without executing it.
    ///
    /// With a thread budget above 1 the returned physical plan has been
    /// through the optimizer's parallelization pass: parallel-safe subtrees
    /// are wrapped in `Exchange`/`Repartition` nodes, which the executor
    /// fans across the worker pool.
    pub fn plan(&self, query: &RankQuery, mode: PlanMode) -> Result<OptimizedPlan> {
        self.plan_with_settings(
            query,
            mode,
            self.default_settings.threads,
            self.default_settings.backend,
        )
    }

    /// Plans under `mode` with an explicit worker-thread budget and storage
    /// backend (the session-aware form of [`Database::plan`]).
    ///
    /// Pass order: serial optimization → `columnarize` (annotate scans,
    /// push filters, mark zone pruning) → `parallelize` (wrap spines in
    /// exchanges; it treats columnar scans like any sequential scan, so
    /// columnar morsels flow through the exchange path).
    pub(crate) fn plan_with_settings(
        &self,
        query: &RankQuery,
        mode: PlanMode,
        threads: usize,
        backend: StorageBackend,
    ) -> Result<OptimizedPlan> {
        let verify = ranksql_verify::enabled();
        let mut optimized = self.plan_serial(query, mode)?;
        if verify {
            debug_verify_logical(&optimized.plan, &query.ranking, "optimize")?;
            debug_verify(&optimized.physical, &query.ranking, "optimize")?;
        }
        if backend.is_columnar() {
            optimized.physical = ranksql_optimizer::columnarize(
                optimized.physical,
                &ranksql_optimizer::CostModel::default(),
            );
            optimized.cost = optimized.physical.estimated_cost;
            if verify {
                debug_verify(&optimized.physical, &query.ranking, "columnarize")?;
            }
        }
        if threads > 1 {
            optimized.physical = ranksql_optimizer::parallelize(optimized.physical, threads);
            // The pass keeps cumulative per-node costs coherent, so the
            // plan's headline cost is the rewritten root's.
            optimized.cost = optimized.physical.estimated_cost;
            if verify {
                debug_verify(&optimized.physical, &query.ranking, "parallelize")?;
            }
        }
        Ok(optimized)
    }

    /// Runs the full validator over the plan this database would run for
    /// `query` under `mode` and its default settings, returning **every**
    /// diagnostic (warnings included) regardless of the `RANKSQL_VERIFY`
    /// gate.  A clean plan yields an empty vector.  The session-aware form
    /// is [`Session::verify_plan`].
    pub fn verify_plan(
        &self,
        query: &RankQuery,
        mode: PlanMode,
    ) -> Result<Vec<ranksql_verify::Diagnostic>> {
        let optimized = self.plan(query, mode)?;
        let opts = ranksql_verify::ValidateOptions::default();
        let mut diags =
            ranksql_verify::validate_logical(&optimized.plan, Some(&query.ranking), &opts);
        diags.extend(ranksql_verify::validate_physical(
            &optimized.physical,
            Some(&query.ranking),
            &opts,
        ));
        Ok(diags)
    }

    /// Plans with the per-mode optimizer configuration.  `RankOptimizer`
    /// always produces serial plans; parallelization happens exactly once,
    /// in [`Database::plan`], under the database's own thread budget.
    fn plan_serial(&self, query: &RankQuery, mode: PlanMode) -> Result<OptimizedPlan> {
        let serial_config = self.optimizer_config.clone();
        match mode {
            PlanMode::Canonical => {
                let plan = query.canonical_plan(&self.catalog)?;
                let physical = PhysicalPlan::from_logical(&plan)?;
                Ok(OptimizedPlan {
                    plan,
                    physical,
                    cost: ranksql_optimizer::Cost::ZERO,
                    estimated_cardinality: query.k as f64,
                    stats: Default::default(),
                })
            }
            PlanMode::Traditional => {
                let cfg = OptimizerConfig {
                    mode: OptimizerMode::Traditional,
                    ..serial_config.clone()
                };
                RankOptimizer::new(cfg).optimize(query, &self.catalog)
            }
            PlanMode::RankAware => {
                let cfg = OptimizerConfig {
                    mode: OptimizerMode::RankAwareHeuristic,
                    ..serial_config.clone()
                };
                RankOptimizer::new(cfg).optimize(query, &self.catalog)
            }
            PlanMode::RankAwareExhaustive => {
                let cfg = OptimizerConfig {
                    mode: OptimizerMode::RankAwareExhaustive,
                    ..serial_config.clone()
                };
                RankOptimizer::new(cfg).optimize(query, &self.catalog)
            }
            PlanMode::RankAwareRuleBased => {
                let cfg = OptimizerConfig {
                    mode: OptimizerMode::RankAwareRuleBased,
                    ..serial_config.clone()
                };
                RankOptimizer::new(cfg).optimize(query, &self.catalog)
            }
        }
    }

    /// Returns a human-readable explanation of the plan chosen for a query:
    /// the logical tree and the physical tree the executor will run, the
    /// latter with the optimizer's per-node cost and cardinality estimates.
    pub fn explain(&self, query: &RankQuery, mode: PlanMode) -> Result<String> {
        let optimized = self.plan(query, mode)?;
        let mut out = String::new();
        out.push_str(&format!(
            "mode: {:?}\nestimated cost: {:.1}\nestimated cardinality: {:.1}\n",
            mode,
            optimized.cost.value(),
            optimized.estimated_cardinality
        ));
        out.push_str("logical plan:\n");
        out.push_str(&optimized.plan.explain(Some(&query.ranking)));
        out.push_str("physical plan:\n");
        out.push_str(&optimized.physical.explain(Some(&query.ranking)));
        out.push_str(&explain_validation_footer(&optimized, &query.ranking));
        Ok(out)
    }

    /// Plans (rank-aware, heuristic) and executes a query.
    ///
    /// Compatibility wrapper over the Session API: equivalent to
    /// `db.session().execute(query)` — it prepares, binds no parameters,
    /// opens a cursor and drains it, hitting the plan cache like any
    /// prepared execution.
    pub fn execute(&self, query: &RankQuery) -> Result<QueryResult> {
        self.session().execute(query)
    }

    /// Plans under `mode` and executes the planned physical plan
    /// (compatibility wrapper over `session().with_mode(mode).execute()`).
    pub fn execute_with_mode(&self, query: &RankQuery, mode: PlanMode) -> Result<QueryResult> {
        self.session().with_mode(mode).execute(query)
    }

    /// Executes an explicit logical plan (e.g. one of the paper's
    /// hand-built plans) by structurally lowering it first.  Hand-built
    /// plans bypass the plan cache — there is no query shape to key them by.
    pub fn execute_plan(&self, query: &RankQuery, plan: &LogicalPlan) -> Result<QueryResult> {
        let physical = PhysicalPlan::from_logical(plan)?;
        self.execute_physical(query, &physical)
    }

    /// Executes a physical plan directly (compatibility wrapper: opens a
    /// [`Cursor`] over the plan and drains it).
    pub fn execute_physical(
        &self,
        query: &RankQuery,
        physical: &PhysicalPlan,
    ) -> Result<QueryResult> {
        self.cursor_for_physical(query, physical.clone())?
            .into_result()
    }

    /// Opens a streaming cursor over an explicit physical plan under the
    /// database's default settings (the non-draining form of
    /// [`Database::execute_physical`]).
    pub fn cursor_for_physical(&self, query: &RankQuery, physical: PhysicalPlan) -> Result<Cursor> {
        Cursor::open(&self.catalog, &self.default_settings, query, physical, None)
    }
}

/// Validates a pass's physical output, hard-failing planning on any
/// `Error`-severity diagnostic with the full report in the message.  Called
/// only when [`ranksql_verify::enabled`] (debug builds by default).
fn debug_verify(
    physical: &PhysicalPlan,
    ranking: &std::sync::Arc<ranksql_expr::RankingContext>,
    stage: &str,
) -> Result<()> {
    let diags = ranksql_verify::validate_physical(
        physical,
        Some(ranking),
        &ranksql_verify::ValidateOptions::default(),
    );
    if ranksql_verify::has_errors(&diags) {
        return Err(ranksql_common::RankSqlError::Plan(format!(
            "plan validation failed after the `{stage}` pass:\n{}",
            ranksql_verify::report(&diags)
        )));
    }
    Ok(())
}

/// The logical-plan half of [`debug_verify`].
fn debug_verify_logical(
    plan: &LogicalPlan,
    ranking: &std::sync::Arc<ranksql_expr::RankingContext>,
    stage: &str,
) -> Result<()> {
    let diags = ranksql_verify::validate_logical(
        plan,
        Some(ranking),
        &ranksql_verify::ValidateOptions::default(),
    );
    if ranksql_verify::has_errors(&diags) {
        return Err(ranksql_common::RankSqlError::Plan(format!(
            "logical plan validation failed after the `{stage}` pass:\n{}",
            ranksql_verify::report(&diags)
        )));
    }
    Ok(())
}

/// The `plan validation:` footer `explain` appends: the full validator
/// output over both trees (always computed — explain is a debugging
/// surface, so the footer ignores the `RANKSQL_VERIFY` gate).
pub(crate) fn explain_validation_footer(
    optimized: &OptimizedPlan,
    ranking: &std::sync::Arc<ranksql_expr::RankingContext>,
) -> String {
    let opts = ranksql_verify::ValidateOptions::default();
    let mut diags = ranksql_verify::validate_logical(&optimized.plan, Some(ranking), &opts);
    diags.extend(ranksql_verify::validate_physical(
        &optimized.physical,
        Some(ranking),
        &opts,
    ));
    ranksql_verify::footer(&diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QueryBuilder;
    use crate::prepared::Params;
    use ranksql_common::{DataType, Field};
    use ranksql_expr::{BoolExpr, RankPredicate};

    fn db_with_data() -> (Database, RankQuery) {
        let db = Database::new();
        db.create_table(
            "H",
            Schema::new(vec![
                Field::new("id", DataType::Int64),
                Field::new("city", DataType::Int64),
                Field::new("quality", DataType::Float64),
            ]),
        )
        .unwrap();
        db.create_table(
            "R",
            Schema::new(vec![
                Field::new("id", DataType::Int64),
                Field::new("city", DataType::Int64),
                Field::new("rating", DataType::Float64),
            ]),
        )
        .unwrap();
        for i in 0..60i64 {
            db.insert(
                "H",
                vec![
                    Value::from(i),
                    Value::from(i % 6),
                    Value::from(((i * 17) % 100) as f64 / 100.0),
                ],
            )
            .unwrap();
            db.insert(
                "R",
                vec![
                    Value::from(i),
                    Value::from(i % 6),
                    Value::from(((i * 23) % 100) as f64 / 100.0),
                ],
            )
            .unwrap();
        }
        let query = QueryBuilder::new()
            .tables(["H", "R"])
            .filter(BoolExpr::col_eq_col("H.city", "R.city"))
            .rank_predicate(RankPredicate::attribute("hq", "H.quality"))
            .rank_predicate(RankPredicate::attribute("rr", "R.rating"))
            .limit(4)
            .build()
            .unwrap();
        (db, query)
    }

    #[test]
    fn execute_matches_canonical_mode() {
        let (db, query) = db_with_data();
        let fast = db.execute(&query).unwrap();
        let naive = db.execute_with_mode(&query, PlanMode::Canonical).unwrap();
        assert_eq!(fast.rows.len(), 4);
        assert_eq!(fast.scores(), naive.scores());
    }

    #[test]
    fn all_modes_agree() {
        let (db, query) = db_with_data();
        let reference = db
            .execute_with_mode(&query, PlanMode::Canonical)
            .unwrap()
            .scores();
        for mode in [
            PlanMode::RankAware,
            PlanMode::RankAwareExhaustive,
            PlanMode::RankAwareRuleBased,
            PlanMode::Traditional,
        ] {
            let r = db.execute_with_mode(&query, mode).unwrap();
            assert_eq!(r.scores(), reference, "mode {mode:?}");
        }
    }

    #[test]
    #[allow(deprecated)] // exercises the legacy thread-setter shims on purpose
    fn parallel_execution_agrees_with_serial_in_every_mode() {
        let (mut db, query) = db_with_data();
        db.set_threads(1);
        let reference = db.execute_with_mode(&query, PlanMode::Canonical).unwrap();
        let ref_ids: Vec<_> = reference
            .rows
            .iter()
            .map(|t| t.tuple.id().clone())
            .collect();
        db.set_threads(4);
        // The parallel canonical plan actually contains an exchange.
        let text = db.explain(&query, PlanMode::Canonical).unwrap();
        assert!(text.contains("Exchange"), "{text}");
        assert!(text.contains("Repartition(morsels)"), "{text}");
        for mode in [
            PlanMode::Canonical,
            PlanMode::RankAware,
            PlanMode::RankAwareExhaustive,
            PlanMode::RankAwareRuleBased,
            PlanMode::Traditional,
        ] {
            let r = db.execute_with_mode(&query, mode).unwrap();
            assert_eq!(r.scores(), reference.scores(), "mode {mode:?}");
            let ids: Vec<_> = r.rows.iter().map(|t| t.tuple.id().clone()).collect();
            assert_eq!(ids, ref_ids, "mode {mode:?}");
        }
        assert_eq!(db.threads(), 4);
    }

    #[test]
    fn explain_mentions_plan_nodes() {
        let (db, query) = db_with_data();
        let text = db.explain(&query, PlanMode::Canonical).unwrap();
        assert!(text.contains("Limit[4]"));
        assert!(text.contains("Sort"));
        let text = db.explain(&query, PlanMode::RankAware).unwrap();
        assert!(text.contains("mode: RankAware"));
    }

    #[test]
    fn csv_ingestion_creates_and_appends() {
        let db = Database::new();
        let options = ranksql_storage::CsvOptions::default();
        let csv = "name,city,quality\ngrand,1,0.9\nplaza,2,0.7\n";
        let table = db.create_table_from_csv("Hotel", csv, &options).unwrap();
        assert_eq!(table.row_count(), 2);
        assert_eq!(table.schema().len(), 3);

        let appended = db
            .load_csv("Hotel", "name,city,quality\nlodge,1,0.5\n", &options)
            .unwrap();
        assert_eq!(appended, 1);
        assert_eq!(db.catalog().table("Hotel").unwrap().row_count(), 3);

        // The loaded table is immediately queryable.
        let query = QueryBuilder::new()
            .table("Hotel")
            .rank_predicate(RankPredicate::attribute("q", "Hotel.quality"))
            .limit(1)
            .build()
            .unwrap();
        let top = db.execute(&query).unwrap();
        assert_eq!(top.rows[0].tuple.value(0), &Value::from("grand"));

        // Malformed input is rejected with a storage error.
        assert!(db.load_csv("Hotel", "name,city\nx,1\n", &options).is_err());
    }

    /// Regression for the LRU plan cache: a hot shape that is re-bound
    /// throughout an eviction storm of distinct cold shapes must survive —
    /// the old arbitrary-entry eviction could drop it at any point.
    #[test]
    fn lru_plan_cache_keeps_the_hottest_shape_through_an_eviction_storm() {
        let db = Database::new();
        db.create_table("T", Schema::new(vec![Field::new("x", DataType::Int64)]))
            .unwrap();
        db.insert("T", vec![Value::from(1)]).unwrap();
        let query_with_filter = |lit: i64| {
            QueryBuilder::new()
                .table("T")
                .filter(BoolExpr::compare(
                    ranksql_expr::ScalarExpr::col("T.x"),
                    ranksql_expr::CompareOp::Lt,
                    ranksql_expr::ScalarExpr::lit(lit),
                ))
                .limit(1)
                .build()
                .unwrap()
        };
        // Canonical mode keeps planning cheap; each distinct literal is a
        // distinct cached shape.
        let session = db.session().with_mode(PlanMode::Canonical);
        let hot = session.prepare_query(query_with_filter(-1)).unwrap();
        hot.execute().unwrap();
        assert_eq!(db.plan_cache_stats().misses, 1);

        // Storm: well over PLAN_CACHE_CAP distinct shapes, touching the hot
        // shape every 50 preparations so its LRU stamp stays fresh.
        for i in 0..(PLAN_CACHE_CAP as i64 + 100) {
            session
                .prepare_query(query_with_filter(i))
                .unwrap()
                .execute()
                .unwrap();
            if i % 50 == 0 {
                assert!(
                    hot.bind(Params::none()).unwrap().cache_hit(),
                    "hot shape evicted during the storm (i = {i})"
                );
            }
        }
        let stats = db.plan_cache_stats();
        assert!(stats.entries <= PLAN_CACHE_CAP, "cap enforced: {stats:?}");
        assert!(
            hot.bind(Params::none()).unwrap().cache_hit(),
            "the hottest shape must survive the eviction storm"
        );
        // A cold shape from the start of the storm was evicted (it was the
        // least recently used); re-binding it re-optimizes.
        assert!(!session
            .prepare_query(query_with_filter(0))
            .unwrap()
            .bind(Params::none())
            .unwrap()
            .cache_hit());
    }

    /// Regression for the lazily-compacted access log: a shape that is
    /// evicted and then **re-inserted** must behave like a brand-new entry —
    /// it hits immediately, and the stale log records from its first life
    /// (now matching nothing) must neither evict it early nor keep a ghost
    /// entry alive.  The LRU stamp is taken *inside* the cache lock, so the
    /// re-insertion stamp is strictly newer than every record already in
    /// the log.
    #[test]
    fn plan_cache_hits_after_eviction_and_reinsert() {
        let db = Database::new();
        db.create_table("T", Schema::new(vec![Field::new("x", DataType::Int64)]))
            .unwrap();
        db.insert("T", vec![Value::from(1)]).unwrap();
        let query_with_filter = |lit: i64| {
            QueryBuilder::new()
                .table("T")
                .filter(BoolExpr::compare(
                    ranksql_expr::ScalarExpr::col("T.x"),
                    ranksql_expr::CompareOp::Lt,
                    ranksql_expr::ScalarExpr::lit(lit),
                ))
                .limit(1)
                .build()
                .unwrap()
        };
        let session = db.session().with_mode(PlanMode::Canonical);

        // Life 1: the shape enters the cache and is touched a few times,
        // leaving several superseded records in the access log.
        let hot = session.prepare_query(query_with_filter(-1)).unwrap();
        hot.execute().unwrap();
        for _ in 0..4 {
            assert!(hot.bind(Params::none()).unwrap().cache_hit());
        }

        // An eviction storm of > cap distinct cold shapes pushes it out (it
        // is never touched during the storm, so it becomes the LRU entry).
        for i in 0..(PLAN_CACHE_CAP as i64 + 8) {
            session
                .prepare_query(query_with_filter(i))
                .unwrap()
                .execute()
                .unwrap();
        }
        assert!(
            !hot.bind(Params::none()).unwrap().cache_hit(),
            "the untouched shape must have been evicted by the storm"
        );

        // That miss re-optimized and re-inserted the shape.  Life 2: it
        // hits immediately, and survives a further cold burst — its
        // re-insertion stamp is the newest in the cache, so the burst
        // evicts genuinely older entries instead.
        assert!(
            hot.bind(Params::none()).unwrap().cache_hit(),
            "a re-inserted shape must hit on the very next bind"
        );
        for i in 0..64 {
            session
                .prepare_query(query_with_filter(1_000_000 + i))
                .unwrap()
                .execute()
                .unwrap();
        }
        assert!(
            hot.bind(Params::none()).unwrap().cache_hit(),
            "stale life-1 log records must not age the re-inserted shape"
        );
        assert!(db.plan_cache_stats().entries <= PLAN_CACHE_CAP);
    }

    #[test]
    fn table_stats_surface_on_database_and_explain_analyze() {
        let (db, query) = db_with_data();
        // Direct exposure: the catalog reflects the loaded data exactly
        // (60 rows, 6 distinct cities) and stays current across inserts.
        let stats = db.table_stats("H").unwrap();
        assert_eq!(stats.row_count, 60);
        assert_eq!(stats.column("city").unwrap().ndv(), 6);
        db.insert(
            "H",
            vec![Value::from(60i64), Value::from(7i64), Value::from(0.5)],
        )
        .unwrap();
        let stats = db.table_stats("H").unwrap();
        assert_eq!(stats.row_count, 61);
        assert_eq!(stats.column("city").unwrap().ndv(), 7);

        // A rank-aware execution went through the estimators, which prime
        // the per-table catalogs: explain_analyze reports them.
        let result = db.execute(&query).unwrap();
        assert_eq!(result.table_stats.len(), 2, "both scanned tables");
        let text = result.explain_analyze(Some(&query.ranking));
        assert!(text.contains("statistics[H]: rows=61"), "{text}");
        assert!(text.contains("city ndv=7"), "{text}");
        assert!(text.contains("statistics[R]: rows=60"), "{text}");
    }

    #[test]
    fn insert_batch_and_catalog_access() {
        let db = Database::new();
        db.create_table("T", Schema::new(vec![Field::new("x", DataType::Int64)]))
            .unwrap();
        let n = db
            .insert_batch("T", (0..5i64).map(|i| vec![Value::from(i)]))
            .unwrap();
        assert_eq!(n, 5);
        assert_eq!(db.catalog().table("T").unwrap().row_count(), 5);
        assert!(db.insert("missing", vec![]).is_err());
    }
}
