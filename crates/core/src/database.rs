//! The `Database` facade: catalog + optimizer + executor in one handle.

use std::sync::Arc;

use ranksql_algebra::{LogicalPlan, PhysicalPlan, RankQuery};
use ranksql_common::{Result, Schema, Value};
use ranksql_executor::{execute_physical_plan, ExecutionContext};
use ranksql_optimizer::{OptimizedPlan, OptimizerConfig, OptimizerMode, RankOptimizer};
use ranksql_storage::{Catalog, Table};

use crate::result::QueryResult;

/// How a query should be planned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanMode {
    /// Rank-aware cost-based optimization with the Figure 10 heuristics
    /// (the default).
    #[default]
    RankAware,
    /// Rank-aware optimization with exhaustive two-dimensional enumeration.
    RankAwareExhaustive,
    /// Rank-aware optimization with the Volcano/Cascades-style rule-based
    /// search (transformation rules = the Figure 5 laws).
    RankAwareRuleBased,
    /// Traditional materialise-then-sort planning (ranking-blind baseline).
    Traditional,
    /// No optimization: execute the canonical plan of Eq. 1 directly.
    Canonical,
}

/// An embedded RankSQL database: owns a catalog and executes top-k queries.
pub struct Database {
    catalog: Catalog,
    optimizer_config: OptimizerConfig,
    /// Worker threads for morsel-driven parallel execution.  With more than
    /// one thread, planning runs the optimizer's parallelization pass
    /// (inserting `Exchange`/`Repartition` under parallel-safe subtrees) and
    /// execution fans morsels across that many workers.  Defaults to the
    /// `RANKSQL_THREADS` environment variable (or 1 = serial).
    threads: usize,
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Database {
            catalog: Catalog::new(),
            optimizer_config: OptimizerConfig::default(),
            threads: ranksql_common::default_thread_count(),
        }
    }

    /// Creates a database with a custom optimizer configuration.
    pub fn with_optimizer_config(config: OptimizerConfig) -> Self {
        Database {
            optimizer_config: config,
            ..Database::new()
        }
    }

    /// Sets the worker-thread budget for parallel execution (builder form;
    /// clamped to at least 1).  `1` keeps planning and execution fully
    /// serial.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.set_threads(threads);
        self
    }

    /// Sets the worker-thread budget for parallel execution (clamped to at
    /// least 1).  Takes effect for subsequently planned queries.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.clamp(1, ranksql_common::MAX_THREADS);
    }

    /// The configured worker-thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Creates a table.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<Arc<Table>> {
        self.catalog.create_table(name, schema)
    }

    /// Inserts a row into a table.
    pub fn insert(&self, table: &str, values: Vec<Value>) -> Result<u64> {
        self.catalog.table(table)?.insert(values)
    }

    /// Inserts many rows into a table.
    pub fn insert_batch<I>(&self, table: &str, rows: I) -> Result<usize>
    where
        I: IntoIterator<Item = Vec<Value>>,
    {
        self.catalog.table(table)?.insert_batch(rows)
    }

    /// Creates a table from CSV text, inferring the schema from a header line
    /// and the sampled column values, and loads every row.  Returns the new
    /// table handle.  Use [`Database::load_csv`] to append to an existing
    /// table with a known schema instead.
    pub fn create_table_from_csv(
        &self,
        name: &str,
        csv_text: &str,
        options: &ranksql_storage::CsvOptions,
    ) -> Result<Arc<Table>> {
        let schema = ranksql_storage::infer_schema(csv_text, options)?;
        let rows = ranksql_storage::parse_csv(csv_text, &schema, options)?;
        let table = self.catalog.create_table(name, schema)?;
        table.insert_batch(rows)?;
        Ok(table)
    }

    /// Appends CSV rows to an existing table, coercing each column to the
    /// table's schema.  Returns the number of rows inserted.
    pub fn load_csv(
        &self,
        table: &str,
        csv_text: &str,
        options: &ranksql_storage::CsvOptions,
    ) -> Result<usize> {
        let table = self.catalog.table(table)?;
        let rows = ranksql_storage::parse_csv(csv_text, table.schema(), options)?;
        table.insert_batch(rows)
    }

    /// Plans a query under the given mode without executing it.
    ///
    /// With a thread budget above 1 the returned physical plan has been
    /// through the optimizer's parallelization pass: parallel-safe subtrees
    /// are wrapped in `Exchange`/`Repartition` nodes, which the executor
    /// fans across the worker pool.
    pub fn plan(&self, query: &RankQuery, mode: PlanMode) -> Result<OptimizedPlan> {
        let mut optimized = self.plan_serial(query, mode)?;
        if self.threads > 1 {
            optimized.physical = ranksql_optimizer::parallelize(optimized.physical, self.threads);
            // The pass keeps cumulative per-node costs coherent, so the
            // plan's headline cost is the rewritten root's.
            optimized.cost = optimized.physical.estimated_cost;
        }
        Ok(optimized)
    }

    /// Plans with the per-mode optimizer configuration.  `RankOptimizer`
    /// always produces serial plans; parallelization happens exactly once,
    /// in [`Database::plan`], under the database's own thread budget.
    fn plan_serial(&self, query: &RankQuery, mode: PlanMode) -> Result<OptimizedPlan> {
        let serial_config = self.optimizer_config.clone();
        match mode {
            PlanMode::Canonical => {
                let plan = query.canonical_plan(&self.catalog)?;
                let physical = PhysicalPlan::from_logical(&plan)?;
                Ok(OptimizedPlan {
                    plan,
                    physical,
                    cost: ranksql_optimizer::Cost::ZERO,
                    estimated_cardinality: query.k as f64,
                    stats: Default::default(),
                })
            }
            PlanMode::Traditional => {
                let cfg = OptimizerConfig {
                    mode: OptimizerMode::Traditional,
                    ..serial_config.clone()
                };
                RankOptimizer::new(cfg).optimize(query, &self.catalog)
            }
            PlanMode::RankAware => {
                let cfg = OptimizerConfig {
                    mode: OptimizerMode::RankAwareHeuristic,
                    ..serial_config.clone()
                };
                RankOptimizer::new(cfg).optimize(query, &self.catalog)
            }
            PlanMode::RankAwareExhaustive => {
                let cfg = OptimizerConfig {
                    mode: OptimizerMode::RankAwareExhaustive,
                    ..serial_config.clone()
                };
                RankOptimizer::new(cfg).optimize(query, &self.catalog)
            }
            PlanMode::RankAwareRuleBased => {
                let cfg = OptimizerConfig {
                    mode: OptimizerMode::RankAwareRuleBased,
                    ..serial_config.clone()
                };
                RankOptimizer::new(cfg).optimize(query, &self.catalog)
            }
        }
    }

    /// Returns a human-readable explanation of the plan chosen for a query:
    /// the logical tree and the physical tree the executor will run, the
    /// latter with the optimizer's per-node cost and cardinality estimates.
    pub fn explain(&self, query: &RankQuery, mode: PlanMode) -> Result<String> {
        let optimized = self.plan(query, mode)?;
        let mut out = String::new();
        out.push_str(&format!(
            "mode: {:?}\nestimated cost: {:.1}\nestimated cardinality: {:.1}\n",
            mode,
            optimized.cost.value(),
            optimized.estimated_cardinality
        ));
        out.push_str("logical plan:\n");
        out.push_str(&optimized.plan.explain(Some(&query.ranking)));
        out.push_str("physical plan:\n");
        out.push_str(&optimized.physical.explain(Some(&query.ranking)));
        Ok(out)
    }

    /// Plans (rank-aware, heuristic) and executes a query.
    pub fn execute(&self, query: &RankQuery) -> Result<QueryResult> {
        self.execute_with_mode(query, PlanMode::RankAware)
    }

    /// Plans under `mode` and executes the planned physical plan.
    pub fn execute_with_mode(&self, query: &RankQuery, mode: PlanMode) -> Result<QueryResult> {
        let optimized = self.plan(query, mode)?;
        self.execute_physical(query, &optimized.physical)
    }

    /// Executes an explicit logical plan (e.g. one of the paper's hand-built
    /// plans) by structurally lowering it first.
    pub fn execute_plan(&self, query: &RankQuery, plan: &LogicalPlan) -> Result<QueryResult> {
        let physical = PhysicalPlan::from_logical(plan)?;
        self.execute_physical(query, &physical)
    }

    /// Executes a physical plan directly.
    pub fn execute_physical(
        &self,
        query: &RankQuery,
        physical: &PhysicalPlan,
    ) -> Result<QueryResult> {
        let exec = ExecutionContext::new(Arc::clone(&query.ranking)).with_threads(self.threads);
        let execution = execute_physical_plan(physical, &self.catalog, &exec)?;
        QueryResult::from_execution(query, physical, execution)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QueryBuilder;
    use ranksql_common::{DataType, Field};
    use ranksql_expr::{BoolExpr, RankPredicate};

    fn db_with_data() -> (Database, RankQuery) {
        let db = Database::new();
        db.create_table(
            "H",
            Schema::new(vec![
                Field::new("id", DataType::Int64),
                Field::new("city", DataType::Int64),
                Field::new("quality", DataType::Float64),
            ]),
        )
        .unwrap();
        db.create_table(
            "R",
            Schema::new(vec![
                Field::new("id", DataType::Int64),
                Field::new("city", DataType::Int64),
                Field::new("rating", DataType::Float64),
            ]),
        )
        .unwrap();
        for i in 0..60i64 {
            db.insert(
                "H",
                vec![
                    Value::from(i),
                    Value::from(i % 6),
                    Value::from(((i * 17) % 100) as f64 / 100.0),
                ],
            )
            .unwrap();
            db.insert(
                "R",
                vec![
                    Value::from(i),
                    Value::from(i % 6),
                    Value::from(((i * 23) % 100) as f64 / 100.0),
                ],
            )
            .unwrap();
        }
        let query = QueryBuilder::new()
            .tables(["H", "R"])
            .filter(BoolExpr::col_eq_col("H.city", "R.city"))
            .rank_predicate(RankPredicate::attribute("hq", "H.quality"))
            .rank_predicate(RankPredicate::attribute("rr", "R.rating"))
            .limit(4)
            .build()
            .unwrap();
        (db, query)
    }

    #[test]
    fn execute_matches_canonical_mode() {
        let (db, query) = db_with_data();
        let fast = db.execute(&query).unwrap();
        let naive = db.execute_with_mode(&query, PlanMode::Canonical).unwrap();
        assert_eq!(fast.rows.len(), 4);
        assert_eq!(fast.scores(), naive.scores());
    }

    #[test]
    fn all_modes_agree() {
        let (db, query) = db_with_data();
        let reference = db
            .execute_with_mode(&query, PlanMode::Canonical)
            .unwrap()
            .scores();
        for mode in [
            PlanMode::RankAware,
            PlanMode::RankAwareExhaustive,
            PlanMode::RankAwareRuleBased,
            PlanMode::Traditional,
        ] {
            let r = db.execute_with_mode(&query, mode).unwrap();
            assert_eq!(r.scores(), reference, "mode {mode:?}");
        }
    }

    #[test]
    fn parallel_execution_agrees_with_serial_in_every_mode() {
        let (mut db, query) = db_with_data();
        db.set_threads(1);
        let reference = db.execute_with_mode(&query, PlanMode::Canonical).unwrap();
        let ref_ids: Vec<_> = reference
            .rows
            .iter()
            .map(|t| t.tuple.id().clone())
            .collect();
        db.set_threads(4);
        // The parallel canonical plan actually contains an exchange.
        let text = db.explain(&query, PlanMode::Canonical).unwrap();
        assert!(text.contains("Exchange"), "{text}");
        assert!(text.contains("Repartition(morsels)"), "{text}");
        for mode in [
            PlanMode::Canonical,
            PlanMode::RankAware,
            PlanMode::RankAwareExhaustive,
            PlanMode::RankAwareRuleBased,
            PlanMode::Traditional,
        ] {
            let r = db.execute_with_mode(&query, mode).unwrap();
            assert_eq!(r.scores(), reference.scores(), "mode {mode:?}");
            let ids: Vec<_> = r.rows.iter().map(|t| t.tuple.id().clone()).collect();
            assert_eq!(ids, ref_ids, "mode {mode:?}");
        }
        assert_eq!(db.threads(), 4);
    }

    #[test]
    fn explain_mentions_plan_nodes() {
        let (db, query) = db_with_data();
        let text = db.explain(&query, PlanMode::Canonical).unwrap();
        assert!(text.contains("Limit[4]"));
        assert!(text.contains("Sort"));
        let text = db.explain(&query, PlanMode::RankAware).unwrap();
        assert!(text.contains("mode: RankAware"));
    }

    #[test]
    fn csv_ingestion_creates_and_appends() {
        let db = Database::new();
        let options = ranksql_storage::CsvOptions::default();
        let csv = "name,city,quality\ngrand,1,0.9\nplaza,2,0.7\n";
        let table = db.create_table_from_csv("Hotel", csv, &options).unwrap();
        assert_eq!(table.row_count(), 2);
        assert_eq!(table.schema().len(), 3);

        let appended = db
            .load_csv("Hotel", "name,city,quality\nlodge,1,0.5\n", &options)
            .unwrap();
        assert_eq!(appended, 1);
        assert_eq!(db.catalog().table("Hotel").unwrap().row_count(), 3);

        // The loaded table is immediately queryable.
        let query = QueryBuilder::new()
            .table("Hotel")
            .rank_predicate(RankPredicate::attribute("q", "Hotel.quality"))
            .limit(1)
            .build()
            .unwrap();
        let top = db.execute(&query).unwrap();
        assert_eq!(top.rows[0].tuple.value(0), &Value::from("grand"));

        // Malformed input is rejected with a storage error.
        assert!(db.load_csv("Hotel", "name,city\nx,1\n", &options).is_err());
    }

    #[test]
    fn insert_batch_and_catalog_access() {
        let db = Database::new();
        db.create_table("T", Schema::new(vec![Field::new("x", DataType::Int64)]))
            .unwrap();
        let n = db
            .insert_batch("T", (0..5i64).map(|i| vec![Value::from(i)]))
            .unwrap();
        assert_eq!(n, 5);
        assert_eq!(db.catalog().table("T").unwrap().row_count(), 5);
        assert!(db.insert("missing", vec![]).is_err());
    }
}
