//! A fluent builder for rank-relational queries.

use ranksql_algebra::RankQuery;
use ranksql_common::{RankSqlError, Result};
use ranksql_expr::{BoolExpr, RankPredicate, RankingContext, ScoringFunction};

/// Builds a [`RankQuery`] step by step.
///
/// The builder mirrors the four predicate kinds of Section 2.1: Boolean
/// selections and joins go through [`QueryBuilder::filter`], rank selections
/// and rank joins through [`QueryBuilder::rank_predicate`].
#[derive(Debug, Default, Clone)]
pub struct QueryBuilder {
    tables: Vec<String>,
    filters: Vec<BoolExpr>,
    rank_predicates: Vec<RankPredicate>,
    scoring: Option<ScoringFunction>,
    k: Option<usize>,
    projection: Option<Vec<String>>,
}

impl QueryBuilder {
    /// Starts an empty builder.
    pub fn new() -> Self {
        QueryBuilder::default()
    }

    /// Adds a table to the FROM list.
    pub fn table(mut self, name: impl Into<String>) -> Self {
        self.tables.push(name.into());
        self
    }

    /// Adds several tables to the FROM list.
    pub fn tables<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.tables.extend(names.into_iter().map(Into::into));
        self
    }

    /// Adds a Boolean predicate (selection or join condition).
    pub fn filter(mut self, predicate: BoolExpr) -> Self {
        self.filters.push(predicate);
        self
    }

    /// Adds a ranking predicate.
    pub fn rank_predicate(mut self, predicate: RankPredicate) -> Self {
        self.rank_predicates.push(predicate);
        self
    }

    /// Sets the scoring function (defaults to summation, as in the paper).
    pub fn scoring(mut self, scoring: ScoringFunction) -> Self {
        self.scoring = Some(scoring);
        self
    }

    /// Sets the number of results to return.
    pub fn limit(mut self, k: usize) -> Self {
        self.k = Some(k);
        self
    }

    /// Restricts the output columns.
    pub fn project<I, S>(mut self, columns: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.projection = Some(columns.into_iter().map(Into::into).collect());
        self
    }

    /// Builds the query, validating the pieces.
    pub fn build(self) -> Result<RankQuery> {
        if self.tables.is_empty() {
            return Err(RankSqlError::Plan(
                "a query needs at least one table".into(),
            ));
        }
        let k = self
            .k
            .ok_or_else(|| RankSqlError::Plan("a top-k query needs LIMIT k".into()))?;
        if let ScoringFunction::WeightedSum(w) =
            self.scoring.clone().unwrap_or(ScoringFunction::Sum)
        {
            if w.len() != self.rank_predicates.len() {
                return Err(RankSqlError::Plan(format!(
                    "weighted sum has {} weights but the query has {} ranking predicates",
                    w.len(),
                    self.rank_predicates.len()
                )));
            }
        }
        let ranking = RankingContext::new(
            self.rank_predicates,
            self.scoring.unwrap_or(ScoringFunction::Sum),
        );
        let mut query = RankQuery::new(self.tables, self.filters, ranking, k);
        if let Some(cols) = self.projection {
            query = query.with_projection(cols);
        }
        Ok(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_complete_query() {
        let q = QueryBuilder::new()
            .tables(["R", "S"])
            .filter(BoolExpr::col_eq_col("R.a", "S.a"))
            .rank_predicate(RankPredicate::attribute("p1", "R.p"))
            .rank_predicate(RankPredicate::attribute("p2", "S.p"))
            .scoring(ScoringFunction::Sum)
            .limit(7)
            .project(["R.a"])
            .build()
            .unwrap();
        assert_eq!(q.tables, vec!["R".to_string(), "S".to_string()]);
        assert_eq!(q.k, 7);
        assert_eq!(q.num_rank_predicates(), 2);
        assert_eq!(q.projection.as_deref(), Some(&["R.a".to_string()][..]));
    }

    #[test]
    fn missing_pieces_are_rejected() {
        assert!(QueryBuilder::new().limit(1).build().is_err());
        assert!(QueryBuilder::new().table("R").build().is_err());
    }

    #[test]
    fn weighted_sum_arity_is_checked() {
        let bad = QueryBuilder::new()
            .table("R")
            .rank_predicate(RankPredicate::attribute("p1", "R.p"))
            .scoring(ScoringFunction::weighted_sum(vec![1.0, 2.0]))
            .limit(1)
            .build();
        assert!(bad.is_err());
        let good = QueryBuilder::new()
            .table("R")
            .rank_predicate(RankPredicate::attribute("p1", "R.p"))
            .scoring(ScoringFunction::weighted_sum(vec![2.0]))
            .limit(1)
            .build();
        assert!(good.is_ok());
    }

    #[test]
    fn defaults_to_sum_scoring() {
        let q = QueryBuilder::new()
            .table("R")
            .rank_predicate(RankPredicate::attribute("p1", "R.p"))
            .limit(1)
            .build()
            .unwrap();
        assert_eq!(q.ranking.scoring(), &ScoringFunction::Sum);
    }
}
