//! A small SQL-ish front end for top-k queries.
//!
//! The accepted grammar covers the paper's query form (PostgreSQL LIMIT
//! syntax):
//!
//! ```text
//! SELECT (* | col, col, ...)
//! FROM table, table, ...
//! [WHERE conjunct AND conjunct AND ...]
//! ORDER BY term + term + ...
//! LIMIT (k | ?)
//! ```
//!
//! where a WHERE conjunct is `col op col`, `col op literal`, `col op ?` (a
//! prepared-statement placeholder) or a bare boolean column, and an ORDER BY
//! term is either a bare (qualified) column — a ranking predicate reading
//! that column — or `name(col)`, naming the predicate explicitly (e.g.
//! `f1(A.p1)`), optionally with a trailing `COST n` annotation to model an
//! expensive predicate.
//!
//! `?` placeholders number left to right from 0 and are bound later through
//! [`Params`](crate::Params); `LIMIT ?` marks `k` itself as bind-time
//! (`Params::k`).
//!
//! Parse failures carry a **byte offset** into the original input
//! ([`ParseError::pos`]) pointing at the offending token, so callers can
//! render a caret under the mistake.

use std::fmt;

use ranksql_algebra::RankQuery;
use ranksql_common::{RankSqlError, Result, Value};
use ranksql_expr::{
    BoolExpr, CompareOp, RankPredicate, RankingContext, ScalarExpr, ScoringFunction,
};

/// A parse failure: what was expected, and the byte offset into the
/// original input where the offending token starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the original query text.
    pub pos: usize,
    /// What the parser expected at `pos`.
    pub expected: String,
}

impl ParseError {
    fn new(pos: usize, expected: impl Into<String>) -> Self {
        ParseError {
            pos,
            expected: expected.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at byte {}: expected {}", self.pos, self.expected)
    }
}

impl std::error::Error for ParseError {}

impl From<ParseError> for RankSqlError {
    fn from(e: ParseError) -> Self {
        RankSqlError::Parse(e.to_string())
    }
}

/// Parses the SQL-ish top-k syntax into a [`RankQuery`]; see
/// [`parse_topk_query_spanned`] for the error-span-preserving form.
pub fn parse_topk_query(sql: &str) -> Result<RankQuery> {
    Ok(parse_topk_query_spanned(sql)?)
}

/// Parses the SQL-ish top-k syntax, reporting failures as a structured
/// [`ParseError`] with a byte offset into `sql`.
pub fn parse_topk_query_spanned(sql: &str) -> std::result::Result<RankQuery, ParseError> {
    // Offsets are reported against the *original* input, so account for the
    // leading whitespace the parser trims away.
    let base = sql.len() - sql.trim_start().len();
    let text = sql.trim().trim_end_matches(';');
    let lowered = text.to_lowercase();
    let end = base + text.len();

    let select_pos = lowered
        .find("select")
        .ok_or_else(|| ParseError::new(base, "a SELECT clause"))?;
    let from_pos = lowered
        .find("from")
        .ok_or_else(|| ParseError::new(end, "a FROM clause"))?;
    let where_pos = lowered.find(" where ");
    let order_pos = lowered
        .find(" order by ")
        .ok_or_else(|| ParseError::new(end, "an ORDER BY clause (top-k queries are ranked)"))?;
    let limit_pos = lowered
        .find(" limit ")
        .ok_or_else(|| ParseError::new(end, "a LIMIT clause (top-k queries need k)"))?;

    // Clauses must appear in SQL order (SELECT … FROM … [WHERE …] ORDER BY …
    // LIMIT …) and may not overlap; anything else is a parse error (pointing
    // at the out-of-place clause), never a slicing panic.  Each entry is
    // `(match position incl. delimiter, keyword start, keyword end, name,
    // rank)`.
    {
        let mut clauses = vec![
            (
                select_pos,
                select_pos,
                select_pos + "select".len(),
                "SELECT",
                0usize,
            ),
            (from_pos, from_pos, from_pos + "from".len(), "FROM", 1),
            (
                order_pos,
                order_pos + 1,
                order_pos + " order by ".len(),
                "ORDER BY",
                3,
            ),
            (
                limit_pos,
                limit_pos + 1,
                limit_pos + " limit ".len(),
                "LIMIT",
                4,
            ),
        ];
        if let Some(w) = where_pos {
            clauses.push((w, w + 1, w + " where ".len(), "WHERE", 2));
        }
        clauses.sort_by_key(|&(pos, ..)| pos);
        if let Some(&(_, kw_start, _, name, _)) = clauses
            .windows(2)
            .find(|w| {
                let (.., prev_end, _, prev_rank) = w[0];
                let (cur_match, .., cur_rank) = w[1];
                // Out of rank order, or the previous clause's keyword spills
                // past where this clause's (delimiter-inclusive) match
                // begins — i.e. no room for the previous clause's body.
                prev_rank > cur_rank || prev_end > cur_match
            })
            .map(|w| &w[1])
        {
            return Err(ParseError::new(
                base + kw_start,
                format!(
                    "clauses in the order SELECT … FROM … [WHERE …] ORDER BY … LIMIT … \
                     ({name} is out of place)"
                ),
            ));
        }
    }

    let select_clause = text[select_pos + "select".len()..from_pos].trim();
    let from_end = where_pos.unwrap_or(order_pos);
    let from_clause_start = from_pos + "from".len();
    let from_clause = text[from_clause_start..from_end].trim();
    let where_clause_start = where_pos.map(|w| w + " where ".len());
    let where_clause = where_clause_start.map(|s| text[s..order_pos].trim());
    let order_clause_start = order_pos + " order by ".len();
    let order_clause = text[order_clause_start..limit_pos].trim();
    let limit_clause_start = limit_pos + " limit ".len();
    let limit_clause = text[limit_clause_start..].trim();

    // FROM
    let tables: Vec<String> = from_clause
        .split(',')
        .map(|t| t.trim().to_owned())
        .filter(|t| !t.is_empty())
        .collect();
    if tables.is_empty() {
        return Err(ParseError::new(
            base + from_clause_start,
            "at least one table name in FROM",
        ));
    }

    // SELECT
    let projection = if select_clause == "*" {
        None
    } else {
        Some(
            select_clause
                .split(',')
                .map(|c| c.trim().to_owned())
                .filter(|c| !c.is_empty())
                .collect::<Vec<_>>(),
        )
    };

    // Positional `?` placeholders number left to right across the whole
    // statement (WHERE first, since ORDER BY terms take none).
    let mut next_param = 0usize;

    // WHERE
    let mut filters = Vec::new();
    if let Some(clause) = where_clause {
        let clause_base = base + where_clause_start.expect("clause present");
        for (off, conjunct) in split_conjuncts_with_offsets(clause) {
            filters.push(parse_condition(
                &conjunct,
                clause_base + off,
                &mut next_param,
            )?);
        }
    }

    // ORDER BY
    let mut predicates = Vec::new();
    let order_base = base + order_clause_start;
    let mut term_start = 0usize;
    for term in order_clause.split('+') {
        let off = term_start + (term.len() - term.trim_start().len());
        term_start += term.len() + 1; // + separator
        predicates.push(parse_rank_term(
            term.trim(),
            predicates.len(),
            order_base + off,
        )?);
    }
    if predicates.is_empty() {
        return Err(ParseError::new(
            order_base,
            "at least one ranking predicate in ORDER BY",
        ));
    }

    // LIMIT: a number, or `?` to bind k at execution time.
    let limit_token = limit_clause.split_whitespace().next().unwrap_or("");
    let (k, k_is_param) = if limit_token == "?" {
        (0, true)
    } else {
        let k: usize = limit_token.parse().map_err(|_| {
            ParseError::new(
                base + limit_clause_start,
                format!("a number or `?` after LIMIT, found `{limit_clause}`"),
            )
        })?;
        (k, false)
    };

    let ranking = RankingContext::new(predicates, ScoringFunction::Sum);
    let mut query = RankQuery::new(tables, filters, ranking, k);
    if k_is_param {
        query = query.with_k_param();
    }
    if let Some(cols) = projection {
        query = query.with_projection(cols);
    }
    Ok(query)
}

/// Splits a WHERE clause at ` and ` boundaries, keeping each conjunct's
/// byte offset within the clause.
fn split_conjuncts_with_offsets(clause: &str) -> Vec<(usize, String)> {
    let lowered = clause.to_lowercase();
    let sep = " and ";
    let mut parts = Vec::new();
    let mut start = 0;
    loop {
        let piece_end = lowered[start..]
            .find(sep)
            .map(|p| start + p)
            .unwrap_or(clause.len());
        let piece = &clause[start..piece_end];
        let trimmed = piece.trim();
        if !trimmed.is_empty() {
            let off = start + (piece.len() - piece.trim_start().len());
            parts.push((off, trimmed.to_owned()));
        }
        if piece_end == clause.len() {
            return parts;
        }
        start = piece_end + sep.len();
    }
}

fn parse_operand(token: &str, next_param: &mut usize) -> ScalarExpr {
    let token = token.trim();
    if token == "?" {
        let slot = *next_param;
        *next_param += 1;
        return ScalarExpr::param(slot);
    }
    if let Ok(i) = token.parse::<i64>() {
        return ScalarExpr::lit(i);
    }
    if let Ok(f) = token.parse::<f64>() {
        return ScalarExpr::lit(f);
    }
    if (token.starts_with('\'') && token.ends_with('\'') && token.len() >= 2)
        || (token.starts_with('"') && token.ends_with('"') && token.len() >= 2)
    {
        return ScalarExpr::Literal(Value::from(&token[1..token.len() - 1]));
    }
    // A (possibly qualified) column, allowing simple `a + b` arithmetic.
    if let Some((l, r)) = token.split_once('+') {
        return parse_operand(l, next_param).add(parse_operand(r, next_param));
    }
    ScalarExpr::col(token)
}

fn parse_condition(
    conjunct: &str,
    pos: usize,
    next_param: &mut usize,
) -> std::result::Result<BoolExpr, ParseError> {
    const OPS: [(&str, CompareOp); 6] = [
        ("<=", CompareOp::LtEq),
        (">=", CompareOp::GtEq),
        ("<>", CompareOp::NotEq),
        ("!=", CompareOp::NotEq),
        ("<", CompareOp::Lt),
        (">", CompareOp::Gt),
    ];
    // `=` handled last so `<=`, `>=`, `<>` are not split at their `=`.
    for (sym, op) in OPS {
        if let Some((l, r)) = conjunct.split_once(sym) {
            return Ok(BoolExpr::compare(
                parse_operand(l, next_param),
                op,
                parse_operand(r, next_param),
            ));
        }
    }
    if let Some((l, r)) = conjunct.split_once('=') {
        return Ok(BoolExpr::compare(
            parse_operand(l, next_param),
            CompareOp::Eq,
            parse_operand(r, next_param),
        ));
    }
    // A bare boolean column.
    let col = conjunct.trim();
    if col.is_empty() {
        return Err(ParseError::new(
            pos,
            "a WHERE conjunct (`col op value` or a boolean column)",
        ));
    }
    Ok(BoolExpr::column_is_true(col))
}

fn parse_rank_term(
    term: &str,
    index: usize,
    pos: usize,
) -> std::result::Result<RankPredicate, ParseError> {
    if term.is_empty() {
        return Err(ParseError::new(
            pos,
            "an ORDER BY term (a column or `name(column)`)",
        ));
    }
    // Optional trailing `COST n`.
    let (term, cost) = match term.to_lowercase().find(" cost ") {
        Some(cost_pos) => {
            let cost_value = term[cost_pos + " cost ".len()..].trim();
            let cost: u64 = cost_value.parse().map_err(|_| {
                ParseError::new(
                    pos + cost_pos + " cost ".len(),
                    format!("a number after COST, found `{cost_value}`"),
                )
            })?;
            (term[..cost_pos].trim(), cost)
        }
        None => (term, 0),
    };
    // `name(column)` or a bare column.
    if let Some(open) = term.find('(') {
        let close = term
            .rfind(')')
            .ok_or_else(|| ParseError::new(pos + open, "a closing `)` for this `(`"))?;
        let name = term[..open].trim();
        let column = term[open + 1..close].trim();
        if name.is_empty() || column.is_empty() {
            return Err(ParseError::new(
                pos,
                "a ranking predicate of the form `name(column)`",
            ));
        }
        return Ok(RankPredicate::attribute_with_cost(name, column, cost));
    }
    let name = if term.contains('.') {
        term.replace('.', "_")
    } else {
        format!("p{index}")
    };
    Ok(RankPredicate::attribute_with_cost(name, term, cost))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_query_q() {
        let q = parse_topk_query(
            "SELECT * FROM A, B, C \
             WHERE A.jc1 = B.jc1 AND B.jc2 = C.jc2 AND A.b AND B.b \
             ORDER BY f1(A.p1) + f2(A.p2) + f3(B.p1) + f4(B.p2) + f5(C.p1) \
             LIMIT 10",
        )
        .unwrap();
        assert_eq!(
            q.tables,
            vec!["A".to_string(), "B".to_string(), "C".to_string()]
        );
        assert_eq!(q.bool_predicates.len(), 4);
        assert_eq!(q.num_rank_predicates(), 5);
        assert_eq!(q.ranking.predicate(0).name, "f1");
        assert_eq!(q.k, 10);
        assert!(q.projection.is_none());
        assert!(!q.k_is_param);
    }

    #[test]
    fn parses_projection_literals_and_costs() {
        let q = parse_topk_query(
            "SELECT H.id, R.id FROM H, R \
             WHERE H.city = R.city AND R.cuisine = 'Italian' AND H.price < 100 \
             ORDER BY H.quality + related(R.desc) COST 50 \
             LIMIT 3;",
        )
        .unwrap();
        assert_eq!(q.projection.as_ref().unwrap().len(), 2);
        assert_eq!(q.k, 3);
        assert_eq!(q.num_rank_predicates(), 2);
        assert_eq!(q.ranking.predicate(0).name, "H_quality");
        assert_eq!(q.ranking.predicate(1).cost, 50);
        // The string literal survived with its case.
        let c = &q.bool_predicates[1];
        assert!(c.to_string().contains("Italian"));
    }

    #[test]
    fn question_marks_become_positional_params() {
        let q = parse_topk_query("SELECT * FROM T WHERE T.a < ? AND T.b = ? ORDER BY T.p LIMIT ?")
            .unwrap();
        assert_eq!(q.param_slots(), vec![0, 1]);
        assert!(q.k_is_param);
        assert_eq!(q.k, 0, "k is a placeholder until bound");
        let rendered: Vec<String> = q.bool_predicates.iter().map(|p| p.to_string()).collect();
        assert_eq!(rendered, vec!["T.a < $0", "T.b = $1"]);
    }

    #[test]
    fn missing_clauses_are_reported() {
        assert!(parse_topk_query("SELECT * FROM A LIMIT 5").is_err());
        assert!(parse_topk_query("SELECT * FROM A ORDER BY p").is_err());
        assert!(parse_topk_query("FROM A ORDER BY p LIMIT 1").is_err());
        assert!(parse_topk_query("SELECT * FROM A ORDER BY p LIMIT x").is_err());
    }

    // One test per error arm, each asserting the span points at the
    // offending token of the *original* input.

    #[test]
    fn span_missing_select() {
        let sql = "FROM A ORDER BY p LIMIT 1";
        let e = parse_topk_query_spanned(sql).unwrap_err();
        assert_eq!(e.pos, 0);
        assert!(e.expected.contains("SELECT"), "{e}");
    }

    #[test]
    fn span_missing_from() {
        let sql = "SELECT * ORDER BY p LIMIT 1";
        let e = parse_topk_query_spanned(sql).unwrap_err();
        assert_eq!(e.pos, sql.len());
        assert!(e.expected.contains("FROM"), "{e}");
    }

    #[test]
    fn span_missing_order_by_and_limit() {
        let sql = "SELECT * FROM A LIMIT 5";
        let e = parse_topk_query_spanned(sql).unwrap_err();
        assert_eq!(e.pos, sql.len());
        assert!(e.expected.contains("ORDER BY"), "{e}");

        let sql = "SELECT * FROM A ORDER BY p";
        let e = parse_topk_query_spanned(sql).unwrap_err();
        assert_eq!(e.pos, sql.len());
        assert!(e.expected.contains("LIMIT"), "{e}");
    }

    #[test]
    fn span_out_of_order_clauses() {
        let sql = "SELECT * FROM A LIMIT 3 ORDER BY A.p";
        let e = parse_topk_query_spanned(sql).unwrap_err();
        assert!(e.expected.contains("out of place"), "{e}");
        assert_eq!(&sql[e.pos..e.pos + 8], "ORDER BY");
    }

    #[test]
    fn span_empty_from_list() {
        let sql = "SELECT * FROM , ORDER BY p LIMIT 1";
        let e = parse_topk_query_spanned(sql).unwrap_err();
        assert!(e.expected.contains("table name"), "{e}");
        assert_eq!(e.pos, sql.find(',').unwrap() - 1);
    }

    #[test]
    fn span_invalid_limit() {
        let sql = "SELECT * FROM A ORDER BY A.p LIMIT ten";
        let e = parse_topk_query_spanned(sql).unwrap_err();
        assert!(e.expected.contains("number or `?`"), "{e}");
        assert_eq!(e.pos, sql.find("ten").unwrap());
    }

    #[test]
    fn span_bad_cost_annotation() {
        let sql = "SELECT * FROM A ORDER BY f(A.p) COST abc LIMIT 1";
        let e = parse_topk_query_spanned(sql).unwrap_err();
        assert!(e.expected.contains("after COST"), "{e}");
        assert_eq!(e.pos, sql.find("abc").unwrap());
    }

    #[test]
    fn span_unbalanced_parens_in_rank_term() {
        let sql = "SELECT * FROM A ORDER BY f(A.p LIMIT 1";
        let e = parse_topk_query_spanned(sql).unwrap_err();
        assert!(e.expected.contains("closing"), "{e}");
        assert_eq!(e.pos, sql.find('(').unwrap());
    }

    #[test]
    fn span_malformed_rank_predicate() {
        let sql = "SELECT * FROM A ORDER BY (A.p) LIMIT 1";
        let e = parse_topk_query_spanned(sql).unwrap_err();
        assert!(e.expected.contains("name(column)"), "{e}");
        assert_eq!(e.pos, sql.find("(A.p)").unwrap());
    }

    #[test]
    fn span_empty_order_by_term() {
        let sql = "SELECT * FROM A ORDER BY A.p + + A.q LIMIT 1";
        let e = parse_topk_query_spanned(sql).unwrap_err();
        assert!(e.expected.contains("ORDER BY term"), "{e}");
    }

    #[test]
    fn span_accounts_for_leading_whitespace() {
        let sql = "   SELECT * FROM A ORDER BY A.p LIMIT x";
        let e = parse_topk_query_spanned(sql).unwrap_err();
        assert_eq!(e.pos, sql.find('x').unwrap());
        // And the RankSqlError conversion keeps the offset in the message.
        let err: RankSqlError = e.into();
        assert!(err.to_string().contains("at byte"), "{err}");
    }

    #[test]
    fn comparison_operators_are_parsed() {
        let q = parse_topk_query(
            "SELECT * FROM T WHERE T.a >= 3 AND T.b <> 4 AND T.c <= 1.5 ORDER BY T.p LIMIT 1",
        )
        .unwrap();
        assert_eq!(q.bool_predicates.len(), 3);
        let rendered: Vec<String> = q.bool_predicates.iter().map(|p| p.to_string()).collect();
        assert!(rendered[0].contains(">="));
        assert!(rendered[1].contains("<>"));
        assert!(rendered[2].contains("<="));
    }

    #[test]
    fn end_to_end_parse_and_execute() {
        use crate::database::Database;
        use ranksql_common::{DataType, Field, Schema, Value};
        let db = Database::new();
        db.create_table(
            "T",
            Schema::new(vec![
                Field::new("id", DataType::Int64),
                Field::new("good", DataType::Float64),
            ]),
        )
        .unwrap();
        for i in 0..20i64 {
            db.insert("T", vec![Value::from(i), Value::from((i as f64) / 20.0)])
                .unwrap();
        }
        let q = parse_topk_query("SELECT * FROM T ORDER BY T.good LIMIT 3").unwrap();
        let r = db
            .execute_with_mode(&q, crate::PlanMode::Canonical)
            .unwrap();
        assert_eq!(r.rows.len(), 3);
        assert_eq!(r.rows[0].tuple.value(0), &Value::from(19));
    }
}
