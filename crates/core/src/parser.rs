//! A small SQL-ish front end for top-k queries.
//!
//! The accepted grammar covers the paper's query form (PostgreSQL LIMIT
//! syntax):
//!
//! ```text
//! SELECT (* | col, col, ...)
//! FROM table, table, ...
//! [WHERE conjunct AND conjunct AND ...]
//! ORDER BY term + term + ...
//! LIMIT k
//! ```
//!
//! where a WHERE conjunct is `col op col`, `col op literal` or a bare boolean
//! column, and an ORDER BY term is either a bare (qualified) column — a
//! ranking predicate reading that column — or `name(col)`, naming the
//! predicate explicitly (e.g. `f1(A.p1)`), optionally with a trailing
//! `COST n` annotation to model an expensive predicate.

use ranksql_algebra::RankQuery;
use ranksql_common::{RankSqlError, Result, Value};
use ranksql_expr::{
    BoolExpr, CompareOp, RankPredicate, RankingContext, ScalarExpr, ScoringFunction,
};

/// Parses the SQL-ish top-k syntax into a [`RankQuery`].
pub fn parse_topk_query(sql: &str) -> Result<RankQuery> {
    let text = sql.trim().trim_end_matches(';');
    let lowered = text.to_lowercase();

    let select_pos = find_keyword(&lowered, "select")?;
    let from_pos = find_keyword(&lowered, "from")?;
    let where_pos = lowered.find(" where ");
    let order_pos = lowered
        .find(" order by ")
        .ok_or_else(|| RankSqlError::Parse("top-k queries need an ORDER BY clause".into()))?;
    let limit_pos = lowered
        .find(" limit ")
        .ok_or_else(|| RankSqlError::Parse("top-k queries need a LIMIT clause".into()))?;

    // Clauses must appear in SQL order (SELECT … FROM … [WHERE …] ORDER BY …
    // LIMIT …) and may not overlap; anything else is a parse error, never a
    // slicing panic.
    let clauses_in_order = select_pos + "select".len() <= from_pos
        && from_pos + "from".len() <= where_pos.unwrap_or(order_pos)
        && where_pos
            .map(|w| w + " where ".len() <= order_pos)
            .unwrap_or(true)
        && order_pos + " order by ".len() <= limit_pos;
    if !clauses_in_order {
        return Err(RankSqlError::Parse(
            "clauses must appear in the order SELECT … FROM … [WHERE …] ORDER BY … LIMIT …".into(),
        ));
    }

    let select_clause = text[select_pos + "select".len()..from_pos].trim();
    let from_end = where_pos.unwrap_or(order_pos);
    let from_clause = text[from_pos + "from".len()..from_end].trim();
    let where_clause = where_pos.map(|w| text[w + " where ".len()..order_pos].trim());
    let order_clause = text[order_pos + " order by ".len()..limit_pos].trim();
    let limit_clause = text[limit_pos + " limit ".len()..].trim();

    // FROM
    let tables: Vec<String> = from_clause
        .split(',')
        .map(|t| t.trim().to_owned())
        .filter(|t| !t.is_empty())
        .collect();
    if tables.is_empty() {
        return Err(RankSqlError::Parse("FROM clause lists no tables".into()));
    }

    // SELECT
    let projection = if select_clause == "*" {
        None
    } else {
        Some(
            select_clause
                .split(',')
                .map(|c| c.trim().to_owned())
                .filter(|c| !c.is_empty())
                .collect::<Vec<_>>(),
        )
    };

    // WHERE
    let mut filters = Vec::new();
    if let Some(clause) = where_clause {
        for conjunct in split_keeping_nonempty(clause, " and ") {
            filters.push(parse_condition(&conjunct)?);
        }
    }

    // ORDER BY
    let mut predicates = Vec::new();
    for term in order_clause.split('+') {
        predicates.push(parse_rank_term(term.trim(), predicates.len())?);
    }
    if predicates.is_empty() {
        return Err(RankSqlError::Parse(
            "ORDER BY lists no ranking predicates".into(),
        ));
    }

    // LIMIT
    let k: usize = limit_clause
        .split_whitespace()
        .next()
        .unwrap_or("")
        .parse()
        .map_err(|_| RankSqlError::Parse(format!("invalid LIMIT value `{limit_clause}`")))?;

    let ranking = RankingContext::new(predicates, ScoringFunction::Sum);
    let mut query = RankQuery::new(tables, filters, ranking, k);
    if let Some(cols) = projection {
        query = query.with_projection(cols);
    }
    Ok(query)
}

fn find_keyword(lowered: &str, kw: &str) -> Result<usize> {
    lowered
        .find(kw)
        .ok_or_else(|| RankSqlError::Parse(format!("missing {} clause", kw.to_uppercase())))
}

fn split_keeping_nonempty(clause: &str, sep: &str) -> Vec<String> {
    let lowered = clause.to_lowercase();
    let mut parts = Vec::new();
    let mut start = 0;
    while let Some(pos) = lowered[start..].find(sep) {
        parts.push(clause[start..start + pos].trim().to_owned());
        start += pos + sep.len();
    }
    parts.push(clause[start..].trim().to_owned());
    parts.into_iter().filter(|p| !p.is_empty()).collect()
}

fn parse_operand(token: &str) -> ScalarExpr {
    let token = token.trim();
    if let Ok(i) = token.parse::<i64>() {
        return ScalarExpr::lit(i);
    }
    if let Ok(f) = token.parse::<f64>() {
        return ScalarExpr::lit(f);
    }
    if (token.starts_with('\'') && token.ends_with('\'') && token.len() >= 2)
        || (token.starts_with('"') && token.ends_with('"') && token.len() >= 2)
    {
        return ScalarExpr::Literal(Value::from(&token[1..token.len() - 1]));
    }
    // A (possibly qualified) column, allowing simple `a + b` arithmetic.
    if let Some((l, r)) = token.split_once('+') {
        return parse_operand(l).add(parse_operand(r));
    }
    ScalarExpr::col(token)
}

fn parse_condition(conjunct: &str) -> Result<BoolExpr> {
    const OPS: [(&str, CompareOp); 6] = [
        ("<=", CompareOp::LtEq),
        (">=", CompareOp::GtEq),
        ("<>", CompareOp::NotEq),
        ("!=", CompareOp::NotEq),
        ("<", CompareOp::Lt),
        (">", CompareOp::Gt),
    ];
    // `=` handled last so `<=`, `>=`, `<>` are not split at their `=`.
    for (sym, op) in OPS {
        if let Some((l, r)) = conjunct.split_once(sym) {
            return Ok(BoolExpr::compare(parse_operand(l), op, parse_operand(r)));
        }
    }
    if let Some((l, r)) = conjunct.split_once('=') {
        return Ok(BoolExpr::compare(
            parse_operand(l),
            CompareOp::Eq,
            parse_operand(r),
        ));
    }
    // A bare boolean column.
    let col = conjunct.trim();
    if col.is_empty() {
        return Err(RankSqlError::Parse("empty WHERE conjunct".into()));
    }
    Ok(BoolExpr::column_is_true(col))
}

fn parse_rank_term(term: &str, index: usize) -> Result<RankPredicate> {
    if term.is_empty() {
        return Err(RankSqlError::Parse("empty ORDER BY term".into()));
    }
    // Optional trailing `COST n`.
    let (term, cost) = match term.to_lowercase().find(" cost ") {
        Some(pos) => {
            let cost: u64 = term[pos + " cost ".len()..]
                .trim()
                .parse()
                .map_err(|_| RankSqlError::Parse(format!("invalid COST annotation in `{term}`")))?;
            (term[..pos].trim(), cost)
        }
        None => (term, 0),
    };
    // `name(column)` or a bare column.
    if let Some(open) = term.find('(') {
        let close = term
            .rfind(')')
            .ok_or_else(|| RankSqlError::Parse(format!("unbalanced parentheses in `{term}`")))?;
        let name = term[..open].trim();
        let column = term[open + 1..close].trim();
        if name.is_empty() || column.is_empty() {
            return Err(RankSqlError::Parse(format!(
                "malformed ranking predicate `{term}`"
            )));
        }
        return Ok(RankPredicate::attribute_with_cost(name, column, cost));
    }
    let name = if term.contains('.') {
        term.replace('.', "_")
    } else {
        format!("p{index}")
    };
    Ok(RankPredicate::attribute_with_cost(name, term, cost))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_query_q() {
        let q = parse_topk_query(
            "SELECT * FROM A, B, C \
             WHERE A.jc1 = B.jc1 AND B.jc2 = C.jc2 AND A.b AND B.b \
             ORDER BY f1(A.p1) + f2(A.p2) + f3(B.p1) + f4(B.p2) + f5(C.p1) \
             LIMIT 10",
        )
        .unwrap();
        assert_eq!(
            q.tables,
            vec!["A".to_string(), "B".to_string(), "C".to_string()]
        );
        assert_eq!(q.bool_predicates.len(), 4);
        assert_eq!(q.num_rank_predicates(), 5);
        assert_eq!(q.ranking.predicate(0).name, "f1");
        assert_eq!(q.k, 10);
        assert!(q.projection.is_none());
    }

    #[test]
    fn parses_projection_literals_and_costs() {
        let q = parse_topk_query(
            "SELECT H.id, R.id FROM H, R \
             WHERE H.city = R.city AND R.cuisine = 'Italian' AND H.price < 100 \
             ORDER BY H.quality + related(R.desc) COST 50 \
             LIMIT 3;",
        )
        .unwrap();
        assert_eq!(q.projection.as_ref().unwrap().len(), 2);
        assert_eq!(q.k, 3);
        assert_eq!(q.num_rank_predicates(), 2);
        assert_eq!(q.ranking.predicate(0).name, "H_quality");
        assert_eq!(q.ranking.predicate(1).cost, 50);
        // The string literal survived with its case.
        let c = &q.bool_predicates[1];
        assert!(c.to_string().contains("Italian"));
    }

    #[test]
    fn missing_clauses_are_reported() {
        assert!(parse_topk_query("SELECT * FROM A LIMIT 5").is_err());
        assert!(parse_topk_query("SELECT * FROM A ORDER BY p").is_err());
        assert!(parse_topk_query("FROM A ORDER BY p LIMIT 1").is_err());
        assert!(parse_topk_query("SELECT * FROM A ORDER BY p LIMIT x").is_err());
    }

    #[test]
    fn comparison_operators_are_parsed() {
        let q = parse_topk_query(
            "SELECT * FROM T WHERE T.a >= 3 AND T.b <> 4 AND T.c <= 1.5 ORDER BY T.p LIMIT 1",
        )
        .unwrap();
        assert_eq!(q.bool_predicates.len(), 3);
        let rendered: Vec<String> = q.bool_predicates.iter().map(|p| p.to_string()).collect();
        assert!(rendered[0].contains(">="));
        assert!(rendered[1].contains("<>"));
        assert!(rendered[2].contains("<="));
    }

    #[test]
    fn end_to_end_parse_and_execute() {
        use crate::database::Database;
        use ranksql_common::{DataType, Field, Schema, Value};
        let db = Database::new();
        db.create_table(
            "T",
            Schema::new(vec![
                Field::new("id", DataType::Int64),
                Field::new("good", DataType::Float64),
            ]),
        )
        .unwrap();
        for i in 0..20i64 {
            db.insert("T", vec![Value::from(i), Value::from((i as f64) / 20.0)])
                .unwrap();
        }
        let q = parse_topk_query("SELECT * FROM T ORDER BY T.good LIMIT 3").unwrap();
        let r = db
            .execute_with_mode(&q, crate::PlanMode::Canonical)
            .unwrap();
        assert_eq!(r.rows.len(), 3);
        assert_eq!(r.rows[0].tuple.value(0), &Value::from(19));
    }
}
