//! A registry of server-held cursors.
//!
//! [`Cursor`] deliberately has no lifetime parameters (it owns its operator
//! tree and execution context), which is what makes a *server-held* cursor
//! possible at all: a connection handler can park a cursor in a
//! [`CursorRegistry`], return its id to the client, and later `FETCH` /
//! `FETCH_MORE` against it — extending the same live operator tree instead
//! of re-running the query.  Each parked cursor keeps its
//! [`ExecutionContext`](ranksql_executor::ExecutionContext) and therefore
//! its pinned MVCC epochs: concurrent writers never perturb an in-flight
//! result stream.
//!
//! The registry is a plain single-owner map, not a concurrent structure:
//! the server is thread-per-connection, and cursors are connection-local by
//! design (sharing a cursor across connections would share its snapshot and
//! its position — a protocol-level mistake, not a concurrency feature).

use std::collections::HashMap;

use ranksql_common::{RankSqlError, Result};

use crate::cursor::Cursor;

/// The default cap on simultaneously open cursors per registry (per
/// connection, in the server) — an admission-control lever: every open
/// cursor pins epochs and holds operator state, so a tenant cannot hoard
/// unbounded server memory by opening cursors and walking away.
pub const DEFAULT_MAX_OPEN_CURSORS: usize = 32;

/// An id-keyed store of open [`Cursor`]s with a capacity cap.
#[derive(Debug, Default)]
pub struct CursorRegistry {
    next_id: u64,
    cap: usize,
    open: HashMap<u64, Cursor>,
}

impl CursorRegistry {
    /// An empty registry with the default capacity cap.
    pub fn new() -> Self {
        CursorRegistry::with_capacity_limit(DEFAULT_MAX_OPEN_CURSORS)
    }

    /// An empty registry capping simultaneously open cursors at `cap`
    /// (clamped to at least 1).
    pub fn with_capacity_limit(cap: usize) -> Self {
        CursorRegistry {
            next_id: 0,
            cap: cap.max(1),
            open: HashMap::new(),
        }
    }

    /// Parks a cursor and returns its id.  Fails (and drops the cursor,
    /// releasing its epoch pins) when the registry is at capacity.
    pub fn open(&mut self, cursor: Cursor) -> Result<u64> {
        if self.open.len() >= self.cap {
            return Err(RankSqlError::Execution(format!(
                "cursor limit reached: {} cursor(s) already open (cap {}); \
                 close one before opening another",
                self.open.len(),
                self.cap
            )));
        }
        let id = self.next_id;
        self.next_id += 1;
        self.open.insert(id, cursor);
        Ok(id)
    }

    /// The open cursor with this id, for pulling.
    pub fn get_mut(&mut self, id: u64) -> Option<&mut Cursor> {
        self.open.get_mut(&id)
    }

    /// Removes and returns the cursor (dropping the returned value releases
    /// its epoch pins); `None` if the id is unknown or already closed.
    pub fn close(&mut self, id: u64) -> Option<Cursor> {
        self.open.remove(&id)
    }

    /// Number of open cursors.
    pub fn len(&self) -> usize {
        self.open.len()
    }

    /// Whether no cursor is open.
    pub fn is_empty(&self) -> bool {
        self.open.is_empty()
    }

    /// The configured capacity cap.
    pub fn capacity_limit(&self) -> usize {
        self.cap
    }

    /// Iterates over `(id, cursor)` pairs in ascending id order (stable
    /// output for STATS reports).
    pub fn iter(&self) -> impl Iterator<Item = (u64, &Cursor)> {
        let mut ids: Vec<u64> = self.open.keys().copied().collect();
        ids.sort_unstable();
        ids.into_iter().filter_map(|id| {
            // The id came out of the map one line up; filter_map keeps the
            // walk panic-free anyway.
            self.open.get(&id).map(|c| (id, c))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use ranksql_common::{DataType, Field, Schema, Value};

    fn db() -> Database {
        let db = Database::new();
        db.create_table(
            "T",
            Schema::new(vec![
                Field::new("id", DataType::Int64),
                Field::new("p", DataType::Float64),
            ]),
        )
        .unwrap();
        for i in 0..20i64 {
            db.insert("T", vec![Value::from(i), Value::from((i as f64) / 20.0)])
                .unwrap();
        }
        db
    }

    fn open_cursor(db: &Database) -> Cursor {
        db.session()
            .query("SELECT * FROM T ORDER BY T.p LIMIT 5")
            .unwrap()
    }

    #[test]
    fn registry_parks_pulls_and_closes() {
        let db = db();
        let mut reg = CursorRegistry::new();
        let id = reg.open(open_cursor(&db)).unwrap();
        assert_eq!(reg.len(), 1);
        let rows = reg.get_mut(id).unwrap().take(3).unwrap();
        assert_eq!(rows.len(), 3);
        // Resuming the same parked cursor continues, not restarts.
        let more = reg.get_mut(id).unwrap().take(3).unwrap();
        assert_eq!(more.len(), 2, "limit 5 caps the stream");
        let closed = reg.close(id).unwrap();
        assert_eq!(closed.rows_emitted(), 5);
        assert!(reg.close(id).is_none());
        assert!(reg.is_empty());
    }

    #[test]
    fn capacity_cap_rejects_and_close_frees_a_slot() {
        let db = db();
        let mut reg = CursorRegistry::with_capacity_limit(2);
        let a = reg.open(open_cursor(&db)).unwrap();
        let _b = reg.open(open_cursor(&db)).unwrap();
        let err = reg.open(open_cursor(&db)).unwrap_err();
        assert!(err.to_string().contains("cursor limit"), "{err}");
        reg.close(a);
        assert!(reg.open(open_cursor(&db)).is_ok());
    }

    #[test]
    fn parked_cursors_keep_their_pinned_epochs() {
        let db = db();
        let mut reg = CursorRegistry::new();
        let id = reg.open(open_cursor(&db)).unwrap();
        // Pins are lazy: the first pull touches the scan and pins T.
        let _ = reg.get_mut(id).unwrap().take(1).unwrap();
        let pins = reg.get_mut(id).unwrap().pinned_epochs();
        assert_eq!(pins.len(), 1);
        assert_eq!(pins[0].1, 20, "pinned at the 20-row watermark");
        // A writer advancing the table does not move the pin.
        db.insert("T", vec![Value::from(99), Value::from(0.99)])
            .unwrap();
        assert_eq!(reg.get_mut(id).unwrap().pinned_epochs(), pins);
        // Stable iteration order for STATS.
        let ids: Vec<u64> = reg.iter().map(|(i, _)| i).collect();
        assert_eq!(ids, vec![id]);
    }
}
