//! Per-caller execution sessions.
//!
//! A [`Session`] carries everything about *how* one caller wants queries
//! run — plan mode, worker threads, batch size, morsel size, optional tuple
//! budget — while the [`Database`] keeps what is shared across callers: the
//! catalog and the plan cache.  Sessions are cheap value objects; a server
//! front end creates one per connection (or per request) and concurrent
//! sessions over one database never contend except on the plan-cache map.
//!
//! The request lifecycle is `session.prepare(sql)` →
//! [`PreparedQuery::bind`](crate::PreparedQuery::bind) →
//! [`BoundQuery::cursor`](crate::BoundQuery::cursor): parse and
//! normalization happen once at prepare, optimization once per plan-cache
//! shape, and the cursor pulls rows incrementally from the live operator
//! tree.  The eager [`Session::execute`] and the `Database::execute*`
//! compatibility wrappers are thin shims over exactly that path.

use ranksql_algebra::RankQuery;
use ranksql_common::{Result, DEFAULT_BATCH_SIZE, DEFAULT_MORSEL_SIZE};

use crate::cursor::Cursor;
use crate::database::{Database, PlanMode};
use crate::parser::parse_topk_query;
use crate::prepared::{Params, PreparedQuery};
use crate::result::QueryResult;

/// The per-caller execution settings a [`Session`] carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionSettings {
    /// How queries are planned (default: rank-aware heuristic).
    pub mode: PlanMode,
    /// Worker threads for morsel-driven parallel execution; above 1 the
    /// planner runs the parallelization pass and execution fans morsels
    /// across that many workers.
    pub threads: usize,
    /// Tuples moved per batched pull through the operator tree.
    pub batch_size: usize,
    /// Base-table rows per parallel morsel.
    pub morsel_size: usize,
    /// Optional cap on scan-produced tuples per execution (a guard rail for
    /// top-k queries that degenerate into full materialisation).
    pub tuple_budget: Option<u64>,
    /// Which storage backend plans read base tables through: the row heap
    /// (default) or the columnar projection with zone maps (the planner
    /// then runs the `columnarize` pass).  Results are identical across
    /// backends.
    pub backend: ranksql_storage::StorageBackend,
}

impl Default for SessionSettings {
    fn default() -> Self {
        SessionSettings {
            mode: PlanMode::default(),
            threads: ranksql_common::default_thread_count(),
            batch_size: DEFAULT_BATCH_SIZE,
            morsel_size: DEFAULT_MORSEL_SIZE,
            tuple_budget: None,
            backend: ranksql_storage::StorageBackend::Row,
        }
    }
}

/// A per-caller handle for executing queries against a [`Database`].
///
/// Created by [`Database::session`]; configured in one consistent consuming
/// builder style (`with_*`).  All state lives in the session value itself,
/// so cloning is cheap and sessions never observe each other's settings.
///
/// ```
/// use ranksql_core::{Database, Params};
/// use ranksql_common::{DataType, Field, Schema, Value};
///
/// let db = Database::new();
/// db.create_table(
///     "T",
///     Schema::new(vec![
///         Field::new("id", DataType::Int64),
///         Field::new("score", DataType::Float64),
///     ]),
/// )
/// .unwrap();
/// for i in 0..50i64 {
///     db.insert("T", vec![Value::from(i), Value::from((i as f64) / 50.0)])
///         .unwrap();
/// }
///
/// let session = db.session();
/// let prepared = session
///     .prepare("SELECT * FROM T WHERE T.id < ? ORDER BY T.score LIMIT 5")
///     .unwrap();
/// let mut cursor = prepared
///     .bind(Params::new().set(0, Value::from(40i64)))
///     .unwrap()
///     .cursor()
///     .unwrap();
/// let top2 = cursor.take(2).unwrap(); // pulls incrementally, no full drain
/// assert_eq!(top2.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Session<'db> {
    db: &'db Database,
    settings: SessionSettings,
}

impl<'db> Session<'db> {
    pub(crate) fn new(db: &'db Database, settings: SessionSettings) -> Self {
        Session { db, settings }
    }

    /// The database this session executes against.
    pub fn database(&self) -> &'db Database {
        self.db
    }

    /// The session's settings.
    pub fn settings(&self) -> &SessionSettings {
        &self.settings
    }

    /// Sets the plan mode used by `prepare`/`execute`.
    pub fn with_mode(mut self, mode: PlanMode) -> Self {
        self.settings.mode = mode;
        self
    }

    /// Sets the worker-thread budget (clamped to `1..=MAX_THREADS`).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.settings.threads = threads.clamp(1, ranksql_common::MAX_THREADS);
        self
    }

    /// Sets the batched-pull chunk size (clamped to at least 1).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.settings.batch_size = batch_size.max(1);
        self
    }

    /// Sets the rows-per-morsel granularity of parallel scans (clamped to at
    /// least 1).
    pub fn with_morsel_size(mut self, morsel_size: usize) -> Self {
        self.settings.morsel_size = morsel_size.max(1);
        self
    }

    /// Caps the number of scan-produced tuples per execution; exceeding the
    /// budget aborts the query with an execution error.
    pub fn with_tuple_budget(mut self, budget: u64) -> Self {
        self.settings.tuple_budget = Some(budget);
        self
    }

    /// Picks the storage backend this session plans against (see
    /// [`SessionSettings::backend`]).
    pub fn with_storage_backend(mut self, backend: ranksql_storage::StorageBackend) -> Self {
        self.settings.backend = backend;
        self
    }

    /// The configured storage backend.
    pub fn storage_backend(&self) -> ranksql_storage::StorageBackend {
        self.settings.backend
    }

    /// The configured plan mode.
    pub fn mode(&self) -> PlanMode {
        self.settings.mode
    }

    /// The configured worker-thread budget.
    pub fn threads(&self) -> usize {
        self.settings.threads
    }

    /// Parses the SQL-ish top-k syntax (which may contain `?` parameter
    /// placeholders in WHERE constants and `LIMIT`) and prepares it under
    /// this session's settings.
    pub fn prepare(&self, sql: &str) -> Result<PreparedQuery<'db>> {
        self.prepare_query(parse_topk_query(sql)?)
    }

    /// Prepares an already-built [`RankQuery`] (e.g. from
    /// [`QueryBuilder`](crate::QueryBuilder), possibly containing
    /// [`ScalarExpr::param`](ranksql_expr::ScalarExpr::param) placeholders)
    /// under this session's settings.
    pub fn prepare_query(&self, query: RankQuery) -> Result<PreparedQuery<'db>> {
        PreparedQuery::new(self.db, self.settings.clone(), query)
    }

    /// Parses, prepares (parameter-free), and opens a streaming cursor —
    /// the one-liner for ad-hoc queries.
    pub fn query(&self, sql: &str) -> Result<Cursor> {
        self.prepare(sql)?.bind(Params::none())?.cursor()
    }

    /// Eagerly executes a parameter-free query to completion (through the
    /// same prepare → bind → cursor path, so it hits the plan cache).
    pub fn execute(&self, query: &RankQuery) -> Result<QueryResult> {
        self.prepare_query(query.clone())?
            .bind(Params::none())?
            .execute()
    }

    /// Plans a query under the session's mode and thread budget without
    /// executing it (above one thread the physical plan has been through
    /// the optimizer's parallelization pass).
    pub fn plan(&self, query: &RankQuery) -> Result<ranksql_optimizer::OptimizedPlan> {
        self.db.plan_with_settings(
            query,
            self.settings.mode,
            self.settings.threads,
            self.settings.backend,
        )
    }

    /// Runs the full plan validator over the plan this session would run
    /// for `query`, returning **every** diagnostic (warnings included)
    /// regardless of the `RANKSQL_VERIFY` gate; an empty vector means a
    /// clean plan.  The database-default form is
    /// [`Database::verify_plan`](crate::Database::verify_plan).
    pub fn verify_plan(&self, query: &RankQuery) -> Result<Vec<ranksql_verify::Diagnostic>> {
        let optimized = self.plan(query)?;
        let opts = ranksql_verify::ValidateOptions::default();
        let mut diags =
            ranksql_verify::validate_logical(&optimized.plan, Some(&query.ranking), &opts);
        diags.extend(ranksql_verify::validate_physical(
            &optimized.physical,
            Some(&query.ranking),
            &opts,
        ));
        Ok(diags)
    }

    /// Returns the `EXPLAIN` text of the plan this session would run for a
    /// query: logical and costed physical trees under the session's mode and
    /// thread budget, plus the plan-validation footer.
    pub fn explain(&self, query: &RankQuery) -> Result<String> {
        let optimized = self.db.plan_with_settings(
            query,
            self.settings.mode,
            self.settings.threads,
            self.settings.backend,
        )?;
        let mut out = String::new();
        out.push_str(&format!(
            "mode: {:?}\nestimated cost: {:.1}\nestimated cardinality: {:.1}\n",
            self.settings.mode,
            optimized.cost.value(),
            optimized.estimated_cardinality
        ));
        out.push_str("logical plan:\n");
        out.push_str(&optimized.plan.explain(Some(&query.ranking)));
        out.push_str("physical plan:\n");
        out.push_str(&optimized.physical.explain(Some(&query.ranking)));
        out.push_str(&crate::database::explain_validation_footer(
            &optimized,
            &query.ranking,
        ));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QueryBuilder;
    use ranksql_common::{DataType, Field, Schema, Value};
    use ranksql_expr::RankPredicate;

    fn db() -> Database {
        let db = Database::new();
        db.create_table(
            "T",
            Schema::new(vec![
                Field::new("id", DataType::Int64),
                Field::new("p", DataType::Float64),
            ]),
        )
        .unwrap();
        for i in 0..30i64 {
            db.insert("T", vec![Value::from(i), Value::from((i as f64) / 30.0)])
                .unwrap();
        }
        db
    }

    #[test]
    fn session_builder_style_is_consistent() {
        let db = db();
        let s = db
            .session()
            .with_mode(PlanMode::Canonical)
            .with_threads(2)
            .with_batch_size(0)
            .with_morsel_size(0)
            .with_tuple_budget(10_000);
        assert_eq!(s.mode(), PlanMode::Canonical);
        assert_eq!(s.threads(), 2);
        assert_eq!(s.settings().batch_size, 1, "clamped");
        assert_eq!(s.settings().morsel_size, 1, "clamped");
        assert_eq!(s.settings().tuple_budget, Some(10_000));
    }

    #[test]
    fn session_execute_matches_modes() {
        let db = db();
        let q = QueryBuilder::new()
            .table("T")
            .rank_predicate(RankPredicate::attribute("p", "T.p"))
            .limit(3)
            .build()
            .unwrap();
        let canonical = db
            .session()
            .with_mode(PlanMode::Canonical)
            .execute(&q)
            .unwrap();
        let rank_aware = db.session().execute(&q).unwrap();
        assert_eq!(canonical.scores(), rank_aware.scores());
        assert_eq!(rank_aware.rows.len(), 3);
    }

    #[test]
    fn session_query_one_liner_streams() {
        let db = db();
        let mut cursor = db
            .session()
            .query("SELECT * FROM T ORDER BY T.p LIMIT 5")
            .unwrap();
        let first = cursor.next().unwrap().unwrap();
        assert_eq!(first.tuple.value(0), &Value::from(29));
        assert_eq!(cursor.take(10).unwrap().len(), 4, "limit caps the stream");
    }

    #[test]
    fn session_explain_mentions_mode_and_nodes() {
        let db = db();
        let q = QueryBuilder::new()
            .table("T")
            .rank_predicate(RankPredicate::attribute("p", "T.p"))
            .limit(2)
            .build()
            .unwrap();
        let text = db
            .session()
            .with_mode(PlanMode::Canonical)
            .explain(&q)
            .unwrap();
        assert!(text.contains("mode: Canonical"), "{text}");
        assert!(text.contains("Limit[2]"), "{text}");
    }

    #[test]
    fn tuple_budget_trips_through_the_session() {
        let db = db();
        let q = QueryBuilder::new()
            .table("T")
            .rank_predicate(RankPredicate::attribute("p", "T.p"))
            .limit(3)
            .build()
            .unwrap();
        let err = db
            .session()
            .with_mode(PlanMode::Canonical)
            .with_tuple_budget(5)
            .execute(&q)
            .unwrap_err();
        assert!(err.to_string().contains("tuple budget exceeded"), "{err}");
    }
}
