//! RankSQL: ranking (top-k) queries as a first-class database construct.
//!
//! This crate is the user-facing facade of the RankSQL reproduction: it ties
//! the storage substrate, the rank-relational algebra, the incremental
//! executor and the rank-aware optimizer together behind a small API:
//!
//! ```
//! use ranksql_core::{Database, QueryBuilder};
//! use ranksql_common::{DataType, Field, Schema, Value};
//! use ranksql_expr::{RankPredicate, ScoringFunction};
//!
//! let db = Database::new();
//! db.create_table(
//!     "Restaurant",
//!     Schema::new(vec![
//!         Field::new("name", DataType::Utf8),
//!         Field::new("food", DataType::Float64),
//!         Field::new("service", DataType::Float64),
//!     ]),
//! )
//! .unwrap();
//! db.insert("Restaurant", vec![Value::from("trattoria"), Value::from(0.9), Value::from(0.7)])
//!     .unwrap();
//! db.insert("Restaurant", vec![Value::from("bistro"), Value::from(0.6), Value::from(0.95)])
//!     .unwrap();
//!
//! let query = QueryBuilder::new()
//!     .table("Restaurant")
//!     .rank_predicate(RankPredicate::attribute("food", "Restaurant.food"))
//!     .rank_predicate(RankPredicate::attribute("service", "Restaurant.service"))
//!     .scoring(ScoringFunction::Sum)
//!     .limit(1)
//!     .build()
//!     .unwrap();
//!
//! let result = db.execute(&query).unwrap();
//! assert_eq!(result.rows.len(), 1);
//! assert_eq!(result.rows[0].tuple.value(0), &Value::from("trattoria"));
//! ```
//!
//! A small SQL-ish front end ([`parse_topk_query`]) accepts the paper's
//! `SELECT ... FROM ... WHERE ... ORDER BY p1 + p2 ... LIMIT k` syntax.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builder;
pub mod cursor;
pub mod database;
pub mod parser;
pub mod prepared;
pub mod registry;
pub mod result;
pub mod session;

pub use builder::QueryBuilder;
pub use cursor::{Cursor, CursorRows};
pub use database::{Database, PlanCacheLookup, PlanCacheStats, PlanMode};
pub use parser::{parse_topk_query, ParseError};
pub use prepared::{BoundQuery, Params, PreparedQuery};
pub use registry::{CursorRegistry, DEFAULT_MAX_OPEN_CURSORS};
pub use result::QueryResult;
pub use session::{Session, SessionSettings};

// Re-export the main vocabulary so downstream users need only this crate.
pub use ranksql_algebra::{JoinAlgorithm, LogicalPlan, RankQuery, ScanAccess, SetOpKind};
pub use ranksql_expr::{
    BoolExpr, CompareOp, RankPredicate, RankingContext, ScalarExpr, ScoringFunction,
};
pub use ranksql_optimizer::{OptimizedPlan, OptimizerConfig, OptimizerMode, RankOptimizer};
pub use ranksql_storage::{PagedOptions, PagedStore, StorageBackend};
