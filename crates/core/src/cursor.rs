//! Streaming cursors: a lazy pull handle over the live physical operator
//! tree.
//!
//! A [`Cursor`] is the non-draining root of an execution.  Opening one
//! builds the operator tree (including the exchange/morsel-parallel path)
//! and *nothing else*; every [`Cursor::next`] / [`Cursor::take`] pulls just
//! enough from the tree to produce the requested rows.  On the paper's
//! incremental ranking plans (rank-scans, µ, MPro, HRJN/NRJN) that means
//! first-result latency and total work track `k` — asking for the top 3 of
//! a million-row join consumes a few dozen input tuples, not the join.
//!
//! [`Cursor::fetch_more`] extends a finished top-k *past* the original
//! limit by raising the plan's limit caps
//! ([`PhysicalOperator::extend_limit`]) and resuming the incremental
//! operators exactly where they stopped — the cheap "next k" the eager API
//! could never offer.  Blocking plans that discarded tuples (bounded-heap
//! top-k sorts, re-limiting ordered exchanges) refuse the extension with a
//! clear error instead of returning wrong rows.
//!
//! [`PhysicalOperator::extend_limit`]: ranksql_executor::PhysicalOperator::extend_limit

use std::sync::Arc;
use std::time::Instant;

use ranksql_algebra::{PhysicalOp, PhysicalPlan, RankQuery};
use ranksql_common::{RankSqlError, Result, Schema};
use ranksql_executor::{
    build_operator, Batch, BoxedOperator, ExecutionContext, ExecutionResult, MetricsRegistry,
};
use ranksql_expr::{RankedTuple, RankingContext};
use ranksql_storage::{Catalog, StatsCatalog};

use crate::database::PlanCacheLookup;
use crate::result::{stats_line, QueryResult};
use crate::session::SessionSettings;

/// Snapshots the statistics catalog of every table the plan scans — but
/// only the *already built* ones ([`ranksql_storage::Table::cached_stats`]),
/// so opening a cursor never pays for a statistics build the planner did
/// not do itself.  Plans that went through the optimizer have them (the
/// estimators prime the catalogs); canonical-mode plans usually yield none.
fn planner_table_stats(catalog: &Catalog, plan: &PhysicalPlan) -> Vec<(String, StatsCatalog)> {
    let mut stats: Vec<(String, StatsCatalog)> = Vec::new();
    for node in plan.post_order() {
        let table = match &node.op {
            PhysicalOp::SeqScan { table, .. }
            | PhysicalOp::RankScan { table, .. }
            | PhysicalOp::AttributeIndexScan { table, .. } => table,
            _ => continue,
        };
        if stats.iter().any(|(name, _)| name == table) {
            continue;
        }
        if let Some(cached) = catalog.table(table).ok().and_then(|t| t.cached_stats()) {
            stats.push((table.clone(), cached));
        }
    }
    stats
}

/// A streaming handle over one live query execution.
///
/// Obtained from [`BoundQuery::cursor`](crate::BoundQuery::cursor) (or the
/// [`Session::query`](crate::Session::query) one-liner).  The cursor owns
/// the operator tree and its [`ExecutionContext`]; dropping it abandons the
/// execution, [`Cursor::into_result`] drains the remainder into an eager
/// [`QueryResult`].
///
/// `Cursor` implements [`Iterator`] (over `Result<RankedTuple>`), so
/// `for row in cursor { ... }` streams rows as the operators produce them.
pub struct Cursor {
    root: BoxedOperator,
    exec: ExecutionContext,
    schema: Schema,
    physical: PhysicalPlan,
    ranking: Arc<RankingContext>,
    start: Instant,
    counters_before: Vec<u64>,
    plan_cache: Option<PlanCacheLookup>,
    table_stats: Vec<(String, StatsCatalog)>,
    exhausted: bool,
    emitted: u64,
}

impl std::fmt::Debug for Cursor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cursor")
            .field("emitted", &self.emitted)
            .field("exhausted", &self.exhausted)
            .field("plan", &self.physical.node_label(Some(&self.ranking)))
            .finish()
    }
}

impl Cursor {
    /// Builds the operator tree for `physical` and wraps it in a cursor.
    /// No tuple is pulled yet.
    pub(crate) fn open(
        catalog: &Catalog,
        settings: &SessionSettings,
        query: &RankQuery,
        physical: PhysicalPlan,
        plan_cache: Option<PlanCacheLookup>,
    ) -> Result<Cursor> {
        // Last line of defence before operators are built: the plan about
        // to execute must validate clean *with every parameter bound* —
        // catches a cached shape that was rebound or limit-extended
        // incoherently.  Gated like the optimizer-pass hooks (debug builds
        // unless RANKSQL_VERIFY overrides).
        if ranksql_verify::enabled() {
            let diags = ranksql_verify::validate_physical(
                &physical,
                Some(&query.ranking),
                &ranksql_verify::ValidateOptions::executable(),
            );
            if ranksql_verify::has_errors(&diags) {
                return Err(RankSqlError::Plan(format!(
                    "plan validation failed at cursor open:\n{}",
                    ranksql_verify::report(&diags)
                )));
            }
        }
        // The cursor's MVCC snapshot: epochs are pinned into this set from
        // open time on (the caps derivation below pins the column-scanned
        // tables; `build_operator` pins the rest), and the execution context
        // runs with the same set — so everything the cursor ever reads,
        // including later `fetch_more` calls, is the state at open.
        let epochs = Arc::new(ranksql_storage::EpochSet::new());
        // On columnar plans, tighten every upper bound with the tables'
        // zone-map score maxima: rank-aware operators (µ, MPro, HRJN/NRJN)
        // then emit earlier and probe less.  Caps never change results —
        // they are valid per-predicate maxima — and row-backend plans get
        // `None`, keeping their historical bounds bit for bit.
        let ranking =
            match ranksql_executor::zone_score_caps(&query.ranking, catalog, &physical, &epochs) {
                Some(caps) => query.ranking.with_predicate_caps(caps),
                None => Arc::clone(&query.ranking),
            };
        let exec = match settings.tuple_budget {
            Some(b) => ExecutionContext::with_budget(Arc::clone(&ranking), b),
            None => ExecutionContext::new(Arc::clone(&ranking)),
        }
        .with_epochs(epochs)
        .with_threads(settings.threads)
        .with_batch_size(settings.batch_size)
        .with_morsel_size(settings.morsel_size);
        let counters_before = ranking.counters().snapshot();
        let table_stats = planner_table_stats(catalog, &physical);
        let start = Instant::now();
        let root = build_operator(&physical, catalog, &exec)?;
        let schema = physical.schema()?;
        Ok(Cursor {
            root,
            exec,
            schema,
            physical,
            ranking,
            start,
            counters_before,
            plan_cache,
            table_stats,
            exhausted: false,
            emitted: 0,
        })
    }

    /// The schema of the emitted rows.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The physical plan this cursor is executing.
    pub fn physical(&self) -> &PhysicalPlan {
        &self.physical
    }

    /// The query's ranking context (to score returned rows).
    pub fn ranking(&self) -> &Arc<RankingContext> {
        &self.ranking
    }

    /// The final query score of a returned row.
    pub fn score(&self, row: &RankedTuple) -> f64 {
        self.ranking.upper_bound(&row.state).value()
    }

    /// The live per-operator metrics registry (updates as the cursor pulls).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        self.exec.metrics()
    }

    /// Rows emitted so far.
    pub fn rows_emitted(&self) -> u64 {
        self.emitted
    }

    /// Whether the stream reported end-of-stream (a later
    /// [`Cursor::fetch_more`] may re-open it).
    pub fn is_exhausted(&self) -> bool {
        self.exhausted
    }

    /// The epochs this cursor's execution has pinned so far, as sorted
    /// `(table_id, epoch_ordinal)` pairs — the observable MVCC snapshot.
    /// Pins are taken lazily on first scan touch, so a cursor that has not
    /// pulled yet may report fewer tables than its plan references.
    pub fn pinned_epochs(&self) -> Vec<(u32, u64)> {
        self.exec.epochs().pins()
    }

    /// Scan-produced tuples consumed so far (the tuple-budget meter; also
    /// the per-tenant `tuples_scanned` the server's STATS verb reports).
    pub fn tuples_scanned(&self) -> u64 {
        self.exec.budget().used()
    }

    /// Pages faulted into the buffer pool by this execution so far (zero on
    /// non-paged backends).
    pub fn pages_faulted(&self) -> u64 {
        self.exec.pages_faulted()
    }

    /// Produces the next row, or `None` when the stream is exhausted.
    #[allow(clippy::should_implement_trait)] // fallible next + an Iterator impl, like std's Lines
    pub fn next(&mut self) -> Result<Option<RankedTuple>> {
        if self.exhausted {
            return Ok(None);
        }
        match self.root.next()? {
            Some(t) => {
                self.emitted += 1;
                Ok(Some(t))
            }
            None => {
                self.exhausted = true;
                Ok(None)
            }
        }
    }

    /// Pulls up to `n` rows through the batched execution path.
    pub fn next_batch(&mut self, n: usize) -> Result<Vec<RankedTuple>> {
        let mut out = Batch::with_capacity(n.min(self.exec.batch_size()));
        while !self.exhausted && out.len() < n {
            let want = (n - out.len()).min(self.exec.batch_size());
            if self.root.next_batch(want, &mut out)? == 0 {
                self.exhausted = true;
            }
        }
        self.emitted += out.len() as u64;
        Ok(out.into_vec())
    }

    /// Draws at most `k` rows (alias of [`Cursor::next_batch`] with the
    /// top-k reading: "give me the best `k` you have not yet returned").
    pub fn take(&mut self, k: usize) -> Result<Vec<RankedTuple>> {
        self.next_batch(k)
    }

    /// Extends a top-k past the plan's original limit by `k` further rows
    /// and returns them.
    ///
    /// Works by raising every limit cap in the live operator tree
    /// (`extend_limit`) and resuming: on incremental rank-aware plans the
    /// operators kept all their state, so the extension costs only the
    /// *additional* work for `k` more results.  Fails with an execution
    /// error on plans whose blocking operators already discarded tuples
    /// beyond the original `k` (e.g. a materialised bounded-heap top-k sort
    /// or a re-limiting parallel exchange) — re-prepare with a larger
    /// `LIMIT` (or bind a larger `Params::k`) in that case.
    pub fn fetch_more(&mut self, k: usize) -> Result<Vec<RankedTuple>> {
        if k == 0 {
            return Ok(Vec::new());
        }
        // Two-phase: the pure `can_extend_limit` check runs over the whole
        // tree first, so a refusal leaves every cap untouched (the mutating
        // walk could otherwise raise caps in sibling subtrees before
        // reaching the refusing operator).
        if !self.root.can_extend_limit() {
            return Err(RankSqlError::Execution(
                "this plan cannot extend its top-k: a blocking operator discarded tuples \
                 beyond the original limit; re-prepare with a larger LIMIT or bind Params::k"
                    .into(),
            ));
        }
        let extended = self.root.extend_limit(k);
        debug_assert!(extended, "extend_limit disagreed with can_extend_limit");
        self.exhausted = false;
        self.next_batch(k)
    }

    /// Drains every remaining row.
    pub fn drain(&mut self) -> Result<Vec<RankedTuple>> {
        let mut out = Vec::new();
        let batch_size = self.exec.batch_size();
        let mut batch = Batch::with_capacity(batch_size);
        while !self.exhausted {
            batch.clear();
            if self.root.next_batch(batch_size, &mut batch)? == 0 {
                self.exhausted = true;
            } else {
                self.emitted += batch.len() as u64;
                out.append(&mut batch);
            }
        }
        Ok(out)
    }

    /// The referenced tables' statistics catalogs as they stood when this
    /// cursor opened (the statistics the planner had available); empty when
    /// no scanned table had built statistics.
    pub fn table_stats(&self) -> &[(String, StatsCatalog)] {
        &self.table_stats
    }

    /// The executed plan annotated with live per-operator actuals, plus the
    /// plan-cache outcome when this cursor came from a prepared statement
    /// and one `statistics[T]` line per scanned table with built statistics.
    pub fn explain_analyze(&self) -> String {
        let mut out = String::new();
        if let Some(cache) = &self.plan_cache {
            out.push_str(&cache.to_line());
            out.push('\n');
        }
        for (table, catalog) in &self.table_stats {
            out.push_str(&stats_line(table, catalog));
            out.push('\n');
        }
        let (faulted, pruned) = (self.exec.pages_faulted(), self.exec.pages_pruned());
        if faulted > 0 || pruned > 0 {
            out.push_str(&format!(
                "paged storage: pages_faulted={faulted}, pages_pruned={pruned}\n"
            ));
        }
        out.push_str(
            &self
                .physical
                .explain_with_actuals(Some(&self.ranking), &self.exec.metrics().operator_actuals()),
        );
        out
    }

    /// Drains the remaining rows and converts the cursor into an eager
    /// [`QueryResult`] (rows already taken through the cursor are *not*
    /// included — they were handed to the caller).
    pub fn into_result(mut self) -> Result<QueryResult> {
        let tuples = self.drain()?;
        let elapsed = self.start.elapsed();
        let after = self.ranking.counters().snapshot();
        let predicate_evaluations = after
            .iter()
            .zip(self.counters_before.iter())
            .map(|(a, b)| a - b)
            .collect();
        let execution = ExecutionResult {
            tuples,
            metrics: Arc::clone(self.exec.metrics()),
            elapsed,
            predicate_evaluations,
            tuples_scanned: self.exec.budget().used(),
            blocks_pruned: self.exec.blocks_pruned(),
            pages_faulted: self.exec.pages_faulted(),
            pages_pruned: self.exec.pages_pruned(),
        };
        let mut result = QueryResult::from_ranking(&self.ranking, &self.physical, execution)?;
        result.plan_cache = self.plan_cache;
        result.table_stats = self.table_stats;
        Ok(result)
    }
}

/// Streaming iteration without giving up the cursor: `for row in &mut
/// cursor { ... }` yields `Result<RankedTuple>` and leaves the cursor
/// usable afterwards (e.g. for [`Cursor::fetch_more`] or metrics).
///
/// The `Iterator` impl deliberately lives on `&mut Cursor` (with an
/// [`IntoIterator`] for the owned form below) so that `Iterator::take`
/// never shadows the cursor's own top-k [`Cursor::take`].
impl Iterator for &mut Cursor {
    type Item = Result<RankedTuple>;

    fn next(&mut self) -> Option<Self::Item> {
        Cursor::next(self).transpose()
    }
}

/// The owned row iterator of a consumed [`Cursor`].
pub struct CursorRows(Cursor);

impl CursorRows {
    /// The cursor driving this iterator.
    pub fn cursor(&self) -> &Cursor {
        &self.0
    }

    /// Recovers the cursor (e.g. to `fetch_more` after iterating).
    pub fn into_cursor(self) -> Cursor {
        self.0
    }
}

impl Iterator for CursorRows {
    type Item = Result<RankedTuple>;

    fn next(&mut self) -> Option<Self::Item> {
        Cursor::next(&mut self.0).transpose()
    }
}

impl IntoIterator for Cursor {
    type Item = Result<RankedTuple>;
    type IntoIter = CursorRows;

    fn into_iter(self) -> CursorRows {
        CursorRows(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::{Database, PlanMode};
    use crate::QueryBuilder;
    use ranksql_common::{DataType, Field, Value};
    use ranksql_expr::{BoolExpr, RankPredicate};

    fn hrjn_db(rows: i64) -> (Database, RankQuery) {
        let db = Database::new();
        for name in ["H", "R"] {
            db.create_table(
                name,
                Schema::new(vec![
                    Field::new("id", DataType::Int64),
                    Field::new("city", DataType::Int64),
                    Field::new("score", DataType::Float64),
                ]),
            )
            .unwrap();
            for i in 0..rows {
                db.insert(
                    name,
                    vec![
                        Value::from(i),
                        Value::from(i % 10),
                        Value::from(
                            ((i * 37 + if name == "H" { 0 } else { 13 }) % 100) as f64 / 100.0,
                        ),
                    ],
                )
                .unwrap();
            }
        }
        let query = QueryBuilder::new()
            .tables(["H", "R"])
            .filter(BoolExpr::col_eq_col("H.city", "R.city"))
            .rank_predicate(RankPredicate::attribute("hs", "H.score"))
            .rank_predicate(RankPredicate::attribute("rs", "R.score"))
            .limit(100)
            .build()
            .unwrap();
        (db, query)
    }

    #[test]
    fn take_on_a_rank_aware_plan_does_not_drain_the_scans() {
        let (db, query) = hrjn_db(400);
        let session = db.session();
        let bound = session
            .prepare_query(query.clone())
            .unwrap()
            .bind(crate::Params::none())
            .unwrap();
        let mut cursor = bound.cursor().unwrap();
        let top3 = cursor.take(3).unwrap();
        assert_eq!(top3.len(), 3);
        // Scan consumption is proportional to what the top-3 needed, far
        // below the table cardinality (the acceptance criterion).
        let scanned: u64 = cursor
            .metrics()
            .snapshot()
            .iter()
            .filter(|m| m.name().contains("Scan"))
            .map(|m| m.tuples_out())
            .sum();
        assert!(
            scanned < 400,
            "cursor must not drain the inputs: scanned {scanned} of 2×400"
        );

        // An eager drain of the same plan consumes strictly more.
        let full = session.execute(&query).unwrap();
        let full_scanned: u64 = full
            .metrics
            .snapshot()
            .iter()
            .filter(|m| m.name().contains("Scan"))
            .map(|m| m.tuples_out())
            .sum();
        assert!(
            scanned < full_scanned,
            "take(3) ({scanned}) must consume fewer scan tuples than a drain ({full_scanned})"
        );
        // The streamed prefix equals the eager prefix.
        for (c, e) in top3.iter().zip(full.rows.iter()) {
            assert_eq!(c.tuple.id(), e.tuple.id());
        }
    }

    #[test]
    fn fetch_more_extends_past_the_original_limit() {
        let (db, _) = hrjn_db(60);
        let query = QueryBuilder::new()
            .tables(["H", "R"])
            .filter(BoolExpr::col_eq_col("H.city", "R.city"))
            .rank_predicate(RankPredicate::attribute("hs", "H.score"))
            .rank_predicate(RankPredicate::attribute("rs", "R.score"))
            .limit(4)
            .build()
            .unwrap();
        let session = db.session();
        let mut cursor = session
            .prepare_query(query.clone())
            .unwrap()
            .bind(crate::Params::new())
            .unwrap()
            .cursor()
            .unwrap();
        let first = cursor.drain().unwrap();
        assert_eq!(first.len(), 4);
        assert!(cursor.is_exhausted());
        let more = cursor.fetch_more(3).unwrap();
        assert_eq!(more.len(), 3);
        // first+more equal one k=7 execution, byte for byte.
        let mut q7 = query;
        q7.k = 7;
        let reference = session.with_mode(PlanMode::RankAware).execute(&q7).unwrap();
        let got: Vec<_> = first
            .iter()
            .chain(more.iter())
            .map(|t| t.tuple.id().clone())
            .collect();
        let want: Vec<_> = reference
            .rows
            .iter()
            .map(|t| t.tuple.id().clone())
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn fetch_more_refuses_on_discarding_plans() {
        let (db, query) = hrjn_db(30);
        let mut cursor = db
            .session()
            .with_mode(PlanMode::Canonical)
            .prepare_query(query)
            .unwrap()
            .bind(crate::Params::none())
            .unwrap()
            .cursor()
            .unwrap();
        let _ = cursor.drain().unwrap();
        let err = cursor.fetch_more(5).unwrap_err();
        assert!(err.to_string().contains("cannot extend"), "{err}");
    }

    #[test]
    fn cursor_iterates_and_reports() {
        let (db, query) = hrjn_db(30);
        let ranking = Arc::clone(&query.ranking);
        let mut cursor = db
            .session()
            .prepare_query(query)
            .unwrap()
            .bind(crate::Params::none())
            .unwrap()
            .cursor()
            .unwrap();
        assert_eq!(cursor.schema().len(), 6);
        let mut last = f64::INFINITY;
        let mut n = 0u64;
        for row in &mut cursor {
            let row = row.unwrap();
            let s = ranking.upper_bound(&row.state).value();
            assert!(s <= last + 1e-12, "scores must be non-increasing");
            last = s;
            n += 1;
        }
        assert!(cursor.is_exhausted());
        assert!(n > 0);
        assert_eq!(cursor.rows_emitted(), n);
        let text = cursor.explain_analyze();
        assert!(text.contains("actual_rows"), "{text}");
    }
}
