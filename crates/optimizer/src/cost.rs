//! The cost model: combines scan, predicate-evaluation, join, sort and
//! buffering costs over estimated cardinalities.

use ranksql_algebra::{JoinAlgorithm, LogicalPlan, ScanAccess, SetOpKind};
use ranksql_common::Result;
use ranksql_expr::RankingContext;

use crate::sampling::SamplingEstimator;

/// Re-exported from `ranksql-common`, where the physical plan IR also uses
/// it for per-node annotations.
pub use ranksql_common::Cost;

/// Tunable constants of the cost model.
///
/// The absolute values are unimportant (costs are only compared); the ratios
/// express that sequential access is cheap, hashing and priority-queue
/// maintenance cost a little more, and user-defined ranking predicates cost
/// `predicate.cost` *units* each, matching the workload knob of Section 6.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Cost of producing one tuple from a sequential scan.
    pub seq_tuple: f64,
    /// Cost of producing one tuple from a *columnar* sequential scan
    /// (dense typed vectors, no per-tuple indirection; the `columnarize`
    /// pass re-costs annotated scans with this constant).  Zone-map
    /// pruning makes the realized cost lower still — the estimate is the
    /// no-pruning upper bound.
    pub columnar_tuple: f64,
    /// Cost of producing one tuple from an index (rank or attribute) scan.
    pub index_tuple: f64,
    /// Cost of evaluating a Boolean predicate on one tuple.
    pub bool_eval: f64,
    /// Cost of one unit of ranking-predicate cost (multiplied by
    /// `RankPredicate::cost`, with a minimum of one unit per evaluation).
    pub rank_eval_unit: f64,
    /// Cost of inserting/extracting one tuple in a ranking queue or hash
    /// table.
    pub buffer_tuple: f64,
    /// Per-comparison cost of a blocking sort (`n log n` comparisons).
    pub sort_compare: f64,
    /// Cost of emitting one join result.
    pub join_output: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            seq_tuple: 1.0,
            columnar_tuple: 0.4,
            index_tuple: 1.2,
            bool_eval: 0.1,
            rank_eval_unit: 2.0,
            buffer_tuple: 0.5,
            sort_compare: 0.05,
            join_output: 0.2,
        }
    }
}

impl CostModel {
    /// Cost of evaluating ranking predicate `p` once.
    fn rank_eval(&self, ctx: &RankingContext, p: usize) -> f64 {
        let units = ctx.predicate(p).cost.max(1) as f64;
        units * self.rank_eval_unit
    }

    /// Estimates the cost of a plan, using `estimator` for cardinalities.
    ///
    /// Returns the pair `(cost, output_cardinality)` so that parents can use
    /// the child cardinality without re-estimating.
    pub fn cost_plan(
        &self,
        plan: &LogicalPlan,
        ctx: &RankingContext,
        estimator: &SamplingEstimator,
    ) -> Result<(Cost, f64)> {
        let out_card = estimator.estimate_cardinality(plan)?;
        let cost = match plan {
            LogicalPlan::Scan { access, .. } => {
                let full = estimator.table_cardinality(plan)?;
                match access {
                    // A sequential scan reads the whole table.
                    ScanAccess::Sequential => Cost(full * self.seq_tuple),
                    // Index scans read only as much as the consumer needs —
                    // approximated by the estimated (k-aware) output
                    // cardinality.
                    ScanAccess::RankIndex { .. } | ScanAccess::AttributeIndex { .. } => {
                        Cost(out_card * self.index_tuple)
                    }
                }
            }
            LogicalPlan::Select { input, .. } => {
                let (child_cost, child_card) = self.cost_plan(input, ctx, estimator)?;
                child_cost + Cost(child_card * self.bool_eval)
            }
            LogicalPlan::Project { input, .. } => {
                let (child_cost, _) = self.cost_plan(input, ctx, estimator)?;
                child_cost
            }
            LogicalPlan::Rank { input, predicate } => {
                let (child_cost, child_card) = self.cost_plan(input, ctx, estimator)?;
                child_cost
                    + Cost(child_card * self.rank_eval(ctx, *predicate))
                    + Cost(child_card * self.buffer_tuple)
            }
            LogicalPlan::Join {
                left,
                right,
                algorithm,
                ..
            } => {
                let (lc, lcard) = self.cost_plan(left, ctx, estimator)?;
                let (rc, rcard) = self.cost_plan(right, ctx, estimator)?;
                let io = match algorithm {
                    JoinAlgorithm::NestedLoop => lcard * rcard * self.bool_eval,
                    JoinAlgorithm::Hash | JoinAlgorithm::HashRankJoin => {
                        (lcard + rcard) * self.buffer_tuple
                    }
                    JoinAlgorithm::SortMerge => {
                        let sort = |n: f64| n * (n.max(2.0)).log2() * self.sort_compare;
                        sort(lcard) + sort(rcard) + (lcard + rcard) * self.buffer_tuple
                    }
                    JoinAlgorithm::NestedLoopRankJoin => lcard * rcard * self.bool_eval,
                };
                lc + rc + Cost(io) + Cost(out_card * self.join_output)
            }
            LogicalPlan::SetOp { kind, left, right } => {
                let (lc, lcard) = self.cost_plan(left, ctx, estimator)?;
                let (rc, rcard) = self.cost_plan(right, ctx, estimator)?;
                let own = match kind {
                    SetOpKind::Union | SetOpKind::Intersect => (lcard + rcard) * self.buffer_tuple,
                    SetOpKind::Except => rcard * self.buffer_tuple + lcard * self.bool_eval,
                };
                lc + rc + Cost(own)
            }
            LogicalPlan::Sort { input, predicates } => {
                let (child_cost, child_card) = self.cost_plan(input, ctx, estimator)?;
                let missing = predicates.difference(input.evaluated_predicates());
                let eval: f64 =
                    missing.iter().map(|p| self.rank_eval(ctx, p)).sum::<f64>() * child_card;
                let n = child_card.max(2.0);
                child_cost + Cost(eval) + Cost(n * n.log2() * self.sort_compare)
            }
            LogicalPlan::Limit { input, .. } => {
                let (child_cost, _) = self.cost_plan(input, ctx, estimator)?;
                child_cost
            }
        };
        Ok((cost, out_card))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_constants_are_positive() {
        let m = CostModel::default();
        for v in [
            m.seq_tuple,
            m.index_tuple,
            m.bool_eval,
            m.rank_eval_unit,
            m.buffer_tuple,
            m.sort_compare,
            m.join_output,
        ] {
            assert!(v > 0.0);
        }
    }
}
