//! Lowering `LogicalPlan → PhysicalPlan` with real per-node cost estimates.
//!
//! The structural mapping (which operator implements which logical node) is
//! shared with [`PhysicalPlan::from_logical`]; this module re-runs it while
//! annotating every physical node with the cost model's estimated cumulative
//! cost and the estimator's output cardinality, so `explain` can print the
//! tree the executor will run together with the numbers that made the
//! optimizer choose it.

use ranksql_algebra::{JoinAlgorithm, LogicalPlan, PhysicalOp, PhysicalPlan, ScanAccess};
use ranksql_common::Result;
use ranksql_expr::RankingContext;

use crate::cost::CostModel;
use crate::sampling::SamplingEstimator;

/// Lowers a logical plan and annotates every node with `(cost, rows)`
/// estimates.
///
/// Fused nodes (e.g. `SortLimit` for `Limit(Sort(x))`) carry the estimates
/// of the logical node group they implement.
pub fn lower_with_estimates(
    plan: &LogicalPlan,
    ctx: &RankingContext,
    estimator: &SamplingEstimator,
    cost_model: &CostModel,
) -> Result<PhysicalPlan> {
    // The structural mapping below must mirror `from_logical` (including
    // the Limit(Sort) fusion); the tests cross-check the two against each
    // other.
    if let LogicalPlan::Limit { input, k } = plan {
        if let LogicalPlan::Sort {
            input: sort_input,
            predicates,
        } = input.as_ref()
        {
            let child = lower_with_estimates(sort_input, ctx, estimator, cost_model)?;
            let (cost, _) = cost_model.cost_plan(plan, ctx, estimator)?;
            let rows = estimator.estimate_cardinality(plan)?;
            return Ok(PhysicalPlan {
                op: PhysicalOp::SortLimit {
                    input: Box::new(child),
                    predicates: *predicates,
                    k: *k,
                },
                estimated_cost: cost,
                estimated_rows: rows,
            });
        }
    }
    let children: Result<Vec<PhysicalPlan>> = plan
        .children()
        .into_iter()
        .map(|c| lower_with_estimates(c, ctx, estimator, cost_model))
        .collect();
    let mut children = children?;
    // Map this single node over the recursively lowered children (a direct
    // match rather than `from_logical`, which would re-lower and clone the
    // whole subtree per level).
    let op = match plan {
        LogicalPlan::Scan {
            table,
            schema,
            access,
        } => match access {
            ScanAccess::Sequential => PhysicalOp::SeqScan {
                table: table.clone(),
                schema: schema.clone(),
                columnar: None,
            },
            ScanAccess::RankIndex { predicate } => PhysicalOp::RankScan {
                table: table.clone(),
                schema: schema.clone(),
                predicate: *predicate,
            },
            ScanAccess::AttributeIndex { column } => PhysicalOp::AttributeIndexScan {
                table: table.clone(),
                schema: schema.clone(),
                column: column.clone(),
            },
        },
        LogicalPlan::Select { predicate, .. } => PhysicalOp::Filter {
            input: Box::new(children.remove(0)),
            predicate: predicate.clone(),
        },
        LogicalPlan::Project { columns, .. } => PhysicalOp::Project {
            input: Box::new(children.remove(0)),
            columns: columns.clone(),
        },
        LogicalPlan::Rank { predicate, .. } => PhysicalOp::RankMaterialize {
            input: Box::new(children.remove(0)),
            predicate: *predicate,
        },
        LogicalPlan::Join {
            condition,
            algorithm,
            ..
        } => {
            let left = Box::new(children.remove(0));
            let right = Box::new(children.remove(0));
            let condition = condition.clone();
            match algorithm {
                JoinAlgorithm::NestedLoop => PhysicalOp::NestedLoopsJoin {
                    left,
                    right,
                    condition,
                },
                JoinAlgorithm::Hash => PhysicalOp::HashJoin {
                    left,
                    right,
                    condition,
                },
                JoinAlgorithm::SortMerge => PhysicalOp::SortMergeJoin {
                    left,
                    right,
                    condition,
                },
                JoinAlgorithm::HashRankJoin => PhysicalOp::HashRankJoin {
                    left,
                    right,
                    condition,
                },
                JoinAlgorithm::NestedLoopRankJoin => PhysicalOp::NestedLoopsRankJoin {
                    left,
                    right,
                    condition,
                },
            }
        }
        LogicalPlan::SetOp { kind, .. } => {
            let left = Box::new(children.remove(0));
            let right = Box::new(children.remove(0));
            PhysicalOp::SetOp {
                kind: *kind,
                left,
                right,
            }
        }
        LogicalPlan::Sort { predicates, .. } => PhysicalOp::Sort {
            input: Box::new(children.remove(0)),
            predicates: *predicates,
        },
        LogicalPlan::Limit { k, .. } => PhysicalOp::Limit {
            input: Box::new(children.remove(0)),
            k: *k,
        },
    };
    let (cost, rows) = cost_model.cost_plan(plan, ctx, estimator)?;
    Ok(PhysicalPlan {
        op,
        estimated_cost: cost,
        estimated_rows: rows,
    })
}

/// Fuses every chain of two or more consecutive µ operators into one
/// [`PhysicalOp::MproProbe`] scheduled cheapest-predicate-first — the MPro
/// minimal-probing strategy, which evaluates predicates lazily and never
/// probes a tuple whose emission or elimination is already decided.
///
/// The fused node keeps the chain's estimates (MPro's probe count is
/// bounded above by the chain's, so they are a safe upper bound).
pub fn fuse_mu_chains(plan: PhysicalPlan, ctx: &RankingContext) -> PhysicalPlan {
    let PhysicalPlan {
        op,
        estimated_cost,
        estimated_rows,
    } = plan;
    // Collect a maximal µ chain rooted at this node.
    if let PhysicalOp::RankMaterialize { input, predicate } = op {
        let mut predicates = vec![predicate];
        let mut cursor = *input;
        while let PhysicalOp::RankMaterialize { input, predicate } = cursor.op {
            predicates.push(predicate);
            cursor = *input;
        }
        let inner = fuse_mu_chains(cursor, ctx);
        if predicates.len() >= 2 {
            let mut schedule = predicates;
            schedule.sort_by_key(|&p| {
                if p < ctx.num_predicates() {
                    ctx.predicate(p).cost
                } else {
                    u64::MAX
                }
            });
            return PhysicalPlan {
                op: PhysicalOp::MproProbe {
                    input: Box::new(inner),
                    schedule,
                },
                estimated_cost,
                estimated_rows,
            };
        }
        return PhysicalPlan {
            op: PhysicalOp::RankMaterialize {
                input: Box::new(inner),
                predicate: predicates[0],
            },
            estimated_cost,
            estimated_rows,
        };
    }
    // Not a µ: rebuild this node over recursively fused children.
    let op = match op {
        PhysicalOp::Filter { input, predicate } => PhysicalOp::Filter {
            input: Box::new(fuse_mu_chains(*input, ctx)),
            predicate,
        },
        PhysicalOp::Project { input, columns } => PhysicalOp::Project {
            input: Box::new(fuse_mu_chains(*input, ctx)),
            columns,
        },
        PhysicalOp::MproProbe { input, schedule } => PhysicalOp::MproProbe {
            input: Box::new(fuse_mu_chains(*input, ctx)),
            schedule,
        },
        PhysicalOp::NestedLoopsJoin {
            left,
            right,
            condition,
        } => PhysicalOp::NestedLoopsJoin {
            left: Box::new(fuse_mu_chains(*left, ctx)),
            right: Box::new(fuse_mu_chains(*right, ctx)),
            condition,
        },
        PhysicalOp::HashJoin {
            left,
            right,
            condition,
        } => PhysicalOp::HashJoin {
            left: Box::new(fuse_mu_chains(*left, ctx)),
            right: Box::new(fuse_mu_chains(*right, ctx)),
            condition,
        },
        PhysicalOp::SortMergeJoin {
            left,
            right,
            condition,
        } => PhysicalOp::SortMergeJoin {
            left: Box::new(fuse_mu_chains(*left, ctx)),
            right: Box::new(fuse_mu_chains(*right, ctx)),
            condition,
        },
        PhysicalOp::HashRankJoin {
            left,
            right,
            condition,
        } => PhysicalOp::HashRankJoin {
            left: Box::new(fuse_mu_chains(*left, ctx)),
            right: Box::new(fuse_mu_chains(*right, ctx)),
            condition,
        },
        PhysicalOp::NestedLoopsRankJoin {
            left,
            right,
            condition,
        } => PhysicalOp::NestedLoopsRankJoin {
            left: Box::new(fuse_mu_chains(*left, ctx)),
            right: Box::new(fuse_mu_chains(*right, ctx)),
            condition,
        },
        PhysicalOp::SetOp { kind, left, right } => PhysicalOp::SetOp {
            kind,
            left: Box::new(fuse_mu_chains(*left, ctx)),
            right: Box::new(fuse_mu_chains(*right, ctx)),
        },
        PhysicalOp::Sort { input, predicates } => PhysicalOp::Sort {
            input: Box::new(fuse_mu_chains(*input, ctx)),
            predicates,
        },
        PhysicalOp::SortLimit {
            input,
            predicates,
            k,
        } => PhysicalOp::SortLimit {
            input: Box::new(fuse_mu_chains(*input, ctx)),
            predicates,
            k,
        },
        PhysicalOp::Limit { input, k } => PhysicalOp::Limit {
            input: Box::new(fuse_mu_chains(*input, ctx)),
            k,
        },
        PhysicalOp::Exchange { input, merge } => PhysicalOp::Exchange {
            input: Box::new(fuse_mu_chains(*input, ctx)),
            merge,
        },
        PhysicalOp::Repartition { input } => PhysicalOp::Repartition {
            input: Box::new(fuse_mu_chains(*input, ctx)),
        },
        leaf @ (PhysicalOp::SeqScan { .. }
        | PhysicalOp::RankScan { .. }
        | PhysicalOp::AttributeIndexScan { .. }
        | PhysicalOp::RankMaterialize { .. }) => leaf,
    };
    PhysicalPlan {
        op,
        estimated_cost,
        estimated_rows,
    }
}

/// Per-operator `(label, estimated_rows)` in post-order — pairs one-to-one
/// with the executor's metric registration order for the same plan.
pub fn physical_estimates(plan: &PhysicalPlan, ctx: Option<&RankingContext>) -> Vec<(String, f64)> {
    plan.post_order()
        .into_iter()
        .map(|n| (n.node_label(ctx), n.estimated_rows))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ranksql_algebra::RankQuery;
    use ranksql_common::{DataType, Field, Schema, Value};
    use ranksql_expr::{BoolExpr, RankPredicate, ScoringFunction};
    use ranksql_storage::Catalog;

    fn setup() -> (Catalog, RankQuery) {
        let cat = Catalog::new();
        let a = cat
            .create_table(
                "A",
                Schema::new(vec![
                    Field::new("jc", DataType::Int64),
                    Field::new("p1", DataType::Float64),
                ]),
            )
            .unwrap();
        let b = cat
            .create_table(
                "B",
                Schema::new(vec![
                    Field::new("jc", DataType::Int64),
                    Field::new("p2", DataType::Float64),
                ]),
            )
            .unwrap();
        for i in 0..100 {
            a.insert(vec![
                Value::from((i % 11) as i64),
                Value::from(((i * 37) % 100) as f64 / 100.0),
            ])
            .unwrap();
            b.insert(vec![
                Value::from((i % 11) as i64),
                Value::from(((i * 61) % 100) as f64 / 100.0),
            ])
            .unwrap();
        }
        let ranking = RankingContext::new(
            vec![
                RankPredicate::attribute_with_cost("p1", "A.p1", 1),
                RankPredicate::attribute_with_cost("p2", "B.p2", 30),
            ],
            ScoringFunction::Sum,
        );
        let query = RankQuery::new(
            vec!["A".into(), "B".into()],
            vec![BoolExpr::col_eq_col("A.jc", "B.jc")],
            ranking,
            5,
        );
        (cat, query)
    }

    #[test]
    fn lowering_annotates_every_node_with_estimates() {
        let (cat, query) = setup();
        let estimator = SamplingEstimator::build(&query, &cat, 0.2, 7).unwrap();
        let model = CostModel::default();
        let plan = query.canonical_plan(&cat).unwrap();
        let physical = lower_with_estimates(&plan, &query.ranking, &estimator, &model).unwrap();
        // Canonical = scan ⨯ scan → select → sort+limit (fused).
        let nodes = physical.post_order();
        assert!(nodes
            .iter()
            .any(|n| n.node_label(None).starts_with("SortLimit[")));
        // Costs are cumulative: the root's cost dominates every node's.
        let root_cost = physical.estimated_cost;
        assert!(root_cost.is_finite() && root_cost.value() > 0.0);
        for n in &nodes {
            assert!(n.estimated_cost <= root_cost, "{}", n.node_label(None));
            assert!(n.estimated_rows.is_finite() && n.estimated_rows >= 0.0);
        }
        let series = physical_estimates(&physical, Some(&query.ranking));
        assert_eq!(series.len(), physical.node_count());
    }

    #[test]
    fn lowering_structure_matches_from_logical() {
        let (cat, query) = setup();
        let estimator = SamplingEstimator::build(&query, &cat, 0.2, 7).unwrap();
        let model = CostModel::default();
        let a = cat.table("A").unwrap();
        let b = cat.table("B").unwrap();
        for plan in [
            query.canonical_plan(&cat).unwrap(),
            ranksql_algebra::LogicalPlan::rank_scan(&a, 0)
                .join(
                    ranksql_algebra::LogicalPlan::scan(&b).rank(1),
                    Some(BoolExpr::col_eq_col("A.jc", "B.jc")),
                    ranksql_algebra::JoinAlgorithm::HashRankJoin,
                )
                .limit(4),
            ranksql_algebra::LogicalPlan::index_scan(&a, "A.jc")
                .select(BoolExpr::col_eq_col("A.jc", "A.jc"))
                .project(vec!["A.p1".to_owned()])
                .limit(2),
        ] {
            let annotated =
                lower_with_estimates(&plan, &query.ranking, &estimator, &model).unwrap();
            let structural = PhysicalPlan::from_logical(&plan).unwrap();
            let labels = |p: &PhysicalPlan| -> Vec<String> {
                p.post_order()
                    .iter()
                    .map(|n| n.node_label(Some(&query.ranking)))
                    .collect()
            };
            assert_eq!(labels(&annotated), labels(&structural), "{plan}");
        }
    }

    #[test]
    fn mu_chains_fuse_into_mpro_with_cost_ascending_schedule() {
        let (cat, query) = setup();
        let a = cat.table("A").unwrap();
        // µ_p1(µ_p2(SeqScan(A))) — p2 is 30× more expensive than p1.
        let logical = ranksql_algebra::LogicalPlan::scan(&a)
            .rank(1)
            .rank(0)
            .limit(3);
        let physical = PhysicalPlan::from_logical(&logical).unwrap();
        let fused = fuse_mu_chains(physical, &query.ranking);
        let labels: Vec<String> = fused
            .post_order()
            .iter()
            .map(|n| n.node_label(Some(&query.ranking)))
            .collect();
        assert!(
            labels.iter().any(|l| l == "MPro[p1→p2]"),
            "expected a cheapest-first MPro schedule, got {labels:?}"
        );
        // A single µ is left alone.
        let single =
            PhysicalPlan::from_logical(&ranksql_algebra::LogicalPlan::scan(&a).rank(0).limit(3))
                .unwrap();
        let same = fuse_mu_chains(single.clone(), &query.ranking);
        assert_eq!(single, same);
    }
}
