//! Two-dimensional plan enumeration (Figure 8) with the optional heuristics
//! of Figure 10.
//!
//! The enumeration treats ranking as a second dimension alongside joining:
//! a subplan's *signature* is the pair `(SR, SP)` of the relations it joins
//! and the ranking predicates it has evaluated.  Subplans with the same
//! signature produce the same rank-relation, so only the cheapest plan per
//! signature is kept (plus, as in System R, plans with useful physical
//! properties — here the unranked `SP = ∅` signatures keep their attribute
//! orders implicitly because scans are re-derivable).
//!
//! Plans for a signature are built three ways, mirroring the pseudo-code:
//!
//! * `joinPlan(best(SR1, SP1), best(SR2, SP2))` for every split of `SR` and
//!   `SP` (with `SP1`/`SP2` evaluable on their respective sides);
//! * `rankPlan(best(SR, SP − {p}), µ_p)` — appending one rank operator;
//! * `scanPlan(SR, SP)` for single relations with at most one predicate
//!   (sequential scan or rank-scan, with selections pushed down).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ranksql_algebra::{JoinAlgorithm, LogicalPlan, RankQuery};
use ranksql_common::{BitSet64, RankSqlError, Result};
use ranksql_expr::BoolExpr;
use ranksql_storage::Catalog;

use crate::cost::{Cost, CostModel};
use crate::sampling::SamplingEstimator;
use crate::OptimizedPlan;

/// Statistics about one enumeration run.
#[derive(Debug, Clone, Default)]
pub struct EnumerationStats {
    /// Number of candidate plans generated and costed.
    pub plans_considered: usize,
    /// Number of signatures for which a best plan was kept.
    pub signatures_kept: usize,
    /// Time spent enumerating (excluding estimator construction).
    pub elapsed: Duration,
}

/// The best plan found for one `(SR, SP)` signature.
#[derive(Debug, Clone)]
struct Candidate {
    plan: LogicalPlan,
    cost: Cost,
    card: f64,
}

/// The two-dimensional dynamic-programming optimizer.
pub struct DpOptimizer<'a> {
    query: &'a RankQuery,
    catalog: &'a Catalog,
    estimator: Arc<SamplingEstimator>,
    cost_model: CostModel,
    /// Apply the Figure 10 heuristics (left-deep joins + greedy rank metric).
    heuristic: bool,
}

impl<'a> DpOptimizer<'a> {
    /// Creates an enumerator.
    pub fn new(
        query: &'a RankQuery,
        catalog: &'a Catalog,
        estimator: Arc<SamplingEstimator>,
        cost_model: CostModel,
        heuristic: bool,
    ) -> Self {
        DpOptimizer {
            query,
            catalog,
            estimator,
            cost_model,
            heuristic,
        }
    }

    fn cost(&self, plan: &LogicalPlan) -> Result<(Cost, f64)> {
        self.cost_model
            .cost_plan(plan, &self.query.ranking, &self.estimator)
    }

    /// Runs the enumeration and returns the best complete plan (wrapped in
    /// the top-k limit and optional projection).
    pub fn optimize(&self) -> Result<OptimizedPlan> {
        let start = Instant::now();
        let h = self.query.tables.len();
        if h == 0 {
            return Err(RankSqlError::Optimizer("query has no tables".into()));
        }
        if h > 12 {
            return Err(RankSqlError::Optimizer(format!(
                "dynamic-programming enumeration supports at most 12 relations, got {h}"
            )));
        }
        let mut stats = EnumerationStats::default();
        let mut memo: HashMap<(u64, u64), Candidate> = HashMap::new();
        let all_tables = BitSet64::all(h);

        // The 1st dimension: number of joined relations.
        for size in 1..=h {
            let table_sets: Vec<BitSet64> =
                all_tables.subsets().filter(|s| s.len() == size).collect();
            for sr in table_sets {
                let evaluable = self.query.rank_predicates_on(sr)?;
                // The 2nd dimension: number of evaluated ranking predicates.
                let mut pred_sets: Vec<BitSet64> = evaluable.subsets().collect();
                pred_sets.sort_by_key(|s| s.len());
                for sp in pred_sets {
                    let mut best: Option<Candidate> = None;
                    let consider = |plan: LogicalPlan,
                                    stats: &mut EnumerationStats,
                                    best: &mut Option<Candidate>|
                     -> Result<()> {
                        let (cost, card) = self.cost(&plan)?;
                        stats.plans_considered += 1;
                        if best.as_ref().map(|b| cost < b.cost).unwrap_or(true) {
                            *best = Some(Candidate { plan, cost, card });
                        }
                        Ok(())
                    };

                    // scanPlan: single relation, at most one predicate.
                    if size == 1 && sp.len() <= 1 {
                        for plan in self.scan_plans(sr, sp)? {
                            consider(plan, &mut stats, &mut best)?;
                        }
                    }

                    // rankPlan: append µ_p on (SR, SP − {p}).
                    for p in sp.iter() {
                        let child_sig = (sr.bits(), sp.difference(BitSet64::singleton(p)).bits());
                        let Some(child) = memo.get(&child_sig) else {
                            continue;
                        };
                        if self.heuristic && self.better_rank_exists(child, p, sp, evaluable)? {
                            continue;
                        }
                        let plan = child.plan.clone().rank(p);
                        consider(plan, &mut stats, &mut best)?;
                    }

                    // joinPlan: every split of SR and SP across the two sides.
                    if size >= 2 {
                        for sr1 in sr.subsets() {
                            if sr1.is_empty() || sr1 == sr {
                                continue;
                            }
                            let sr2 = sr.difference(sr1);
                            // Left-deep heuristic: the right side is a single
                            // relation.
                            if self.heuristic && sr2.len() > 1 {
                                continue;
                            }
                            let left_eval = self.query.rank_predicates_on(sr1)?;
                            let right_eval = self.query.rank_predicates_on(sr2)?;
                            for sp1 in sp.intersect(left_eval).subsets() {
                                let sp2 = sp.difference(sp1);
                                if !sp2.is_subset_of(right_eval) {
                                    continue;
                                }
                                let (Some(left), Some(right)) = (
                                    memo.get(&(sr1.bits(), sp1.bits())),
                                    memo.get(&(sr2.bits(), sp2.bits())),
                                ) else {
                                    continue;
                                };
                                for plan in self.join_plans(left, right, sr1, sr2, sp)? {
                                    consider(plan, &mut stats, &mut best)?;
                                }
                            }
                        }
                    }

                    if let Some(b) = best {
                        memo.insert((sr.bits(), sp.bits()), b);
                    }
                }
            }
        }
        stats.signatures_kept = memo.len();
        stats.elapsed = start.elapsed();

        let final_sig = (all_tables.bits(), self.query.all_rank_predicates().bits());
        let final_candidate = memo.remove(&final_sig).ok_or_else(|| {
            RankSqlError::Optimizer(
                "enumeration produced no plan for the complete signature".into(),
            )
        })?;
        let mut plan = final_candidate.plan.limit(self.query.k);
        if let Some(cols) = &self.query.projection {
            plan = plan.project(cols.clone());
        }
        let (cost, card) = self.cost(&plan)?;
        let physical = crate::lower::lower_with_estimates(
            &plan,
            &self.query.ranking,
            &self.estimator,
            &self.cost_model,
        )?;
        Ok(OptimizedPlan {
            plan,
            physical,
            cost,
            estimated_cardinality: card,
            stats,
        })
    }

    /// The greedy rank-metric heuristic (Figure 10): do not append `µ_pu` on
    /// `child` if another applicable predicate `pv` has a strictly higher
    /// rank metric `(1 − card(plan')/card(plan)) / cost(p)`.
    fn better_rank_exists(
        &self,
        child: &Candidate,
        pu: usize,
        sp: BitSet64,
        evaluable: BitSet64,
    ) -> Result<bool> {
        let metric = |p: usize| -> Result<f64> {
            let plan_with_p = child.plan.clone().rank(p);
            let card_after = self.estimator.estimate_cardinality(&plan_with_p)?;
            let card_before = child.card.max(f64::EPSILON);
            let selectivity_gain = 1.0 - (card_after / card_before).min(1.0);
            let cost = self.query.ranking.predicate(p).cost.max(1) as f64;
            Ok(selectivity_gain / cost)
        };
        let rank_pu = metric(pu)?;
        for pv in evaluable.difference(sp).iter() {
            if metric(pv)? > rank_pu {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Access-path plans for a single relation: sequential scan (SP = ∅) or
    /// rank-scan (SP = {p}), with that table's selection predicates applied.
    fn scan_plans(&self, sr: BitSet64, sp: BitSet64) -> Result<Vec<LogicalPlan>> {
        let ti = sr.iter().next().expect("single relation");
        let table = self.catalog.table(&self.query.tables[ti])?;
        let mut base = Vec::new();
        if sp.is_empty() {
            base.push(LogicalPlan::scan(&table));
        } else {
            let p = sp.iter().next().expect("single predicate");
            // A rank-scan only applies to rank-selection predicates over this
            // very table.
            if self.query.rank_predicate_tables(p)? == sr {
                base.push(LogicalPlan::rank_scan(&table, p));
            }
        }
        let selections = self.query.bool_predicates_on(sr)?;
        let filter = BoolExpr::conjoin(selections);
        Ok(base
            .into_iter()
            .map(|plan| match &filter {
                Some(f) => plan.select(f.clone()),
                None => plan,
            })
            .collect())
    }

    /// Join plans combining the best plans of two signatures.
    fn join_plans(
        &self,
        left: &Candidate,
        right: &Candidate,
        sr1: BitSet64,
        sr2: BitSet64,
        sp: BitSet64,
    ) -> Result<Vec<LogicalPlan>> {
        let join_preds = self.query.join_predicates_between(sr1, sr2)?;
        let condition = BoolExpr::conjoin(join_preds);
        // Avoid Cartesian products when some connected split exists for this
        // relation set (classical System-R heuristic).
        if condition.is_none() {
            let sr = sr1.union(sr2);
            let connected_split_exists =
                sr.subsets().filter(|s| !s.is_empty() && *s != sr).any(|s| {
                    self.query
                        .join_predicates_between(s, sr.difference(s))
                        .map(|p| !p.is_empty())
                        .unwrap_or(false)
                });
            if connected_split_exists {
                return Ok(Vec::new());
            }
        }
        let has_equi = condition
            .as_ref()
            .map(|c| {
                c.split_conjuncts().iter().any(|cj| {
                    matches!(
                        cj,
                        BoolExpr::Compare {
                            op: ranksql_expr::CompareOp::Eq,
                            left: ranksql_expr::ScalarExpr::Column(_),
                            right: ranksql_expr::ScalarExpr::Column(_),
                        }
                    )
                })
            })
            .unwrap_or(false);
        // If ranking is in play anywhere in this signature the join must be
        // rank-aware to preserve the order property; otherwise the
        // traditional implementations compete.
        let algorithms: Vec<JoinAlgorithm> = if !sp.is_empty() {
            if has_equi {
                vec![
                    JoinAlgorithm::HashRankJoin,
                    JoinAlgorithm::NestedLoopRankJoin,
                ]
            } else {
                vec![JoinAlgorithm::NestedLoopRankJoin]
            }
        } else if has_equi {
            vec![
                JoinAlgorithm::Hash,
                JoinAlgorithm::SortMerge,
                JoinAlgorithm::NestedLoop,
            ]
        } else {
            vec![JoinAlgorithm::NestedLoop]
        };
        Ok(algorithms
            .into_iter()
            .map(|alg| {
                left.plan
                    .clone()
                    .join(right.plan.clone(), condition.clone(), alg)
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ranksql_common::{DataType, Field, Schema, Value};
    use ranksql_executor::{execute_query_plan, oracle_top_k};
    use ranksql_expr::{RankPredicate, RankingContext, ScoringFunction};

    /// The Example 5 setting: tables R and S joined on `a`, ranked by
    /// p1 (on R), p3 and p4 (on S).
    fn figure9_setup(rows: usize) -> (Catalog, RankQuery) {
        let cat = Catalog::new();
        let r = cat
            .create_table(
                "R",
                Schema::new(vec![
                    Field::new("a", DataType::Int64),
                    Field::new("p1", DataType::Float64),
                ]),
            )
            .unwrap();
        let s = cat
            .create_table(
                "S",
                Schema::new(vec![
                    Field::new("a", DataType::Int64),
                    Field::new("p3", DataType::Float64),
                    Field::new("p4", DataType::Float64),
                ]),
            )
            .unwrap();
        for i in 0..rows {
            r.insert(vec![
                Value::from((i % 20) as i64),
                Value::from(((i * 13) % 100) as f64 / 100.0),
            ])
            .unwrap();
            s.insert(vec![
                Value::from((i % 20) as i64),
                Value::from(((i * 29) % 100) as f64 / 100.0),
                Value::from(((i * 43) % 100) as f64 / 100.0),
            ])
            .unwrap();
        }
        let ranking = RankingContext::new(
            vec![
                RankPredicate::attribute("p1", "R.p1"),
                RankPredicate::attribute("p3", "S.p3"),
                RankPredicate::attribute("p4", "S.p4"),
            ],
            ScoringFunction::Sum,
        );
        let query = RankQuery::new(
            vec!["R".into(), "S".into()],
            vec![BoolExpr::col_eq_col("R.a", "S.a")],
            ranking,
            5,
        );
        (cat, query)
    }

    fn optimize(query: &RankQuery, cat: &Catalog, heuristic: bool) -> OptimizedPlan {
        let est = Arc::new(SamplingEstimator::build(query, cat, 0.1, 42).unwrap());
        DpOptimizer::new(query, cat, est, CostModel::default(), heuristic)
            .optimize()
            .unwrap()
    }

    #[test]
    fn figure9_enumeration_produces_a_complete_correct_plan() {
        let (cat, query) = figure9_setup(300);
        let opt = optimize(&query, &cat, false);
        // The final signature covers both relations and all three predicates.
        assert_eq!(opt.plan.relations().len(), 2);
        assert_eq!(opt.plan.evaluated_predicates(), BitSet64::all(3));
        assert!(!opt.plan.has_blocking_sort());
        assert!(opt.cost.is_finite());
        // And it computes the right answer.
        let result = execute_query_plan(&query, &opt.plan, &cat).unwrap();
        let oracle = oracle_top_k(&query, &cat).unwrap();
        let s = |ts: &[ranksql_expr::RankedTuple]| -> Vec<f64> {
            ts.iter()
                .map(|t| query.ranking.upper_bound(&t.state).value())
                .collect()
        };
        assert_eq!(s(&result.tuples), s(&oracle));
    }

    #[test]
    fn heuristic_explores_fewer_plans_than_exhaustive() {
        let (cat, query) = figure9_setup(200);
        let full = optimize(&query, &cat, false);
        let heur = optimize(&query, &cat, true);
        assert!(
            heur.stats.plans_considered <= full.stats.plans_considered,
            "heuristic considered {} plans, exhaustive {}",
            heur.stats.plans_considered,
            full.stats.plans_considered
        );
        // Both remain correct.
        let result = execute_query_plan(&query, &heur.plan, &cat).unwrap();
        let oracle = oracle_top_k(&query, &cat).unwrap();
        assert_eq!(result.tuples.len(), oracle.len());
    }

    #[test]
    fn signature_count_is_bounded_by_the_two_dimensions() {
        let (cat, query) = figure9_setup(100);
        let opt = optimize(&query, &cat, false);
        // Signatures: (R,-), (R,p1), (S,-), (S,p3), (S,p4), (S,p3p4),
        // (RS, each of the 8 subsets of {p1,p3,p4}) = 6 + 8 = 14.
        assert!(opt.stats.signatures_kept <= 14);
        assert!(opt.stats.signatures_kept >= 10);
    }

    #[test]
    fn single_table_query_is_optimised() {
        let cat = Catalog::new();
        let t = cat
            .create_table(
                "T",
                Schema::new(vec![
                    Field::new("x", DataType::Int64),
                    Field::new("p1", DataType::Float64),
                    Field::new("p2", DataType::Float64),
                ]),
            )
            .unwrap();
        for i in 0..100 {
            t.insert(vec![
                Value::from(i as i64),
                Value::from(((i * 7) % 100) as f64 / 100.0),
                Value::from(((i * 11) % 100) as f64 / 100.0),
            ])
            .unwrap();
        }
        let ranking = RankingContext::new(
            vec![
                RankPredicate::attribute("p1", "T.p1"),
                RankPredicate::attribute("p2", "T.p2"),
            ],
            ScoringFunction::Sum,
        );
        let query = RankQuery::new(vec!["T".into()], vec![], ranking, 3);
        let opt = optimize(&query, &cat, false);
        let result = execute_query_plan(&query, &opt.plan, &cat).unwrap();
        let oracle = oracle_top_k(&query, &cat).unwrap();
        assert_eq!(result.tuples.len(), 3);
        assert_eq!(result.tuples[0].tuple.id(), oracle[0].tuple.id());
    }

    #[test]
    fn too_many_relations_is_rejected() {
        let cat = Catalog::new();
        let mut names = Vec::new();
        for i in 0..13 {
            let name = format!("T{i}");
            cat.create_table(&name, Schema::new(vec![Field::new("x", DataType::Int64)]))
                .unwrap();
            names.push(name);
        }
        let query = RankQuery::new(names, vec![], RankingContext::unranked(), 1);
        let est = Arc::new(SamplingEstimator::build(&query, &cat, 0.5, 1).unwrap());
        let dp = DpOptimizer::new(&query, &cat, est, CostModel::default(), false);
        assert!(dp.optimize().is_err());
    }
}
