//! Histogram-based cardinality estimation for rank-aware operators.
//!
//! The paper's estimator (Section 5.2, [`crate::sampling::SamplingEstimator`])
//! executes every candidate subplan over per-table samples.  This module
//! provides the natural *analytic* alternative for the ablation study: build
//! one score histogram per ranking predicate up front, then answer every
//! cardinality question by histogram arithmetic — no subplan is ever
//! executed during enumeration.
//!
//! The estimate follows the same intuition as the paper's: an operator in a
//! ranking plan only has to output tuples whose *maximal-possible score*
//! `F_P[t]` can still reach `x`, the score of the `k`-th answer.  Here
//!
//! * the **membership cardinality** of a subplan is estimated classically
//!   (row counts × Boolean selectivities from [`TableStatistics`]),
//! * `x` is estimated from the *distribution of complete scores*: the
//!   convolution of all per-predicate score histograms, scaled to the
//!   estimated number of qualifying join results,
//! * the fraction of tuples a rank-aware operator must emit is
//!   `P(F_P ≥ x)`, computed from the convolution of the histograms of the
//!   evaluated predicates with point masses at the maximal value for the
//!   predicates not yet evaluated.
//!
//! The closed-form fraction is exact only for summation (and weighted
//! summation) scoring functions; for other monotonic scoring functions the
//! estimator conservatively assumes no rank-induced reduction.  The ablation
//! bench `ablation_estimators` compares the accuracy and estimation overhead
//! of this estimator against the paper's sampling-based one.

use std::collections::{HashMap, HashSet};

use ranksql_algebra::{LogicalPlan, RankQuery, ScanAccess, SetOpKind};
use ranksql_common::{BitSet64, RankSqlError, Result, Score, Value};
use ranksql_expr::{BoolExpr, ColumnRef, CompareOp, RankingContext, ScalarExpr, ScoringFunction};
use ranksql_storage::{
    sample_fraction, Catalog, ColumnStatistics, Table, TableStatistics, HISTOGRAM_BUCKETS,
};

/// Default number of buckets used for score histograms and convolutions.
pub const SCORE_HISTOGRAM_BUCKETS: usize = 64;

/// Fallback selectivity for Boolean predicates the estimator cannot analyse
/// (the traditional System-R default).
const DEFAULT_SELECTIVITY: f64 = 1.0 / 3.0;

/// A discretised probability distribution of scores over `[lo, hi]`.
///
/// Masses sum to 1 (an empty histogram behaves like a uniform distribution).
/// Supports the two operations the estimator needs: convolution (the
/// distribution of a sum of independent scores) and upper-tail probability.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreHistogram {
    lo: f64,
    hi: f64,
    mass: Vec<f64>,
}

impl ScoreHistogram {
    /// Builds a histogram over `[0, 1]` from observed predicate scores.
    ///
    /// With no observations the distribution falls back to uniform, which
    /// keeps the estimator defined for empty tables and empty samples.
    pub fn from_scores(scores: &[f64], buckets: usize) -> Self {
        assert!(buckets > 0, "a histogram needs at least one bucket");
        if scores.is_empty() {
            return ScoreHistogram::uniform(buckets);
        }
        let mut mass = vec![0.0; buckets];
        for &s in scores {
            let clamped = s.clamp(0.0, 1.0);
            let mut b = (clamped * buckets as f64) as usize;
            if b >= buckets {
                b = buckets - 1;
            }
            mass[b] += 1.0;
        }
        let total: f64 = mass.iter().sum();
        for m in &mut mass {
            *m /= total;
        }
        ScoreHistogram {
            lo: 0.0,
            hi: 1.0,
            mass,
        }
    }

    /// The uniform distribution over `[0, 1]`.
    pub fn uniform(buckets: usize) -> Self {
        assert!(buckets > 0, "a histogram needs at least one bucket");
        ScoreHistogram {
            lo: 0.0,
            hi: 1.0,
            mass: vec![1.0 / buckets as f64; buckets],
        }
    }

    /// A point mass at `value` (the distribution of an unevaluated predicate's
    /// maximal-possible contribution).
    pub fn point(value: f64) -> Self {
        ScoreHistogram {
            lo: value,
            hi: value,
            mass: vec![1.0],
        }
    }

    /// Lower bound of the support.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the support.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Total probability mass (1 up to floating-point error).
    pub fn total_mass(&self) -> f64 {
        self.mass.iter().sum()
    }

    fn is_point(&self) -> bool {
        self.hi <= self.lo
    }

    fn midpoint(&self, i: usize) -> f64 {
        if self.is_point() {
            self.lo
        } else {
            let width = (self.hi - self.lo) / self.mass.len() as f64;
            self.lo + (i as f64 + 0.5) * width
        }
    }

    /// The expected value of the distribution.
    pub fn mean(&self) -> f64 {
        self.mass
            .iter()
            .enumerate()
            .map(|(i, m)| m * self.midpoint(i))
            .sum()
    }

    /// Scales the support by a non-negative factor (used for weighted sums).
    pub fn scale_values(&self, w: f64) -> Self {
        assert!(
            w >= 0.0,
            "scores can only be scaled by non-negative weights"
        );
        ScoreHistogram {
            lo: self.lo * w,
            hi: self.hi * w,
            mass: self.mass.clone(),
        }
    }

    /// The distribution of the sum of two independent scores.
    pub fn convolve(&self, other: &ScoreHistogram, buckets: usize) -> Self {
        assert!(buckets > 0, "a histogram needs at least one bucket");
        let lo = self.lo + other.lo;
        let hi = self.hi + other.hi;
        if hi <= lo {
            // Both operands are point masses.
            return ScoreHistogram::point(lo);
        }
        let mut mass = vec![0.0; buckets];
        let width = (hi - lo) / buckets as f64;
        for (i, &mi) in self.mass.iter().enumerate() {
            if mi == 0.0 {
                continue;
            }
            let vi = self.midpoint(i);
            for (j, &mj) in other.mass.iter().enumerate() {
                if mj == 0.0 {
                    continue;
                }
                let v = vi + other.midpoint(j);
                let mut b = ((v - lo) / width) as usize;
                if b >= buckets {
                    b = buckets - 1;
                }
                mass[b] += mi * mj;
            }
        }
        ScoreHistogram { lo, hi, mass }
    }

    /// `P(score ≥ x)`, interpolating within the bucket containing `x`.
    pub fn prob_at_least(&self, x: f64) -> f64 {
        if self.is_point() {
            return if self.lo >= x { 1.0 } else { 0.0 };
        }
        if x <= self.lo {
            return 1.0;
        }
        if x >= self.hi {
            return 0.0;
        }
        let width = (self.hi - self.lo) / self.mass.len() as f64;
        let pos = (x - self.lo) / width;
        let bucket = (pos.floor() as usize).min(self.mass.len() - 1);
        let frac_above = 1.0 - (pos - bucket as f64);
        let above: f64 = self.mass.iter().skip(bucket + 1).sum();
        (above + self.mass[bucket] * frac_above).clamp(0.0, 1.0)
    }

    /// The smallest score `x` such that `population · P(score ≥ x) ≤ k`,
    /// i.e. an estimate of the `k`-th highest score in a population of
    /// `population` independent draws.
    pub fn kth_highest(&self, population: f64, k: f64) -> f64 {
        if population <= k {
            return f64::NEG_INFINITY;
        }
        if self.is_point() {
            return self.lo;
        }
        let width = (self.hi - self.lo) / self.mass.len() as f64;
        let mut above = 0.0;
        // Walk buckets from the top; stop when the expected count reaches k.
        for i in (0..self.mass.len()).rev() {
            let next = above + self.mass[i];
            if next * population >= k {
                // Interpolate inside bucket i.
                let needed = k / population - above;
                let frac = if self.mass[i] > 0.0 {
                    (needed / self.mass[i]).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                return self.lo + width * (i as f64 + 1.0 - frac);
            }
            above = next;
        }
        self.lo
    }
}

/// Where the estimator's [`TableStatistics`] come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StatsSource {
    /// The table's incrementally maintained statistics catalog: sketch-backed
    /// distinct counts (exact up to the sketch's array capacity), exact
    /// null counts, min/max and boolean fractions.  The default.
    #[default]
    Catalog,
    /// Classical sampled statistics: every figure — including the distinct
    /// count, naively scaled up from the sample — is computed over a
    /// reservoir sample.  This is the pre-catalog baseline the
    /// `estimator_error` harness and the `ablation_sketch` bench compare
    /// the sketches against; its NDV is badly biased for low-cardinality
    /// columns (a 20 % sample of a 50-distinct join column still sees all
    /// 50 values, which naive scale-up turns into 250).
    Sampled,
}

/// Computes [`TableStatistics`] from a reservoir sample, the classical
/// baseline for [`StatsSource::Sampled`]: distinct counts are counted
/// exactly *within the sample* and scaled by the inverse sampling ratio
/// (capped at the row count), everything else is taken from the sample
/// as-is.
pub fn sampled_statistics(table: &Table, ratio: f64, seed: u64) -> Result<TableStatistics> {
    let sample = sample_fraction(table, ratio, seed);
    let row_count = table.row_count();
    let achieved = if row_count > 0 {
        (sample.len() as f64 / row_count as f64).max(f64::EPSILON)
    } else {
        ratio
    };
    let schema = table.schema();
    let mut columns = Vec::with_capacity(schema.len());
    for (ci, field) in schema.fields().iter().enumerate() {
        let mut non_null = 0usize;
        let mut nulls = 0usize;
        let mut distinct: HashSet<Value> = HashSet::new();
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut numeric = 0usize;
        let mut trues = 0usize;
        let mut bools = 0usize;
        for t in &sample {
            let v = t.value(ci);
            if v.is_null() {
                nulls += 1;
                continue;
            }
            non_null += 1;
            distinct.insert(v.clone());
            if let Some(x) = v.as_f64() {
                numeric += 1;
                min = min.min(x);
                max = max.max(x);
            }
            if let Value::Bool(b) = v {
                bools += 1;
                if *b {
                    trues += 1;
                }
            }
        }
        let (min, max) = if numeric > 0 {
            (Some(min), Some(max))
        } else {
            (None, None)
        };
        let mut histogram = Vec::new();
        if let (Some(lo), Some(hi)) = (min, max) {
            if hi > lo {
                histogram = vec![0usize; HISTOGRAM_BUCKETS];
                let width = (hi - lo) / HISTOGRAM_BUCKETS as f64;
                for t in &sample {
                    if let Some(x) = t.value(ci).as_f64() {
                        let mut b = ((x - lo) / width) as usize;
                        if b >= HISTOGRAM_BUCKETS {
                            b = HISTOGRAM_BUCKETS - 1;
                        }
                        histogram[b] += 1;
                    }
                }
            }
        }
        // Naive distinct-count scale-up (the classical estimator the
        // sketch catalog replaces): d_sample / ratio, capped at the row
        // count.
        let scaled_distinct = ((distinct.len() as f64 / achieved).round() as usize).min(row_count);
        columns.push(ColumnStatistics {
            name: field.qualified_name(),
            non_null_count: ((non_null as f64 / achieved).round() as usize).min(row_count),
            null_count: ((nulls as f64 / achieved).round() as usize).min(row_count),
            distinct_count: scaled_distinct,
            min,
            max,
            true_fraction: if bools > 0 {
                Some(trues as f64 / bools as f64)
            } else {
                None
            },
            histogram,
        });
    }
    Ok(TableStatistics {
        table: table.name().to_owned(),
        row_count,
        columns,
    })
}

/// The histogram-based (analytic) cardinality estimator.
pub struct HistogramEstimator {
    /// Per-table statistics (row counts, distinct counts, boolean fractions).
    stats: HashMap<String, TableStatistics>,
    /// Per-ranking-predicate score distributions.
    predicate_histograms: Vec<ScoreHistogram>,
    /// Estimated score of the k-th answer.
    x_threshold: Score,
    /// The query's scoring function and predicates (no shared counters).
    ctx: std::sync::Arc<RankingContext>,
    /// Number of histogram buckets used for convolutions.
    buckets: usize,
}

impl HistogramEstimator {
    /// Builds the estimator: computes table statistics, evaluates every
    /// ranking predicate over an `s%` sample of its base table to obtain its
    /// score histogram, and estimates the k-th answer score `x`.
    ///
    /// `sample_ratio` only controls how many tuples each predicate is
    /// evaluated on while building histograms; unlike the sampling estimator
    /// no subplan is ever executed afterwards.
    pub fn build(
        query: &RankQuery,
        catalog: &Catalog,
        sample_ratio: f64,
        seed: u64,
    ) -> Result<Self> {
        Self::build_with_buckets(query, catalog, sample_ratio, seed, SCORE_HISTOGRAM_BUCKETS)
    }

    /// [`HistogramEstimator::build`] with an explicit bucket count.
    pub fn build_with_buckets(
        query: &RankQuery,
        catalog: &Catalog,
        sample_ratio: f64,
        seed: u64,
        buckets: usize,
    ) -> Result<Self> {
        Self::build_with_stats_source(
            query,
            catalog,
            sample_ratio,
            seed,
            buckets,
            StatsSource::default(),
        )
    }

    /// [`HistogramEstimator::build`] with explicit bucket count and
    /// statistics source (catalog-backed sketches vs the classical sampled
    /// baseline — see [`StatsSource`]).
    pub fn build_with_stats_source(
        query: &RankQuery,
        catalog: &Catalog,
        sample_ratio: f64,
        seed: u64,
        buckets: usize,
        source: StatsSource,
    ) -> Result<Self> {
        if !(sample_ratio > 0.0 && sample_ratio <= 1.0) {
            return Err(RankSqlError::Optimizer(format!(
                "sample ratio must be in (0, 1], got {sample_ratio}"
            )));
        }
        if buckets == 0 {
            return Err(RankSqlError::Optimizer(
                "bucket count must be positive".into(),
            ));
        }
        let mut stats = HashMap::new();
        for name in &query.tables {
            let table = catalog.table(name)?;
            let table_stats = match source {
                StatsSource::Catalog => TableStatistics::compute(&table)?,
                StatsSource::Sampled => sampled_statistics(&table, sample_ratio, seed)?,
            };
            stats.insert(name.clone(), table_stats);
        }

        let ctx = RankingContext::new(
            query.ranking.predicates().to_vec(),
            query.ranking.scoring().clone(),
        );

        // One score histogram per ranking predicate, from a sample of the
        // predicate's base table.  Rank-join predicates (spanning several
        // relations) fall back to the uniform distribution, the conservative
        // choice when the joint distribution is unknown.
        let mut predicate_histograms = Vec::with_capacity(ctx.num_predicates());
        for pred in ctx.predicates() {
            let rels = pred.relations();
            let hist = if rels.len() == 1 {
                let table = catalog.table(&rels[0])?;
                let sample = sample_fraction(&table, sample_ratio, seed);
                let mut scores = Vec::with_capacity(sample.len());
                for t in &sample {
                    scores.push(pred.evaluate(t, table.schema())?.value());
                }
                ScoreHistogram::from_scores(&scores, buckets)
            } else {
                ScoreHistogram::uniform(buckets)
            };
            predicate_histograms.push(hist);
        }

        let mut est = HistogramEstimator {
            stats,
            predicate_histograms,
            x_threshold: Score::new(f64::NEG_INFINITY),
            ctx,
            buckets,
        };
        est.x_threshold = est.estimate_x(query)?;
        Ok(est)
    }

    /// The estimated score of the `k`-th answer.
    pub fn x_threshold(&self) -> Score {
        self.x_threshold
    }

    /// The score histogram of ranking predicate `i`.
    pub fn predicate_histogram(&self, i: usize) -> &ScoreHistogram {
        &self.predicate_histograms[i]
    }

    /// Estimates `x` from the distribution of *complete* scores and the
    /// estimated number of qualifying (post-filter, post-join) results.
    fn estimate_x(&self, query: &RankQuery) -> Result<Score> {
        let mut qualified: f64 = query.tables.iter().map(|t| self.table_rows(t)).product();
        for pred in &query.bool_predicates {
            qualified *= self.bool_selectivity(pred);
        }
        if query.ranking.num_predicates() == 0 {
            return Ok(Score::new(f64::NEG_INFINITY));
        }
        let all = BitSet64::all(query.ranking.num_predicates());
        match self.score_distribution(all) {
            Some(dist) => Ok(Score::new(dist.kth_highest(qualified, query.k as f64))),
            // Non-additive scoring function: no analytic form, no pruning.
            None => Ok(Score::new(f64::NEG_INFINITY)),
        }
    }

    fn table_rows(&self, table: &str) -> f64 {
        self.stats
            .get(table)
            .map(|s| s.row_count as f64)
            .unwrap_or(0.0)
    }

    fn column_stats(&self, col: &ColumnRef) -> Option<&ranksql_storage::ColumnStatistics> {
        let key = match &col.relation {
            Some(rel) => format!("{rel}.{}", col.name),
            None => col.name.clone(),
        };
        if let Some(rel) = &col.relation {
            if let Some(ts) = self.stats.get(rel) {
                if let Some(cs) = ts.column(&key) {
                    return Some(cs);
                }
            }
        }
        self.stats.values().find_map(|ts| ts.column(&key))
    }

    /// Classical selectivity estimate of a Boolean predicate.
    pub fn bool_selectivity(&self, expr: &BoolExpr) -> f64 {
        match expr {
            BoolExpr::Literal(true) => 1.0,
            BoolExpr::Literal(false) => 0.0,
            BoolExpr::Column(col) => self
                .column_stats(col)
                .and_then(|c| c.true_fraction)
                .unwrap_or(0.5),
            BoolExpr::Not(inner) => (1.0 - self.bool_selectivity(inner)).clamp(0.0, 1.0),
            BoolExpr::And(l, r) => self.bool_selectivity(l) * self.bool_selectivity(r),
            BoolExpr::Or(l, r) => {
                let sl = self.bool_selectivity(l);
                let sr = self.bool_selectivity(r);
                (sl + sr - sl * sr).clamp(0.0, 1.0)
            }
            BoolExpr::Compare { op, left, right } => self.compare_selectivity(*op, left, right),
        }
    }

    fn compare_selectivity(&self, op: CompareOp, left: &ScalarExpr, right: &ScalarExpr) -> f64 {
        // A *bound* prepared-statement parameter estimates like the literal
        // it currently carries (an unbound one falls back to the default
        // selectivity below, like any other opaque operand).
        let literal_of = |e: &ScalarExpr| match e {
            ScalarExpr::Literal(v) => Some(v.clone()),
            ScalarExpr::Param { value: Some(v), .. } => Some(v.clone()),
            _ => None,
        };
        match (left, right) {
            (ScalarExpr::Column(l), ScalarExpr::Column(r)) => {
                let dl = self.column_stats(l).map(|c| c.distinct_count).unwrap_or(0);
                let dr = self.column_stats(r).map(|c| c.distinct_count).unwrap_or(0);
                let d = dl.max(dr).max(1) as f64;
                match op {
                    CompareOp::Eq => 1.0 / d,
                    CompareOp::NotEq => 1.0 - 1.0 / d,
                    _ => DEFAULT_SELECTIVITY,
                }
            }
            (ScalarExpr::Column(c), other) | (other, ScalarExpr::Column(c))
                if literal_of(other).is_some() =>
            {
                let v = literal_of(other).expect("guard checked");
                let stats = match self.column_stats(c) {
                    Some(s) => s,
                    None => return DEFAULT_SELECTIVITY,
                };
                let lit = v.as_f64();
                // Orient the operator so the column is on the left.
                let oriented = if !matches!(left, ScalarExpr::Column(_)) {
                    match op {
                        CompareOp::Lt => CompareOp::Gt,
                        CompareOp::LtEq => CompareOp::GtEq,
                        CompareOp::Gt => CompareOp::Lt,
                        CompareOp::GtEq => CompareOp::LtEq,
                        other => other,
                    }
                } else {
                    op
                };
                match (oriented, lit) {
                    (CompareOp::Eq, _) => stats.eq_selectivity(),
                    (CompareOp::NotEq, _) => (1.0 - stats.eq_selectivity()).clamp(0.0, 1.0),
                    (CompareOp::Lt | CompareOp::LtEq, Some(x)) => stats.le_selectivity(x),
                    (CompareOp::Gt | CompareOp::GtEq, Some(x)) => {
                        (1.0 - stats.le_selectivity(x)).clamp(0.0, 1.0)
                    }
                    _ => DEFAULT_SELECTIVITY,
                }
            }
            _ => DEFAULT_SELECTIVITY,
        }
    }

    /// The distribution of the maximal-possible score `F_P` when exactly the
    /// predicates in `evaluated` have been evaluated.
    ///
    /// Returns `None` for scoring functions without an additive analytic
    /// form, in which case the caller assumes no rank-induced reduction.
    fn score_distribution(&self, evaluated: BitSet64) -> Option<ScoreHistogram> {
        let n = self.ctx.num_predicates();
        if n == 0 {
            return None;
        }
        let max_value = self.ctx.max_predicate_value();
        let weights: Vec<f64> = match self.ctx.scoring() {
            ScoringFunction::Sum => vec![1.0; n],
            ScoringFunction::WeightedSum(w) if w.len() == n => w.clone(),
            _ => return None,
        };
        let mut acc: Option<ScoreHistogram> = None;
        for (i, weight) in weights.iter().enumerate() {
            let h = if evaluated.contains(i) {
                self.predicate_histograms[i].scale_values(*weight)
            } else {
                ScoreHistogram::point(max_value * weight)
            };
            acc = Some(match acc {
                None => h,
                Some(prev) => prev.convolve(&h, self.buckets),
            });
        }
        acc
    }

    /// `P(F_P ≥ x)` — the fraction of tuples a rank-aware operator with
    /// evaluated predicate set `P` has to emit.
    pub fn rank_fraction(&self, evaluated: BitSet64) -> f64 {
        if !self.x_threshold.value().is_finite() {
            return 1.0;
        }
        match self.score_distribution(evaluated) {
            Some(dist) => dist.prob_at_least(self.x_threshold.value()),
            None => 1.0,
        }
    }

    /// Classical membership cardinality of a subplan (rows that satisfy its
    /// Boolean predicates, ignoring any rank-induced reduction).
    pub fn membership_cardinality(&self, plan: &LogicalPlan) -> f64 {
        match plan {
            LogicalPlan::Scan { table, .. } => self.table_rows(table),
            LogicalPlan::Select { input, predicate } => {
                self.membership_cardinality(input) * self.bool_selectivity(predicate)
            }
            LogicalPlan::Project { input, .. } | LogicalPlan::Rank { input, .. } => {
                self.membership_cardinality(input)
            }
            LogicalPlan::Sort { input, .. } => self.membership_cardinality(input),
            LogicalPlan::Limit { input, k } => self.membership_cardinality(input).min(*k as f64),
            LogicalPlan::Join {
                left,
                right,
                condition,
                ..
            } => {
                let l = self.membership_cardinality(left);
                let r = self.membership_cardinality(right);
                let sel = condition
                    .as_ref()
                    .map(|c| self.bool_selectivity(c))
                    .unwrap_or(1.0);
                l * r * sel
            }
            LogicalPlan::SetOp { kind, left, right } => {
                let l = self.membership_cardinality(left);
                let r = self.membership_cardinality(right);
                match kind {
                    SetOpKind::Union => l + r,
                    SetOpKind::Intersect => l.min(r),
                    SetOpKind::Except => l,
                }
            }
        }
    }

    /// Estimated *output* cardinality of a subplan, accounting for the
    /// rank-induced reduction of rank-aware operators.
    pub fn estimate_cardinality(&self, plan: &LogicalPlan) -> Result<f64> {
        let est = match plan {
            LogicalPlan::Scan { table, access, .. } => {
                let rows = self.table_rows(table);
                match access {
                    ScanAccess::RankIndex { predicate } => {
                        rows * self.rank_fraction(BitSet64::singleton(*predicate))
                    }
                    _ => rows,
                }
            }
            LogicalPlan::Select { input, predicate } => {
                self.estimate_cardinality(input)? * self.bool_selectivity(predicate)
            }
            LogicalPlan::Project { input, .. } => self.estimate_cardinality(input)?,
            LogicalPlan::Rank { input, .. } => {
                // µ re-orders the membership of its input by P ∪ {p}; it only
                // has to emit the tuples that can still reach the threshold.
                self.membership_cardinality(input) * self.rank_fraction(plan.evaluated_predicates())
            }
            LogicalPlan::Join { algorithm, .. } => {
                let membership = self.membership_cardinality(plan);
                if algorithm.is_rank_aware() {
                    membership * self.rank_fraction(plan.evaluated_predicates())
                } else {
                    membership
                }
            }
            LogicalPlan::SetOp { .. } => {
                self.membership_cardinality(plan) * self.rank_fraction(plan.evaluated_predicates())
            }
            // The blocking sort emits its whole input (that is what makes it
            // blocking); only the limit above it cuts the stream.
            LogicalPlan::Sort { input, .. } => self.membership_cardinality(input),
            LogicalPlan::Limit { input, k } => self.estimate_cardinality(input)?.min(*k as f64),
        };
        Ok(est.max(0.0))
    }

    /// Estimated output cardinality of every operator in `plan`, post-order
    /// (the same order in which the executor registers operator metrics).
    pub fn estimate_per_operator(&self, plan: &LogicalPlan) -> Result<Vec<(String, f64)>> {
        let mut out = Vec::new();
        self.walk(plan, &mut out)?;
        Ok(out)
    }

    fn walk(&self, plan: &LogicalPlan, out: &mut Vec<(String, f64)>) -> Result<()> {
        for child in plan.children() {
            self.walk(child, out)?;
        }
        let est = self.estimate_cardinality(plan)?;
        out.push((plan.node_label(Some(&self.ctx)), est));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ranksql_algebra::JoinAlgorithm;
    use ranksql_common::{DataType, Field, Schema, Value};
    use ranksql_expr::{RankPredicate, ScoringFunction};

    // -----------------------------------------------------------------
    // ScoreHistogram
    // -----------------------------------------------------------------

    #[test]
    fn histogram_mass_is_conserved() {
        let h = ScoreHistogram::from_scores(&[0.1, 0.2, 0.9, 0.95, 0.5], 16);
        assert!((h.total_mass() - 1.0).abs() < 1e-9);
        let u = ScoreHistogram::uniform(8);
        assert!((u.total_mass() - 1.0).abs() < 1e-9);
        let c = h.convolve(&u, 32);
        assert!((c.total_mass() - 1.0).abs() < 1e-9);
        assert_eq!(c.lo(), 0.0);
        assert_eq!(c.hi(), 2.0);
    }

    #[test]
    fn prob_at_least_is_monotone_decreasing() {
        let h = ScoreHistogram::from_scores(&[0.1, 0.4, 0.4, 0.8, 0.9], 10);
        let mut prev = 1.0;
        for i in 0..=20 {
            let x = i as f64 / 20.0;
            let p = h.prob_at_least(x);
            assert!(p <= prev + 1e-12, "P(≥{x}) = {p} > previous {prev}");
            assert!((0.0..=1.0).contains(&p));
            prev = p;
        }
        assert_eq!(h.prob_at_least(-0.5), 1.0);
        assert_eq!(h.prob_at_least(1.5), 0.0);
    }

    #[test]
    fn point_mass_behaviour() {
        let p = ScoreHistogram::point(1.0);
        assert_eq!(p.prob_at_least(0.5), 1.0);
        assert_eq!(p.prob_at_least(1.0), 1.0);
        assert_eq!(p.prob_at_least(1.1), 0.0);
        assert_eq!(p.mean(), 1.0);
        // Convolving two points gives a point at the sum.
        let q = p.convolve(&ScoreHistogram::point(0.25), 16);
        assert_eq!(q.prob_at_least(1.25), 1.0);
        assert_eq!(q.prob_at_least(1.26), 0.0);
    }

    #[test]
    fn convolution_of_uniforms_is_triangular() {
        let u = ScoreHistogram::uniform(64);
        let c = u.convolve(&u, 128);
        // The sum of two U[0,1] has mean 1 and P(≥1) = 0.5.
        assert!((c.mean() - 1.0).abs() < 0.02);
        assert!((c.prob_at_least(1.0) - 0.5).abs() < 0.05);
        assert!(c.prob_at_least(1.8) < 0.05);
    }

    #[test]
    fn kth_highest_quantile() {
        let u = ScoreHistogram::uniform(100);
        // Among 1000 uniform draws, the 10th highest is near 0.99.
        let x = u.kth_highest(1000.0, 10.0);
        assert!((x - 0.99).abs() < 0.02, "x = {x}");
        // Population smaller than k: no pruning possible.
        assert_eq!(u.kth_highest(5.0, 10.0), f64::NEG_INFINITY);
    }

    #[test]
    fn scaled_histogram_scales_support() {
        let h = ScoreHistogram::from_scores(&[0.5, 1.0], 4).scale_values(2.0);
        assert_eq!(h.lo(), 0.0);
        assert_eq!(h.hi(), 2.0);
    }

    // -----------------------------------------------------------------
    // HistogramEstimator
    // -----------------------------------------------------------------

    /// Two joinable tables mirroring the sampling-estimator test setup.
    fn setup(rows: usize) -> (Catalog, RankQuery) {
        let cat = Catalog::new();
        let a = cat
            .create_table(
                "A",
                Schema::new(vec![
                    Field::new("jc", DataType::Int64),
                    Field::new("p1", DataType::Float64),
                    Field::new("b", DataType::Bool),
                ]),
            )
            .unwrap();
        let b = cat
            .create_table(
                "B",
                Schema::new(vec![
                    Field::new("jc", DataType::Int64),
                    Field::new("p2", DataType::Float64),
                ]),
            )
            .unwrap();
        for i in 0..rows {
            a.insert(vec![
                Value::from((i % 50) as i64),
                Value::from(((i * 37) % 1000) as f64 / 1000.0),
                Value::from(i % 5 != 0),
            ])
            .unwrap();
            b.insert(vec![
                Value::from((i % 50) as i64),
                Value::from(((i * 61) % 1000) as f64 / 1000.0),
            ])
            .unwrap();
        }
        let ranking = RankingContext::new(
            vec![
                RankPredicate::attribute("p1", "A.p1"),
                RankPredicate::attribute("p2", "B.p2"),
            ],
            ScoringFunction::Sum,
        );
        let query = RankQuery::new(
            vec!["A".into(), "B".into()],
            vec![
                BoolExpr::col_eq_col("A.jc", "B.jc"),
                BoolExpr::column_is_true("A.b"),
            ],
            ranking,
            10,
        );
        (cat, query)
    }

    #[test]
    fn build_rejects_bad_parameters() {
        let (cat, query) = setup(100);
        assert!(HistogramEstimator::build(&query, &cat, 0.0, 1).is_err());
        assert!(HistogramEstimator::build(&query, &cat, 2.0, 1).is_err());
        assert!(HistogramEstimator::build_with_buckets(&query, &cat, 0.5, 1, 0).is_err());
        assert!(HistogramEstimator::build(&query, &cat, 0.5, 1).is_ok());
    }

    #[test]
    fn threshold_is_plausible() {
        let (cat, query) = setup(2000);
        let est = HistogramEstimator::build(&query, &cat, 0.2, 7).unwrap();
        let x = est.x_threshold().value();
        assert!(
            x > 1.0 && x <= 2.0,
            "x = {x} outside the plausible range for k = 10"
        );
    }

    #[test]
    fn scan_estimate_is_table_size_and_rank_scan_is_smaller() {
        let (cat, query) = setup(1000);
        let est = HistogramEstimator::build(&query, &cat, 0.2, 7).unwrap();
        let a = cat.table("A").unwrap();
        let scan = LogicalPlan::scan(&a);
        assert!((est.estimate_cardinality(&scan).unwrap() - 1000.0).abs() < 1e-9);
        let rank_scan = LogicalPlan::rank_scan(&a, 0);
        let card = est.estimate_cardinality(&rank_scan).unwrap();
        assert!(
            card < 1000.0,
            "rank-scan estimate {card} should be below the table size"
        );
        assert!(card > 0.0);
    }

    #[test]
    fn selection_estimate_tracks_boolean_selectivity() {
        let (cat, query) = setup(2000);
        let est = HistogramEstimator::build(&query, &cat, 0.2, 3).unwrap();
        let a = cat.table("A").unwrap();
        // A.b is true for 80 % of rows; statistics are exact, so the estimate
        // should be very close to 1600.
        let plan = LogicalPlan::scan(&a).select(BoolExpr::column_is_true("A.b"));
        let card = est.estimate_cardinality(&plan).unwrap();
        assert!((card - 1600.0).abs() < 1.0, "selection estimate {card}");
    }

    #[test]
    fn join_membership_uses_distinct_counts() {
        let (cat, query) = setup(1500);
        let est = HistogramEstimator::build(&query, &cat, 0.2, 11).unwrap();
        let a = cat.table("A").unwrap();
        let b = cat.table("B").unwrap();
        let plan = LogicalPlan::scan(&a).join(
            LogicalPlan::scan(&b),
            Some(BoolExpr::col_eq_col("A.jc", "B.jc")),
            JoinAlgorithm::Hash,
        );
        // True cardinality is 1500 · 1500 / 50 = 45 000; the classical
        // estimate with exact distinct counts hits it on the nose.
        let card = est.estimate_cardinality(&plan).unwrap();
        assert!((card - 45_000.0).abs() < 1.0, "join estimate {card}");
        // A rank-aware join over ranked inputs needs far fewer outputs.
        let rank_plan = LogicalPlan::rank_scan(&a, 0).join(
            LogicalPlan::rank_scan(&b, 1),
            Some(BoolExpr::col_eq_col("A.jc", "B.jc")),
            JoinAlgorithm::HashRankJoin,
        );
        let rank_card = est.estimate_cardinality(&rank_plan).unwrap();
        assert!(
            rank_card < card,
            "rank-aware join {rank_card} should be below {card}"
        );
    }

    #[test]
    fn mu_estimate_shrinks_as_more_predicates_are_evaluated() {
        let (cat, query) = setup(2000);
        let est = HistogramEstimator::build(&query, &cat, 0.2, 3).unwrap();
        let a = cat.table("A").unwrap();
        let b = cat.table("B").unwrap();
        let join = LogicalPlan::rank_scan(&a, 0).join(
            LogicalPlan::scan(&b),
            Some(BoolExpr::col_eq_col("A.jc", "B.jc")),
            JoinAlgorithm::HashRankJoin,
        );
        let with_mu = join.clone().rank(1);
        let before = est.estimate_cardinality(&join).unwrap();
        let after = est.estimate_cardinality(&with_mu).unwrap();
        assert!(
            after <= before + 1e-9,
            "µ should not increase the estimate: {after} > {before}"
        );
    }

    #[test]
    fn limit_caps_the_estimate() {
        let (cat, query) = setup(500);
        let est = HistogramEstimator::build(&query, &cat, 0.5, 3).unwrap();
        let a = cat.table("A").unwrap();
        let plan = LogicalPlan::scan(&a).limit(7);
        assert_eq!(est.estimate_cardinality(&plan).unwrap(), 7.0);
    }

    #[test]
    fn per_operator_walk_matches_node_count() {
        let (cat, query) = setup(500);
        let est = HistogramEstimator::build(&query, &cat, 0.5, 3).unwrap();
        let a = cat.table("A").unwrap();
        let b = cat.table("B").unwrap();
        let plan = LogicalPlan::rank_scan(&a, 0)
            .join(
                LogicalPlan::scan(&b).rank(1),
                Some(BoolExpr::col_eq_col("A.jc", "B.jc")),
                JoinAlgorithm::HashRankJoin,
            )
            .limit(10);
        let per_op = est.estimate_per_operator(&plan).unwrap();
        assert_eq!(per_op.len(), plan.node_count());
        assert!(per_op.iter().all(|(_, c)| c.is_finite() && *c >= 0.0));
    }

    #[test]
    fn non_additive_scoring_disables_rank_reduction() {
        let cat = Catalog::new();
        let t = cat
            .create_table(
                "T",
                Schema::new(vec![
                    Field::new("p1", DataType::Float64),
                    Field::new("p2", DataType::Float64),
                ]),
            )
            .unwrap();
        for i in 0..200 {
            t.insert(vec![
                Value::from((i % 100) as f64 / 100.0),
                Value::from(((i * 7) % 100) as f64 / 100.0),
            ])
            .unwrap();
        }
        let ranking = RankingContext::new(
            vec![
                RankPredicate::attribute("p1", "T.p1"),
                RankPredicate::attribute("p2", "T.p2"),
            ],
            ScoringFunction::Min,
        );
        let query = RankQuery::new(vec!["T".into()], vec![], ranking, 5);
        let est = HistogramEstimator::build(&query, &cat, 0.5, 3).unwrap();
        // Conservative: no reduction is assumed, so a rank-scan estimate
        // equals the table size.
        let plan = LogicalPlan::rank_scan(&cat.table("T").unwrap(), 0);
        assert_eq!(est.estimate_cardinality(&plan).unwrap(), 200.0);
    }

    #[test]
    fn boolean_selectivity_forms() {
        let (cat, query) = setup(1000);
        let est = HistogramEstimator::build(&query, &cat, 0.2, 1).unwrap();
        // Literal truth values.
        assert_eq!(est.bool_selectivity(&BoolExpr::Literal(true)), 1.0);
        assert_eq!(est.bool_selectivity(&BoolExpr::Literal(false)), 0.0);
        // Boolean column fraction (80 % true).
        let b = est.bool_selectivity(&BoolExpr::column_is_true("A.b"));
        assert!((b - 0.8).abs() < 1e-9);
        // Negation.
        let nb = est.bool_selectivity(&BoolExpr::Not(Box::new(BoolExpr::column_is_true("A.b"))));
        assert!((nb - 0.2).abs() < 1e-9);
        // Equi-join on a 50-distinct column.
        let j = est.bool_selectivity(&BoolExpr::col_eq_col("A.jc", "B.jc"));
        assert!((j - 0.02).abs() < 1e-9);
        // Range predicate against a literal.
        let range = BoolExpr::compare(
            ScalarExpr::col("A.p1"),
            CompareOp::Lt,
            ScalarExpr::Literal(Value::from(0.5)),
        );
        let r = est.bool_selectivity(&range);
        assert!((r - 0.5).abs() < 0.1, "range selectivity {r}");
        // Conjunction and disjunction compose.
        let and = est.bool_selectivity(&BoolExpr::column_is_true("A.b").and(range.clone()));
        assert!((and - 0.4).abs() < 0.1);
        let or = est.bool_selectivity(&BoolExpr::Or(
            Box::new(BoolExpr::column_is_true("A.b")),
            Box::new(range),
        ));
        assert!(or > 0.8 && or <= 1.0);
    }
}
