//! The columnarization pass: lowering physical plans onto the columnar
//! storage backend.
//!
//! When a database's storage backend is [`StorageBackend::Columnar`], this
//! pass rewrites a lowered [`PhysicalPlan`] in three result-preserving
//! steps:
//!
//! 1. every `SeqScan` is annotated as a **columnar scan** (the executor
//!    then reads the table's [`ColumnTable`] projection block by block and
//!    fills batches straight from the column vectors);
//! 2. a `Filter` sitting directly on a columnar scan whose predicate is a
//!    conjunction of simple column-vs-constant comparisons is **fused into
//!    the scan** (`σ` pushed down): the comparisons run column-at-a-time
//!    against the typed vectors, zone maps skip whole blocks, and tuples
//!    are materialised only for rows that pass — late materialisation on
//!    the σ spine;
//! 3. columnar scans feeding a `SortLimit` through a σ/π chain are marked
//!    **zone-prune**: at run time the top-k's bounded heap publishes its
//!    worst kept score and the scan skips blocks whose zone-map score
//!    bound cannot beat it.
//!
//! Cost annotations stay coherent: annotated scans are re-costed with the
//! cost model's [`columnar_tuple`](crate::CostModel::columnar_tuple)
//! constant (the model's view of the dense-vector access path), fused
//! filters keep a discounted share of their interpreted-evaluation cost,
//! and every ancestor's cumulative cost is reduced by exactly what its
//! subtree saved — the same bookkeeping the parallelization pass uses.
//!
//! The pass runs between serial lowering and [`parallelize`]: the
//! parallelization pass treats annotated scans like any sequential scan, so
//! columnar morsels flow through exchanges unchanged.
//!
//! [`StorageBackend::Columnar`]: ranksql_storage::StorageBackend
//! [`ColumnTable`]: ranksql_storage::ColumnTable
//! [`parallelize`]: crate::parallelize

use ranksql_algebra::{ColumnarScan, PhysicalOp, PhysicalPlan};
use ranksql_common::Cost;
use ranksql_expr::{BoolExpr, ScalarExpr};

use crate::cost::CostModel;

/// Share of a fused filter's interpreted-evaluation cost the pushed-down
/// columnar comparison is modelled to keep (typed vector compare vs
/// expression-tree walk per tuple).
const PUSHED_FILTER_COST_SHARE: f64 = 0.25;

/// Rewrites `plan` for the columnar storage backend (see the module docs).
/// Results are unchanged — only access paths, costs and explain labels.
pub fn columnarize(plan: PhysicalPlan, model: &CostModel) -> PhysicalPlan {
    mark_zone_prune(rewrite(plan, model))
}

/// Whether a σ predicate can be fused into a columnar scan: a conjunction
/// of comparisons between one column and one execution-time constant (a
/// literal or a parameter slot).  Anything else stays a `Filter` operator.
fn pushable(pred: &BoolExpr) -> bool {
    fn is_const(e: &ScalarExpr) -> bool {
        matches!(e, ScalarExpr::Literal(_) | ScalarExpr::Param { .. })
    }
    fn is_col(e: &ScalarExpr) -> bool {
        matches!(e, ScalarExpr::Column(_))
    }
    pred.split_conjuncts().iter().all(|c| match c {
        BoolExpr::Compare { left, right, .. } => {
            (is_col(left) && is_const(right)) || (is_const(left) && is_col(right))
        }
        _ => false,
    })
}

/// Bottom-up rewrite annotating scans and fusing pushable filters, keeping
/// cumulative cost annotations coherent (ancestors are reduced by exactly
/// what their subtree saved).
fn rewrite(plan: PhysicalPlan, model: &CostModel) -> PhysicalPlan {
    let old_children_cost: f64 = plan
        .children()
        .iter()
        .map(|c| c.estimated_cost.value())
        .sum();
    let PhysicalPlan {
        op,
        estimated_cost,
        estimated_rows,
    } = plan;
    let annotated = move |op: PhysicalOp| {
        let rebuilt = PhysicalPlan {
            op,
            estimated_cost,
            estimated_rows,
        };
        let new_children_cost: f64 = rebuilt
            .children()
            .iter()
            .map(|c| c.estimated_cost.value())
            .sum();
        let saved = old_children_cost - new_children_cost;
        PhysicalPlan {
            estimated_cost: Cost((estimated_cost.value() - saved).max(0.0)),
            ..rebuilt
        }
    };
    match op {
        PhysicalOp::SeqScan {
            table,
            schema,
            columnar: None,
        } => {
            // Re-cost the dense-vector access path.
            let ratio = if model.seq_tuple > 0.0 {
                model.columnar_tuple / model.seq_tuple
            } else {
                1.0
            };
            PhysicalPlan {
                op: PhysicalOp::SeqScan {
                    table,
                    schema,
                    columnar: Some(ColumnarScan::default()),
                },
                estimated_cost: Cost(estimated_cost.value() * ratio),
                estimated_rows,
            }
        }
        PhysicalOp::Filter { input, predicate } => {
            let old_input_cost = input.estimated_cost.value();
            let input = rewrite(*input, model);
            if pushable(&predicate) {
                if let PhysicalOp::SeqScan {
                    table,
                    schema,
                    columnar:
                        Some(ColumnarScan {
                            pushed_filter: None,
                            zone_prune,
                        }),
                } = &input.op
                {
                    // Fuse σ into the scan: the fused node replaces both,
                    // carrying the filter's output cardinality and the
                    // scan's rewritten cost plus a discounted share of the
                    // filter's own evaluation cost.
                    let filter_own = (estimated_cost.value() - old_input_cost).max(0.0);
                    return PhysicalPlan {
                        op: PhysicalOp::SeqScan {
                            table: table.clone(),
                            schema: schema.clone(),
                            columnar: Some(ColumnarScan {
                                pushed_filter: Some(predicate),
                                zone_prune: *zone_prune,
                            }),
                        },
                        estimated_cost: Cost(
                            input.estimated_cost.value() + filter_own * PUSHED_FILTER_COST_SHARE,
                        ),
                        estimated_rows,
                    };
                }
            }
            annotated(PhysicalOp::Filter {
                input: Box::new(input),
                predicate,
            })
        }
        // Every other node keeps its shape; recurse into the children
        // through the shared exhaustive walk.
        other => annotated(other.map_children(|c| rewrite(c, model))),
    }
}

/// Top-down marking: columnar scans feeding a `SortLimit` through a σ/π
/// chain get `zone_prune = true` (the executor wires the threshold cell).
fn mark_zone_prune(plan: PhysicalPlan) -> PhysicalPlan {
    let PhysicalPlan {
        op,
        estimated_cost,
        estimated_rows,
    } = plan;
    let op = match op {
        PhysicalOp::SortLimit {
            input,
            predicates,
            k,
        } => PhysicalOp::SortLimit {
            input: Box::new(mark_chain(*input)),
            predicates,
            k,
        },
        other => other.map_children(mark_zone_prune),
    };
    PhysicalPlan {
        op,
        estimated_cost,
        estimated_rows,
    }
}

/// Marks the scan at the bottom of a σ/π chain; leaves anything else to the
/// normal top-down walk.
fn mark_chain(plan: PhysicalPlan) -> PhysicalPlan {
    let PhysicalPlan {
        op,
        estimated_cost,
        estimated_rows,
    } = plan;
    let op = match op {
        PhysicalOp::SeqScan {
            table,
            schema,
            columnar: Some(c),
        } => PhysicalOp::SeqScan {
            table,
            schema,
            columnar: Some(ColumnarScan {
                zone_prune: true,
                ..c
            }),
        },
        PhysicalOp::Filter { input, predicate } => PhysicalOp::Filter {
            input: Box::new(mark_chain(*input)),
            predicate,
        },
        PhysicalOp::Project { input, columns } => PhysicalOp::Project {
            input: Box::new(mark_chain(*input)),
            columns,
        },
        other => other.map_children(mark_zone_prune),
    };
    PhysicalPlan {
        op,
        estimated_cost,
        estimated_rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ranksql_algebra::LogicalPlan;
    use ranksql_common::{BitSet64, DataType, Field, Schema, Value};
    use ranksql_expr::CompareOp;
    use ranksql_storage::TableBuilder;

    fn table() -> ranksql_storage::Table {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("p", DataType::Float64),
        ])
        .qualify_all("R");
        TableBuilder::new("R", schema)
            .row(vec![Value::from(1), Value::from(0.5)])
            .build(0)
            .unwrap()
    }

    #[test]
    fn filter_over_scan_fuses_and_marks_zone_prune_under_sort_limit() {
        let r = table();
        let logical = LogicalPlan::scan(&r)
            .select(BoolExpr::compare(
                ScalarExpr::col("R.p"),
                CompareOp::GtEq,
                ScalarExpr::lit(0.25),
            ))
            .sort(BitSet64::singleton(0))
            .limit(3);
        let physical = PhysicalPlan::from_logical(&logical).unwrap();
        let rewritten = columnarize(physical, &CostModel::default());
        let text = rewritten.explain(None);
        assert!(text.contains("ColumnScan(R)"), "{text}");
        assert!(text.contains("[σ R.p >= 0.25]"), "{text}");
        assert!(text.contains("[zone-prune]"), "{text}");
        assert!(!text.contains("Select["), "filter was fused: {text}");
        assert_eq!(rewritten.node_count(), 2, "SortLimit over fused scan");
    }

    #[test]
    fn complex_filters_stay_as_operators() {
        let r = table();
        // Arithmetic on the column: not a zone-map-friendly comparison.
        let logical = LogicalPlan::scan(&r).select(BoolExpr::compare(
            ScalarExpr::col("R.p").add(ScalarExpr::col("R.a")),
            CompareOp::GtEq,
            ScalarExpr::lit(0.25),
        ));
        let physical = PhysicalPlan::from_logical(&logical).unwrap();
        let rewritten = columnarize(physical, &CostModel::default());
        let text = rewritten.explain(None);
        assert!(text.contains("Select["), "{text}");
        assert!(text.contains("ColumnScan(R)"), "{text}");
    }

    #[test]
    fn costs_stay_coherent_after_fusion() {
        let r = table();
        let logical = LogicalPlan::scan(&r)
            .select(BoolExpr::compare(
                ScalarExpr::col("R.p"),
                CompareOp::Lt,
                ScalarExpr::lit(0.5),
            ))
            .limit(2);
        let mut physical = PhysicalPlan::from_logical(&logical).unwrap();
        // Hand-annotate a cost chain: scan 100, filter 110, limit 110.
        fn set_costs(p: &mut PhysicalPlan) {
            match &mut p.op {
                PhysicalOp::SeqScan { .. } => p.estimated_cost = Cost(100.0),
                PhysicalOp::Filter { input, .. } | PhysicalOp::Limit { input, .. } => {
                    set_costs(input);
                    p.estimated_cost = Cost(110.0);
                }
                _ => {}
            }
        }
        set_costs(&mut physical);
        let rewritten = columnarize(physical, &CostModel::default());
        // Scan re-costed to 40, fused filter adds 10 * 0.25 = 2.5; the
        // limit's cumulative cost drops by the 67.5 the subtree saved.
        let scan = rewritten.children()[0];
        assert!((scan.estimated_cost.value() - 42.5).abs() < 1e-9);
        assert!((rewritten.estimated_cost.value() - 42.5).abs() < 1e-9);
    }
}
