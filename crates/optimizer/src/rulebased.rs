//! A Volcano/Cascades-style rule-based optimizer (Section 5).
//!
//! The paper observes that the rank-relational algebra slots into both
//! families of real-world optimizers: the System-R style bottom-up dynamic
//! programming framework (implemented in [`crate::enumerate`]) and the
//! top-down, transformation-rule driven optimizers exemplified by Volcano and
//! Cascades.  This module implements the latter:
//!
//! * **Transformation rules** are the algebraic laws of Figure 5
//!   ([`ranksql_algebra::laws`]): splitting the blocking sort into a chain of
//!   µ operators, commuting µ with σ and with other µ, pushing µ through
//!   joins and set operations, commuting/associating binary operators, and
//!   the multiple-scan law.
//! * **Implementation rules** map logical shapes to physical algorithms:
//!   a µ directly above a base-table scan becomes a *rank-scan*
//!   (`idxScan_p`), and each join node is offered every physical join
//!   algorithm that preserves the plan's order property (HRJN/NRJN when
//!   ranking is in play below the join, hash/sort-merge/nested-loops
//!   otherwise).
//!
//! Exploration is a budgeted best-effort closure: starting from the canonical
//! materialise-then-sort plan *and* the best traditional join order, the
//! optimizer repeatedly applies all rules everywhere, de-duplicates, costs
//! each complete plan with the sampling-based estimator (Section 5.2), and
//! keeps the cheapest.  Unlike the memoised DP, the search is redundant — the
//! same subplan may be re-derived along different paths — but it needs no
//! signature bookkeeping and mirrors how a Volcano-style engine would adopt
//! the new rules with minimal integration effort, which is exactly the point
//! the paper makes about rule-based extensibility.

use std::collections::HashSet;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use ranksql_algebra::laws::{all_rules, apply_rule_everywhere};
use ranksql_algebra::{JoinAlgorithm, LogicalPlan, RankQuery, ScanAccess};
use ranksql_common::{RankSqlError, Result};
use ranksql_expr::{BoolExpr, CompareOp, ScalarExpr};
use ranksql_storage::Catalog;

use crate::cost::{Cost, CostModel};
use crate::enumerate::EnumerationStats;
use crate::sampling::SamplingEstimator;
use crate::{traditional, OptimizedPlan};

/// Tunables of the rule-based search.
#[derive(Debug, Clone)]
pub struct RuleBasedConfig {
    /// Maximum number of distinct plans to generate (exploration budget).
    pub max_plans: usize,
    /// Maximum number of plans to cost (costing executes the plan over the
    /// sample tables, so it is the expensive part of the search).
    pub max_costed: usize,
}

impl Default for RuleBasedConfig {
    fn default() -> Self {
        RuleBasedConfig {
            max_plans: 2000,
            max_costed: 400,
        }
    }
}

/// The rule-based optimizer: transformation + implementation rules applied
/// from seed plans under a budget.
pub struct RuleBasedOptimizer<'a> {
    query: &'a RankQuery,
    catalog: &'a Catalog,
    estimator: Arc<SamplingEstimator>,
    cost_model: CostModel,
    config: RuleBasedConfig,
}

impl<'a> RuleBasedOptimizer<'a> {
    /// Creates a rule-based optimizer with the default exploration budget.
    pub fn new(
        query: &'a RankQuery,
        catalog: &'a Catalog,
        estimator: Arc<SamplingEstimator>,
        cost_model: CostModel,
    ) -> Self {
        RuleBasedOptimizer {
            query,
            catalog,
            estimator,
            cost_model,
            config: RuleBasedConfig::default(),
        }
    }

    /// Overrides the exploration budget.
    pub fn with_config(mut self, config: RuleBasedConfig) -> Self {
        self.config = config;
        self
    }

    fn cost(&self, plan: &LogicalPlan) -> Result<(Cost, f64)> {
        self.cost_model
            .cost_plan(plan, &self.query.ranking, &self.estimator)
    }

    /// Runs the search and returns the cheapest complete plan found.
    pub fn optimize(&self) -> Result<OptimizedPlan> {
        let start = Instant::now();
        if self.query.tables.is_empty() {
            return Err(RankSqlError::Optimizer("query has no tables".into()));
        }

        // Seed plans: the canonical materialise-then-sort form of Eq. 1 and
        // the best ranking-blind join order (which gives the search a good
        // membership-dimension starting point for free).
        let mut seeds = vec![self.query.canonical_plan(self.catalog)?];
        if let Ok(trad) = traditional::optimize_traditional(
            self.query,
            self.catalog,
            &self.estimator,
            &self.cost_model,
        ) {
            seeds.push(trad.plan);
        }

        let mut stats = EnumerationStats::default();
        let mut seen: HashSet<String> = HashSet::new();
        let mut frontier: VecDeque<LogicalPlan> = VecDeque::new();
        for seed in seeds {
            if seen.insert(format!("{seed:?}")) {
                frontier.push_back(seed);
            }
        }

        let rules = all_rules();
        let mut best: Option<(LogicalPlan, Cost, f64)> = None;
        let mut generated = seen.len();
        let mut costed = 0usize;

        while let Some(plan) = frontier.pop_front() {
            // Cost this plan if it is complete and the costing budget allows.
            if costed < self.config.max_costed && self.is_complete(&plan) {
                if let Ok((cost, card)) = self.cost(&plan) {
                    costed += 1;
                    stats.plans_considered += 1;
                    if best.as_ref().map(|(_, c, _)| cost < *c).unwrap_or(true) {
                        best = Some((plan.clone(), cost, card));
                    }
                }
            }
            if generated >= self.config.max_plans {
                continue;
            }

            // Transformation rules (the Figure 5 laws), applied at every node.
            let mut successors: Vec<LogicalPlan> = Vec::new();
            for rule in &rules {
                successors.extend(apply_rule_everywhere(&plan, rule.as_ref(), self.query));
            }
            // Implementation rules.
            successors.extend(self.merge_rank_into_scan(&plan));
            successors.extend(self.join_algorithm_alternatives(&plan));

            for next in successors {
                if generated >= self.config.max_plans {
                    break;
                }
                if seen.insert(format!("{next:?}")) {
                    generated += 1;
                    frontier.push_back(next);
                }
            }
        }

        stats.signatures_kept = seen.len();
        stats.elapsed = start.elapsed();

        let (plan, cost, card) = best.ok_or_else(|| {
            RankSqlError::Optimizer("rule-based search found no complete plan".into())
        })?;
        let physical = crate::lower::lower_with_estimates(
            &plan,
            &self.query.ranking,
            &self.estimator,
            &self.cost_model,
        )?;
        Ok(OptimizedPlan {
            plan,
            physical,
            cost,
            estimated_cardinality: card,
            stats,
        })
    }

    /// A plan is complete when it evaluates every ranking predicate of the
    /// query and delivers exactly the top-k (a `Limit` is present at or above
    /// the root modulo a projection).
    fn is_complete(&self, plan: &LogicalPlan) -> bool {
        if plan.evaluated_predicates() != self.query.all_rank_predicates() {
            return false;
        }
        fn has_limit(plan: &LogicalPlan) -> bool {
            match plan {
                LogicalPlan::Limit { .. } => true,
                LogicalPlan::Project { input, .. } => has_limit(input),
                _ => false,
            }
        }
        has_limit(plan)
    }

    // -----------------------------------------------------------------------
    // Implementation rule: µ_p over a base scan  →  rank-scan (idxScan_p)
    // -----------------------------------------------------------------------

    /// Finds every `Rank { Scan(Sequential) }` (optionally with a selection in
    /// between) whose predicate is a rank-selection on that very table, and
    /// replaces the pair with a rank-scan access path — the paper's
    /// `idxScan_p`, which Section 4.2 calls rank-scan.
    fn merge_rank_into_scan(&self, plan: &LogicalPlan) -> Vec<LogicalPlan> {
        let mut out = Vec::new();
        // At the root.
        if let Some(merged) = self.try_merge_at(plan) {
            out.push(merged);
        }
        // In each child subtree.
        let children = plan.children();
        for (i, child) in children.iter().enumerate() {
            for rewritten in self.merge_rank_into_scan(child) {
                let mut new_children: Vec<LogicalPlan> =
                    children.iter().map(|c| (*c).clone()).collect();
                new_children[i] = rewritten;
                out.push(plan.with_children(new_children));
            }
        }
        out
    }

    fn try_merge_at(&self, plan: &LogicalPlan) -> Option<LogicalPlan> {
        let LogicalPlan::Rank { input, predicate } = plan else {
            return None;
        };
        // The predicate must be a rank-selection over exactly the scanned
        // table (rank-join predicates cannot be served by a single index).
        let check_scan = |scan: &LogicalPlan| -> Option<LogicalPlan> {
            let LogicalPlan::Scan {
                table,
                schema,
                access: ScanAccess::Sequential,
            } = scan
            else {
                return None;
            };
            let ti = self.query.table_index(table).ok()?;
            let tables = self.query.rank_predicate_tables(*predicate).ok()?;
            if tables.len() != 1 || !tables.contains(ti) {
                return None;
            }
            Some(LogicalPlan::Scan {
                table: table.clone(),
                schema: schema.clone(),
                access: ScanAccess::RankIndex {
                    predicate: *predicate,
                },
            })
        };
        match &**input {
            // µ_p(SeqScan(T))  →  RankScan_p(T)
            scan @ LogicalPlan::Scan { .. } => check_scan(scan),
            // µ_p(σ_c(SeqScan(T)))  →  σ_c(RankScan_p(T))   (scan-based selection)
            LogicalPlan::Select {
                input: scan,
                predicate: cond,
            } => check_scan(scan).map(|rank_scan| rank_scan.select(cond.clone())),
            _ => None,
        }
    }

    // -----------------------------------------------------------------------
    // Implementation rule: physical join algorithm alternatives
    // -----------------------------------------------------------------------

    /// For every join node, generates one alternative plan per admissible
    /// physical algorithm.  Rank-aware algorithms are required whenever a
    /// ranking predicate has been evaluated below the join (the join must
    /// merge the aggregate order of its operands, Figure 3); otherwise the
    /// traditional algorithms compete.
    fn join_algorithm_alternatives(&self, plan: &LogicalPlan) -> Vec<LogicalPlan> {
        let mut out = Vec::new();
        if let LogicalPlan::Join {
            left,
            right,
            condition,
            algorithm,
        } = plan
        {
            let ranked = !plan.evaluated_predicates().is_empty();
            let has_equi = condition
                .as_ref()
                .map(|c| {
                    c.split_conjuncts().iter().any(|cj| {
                        matches!(
                            cj,
                            BoolExpr::Compare {
                                op: CompareOp::Eq,
                                left: ScalarExpr::Column(_),
                                right: ScalarExpr::Column(_),
                            }
                        )
                    })
                })
                .unwrap_or(false);
            let admissible: Vec<JoinAlgorithm> = if ranked {
                if has_equi {
                    vec![
                        JoinAlgorithm::HashRankJoin,
                        JoinAlgorithm::NestedLoopRankJoin,
                    ]
                } else {
                    vec![JoinAlgorithm::NestedLoopRankJoin]
                }
            } else if has_equi {
                vec![
                    JoinAlgorithm::Hash,
                    JoinAlgorithm::SortMerge,
                    JoinAlgorithm::NestedLoop,
                ]
            } else {
                vec![JoinAlgorithm::NestedLoop]
            };
            for alg in admissible {
                if alg != *algorithm {
                    out.push(LogicalPlan::Join {
                        left: left.clone(),
                        right: right.clone(),
                        condition: condition.clone(),
                        algorithm: alg,
                    });
                }
            }
        }
        let children = plan.children();
        for (i, child) in children.iter().enumerate() {
            for rewritten in self.join_algorithm_alternatives(child) {
                let mut new_children: Vec<LogicalPlan> =
                    children.iter().map(|c| (*c).clone()).collect();
                new_children[i] = rewritten;
                out.push(plan.with_children(new_children));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ranksql_common::{DataType, Field, Schema, Value};
    use ranksql_executor::{execute_query_plan, oracle_top_k};
    use ranksql_expr::{RankPredicate, RankingContext, ScoringFunction};

    fn setup(rows: usize) -> (Catalog, RankQuery) {
        let cat = Catalog::new();
        let a = cat
            .create_table(
                "A",
                Schema::new(vec![
                    Field::new("jc", DataType::Int64),
                    Field::new("p1", DataType::Float64),
                    Field::new("b", DataType::Bool),
                ]),
            )
            .unwrap();
        let b = cat
            .create_table(
                "B",
                Schema::new(vec![
                    Field::new("jc", DataType::Int64),
                    Field::new("p2", DataType::Float64),
                ]),
            )
            .unwrap();
        for i in 0..rows {
            a.insert(vec![
                Value::from((i % 17) as i64),
                Value::from(((i * 37) % 100) as f64 / 100.0),
                Value::from(i % 5 != 0),
            ])
            .unwrap();
            b.insert(vec![
                Value::from((i % 17) as i64),
                Value::from(((i * 61) % 100) as f64 / 100.0),
            ])
            .unwrap();
        }
        let ranking = RankingContext::new(
            vec![
                RankPredicate::attribute_with_cost("p1", "A.p1", 50),
                RankPredicate::attribute_with_cost("p2", "B.p2", 50),
            ],
            ScoringFunction::Sum,
        );
        let query = RankQuery::new(
            vec!["A".into(), "B".into()],
            vec![
                BoolExpr::col_eq_col("A.jc", "B.jc"),
                BoolExpr::column_is_true("A.b"),
            ],
            ranking,
            5,
        );
        (cat, query)
    }

    fn optimize(query: &RankQuery, cat: &Catalog) -> OptimizedPlan {
        let est = Arc::new(SamplingEstimator::build(query, cat, 0.1, 7).unwrap());
        RuleBasedOptimizer::new(query, cat, est, CostModel::default())
            .optimize()
            .unwrap()
    }

    #[test]
    fn rule_based_plan_matches_the_oracle() {
        let (cat, query) = setup(300);
        let opt = optimize(&query, &cat);
        let result = execute_query_plan(&query, &opt.plan, &cat).unwrap();
        let oracle = oracle_top_k(&query, &cat).unwrap();
        let s = |ts: &[ranksql_expr::RankedTuple]| -> Vec<f64> {
            ts.iter()
                .map(|t| query.ranking.upper_bound(&t.state).value())
                .collect()
        };
        assert_eq!(s(&result.tuples), s(&oracle));
    }

    #[test]
    fn rule_based_search_discovers_pipelined_plans() {
        let (cat, query) = setup(400);
        let opt = optimize(&query, &cat);
        // With expensive predicates the cheapest discovered plan must be a
        // rank-aware one (no blocking sort, at least one µ / rank-scan /
        // rank-join).
        assert!(
            !opt.plan.has_blocking_sort() && opt.plan.rank_operator_count() > 0,
            "expected a pipelined rank-aware plan, got:\n{}",
            opt.plan.explain(Some(&query.ranking))
        );
        assert!(opt.cost.is_finite());
        assert!(opt.stats.plans_considered > 1);
    }

    #[test]
    fn merge_rank_into_scan_produces_rank_scan_access() {
        let (cat, query) = setup(50);
        let est = Arc::new(SamplingEstimator::build(&query, &cat, 0.5, 7).unwrap());
        let rb = RuleBasedOptimizer::new(&query, &cat, est, CostModel::default());
        let table = cat.table("A").unwrap();
        let plan = LogicalPlan::scan(&table).rank(0);
        let merged = rb.merge_rank_into_scan(&plan);
        assert!(merged.iter().any(|p| matches!(
            p,
            LogicalPlan::Scan {
                access: ScanAccess::RankIndex { predicate: 0 },
                ..
            }
        )));
        // Through a selection as well (scan-based selection).
        let plan = LogicalPlan::scan(&table)
            .select(BoolExpr::column_is_true("A.b"))
            .rank(0);
        let merged = rb.merge_rank_into_scan(&plan);
        assert!(merged.iter().any(
            |p| matches!(p, LogicalPlan::Select { .. }) && p.evaluated_predicates().contains(0)
        ));
        // Not for a predicate that lives on another table.
        let plan = LogicalPlan::scan(&table).rank(1);
        assert!(rb.merge_rank_into_scan(&plan).is_empty());
    }

    #[test]
    fn join_alternatives_respect_the_order_property() {
        let (cat, query) = setup(50);
        let est = Arc::new(SamplingEstimator::build(&query, &cat, 0.5, 7).unwrap());
        let rb = RuleBasedOptimizer::new(&query, &cat, est, CostModel::default());
        let a = cat.table("A").unwrap();
        let b = cat.table("B").unwrap();
        let cond = Some(BoolExpr::col_eq_col("A.jc", "B.jc"));
        // Unranked join: traditional algorithms offered.
        let plain = LogicalPlan::scan(&a).join(
            LogicalPlan::scan(&b),
            cond.clone(),
            JoinAlgorithm::NestedLoop,
        );
        let alts = rb.join_algorithm_alternatives(&plain);
        assert!(alts.iter().any(|p| matches!(
            p,
            LogicalPlan::Join {
                algorithm: JoinAlgorithm::Hash,
                ..
            }
        )));
        assert!(!alts.iter().any(|p| matches!(
            p,
            LogicalPlan::Join {
                algorithm: JoinAlgorithm::HashRankJoin,
                ..
            }
        )));
        // Ranked join: only rank-aware algorithms offered.
        let ranked = LogicalPlan::rank_scan(&a, 0).join(
            LogicalPlan::scan(&b),
            cond,
            JoinAlgorithm::HashRankJoin,
        );
        let alts = rb.join_algorithm_alternatives(&ranked);
        assert!(alts.iter().all(|p| match p {
            LogicalPlan::Join { algorithm, .. } => algorithm.is_rank_aware(),
            _ => true,
        }));
    }

    #[test]
    fn tight_budget_still_returns_a_plan() {
        let (cat, query) = setup(100);
        let est = Arc::new(SamplingEstimator::build(&query, &cat, 0.2, 7).unwrap());
        let opt = RuleBasedOptimizer::new(&query, &cat, est, CostModel::default())
            .with_config(RuleBasedConfig {
                max_plans: 3,
                max_costed: 3,
            })
            .optimize()
            .unwrap();
        // With almost no budget the best plan is one of the seeds, which is
        // still correct.
        let result = execute_query_plan(&query, &opt.plan, &cat).unwrap();
        assert_eq!(result.tuples.len(), 5);
    }

    #[test]
    fn empty_query_is_rejected() {
        let cat = Catalog::new();
        let query = RankQuery::new(vec![], vec![], RankingContext::unranked(), 1);
        let dummy_query = {
            // Build an estimator over a trivial catalog/table so construction
            // succeeds; optimize() must still reject the empty query.
            let c = Catalog::new();
            c.create_table("T", Schema::new(vec![Field::new("x", DataType::Int64)]))
                .unwrap();
            let q = RankQuery::new(vec!["T".into()], vec![], RankingContext::unranked(), 1);
            SamplingEstimator::build(&q, &c, 0.5, 1).unwrap()
        };
        let rb = RuleBasedOptimizer::new(&query, &cat, Arc::new(dummy_query), CostModel::default());
        assert!(rb.optimize().is_err());
    }
}
