//! Plan-cache key normalization for prepared statements.
//!
//! A prepared query is optimized once and its physical plan cached; later
//! executions with different parameter bindings reuse the cached shape after
//! re-binding parameter values ([`PhysicalPlan::with_params`]) and the top-k
//! cap ([`PhysicalPlan::with_limit`]).  The cache key must therefore be a
//! function of everything that *does* change the optimizer's output and
//! nothing that is re-bindable:
//!
//! * **included** — table list, Boolean predicate shapes (parameters render
//!   as `$i`, never as their bound values), ranking predicate names, score
//!   sources and costs, the scoring-function *kind* and arity, the
//!   projection, the plan mode, and the worker-thread budget (the
//!   parallelization pass rewrites plans per thread count).  The core layer
//!   additionally suffixes the referenced tables' log₂ size buckets at bind
//!   time, so a cached shape is re-costed once a table grows or shrinks by
//!   roughly 2× — bounding how stale the plan's cost assumptions can get;
//! * **excluded** — bound parameter values, the concrete `k`, and concrete
//!   ranking weights (`WeightedSum` keys by arity only).  Re-binding any of
//!   these hits the cache and rewrites the cached shape in place.  The
//!   cached shape was *costed* under the first binding's values, so a wildly
//!   different binding may execute a plan the optimizer would no longer
//!   pick — the classic generic-plan trade-off — but never an incorrect
//!   one: membership and ranking semantics live in the re-bound expressions
//!   and the query's own ranking context, not in the cached shape.
//!
//! [`PhysicalPlan::with_params`]: ranksql_algebra::PhysicalPlan::with_params
//! [`PhysicalPlan::with_limit`]: ranksql_algebra::PhysicalPlan::with_limit

use std::fmt::Write as _;

use ranksql_algebra::RankQuery;
use ranksql_expr::{ScoreSource, ScoringFunction};

/// Renders the normalized plan-cache key of a query under a plan mode,
/// worker-thread budget and storage backend (the `columnarize` pass
/// rewrites plans per backend, so the backend must key separately).
///
/// The key is value-independent: binding different parameter values (or a
/// different `k` / different ranking weights) to the same prepared query
/// yields the same key, so repeated executions skip parse + optimize.
pub fn normalized_cache_key(
    query: &RankQuery,
    mode: &str,
    threads: usize,
    backend: &str,
) -> String {
    let mut key = String::new();
    let _ = write!(key, "mode={mode};threads={threads};backend={backend};from=");
    key.push_str(&query.tables.join(","));
    key.push_str(";where=");
    for (i, p) in query.bool_predicates.iter().enumerate() {
        if i > 0 {
            key.push('&');
        }
        let _ = write!(key, "{p}");
    }
    key.push_str(";rank=");
    for (i, p) in query.ranking.predicates().iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        let source = match &p.source {
            ScoreSource::Attribute(c) => c.to_string(),
            ScoreSource::Expression(e) => e.to_string(),
        };
        let _ = write!(key, "{}:{}:{}", p.name, source, p.cost);
    }
    let _ = write!(key, ";scoring={}", scoring_tag(query.ranking.scoring()));
    key.push_str(";select=");
    match &query.projection {
        None => key.push('*'),
        Some(cols) => key.push_str(&cols.join(",")),
    }
    key
}

/// The scoring-function kind and arity, without concrete weights (weights
/// are re-bindable per execution and never change the plan's correctness).
fn scoring_tag(scoring: &ScoringFunction) -> String {
    match scoring {
        ScoringFunction::Sum => "sum".to_owned(),
        ScoringFunction::WeightedSum(w) => format!("wsum/{}", w.len()),
        ScoringFunction::Product => "product".to_owned(),
        ScoringFunction::Min => "min".to_owned(),
        ScoringFunction::Max => "max".to_owned(),
        ScoringFunction::Average => "avg".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ranksql_expr::{
        BoolExpr, CompareOp, RankPredicate, RankingContext, ScalarExpr, ScoringFunction,
    };

    fn query_with(filter: BoolExpr, scoring: ScoringFunction, k: usize) -> RankQuery {
        let ranking = RankingContext::new(
            vec![
                RankPredicate::attribute("p1", "R.p1"),
                RankPredicate::attribute_with_cost("p2", "S.p2", 7),
            ],
            scoring,
        );
        RankQuery::new(vec!["R".into(), "S".into()], vec![filter], ranking, k)
    }

    fn param_filter(value: Option<i64>) -> BoolExpr {
        let param = match value {
            None => ScalarExpr::param(0),
            Some(v) => ScalarExpr::param(0)
                .with_params(&[ranksql_common::Value::from(v)])
                .unwrap(),
        };
        BoolExpr::compare(ScalarExpr::col("R.a"), CompareOp::Lt, param)
    }

    #[test]
    fn key_is_independent_of_bindings_k_and_weights() {
        let base = normalized_cache_key(
            &query_with(param_filter(None), ScoringFunction::Sum, 5),
            "RankAware",
            1,
            "row",
        );
        // Binding a value, changing k: same key.
        let bound = normalized_cache_key(
            &query_with(param_filter(Some(42)), ScoringFunction::Sum, 500),
            "RankAware",
            1,
            "row",
        );
        assert_eq!(base, bound);
        // Different weights, same arity: same key.
        let w1 = normalized_cache_key(
            &query_with(
                param_filter(None),
                ScoringFunction::weighted_sum(vec![1.0, 2.0]),
                5,
            ),
            "RankAware",
            1,
            "row",
        );
        let w2 = normalized_cache_key(
            &query_with(
                param_filter(None),
                ScoringFunction::weighted_sum(vec![3.0, 0.5]),
                5,
            ),
            "RankAware",
            1,
            "row",
        );
        assert_eq!(w1, w2);
        assert_ne!(base, w1, "scoring kind must be part of the key");
    }

    #[test]
    fn key_separates_modes_threads_shapes() {
        let q = query_with(param_filter(None), ScoringFunction::Sum, 5);
        let a = normalized_cache_key(&q, "RankAware", 1, "row");
        assert_ne!(a, normalized_cache_key(&q, "Traditional", 1, "row"));
        assert_ne!(a, normalized_cache_key(&q, "RankAware", 4, "row"));
        // A different literal *shape* (non-parameterized constant) differs.
        let lit = query_with(
            BoolExpr::compare(
                ScalarExpr::col("R.a"),
                CompareOp::Lt,
                ScalarExpr::lit(42i64),
            ),
            ScoringFunction::Sum,
            5,
        );
        assert_ne!(a, normalized_cache_key(&lit, "RankAware", 1, "row"));
        assert!(a.contains("$0"), "{a}");
    }
}
